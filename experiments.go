package nim

import (
	"math"

	"repro/internal/runner"
	"repro/internal/thermal"
)

// Options controls an experiment run. The defaults balance statistical
// stability against wall-clock time; raise MeasureCycles for smoother
// curves.
type Options struct {
	// WarmCycles settles the warmed caches (migration counters, in-flight
	// traffic) before measurement begins.
	WarmCycles uint64
	// MeasureCycles is the statistics window (the paper uses 2B cycles on
	// its native-speed simulator; the shapes stabilize far earlier).
	MeasureCycles uint64
	// Seed makes every run deterministic.
	Seed uint64
	// Parallel bounds how many simulations a multi-run helper
	// (RunAllSchemes, RunSchemeRepeated, CPUCountSweep,
	// MigrationThresholdSweep, RunSweep) executes concurrently. Zero or
	// negative selects runtime.GOMAXPROCS(0); 1 forces the historical
	// strictly-sequential behavior. Results are identical either way —
	// every simulation is self-contained and seed-deterministic — so this
	// only changes wall-clock time.
	Parallel int
}

// DefaultOptions returns the standard experiment windows. Parallel is left
// at 0, so multi-run helpers use every available core by default.
func DefaultOptions() Options {
	return Options{WarmCycles: 50_000, MeasureCycles: 250_000, Seed: 1}
}

// jobFor translates one configured run into a sweep job.
func jobFor(cfg Config, benchName string, opt Options) SweepJob {
	return SweepJob{
		Config:        cfg,
		Benchmark:     benchName,
		WarmCycles:    opt.WarmCycles,
		MeasureCycles: opt.MeasureCycles,
		Seed:          opt.Seed,
	}
}

// runJobs executes a job slice at opt.Parallel width and flattens the
// outcome back to the historical ([]Results, first error) shape.
func runJobs(jobs []SweepJob, opt Options) ([]Results, error) {
	rs := RunSweep(jobs, opt.Parallel, nil)
	if err := runner.FirstError(rs); err != nil {
		return nil, err
	}
	out := make([]Results, len(rs))
	for i, r := range rs {
		out[i] = r.Results
	}
	return out, nil
}

// runConfigured executes one warmed, settled, measured simulation.
func runConfigured(cfg Config, benchName string, opt Options) (Results, error) {
	rs, err := runJobs([]SweepJob{jobFor(cfg, benchName, opt)}, opt)
	if err != nil {
		return Results{}, err
	}
	return rs[0], nil
}

// RunScheme measures one scheme on one benchmark at Table 4 defaults.
// One call provides the data for Figures 13 (AvgL2HitLatency), 14
// (Migrations), and 15 (IPC).
func RunScheme(s Scheme, benchName string, opt Options) (Results, error) {
	return runConfigured(DefaultConfig(s), benchName, opt)
}

// RunAllSchemes measures all four schemes on one benchmark. The four
// simulations run concurrently up to opt.Parallel workers; the result is
// identical to four sequential RunScheme calls.
func RunAllSchemes(benchName string, opt Options) (map[Scheme]Results, error) {
	schemes := Schemes()
	jobs := make([]SweepJob, len(schemes))
	for i, s := range schemes {
		jobs[i] = jobFor(DefaultConfig(s), benchName, opt)
	}
	rs, err := runJobs(jobs, opt)
	if err != nil {
		return nil, err
	}
	out := make(map[Scheme]Results, len(schemes))
	for i, s := range schemes {
		out[s] = rs[i]
	}
	return out, nil
}

// RunWithL2Size measures a scheme with the L2 scaled to 16, 32 or 64 MB by
// growing each cluster (Figure 16).
func RunWithL2Size(s Scheme, benchName string, megabytes int, opt Options) (Results, error) {
	cfg, err := DefaultConfig(s).WithL2Size(megabytes)
	if err != nil {
		return Results{}, err
	}
	return runConfigured(cfg, benchName, opt)
}

// RunWithPillars measures CMP-DNUCA-3D with a reduced pillar count — the
// paper's proxy for lower inter-layer via density (Figure 17). With fewer
// pillars than CPUs, processors share pillars via placement Algorithm 1.
func RunWithPillars(benchName string, pillars int, opt Options) (Results, error) {
	cfg := DefaultConfig(CMPDNUCA3D)
	cfg.NumPillars = pillars
	return runConfigured(cfg, benchName, opt)
}

// RunWithLayers measures CMP-SNUCA-3D with the given layer count
// (Figure 18 compares 2 and 4 layers).
func RunWithLayers(benchName string, layers int, opt Options) (Results, error) {
	cfg := DefaultConfig(CMPSNUCA3D)
	cfg.Layers = layers
	return runConfigured(cfg, benchName, opt)
}

// Aggregate summarizes repeated measurements of one metric.
type Aggregate struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

func aggregate(vals []float64) Aggregate {
	a := Aggregate{N: len(vals)}
	if a.N == 0 {
		return a
	}
	a.Min, a.Max = vals[0], vals[0]
	for _, v := range vals {
		a.Mean += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Mean /= float64(a.N)
	for _, v := range vals {
		a.StdDev += (v - a.Mean) * (v - a.Mean)
	}
	a.StdDev = math.Sqrt(a.StdDev / float64(a.N))
	return a
}

// RepeatedResults carries per-seed results and cross-seed aggregates of the
// three paper metrics.
type RepeatedResults struct {
	Latency    Aggregate
	IPC        Aggregate
	Migrations Aggregate
	Runs       []Results
}

// RunSchemeRepeated runs one scheme/benchmark across several seeds and
// aggregates, for reporting confidence alongside the point estimates. The
// per-seed runs execute concurrently up to opt.Parallel workers; Runs stay
// in seed order.
func RunSchemeRepeated(s Scheme, benchName string, opt Options, seeds int) (RepeatedResults, error) {
	jobs := make([]SweepJob, seeds)
	for i := range jobs {
		o := opt
		o.Seed = opt.Seed + uint64(i)
		jobs[i] = jobFor(DefaultConfig(s), benchName, o)
	}
	var out RepeatedResults
	rs, err := runJobs(jobs, opt)
	if err != nil {
		return out, err
	}
	var lat, ipc, mig []float64
	for _, r := range rs {
		out.Runs = append(out.Runs, r)
		lat = append(lat, r.AvgL2HitLatency)
		ipc = append(ipc, r.IPC)
		mig = append(mig, float64(r.Migrations))
	}
	out.Latency = aggregate(lat)
	out.IPC = aggregate(ipc)
	out.Migrations = aggregate(mig)
	return out, nil
}

// CPUCountSweep measures a scheme across processor counts (one pillar per
// CPU, as in the paper's placement), exploring the scaling direction the
// paper's conclusion points at. The per-count runs execute concurrently up
// to opt.Parallel workers; results stay in counts order.
func CPUCountSweep(s Scheme, benchName string, counts []int, opt Options) ([]Results, error) {
	jobs := make([]SweepJob, len(counts))
	for i, n := range counts {
		cfg := DefaultConfig(s)
		cfg.NumCPUs = n
		cfg.NumPillars = n
		jobs[i] = jobFor(cfg, benchName, opt)
	}
	return runJobs(jobs, opt)
}

// Table3 reproduces the thermal table: peak/average/minimum temperature
// for each CPU placement configuration, next to the paper's values.
type Table3Row = thermal.Table3Row

// ThermalTable3 runs the calibrated thermal model over the seven Table 3
// configurations.
func ThermalTable3() ([]Table3Row, error) {
	return thermal.Table3(thermal.DefaultParams())
}

// StackedVsOffset compares network performance of stacked versus offset CPU
// placement under CMP-DNUCA-3D (the congestion argument of Section 3.3,
// complementing Table 3's thermal argument).
func StackedVsOffset(benchName string, opt Options) (offset, stacked Results, err error) {
	offCfg := DefaultConfig(CMPDNUCA3D)
	if offset, err = runConfigured(offCfg, benchName, opt); err != nil {
		return
	}
	stCfg := DefaultConfig(CMPDNUCA3D)
	stCfg.StackCPUs = true
	stacked, err = runConfigured(stCfg, benchName, opt)
	return
}

// VerticalAblation compares the paper's dTDMA bus pillars against the
// rejected 7-port-router vertical interconnect on a CMP-SNUCA-3D chip with
// the given layer count. The paper argues the bus wins below nine layers:
// single-hop traversal beats hop-by-hop router traversal, and pillar
// routers keep one extra port instead of two.
func VerticalAblation(benchName string, layers int, opt Options) (bus, router Results, err error) {
	busCfg := DefaultConfig(CMPSNUCA3D)
	busCfg.Layers = layers
	if bus, err = runConfigured(busCfg, benchName, opt); err != nil {
		return
	}
	nocCfg := DefaultConfig(CMPSNUCA3D)
	nocCfg.Layers = layers
	nocCfg.VerticalNoC = true
	router, err = runConfigured(nocCfg, benchName, opt)
	return
}

// ReplicationAblation compares plain CMP-SNUCA-3D against SNUCA-3D with
// victim replication (the replication-based management alternative of
// Section 2.1): remote read hits leave read-only replicas in the reader's
// local cluster, trading L2 capacity and invalidation traffic for locality.
func ReplicationAblation(benchName string, opt Options) (plain, replicated Results, err error) {
	p := DefaultConfig(CMPSNUCA3D)
	if plain, err = runConfigured(p, benchName, opt); err != nil {
		return
	}
	vr := DefaultConfig(CMPSNUCA3D)
	vr.VictimReplication = true
	replicated, err = runConfigured(vr, benchName, opt)
	return
}

// RouterPipelineAblation compares the paper's single-stage (1-cycle)
// routers against the basic four-stage pipeline (Section 3.2) under
// CMP-DNUCA-3D: every hop costs three extra cycles, which multiplies
// across search probes and data trips.
func RouterPipelineAblation(benchName string, opt Options) (singleStage, fourStage Results, err error) {
	one := DefaultConfig(CMPDNUCA3D)
	if singleStage, err = runConfigured(one, benchName, opt); err != nil {
		return
	}
	four := DefaultConfig(CMPDNUCA3D)
	four.RouterPipeline = 4
	fourStage, err = runConfigured(four, benchName, opt)
	return
}

// SearchPolicyAblation compares the paper's two-step search against a
// single-step broadcast to all clusters under CMP-DNUCA-3D: the broadcast
// finds remote lines one round-trip earlier but multiplies probe traffic.
func SearchPolicyAblation(benchName string, opt Options) (twoStep, broadcast Results, err error) {
	ts := DefaultConfig(CMPDNUCA3D)
	if twoStep, err = runConfigured(ts, benchName, opt); err != nil {
		return
	}
	bc := DefaultConfig(CMPDNUCA3D)
	bc.BroadcastSearch = true
	broadcast, err = runConfigured(bc, benchName, opt)
	return
}

// TagPortAblation compares idealized (unlimited-port) cluster tag arrays
// against single-ported ones under CMP-SNUCA-3D, where every access hits
// one home tag array and hot homes contend.
func TagPortAblation(benchName string, opt Options) (ideal, singlePort Results, err error) {
	i := DefaultConfig(CMPSNUCA3D)
	if ideal, err = runConfigured(i, benchName, opt); err != nil {
		return
	}
	sp := DefaultConfig(CMPSNUCA3D)
	sp.TagPorts = 1
	singlePort, err = runConfigured(sp, benchName, opt)
	return
}

// MigrationThresholdSweep measures CMP-DNUCA-3D across migration
// thresholds (ablation of the design choice in Section 4.2.3). The
// per-threshold runs execute concurrently up to opt.Parallel workers;
// results stay in thresholds order.
func MigrationThresholdSweep(benchName string, thresholds []int, opt Options) ([]Results, error) {
	jobs := make([]SweepJob, len(thresholds))
	for i, th := range thresholds {
		cfg := DefaultConfig(CMPDNUCA3D)
		cfg.MigrationThreshold = th
		jobs[i] = jobFor(cfg, benchName, opt)
	}
	return runJobs(jobs, opt)
}

// ClusterSkipAblation measures CMP-DNUCA-3D with and without the policy of
// skipping processor-owned clusters during intra-layer migration.
func ClusterSkipAblation(benchName string, opt Options) (withSkip, withoutSkip Results, err error) {
	on := DefaultConfig(CMPDNUCA3D)
	if withSkip, err = runConfigured(on, benchName, opt); err != nil {
		return
	}
	off := DefaultConfig(CMPDNUCA3D)
	off.SkipCPUClusters = false
	withoutSkip, err = runConfigured(off, benchName, opt)
	return
}
