package nim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	nim "repro"
)

// profiledRun executes one short Figure 13-style run, optionally sharded
// and optionally with the host profiler attached, and returns its
// Results. The config mirrors TestThermalDoesNotPerturb; the sharded
// variants use the stacked four-layer machine the -shards flag targets.
func profiledRun(t testing.TB, scheme nim.Scheme, shards int, attach bool) nim.Results {
	cfg := nim.DefaultConfig(scheme)
	if shards > 1 {
		cfg.Layers = 4
		cfg.StackCPUs = true
	}
	bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	sim, err := nim.NewSimulation(cfg, bench, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Warm()
	if shards > 1 {
		if got := sim.SetShards(shards); got != shards {
			t.Fatalf("SetShards(%d) = %d", shards, got)
		}
	}
	if attach {
		sim.AttachProfile()
	}
	sim.Start()
	sim.Run(5_000)
	sim.ResetStats()
	sim.Run(20_000)
	return sim.Results()
}

// TestProfileDoesNotPerturb is the profiler's core contract: it measures
// the simulator, not the simulated machine, so attaching it changes no
// architectural result — bit-identical Results across every scheme, on
// both the serial and the sharded network path. The Profile report
// itself is the only allowed difference.
func TestProfileDoesNotPerturb(t *testing.T) {
	for _, scheme := range nim.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			plain := profiledRun(t, scheme, 1, false)
			observed := profiledRun(t, scheme, 1, true)
			if observed.Profile == nil {
				t.Fatal("attached run returned no Profile")
			}
			observed.Profile = nil
			pj, _ := json.Marshal(plain)
			oj, _ := json.Marshal(observed)
			if !bytes.Equal(pj, oj) {
				t.Fatalf("profiler attachment changed results:\nplain    %s\nobserved %s", pj, oj)
			}
		})
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			plain := profiledRun(t, nim.CMPDNUCA3D, shards, false)
			observed := profiledRun(t, nim.CMPDNUCA3D, shards, true)
			if observed.Profile == nil {
				t.Fatal("attached run returned no Profile")
			}
			observed.Profile = nil
			pj, _ := json.Marshal(plain)
			oj, _ := json.Marshal(observed)
			if !bytes.Equal(pj, oj) {
				t.Fatalf("shards=%d: profiler attachment changed results:\nplain    %s\nobserved %s", shards, pj, oj)
			}
		})
	}
}

// TestProfileReportSanity checks the report's arithmetic on a real run:
// phase shares sum to ~100% of loop wall time, the cycle count matches
// the cycles the engine ran while attached, and a sharded run carries
// per-shard barrier accounting.
func TestProfileReportSanity(t *testing.T) {
	r := profiledRun(t, nim.CMPDNUCA3D, 4, true)
	p := r.Profile
	if p == nil {
		t.Fatal("no Profile in Results")
	}
	if p.Cycles != 25_000 {
		t.Errorf("profiled cycles = %d, want 25000 (settle + measure)", p.Cycles)
	}
	if p.WallSeconds <= 0 || p.CyclesPerSec <= 0 {
		t.Errorf("degenerate wall clock: %v s, %v cycles/sec", p.WallSeconds, p.CyclesPerSec)
	}
	var shares float64
	for _, ph := range p.Phases {
		if ph.Share < 0 || ph.Seconds < 0 {
			t.Errorf("phase %s has negative share/time: %+v", ph.Phase, ph)
		}
		shares += ph.Share
	}
	if math.Abs(shares-1) > 0.02 {
		t.Errorf("phase shares sum to %.4f, want ~1 (the engine residual closes the budget)", shares)
	}
	if p.Shards == nil {
		t.Fatal("sharded run has no shard report")
	}
	if got := len(p.Shards.Shards); got != 4 {
		t.Fatalf("shard report has %d workers, want 4", got)
	}
	if p.Shards.Rounds == 0 {
		t.Error("shard report counted no rounds: the sharded path never ran")
	}
	if f := p.Shards.BarrierWaitFrac; f < 0 || f > 1 {
		t.Errorf("barrier-wait fraction %v outside [0,1]", f)
	}
	if p.Host.NumCPU <= 0 || p.Host.GoVersion == "" {
		t.Errorf("host provenance incomplete: %+v", p.Host)
	}
}
