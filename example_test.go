package nim_test

import (
	"fmt"
	"strings"

	nim "repro"
)

// The canonical flow: configure a scheme, warm the caches, settle, measure.
func Example() {
	cfg := nim.DefaultConfig(nim.CMPSNUCA3D)
	bench, _ := nim.BenchmarkByName("swim", cfg.NumCPUs)
	sim, _ := nim.NewSimulation(cfg, bench, 1)

	sim.Warm()
	sim.Start()
	sim.Run(40_000)
	sim.ResetStats()
	sim.Run(100_000)

	r := sim.Results()
	fmt.Println(r.Scheme, "on", r.Benchmark)
	fmt.Println("hits recorded:", r.L2Hits > 0)
	// Output:
	// CMP-SNUCA-3D on swim
	// hits recorded: true
}

func ExampleSchemes() {
	for _, s := range nim.Schemes() {
		fmt.Println(s)
	}
	// Output:
	// CMP-DNUCA
	// CMP-DNUCA-2D
	// CMP-SNUCA-3D
	// CMP-DNUCA-3D
}

func ExampleBenchmarkByName() {
	p, ok := nim.BenchmarkByName("mgrid", 8)
	fmt.Println(ok, p.Name, p.FastForwardMCycles)
	// Output: true mgrid 3533
}

func ExampleParseTrace() {
	trace := `
# two reads and a store
R 1a2b
W 1a2c 4
R 1a2b
`
	fs, err := nim.ParseTrace(strings.NewReader(trace))
	if err != nil {
		panic(err)
	}
	fmt.Println("refs:", fs.Len())
	first := fs.Next()
	fmt.Printf("first: %#x write=%v\n", uint64(first.Addr), first.Write)
	// Output:
	// refs: 3
	// first: 0x1a2b write=false
}

// The paper's scheme comparison, fanned out over four workers. Every
// simulation is self-contained and deterministic in its seed, so the
// parallel sweep returns exactly what four sequential runs would — only
// the wall-clock time changes.
func ExampleRunAllSchemes_parallel() {
	opt := nim.DefaultOptions()
	opt.WarmCycles, opt.MeasureCycles = 10_000, 30_000
	opt.Parallel = 4 // one worker per scheme; 1 would run sequentially

	res, err := nim.RunAllSchemes("mgrid", opt)
	if err != nil {
		panic(err)
	}
	fmt.Println("schemes measured:", len(res))
	fmt.Println("3D beats 2D:",
		res[nim.CMPSNUCA3D].AvgL2HitLatency < res[nim.CMPDNUCA2D].AvgL2HitLatency)
	// Output:
	// schemes measured: 4
	// 3D beats 2D: true
}

// A custom sweep: heterogeneous jobs (here, two pillar counts) run on a
// bounded worker pool, with results returned in input order and per-job
// errors captured instead of aborting the batch.
func ExampleRunSweep() {
	opt := nim.DefaultOptions()
	opt.WarmCycles, opt.MeasureCycles = 10_000, 30_000

	var jobs []nim.SweepJob
	for _, pillars := range []int{8, 2} {
		cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
		cfg.NumPillars = pillars
		jobs = append(jobs, nim.NewSweepJob(cfg, "swim", opt))
	}

	results := nim.RunSweep(jobs, 2, nil)
	if err := nim.SweepError(results); err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%d pillars: measured %v cycles\n",
			r.Job.Config.NumPillars, r.Results.Cycles)
	}
	fmt.Println("fewer pillars is slower:",
		results[1].Results.AvgL2HitLatency > results[0].Results.AvgL2HitLatency)
	// Output:
	// 8 pillars: measured 30000 cycles
	// 2 pillars: measured 30000 cycles
	// fewer pillars is slower: true
}

func ExampleConfig_WithL2Size() {
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	big, err := cfg.WithL2Size(64)
	fmt.Println(err, big.L2.TotalBytes()>>20, "MB")
	// Output: <nil> 64 MB
}

func ExampleThermalTable3() {
	rows, _ := nim.ThermalTable3()
	stackedHotter := rows[4].Profile.PeakC > rows[1].Profile.PeakC
	fmt.Println("rows:", len(rows))
	fmt.Println("stacking hotter than offsetting:", stackedHotter)
	// Output:
	// rows: 7
	// stacking hotter than offsetting: true
}
