// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark family per table/figure), plus ablations of the design
// choices called out in DESIGN.md. Each benchmark reports the figure's
// metric through b.ReportMetric, so `go test -bench=. -benchmem` prints the
// series the paper plots; `go run ./cmd/experiments -all` prints the same
// data as formatted tables.
package nim_test

import (
	"testing"

	nim "repro"
	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// benchOpt keeps individual benchmarks quick; cmd/experiments uses larger
// windows for smoother numbers.
func benchOpt() nim.Options {
	return nim.Options{WarmCycles: 30_000, MeasureCycles: 80_000, Seed: 1}
}

// reportRun attaches the three paper metrics to a benchmark result.
func reportRun(b *testing.B, r nim.Results) {
	b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	b.ReportMetric(r.IPC, "IPC")
	b.ReportMetric(float64(r.Migrations), "migrations")
}

// --- Table 1: dTDMA component characterization -------------------------

func BenchmarkTable1Components(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		for _, c := range power.Table1() {
			total += c.PowerMW + c.AreaMM2
		}
	}
	b.ReportMetric(power.RouterPowerMW/power.ArbiterPowerMW, "router-vs-arbiter-power-x")
	_ = total
}

// --- Table 2: pillar wiring area vs via pitch --------------------------

func BenchmarkTable2PillarArea(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		for _, pitch := range power.Table2Pitches {
			area += power.PillarAreaUM2(pitch)
		}
	}
	b.ReportMetric(power.PillarAreaUM2(5), "um2@5um")
	b.ReportMetric(100*power.PillarAreaOverheadVsRouter(5), "overhead-pct@5um")
	_ = area
}

// --- Table 3: thermal profiles of CPU placements -----------------------

func BenchmarkTable3Thermal(b *testing.B) {
	var rows []nim.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = nim.ThermalTable3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "3D-2L, CPU stacking" {
			b.ReportMetric(r.Profile.PeakC, "stacking-peak-C")
		}
		if r.Name == "3D-2L, optimal offset" {
			b.ReportMetric(r.Profile.PeakC, "offset-peak-C")
		}
	}
}

// --- Table 5: workload generation throughput ---------------------------

func BenchmarkTable5WorkloadGen(b *testing.B) {
	prof, _ := trace.ProfileByName("mgrid", 8)
	g := trace.NewGenerator(prof, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// --- Figures 13/14/15: the four schemes --------------------------------

func benchmarkScheme(b *testing.B, s nim.Scheme, bench string) {
	var r nim.Results
	for i := 0; i < b.N; i++ {
		var err error
		r, err = nim.RunScheme(s, bench, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRun(b, r)
}

func BenchmarkFig13Fig15Schemes(b *testing.B) {
	for _, bench := range []string{"mgrid", "art"} {
		for _, s := range nim.Schemes() {
			s, bench := s, bench
			b.Run(bench+"/"+s.String(), func(b *testing.B) {
				benchmarkScheme(b, s, bench)
			})
		}
	}
}

func BenchmarkFig14Migrations(b *testing.B) {
	// Migration counts of the three migrating schemes on swim, the series
	// Figure 14 normalizes against CMP-DNUCA-2D.
	for _, s := range []nim.Scheme{nim.CMPDNUCA, nim.CMPDNUCA2D, nim.CMPDNUCA3D} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			var r nim.Results
			for i := 0; i < b.N; i++ {
				var err error
				r, err = nim.RunScheme(s, "swim", benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Migrations), "migrations")
		})
	}
}

// --- Figure 16: L2 capacity scaling -------------------------------------

func BenchmarkFig16CacheSize(b *testing.B) {
	for _, mb := range []int{16, 32, 64} {
		for _, s := range []nim.Scheme{nim.CMPDNUCA2D, nim.CMPDNUCA3D} {
			mb, s := mb, s
			b.Run(s.String()+"/"+sizeName(mb), func(b *testing.B) {
				var r nim.Results
				for i := 0; i < b.N; i++ {
					var err error
					r, err = nim.RunWithL2Size(s, "mgrid", mb, benchOpt())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
			})
		}
	}
}

func sizeName(mb int) string {
	switch mb {
	case 16:
		return "16MB"
	case 32:
		return "32MB"
	case 64:
		return "64MB"
	}
	return "?"
}

// --- Figure 17: number of pillars ---------------------------------------

func BenchmarkFig17Pillars(b *testing.B) {
	for _, p := range []int{8, 4, 2} {
		p := p
		b.Run(pillarName(p), func(b *testing.B) {
			var r nim.Results
			for i := 0; i < b.N; i++ {
				var err error
				r, err = nim.RunWithPillars("swim", p, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		})
	}
}

func pillarName(p int) string {
	switch p {
	case 8:
		return "8pillars"
	case 4:
		return "4pillars"
	case 2:
		return "2pillars"
	}
	return "?"
}

// --- Figure 18: number of layers ----------------------------------------

func BenchmarkFig18Layers(b *testing.B) {
	for _, l := range []int{2, 4} {
		l := l
		b.Run(layerName(l), func(b *testing.B) {
			var r nim.Results
			for i := 0; i < b.N; i++ {
				var err error
				r, err = nim.RunWithLayers("mgrid", l, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		})
	}
}

func layerName(l int) string {
	if l == 2 {
		return "2layers"
	}
	return "4layers"
}

// --- Ablations of DESIGN.md's called-out choices ------------------------

func BenchmarkAblationMigrationThreshold(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			var rs []nim.Results
			for i := 0; i < b.N; i++ {
				var err error
				rs, err = nim.MigrationThresholdSweep("swim", []int{th}, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rs[0].AvgL2HitLatency, "L2hit-cycles")
			b.ReportMetric(float64(rs[0].Migrations), "migrations")
		})
	}
}

func thName(th int) string {
	return "threshold" + string(rune('0'+th))
}

func BenchmarkAblationClusterSkip(b *testing.B) {
	b.Run("skip-on", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			r, _, err = runSkip(true)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
	b.Run("skip-off", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, r, err = runSkip(false)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
}

func runSkip(on bool) (withSkip, withoutSkip nim.Results, err error) {
	if on {
		withSkip, err = nim.RunScheme(nim.CMPDNUCA3D, "swim", benchOpt())
		return
	}
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	cfg.SkipCPUClusters = false
	bench, _ := nim.BenchmarkByName("swim", cfg.NumCPUs)
	sim, e := nim.NewSimulation(cfg, bench, 1)
	if e != nil {
		err = e
		return
	}
	opt := benchOpt()
	sim.Warm()
	sim.Start()
	sim.Run(opt.WarmCycles)
	sim.ResetStats()
	sim.Run(opt.MeasureCycles)
	withoutSkip = sim.Results()
	return
}

func BenchmarkAblationStackedCPUs(b *testing.B) {
	// Network-performance counterpart of Table 3's thermal argument:
	// stacking CPUs on shared pillar columns congests the pillars.
	for _, stacked := range []bool{false, true} {
		stacked := stacked
		name := "offset"
		if stacked {
			name = "stacked"
		}
		b.Run(name, func(b *testing.B) {
			var r nim.Results
			for i := 0; i < b.N; i++ {
				cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
				cfg.StackCPUs = stacked
				bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
				sim, err := nim.NewSimulation(cfg, bench, 1)
				if err != nil {
					b.Fatal(err)
				}
				opt := benchOpt()
				sim.Warm()
				sim.Start()
				sim.Run(opt.WarmCycles)
				sim.ResetStats()
				sim.Run(opt.MeasureCycles)
				r = sim.Results()
			}
			b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		})
	}
}

func BenchmarkAblationVerticalInterconnect(b *testing.B) {
	// The paper's Section 3.1 design decision: dTDMA bus pillars versus
	// 7-port 3D routers for the vertical direction, on a 4-layer chip
	// where the single-hop advantage is visible.
	b.Run("dtdma-bus", func(b *testing.B) {
		var bus nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			bus, _, err = nim.VerticalAblation("mgrid", 4, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(bus.AvgL2HitLatency, "L2hit-cycles")
	})
	b.Run("router-7port", func(b *testing.B) {
		var router nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, router, err = nim.VerticalAblation("mgrid", 4, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(router.AvgL2HitLatency, "L2hit-cycles")
	})
}

func BenchmarkAblationRouterPipeline(b *testing.B) {
	// The paper's Section 3.2 choice of single-stage routers over the
	// basic four-stage pipeline.
	b.Run("single-stage", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			r, _, err = nim.RouterPipelineAblation("swim", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
	b.Run("four-stage", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, r, err = nim.RouterPipelineAblation("swim", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
}

func BenchmarkAblationSearchPolicy(b *testing.B) {
	// Two-step search (Section 4.2.1) vs single-step broadcast.
	b.Run("two-step", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			r, _, err = nim.SearchPolicyAblation("art", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		b.ReportMetric(float64(r.ProbesSent), "probes")
	})
	b.Run("broadcast", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, r, err = nim.SearchPolicyAblation("art", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		b.ReportMetric(float64(r.ProbesSent), "probes")
	})
}

func BenchmarkAblationVictimReplication(b *testing.B) {
	// The replication-vs-migration management alternative of Section 2.1.
	b.Run("snuca3d-plain", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			r, _, err = nim.ReplicationAblation("equake", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
	b.Run("snuca3d-vr", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, r, err = nim.ReplicationAblation("equake", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
		b.ReportMetric(float64(r.ReplicaHits), "replica-hits")
	})
}

func BenchmarkAblationTagPorts(b *testing.B) {
	// Idealized vs single-ported cluster tag arrays.
	b.Run("unlimited", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			r, _, err = nim.TagPortAblation("mgrid", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
	b.Run("single-port", func(b *testing.B) {
		var r nim.Results
		for i := 0; i < b.N; i++ {
			var err error
			_, r, err = nim.TagPortAblation("mgrid", benchOpt())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.AvgL2HitLatency, "L2hit-cycles")
	})
}

// --- Microbenchmarks: simulator throughput ------------------------------

// BenchmarkTracingOverhead quantifies the observability layer's cost on a
// Figure 13-style run. The "disabled" case is the default configuration —
// no probe attached, every instrumentation site a nil check — and is the
// one that must stay within 2% of the pre-instrumentation simulator. The
// "enabled" case attaches a ring sink and shows the full-tracing price;
// "spans" attaches the pooled transaction span recorder instead.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, attach func(*nim.Simulation)) {
		cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
		bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
		sim, err := nim.NewSimulation(cfg, bench, 1)
		if err != nil {
			b.Fatal(err)
		}
		sim.Warm()
		sim.Start()
		if attach != nil {
			attach(sim)
		}
		b.ResetTimer()
		sim.Run(uint64(b.N))
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, func(s *nim.Simulation) { s.AttachTracer(nim.NewTraceRing(1 << 20)) })
	})
	b.Run("spans", func(b *testing.B) {
		run(b, func(s *nim.Simulation) { s.AttachSpans() })
	})
	b.Run("thermal", func(b *testing.B) {
		run(b, func(s *nim.Simulation) { s.AttachThermal(1_000) })
	})
	// The host profiler's full price: one clock read per event plus two
	// per ticker. The disabled case above doubles as its zero-cost gate —
	// an unattached run's only new work is a nil check in Engine.Step.
	b.Run("profile", func(b *testing.B) {
		run(b, func(s *nim.Simulation) { s.AttachProfile() })
	})
}

// BenchmarkSimulatorThroughput reports simulated cycles per wall-clock
// second. The "serial" case is the historical default 3D system and the
// regression gate's anchor (scripts/bench.sh holds it within 10% of the
// committed baseline). The "stacked" case is the four-layer stacked-CPU
// machine — the config the -shards flag targets — run serially, and
// "shards-2"/"shards-4" run the same machine with its network phase
// fanned out over layer-shard goroutines; comparing their ns/op against
// "stacked" gives the intra-run speedup (bench.sh prints it). Shard
// counts beyond GOMAXPROCS still measure correctly — the goroutines just
// time-slice — so the entries are meaningful even on small machines,
// merely flat.
func BenchmarkSimulatorThroughput(b *testing.B) {
	run := func(b *testing.B, stacked bool, shards int) {
		cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
		if stacked {
			cfg.Layers = 4
			cfg.StackCPUs = true
		}
		bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
		sim, err := nim.NewSimulation(cfg, bench, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer sim.Close()
		if shards > 1 {
			sim.SetShards(shards)
		}
		sim.Warm()
		sim.Start()
		b.ResetTimer()
		sim.Run(uint64(b.N))
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
	}
	b.Run("serial", func(b *testing.B) { run(b, false, 1) })
	b.Run("stacked", func(b *testing.B) { run(b, true, 1) })
	b.Run("shards-2", func(b *testing.B) { run(b, true, 2) })
	b.Run("shards-4", func(b *testing.B) { run(b, true, 4) })
}

func BenchmarkThermalSolver(b *testing.B) {
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	top, err := config.NewTopology(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prm := thermal.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		thermal.Simulate(top.Dim, top.CPUs, prm)
	}
}

// BenchmarkDTMOverhead quantifies the management loop's cost on the
// stacked (hottest) machine. The "detached" case is the default
// configuration — no controller, every actuator hook a nil check — and
// must stay within the simulator-throughput regression gate. "disabled"
// attaches a controller with no policy bits (the loop's fixed cost:
// hysteresis scan per thermal step); "all" enables every actuator, whose
// price includes the work the policies cause (stall events, diverted
// packets), not just the hook overhead.
func BenchmarkDTMOverhead(b *testing.B) {
	run := func(b *testing.B, policy string, attach bool) {
		cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
		cfg.StackCPUs = true
		cfg.DTMPolicy = policy
		bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
		sim, err := nim.NewSimulation(cfg, bench, 1)
		if err != nil {
			b.Fatal(err)
		}
		sim.Warm()
		sim.Start()
		if attach {
			if _, err := sim.AttachDTM(1_000); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		sim.Run(uint64(b.N))
	}
	b.Run("detached", func(b *testing.B) { run(b, "", false) })
	b.Run("disabled", func(b *testing.B) { run(b, "none", true) })
	b.Run("all", func(b *testing.B) { run(b, "all", true) })
}
