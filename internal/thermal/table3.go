package thermal

import (
	"repro/internal/config"
)

// Table3Row is one configuration of the paper's Table 3.
type Table3Row struct {
	Name       string
	PaperPeakC float64
	PaperAvgC  float64
	PaperMinC  float64
	Profile    Profile
	// Iters and Converged report the steady-state solver's behavior for
	// this row (filled by Table3): the Gauss–Seidel iteration count and
	// whether it reached tolerance before the iteration cap.
	Iters     int
	Converged bool
}

// Table3Configs builds the seven configurations of Table 3. The k-offset
// rows share four pillars between the eight CPUs (Algorithm 1 with one CPU
// per pillar per layer), which is what makes the offset distance k
// meaningful; stacking rows force CPUs into vertical columns. The returned
// rows carry only the paper's reference numbers; Table3 fills the modeled
// profiles.
func Table3Configs() ([]Table3Row, []config.Config) {
	mk := func(layers, pillars, k int, stack bool) config.Config {
		c := config.Default(config.CMPDNUCA3D)
		c.Layers = layers
		c.NumPillars = pillars
		c.OffsetK = k
		c.StackCPUs = stack
		return c
	}
	rows := []Table3Row{
		{Name: "2D, maximal offset", PaperPeakC: 111.05, PaperAvgC: 53.96, PaperMinC: 46.77},
		{Name: "3D-2L, optimal offset", PaperPeakC: 119.05, PaperAvgC: 63.94, PaperMinC: 49.21},
		{Name: "3D-2L, offset k=2", PaperPeakC: 125.02, PaperAvgC: 63.94, PaperMinC: 49.59},
		{Name: "3D-2L, offset k=1", PaperPeakC: 135.24, PaperAvgC: 63.94, PaperMinC: 49.52},
		{Name: "3D-2L, CPU stacking", PaperPeakC: 173.38, PaperAvgC: 63.94, PaperMinC: 50.73},
		{Name: "3D-4L, optimal offset", PaperPeakC: 158.67, PaperAvgC: 86.62, PaperMinC: 64.79},
		{Name: "3D-4L, CPU stacking", PaperPeakC: 287.12, PaperAvgC: 86.62, PaperMinC: 58.51},
	}
	cfgs := []config.Config{
		config.Default(config.CMPDNUCA2D),
		mk(2, 8, 1, false),
		mk(2, 4, 2, false),
		mk(2, 4, 1, false),
		mk(2, 8, 1, true),
		mk(4, 8, 1, false),
		mk(4, 8, 1, true),
	}
	return rows, cfgs
}

// Table3 reproduces the paper's Table 3: the steady-state thermal profile
// of each CPU placement configuration.
func Table3(prm Params) ([]Table3Row, error) {
	rows, cfgs := Table3Configs()
	for i, cfg := range cfgs {
		top, err := config.NewTopology(cfg)
		if err != nil {
			return nil, err
		}
		g, iters, converged := SimulateGrid(top.Dim, top.CPUs, prm)
		rows[i].Profile = g.Profile()
		rows[i].Iters = iters
		rows[i].Converged = converged
	}
	return rows, nil
}
