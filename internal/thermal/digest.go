package thermal

import "repro/internal/digest"

// DigestFold folds the grid's power and temperature fields bit-exactly.
// The `next` buffer and maxDt are solver scratch, recomputed from
// power/temp on every Step, so they carry no independent state.
func (g *Grid) DigestFold(r *digest.Recorder) {
	for _, p := range g.power {
		r.FoldFloat(p)
	}
	for _, t := range g.temp {
		r.FoldFloat(t)
	}
}
