package thermal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestHeatMapGolden pins the ASCII heat-map rendering byte-for-byte: a
// fixed 2-layer grid with one stacked CPU column and one base-layer CPU,
// solved to steady state and rendered. Both thermal3d -map and nimsim
// -tmap draw through WriteHeatMap, so this is the rendering contract for
// both commands. Regenerate with: go test ./internal/thermal -run HeatMap -update
func TestHeatMapGolden(t *testing.T) {
	prm := DefaultParams()
	g := NewGrid(geom.Dim{Width: 8, Height: 8, Layers: 2}, prm)
	cpus := []geom.Coord{
		{X: 2, Y: 2, Layer: 0},
		{X: 5, Y: 5, Layer: 0},
		{X: 5, Y: 5, Layer: 1},
	}
	for _, c := range cpus {
		g.AddPower(c, prm.CPUPowerW)
	}
	if _, ok := g.Solve(20000, 1e-9); !ok {
		t.Fatal("solver did not converge")
	}

	var buf bytes.Buffer
	if err := WriteHeatMap(&buf, g, cpus); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "heatmap.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("heat map drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
