// Package thermal is the reproduction's stand-in for HS3d, the 3D thermal
// estimation tool the paper uses to validate CPU placement (Table 3). It
// models the chip as a steady-state thermal resistance grid — one cell per
// mesh node per layer — with lateral conduction within layers, vertical
// conduction between bonded wafers, and a heat sink attached below layer 0.
// The per-core power budget follows the paper's Niagara-derived estimate
// (8 W per core of a 79 W chip, the rest in L2 and peripheral circuits);
// cache banks are clock-gated and draw only background power.
//
// Calibration: the sink conductance reproduces the paper's 2D average
// temperature, and the vertical conductance its 2L/4L averages; these are
// single scalar fits, after which every *trend* in Table 3 (stacking vs.
// offsetting, the effect of the offset distance k, the layer-count
// penalty) emerges from the physics of the grid.
package thermal

import (
	"math"

	"repro/internal/geom"
)

// Params are the thermal model constants.
type Params struct {
	// AmbientC is the ambient (and heat-sink reference) temperature.
	AmbientC float64
	// CPUPowerW is dissipated by each processor cell (Section 3.3: 8 W).
	CPUPowerW float64
	// CellPowerW is the background power of every cell (clock-gated cache
	// bank plus its router share).
	CellPowerW float64
	// GSink is the per-cell conductance from layer 0 to the sink (W/K).
	GSink float64
	// GLat is the conductance between lateral neighbors on the base layer
	// (layer 0), which keeps its bulk substrate and heat spreader.
	GLat float64
	// GLatThin is the lateral conductance on bonded upper layers, which are
	// thinned to tens of microns (Section 2.3) and spread heat poorly —
	// the physical reason stacked CPUs create hotspots.
	GLatThin float64
	// GVert is the conductance between vertically adjacent cells (W/K).
	GVert float64

	// HeatCapacity is the per-cell heat capacitance (J/K) of base-layer
	// (layer 0) cells, used only by the transient Step; the steady state
	// Solve converges to is independent of it. The default is calibrated
	// for observability rather than the physical bulk-silicon value: it
	// sets the sink time constant tau = HeatCapacity/GSink to ~100 us
	// (~50k cycles at the nominal 500 MHz clock), so placement effects
	// express within a simulator measurement window — the same
	// time-compression idea as the compressed cache warm-up.
	HeatCapacity float64
	// HeatCapacityThin is the per-cell heat capacitance (J/K) of thinned
	// upper layers, which lose most of their substrate mass at bonding
	// (Section 2.3) and so heat up faster than the base layer.
	HeatCapacityThin float64
}

// DefaultParams returns the calibrated constants (see the package comment).
func DefaultParams() Params {
	return Params{
		AmbientC:   45.0,
		CPUPowerW:  8.0,
		CellPowerW: 0.0586, // (79 W - 8x8 W) / 256 cells
		GSink:      0.03444,
		GLat:       0.030,
		GLatThin:   0.012,
		GVert:      0.18,

		HeatCapacity:     3.5e-6, // tau_sink = C/GSink ~ 102 us
		HeatCapacityThin: 4.4e-7, // thinned wafer: ~1/8 of the base mass
	}
}

// Grid is the discretized chip.
type Grid struct {
	dim   geom.Dim
	prm   Params
	power []float64
	temp  []float64

	// Transient-step state (see Step): the Jacobi scratch buffer and the
	// cached explicit-Euler stability limit, both built lazily on the
	// first Step so steady-state-only users pay nothing.
	next  []float64
	maxDt float64
}

// NewGrid builds a grid with every cell at background power and ambient
// temperature.
func NewGrid(dim geom.Dim, prm Params) *Grid {
	g := &Grid{
		dim:   dim,
		prm:   prm,
		power: make([]float64, dim.Nodes()),
		temp:  make([]float64, dim.Nodes()),
	}
	for i := range g.power {
		g.power[i] = prm.CellPowerW
		g.temp[i] = prm.AmbientC
	}
	return g
}

// AddPower adds dissipation to one cell (e.g. a CPU's 8 W).
func (g *Grid) AddPower(c geom.Coord, watts float64) {
	g.power[g.dim.Index(c)] += watts
}

// TotalPower returns the chip's total dissipation.
func (g *Grid) TotalPower() float64 {
	sum := 0.0
	for _, p := range g.power {
		sum += p
	}
	return sum
}

// Solve runs Gauss–Seidel iterations until the largest per-cell update
// falls below tol (kelvin) or maxIter is reached. It returns the iteration
// count used and whether the tolerance was actually reached (false means
// the caller got the maxIter-th iterate, not a converged solution).
func (g *Grid) Solve(maxIter int, tol float64) (int, bool) {
	d := g.dim
	for iter := 1; iter <= maxIter; iter++ {
		maxDelta := 0.0
		for i := range g.temp {
			c := d.CoordOf(i)
			num := g.power[i]
			den := 0.0
			if c.Layer == 0 {
				num += g.prm.GSink * g.prm.AmbientC
				den += g.prm.GSink
			}
			glat := g.prm.GLat
			if c.Layer > 0 {
				glat = g.prm.GLatThin
			}
			for _, dir := range []geom.Direction{geom.North, geom.South, geom.East, geom.West} {
				n := geom.Step(c, dir)
				if d.Contains(n) {
					num += glat * g.temp[d.Index(n)]
					den += glat
				}
			}
			for _, dl := range []int{-1, 1} {
				n := geom.Coord{X: c.X, Y: c.Y, Layer: c.Layer + dl}
				if d.Contains(n) {
					num += g.prm.GVert * g.temp[d.Index(n)]
					den += g.prm.GVert
				}
			}
			t := num / den
			if delta := math.Abs(t - g.temp[i]); delta > maxDelta {
				maxDelta = delta
			}
			g.temp[i] = t
		}
		if maxDelta < tol {
			return iter, true
		}
	}
	return maxIter, false
}

// Temp returns the solved temperature of a cell.
func (g *Grid) Temp(c geom.Coord) float64 { return g.temp[g.dim.Index(c)] }

// Dim returns the grid's dimensions.
func (g *Grid) Dim() geom.Dim { return g.dim }

// Temps returns the per-cell temperatures, indexed like geom.Dim.Index.
// The slice aliases the grid's state; treat it as read-only.
func (g *Grid) Temps() []float64 { return g.temp }

// Profile is one row of Table 3.
type Profile struct {
	PeakC float64
	AvgC  float64
	MinC  float64
}

// Profile extracts the peak, average and minimum cell temperatures.
func (g *Grid) Profile() Profile {
	p := Profile{PeakC: g.temp[0], MinC: g.temp[0]}
	sum := 0.0
	for _, t := range g.temp {
		if t > p.PeakC {
			p.PeakC = t
		}
		if t < p.MinC {
			p.MinC = t
		}
		sum += t
	}
	p.AvgC = sum / float64(len(g.temp))
	return p
}

// LayerProfile extracts the peak, average and minimum cell temperatures of
// one device layer.
func (g *Grid) LayerProfile(layer int) Profile {
	d := g.dim
	base := layer * d.Width * d.Height
	n := d.Width * d.Height
	p := Profile{PeakC: g.temp[base], MinC: g.temp[base]}
	sum := 0.0
	for _, t := range g.temp[base : base+n] {
		if t > p.PeakC {
			p.PeakC = t
		}
		if t < p.MinC {
			p.MinC = t
		}
		sum += t
	}
	p.AvgC = sum / float64(n)
	return p
}

// PeakCell returns the hottest cell and its temperature.
func (g *Grid) PeakCell() (geom.Coord, float64) {
	hot, max := 0, g.temp[0]
	for i, t := range g.temp {
		if t > max {
			hot, max = i, t
		}
	}
	return g.dim.CoordOf(hot), max
}

// SimulateGrid builds the grid for a chip with the given dimensions and
// CPU placement and solves it to steady state, returning the grid along
// with the solver's iteration count and convergence flag.
func SimulateGrid(dim geom.Dim, cpus []geom.Coord, prm Params) (*Grid, int, bool) {
	g := NewGrid(dim, prm)
	for _, c := range cpus {
		g.AddPower(c, prm.CPUPowerW)
	}
	iters, converged := g.Solve(20000, 1e-7)
	return g, iters, converged
}

// Simulate builds the grid for a chip with the given dimensions and CPU
// placement, solves it, and returns the thermal profile.
func Simulate(dim geom.Dim, cpus []geom.Coord, prm Params) Profile {
	g, _, _ := SimulateGrid(dim, cpus, prm)
	return g.Profile()
}
