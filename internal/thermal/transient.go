package thermal

import (
	"math"

	"repro/internal/geom"
)

// Transient RC thermal model. Each cell is an RC node: its heat capacitance
// C integrates the imbalance between the power dissipated in the cell and
// the heat conducted away through the same conductance network the
// steady-state Solve uses —
//
//	C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) - [layer 0] GSink (T_i - Tamb)
//
// The fixed point of this ODE (dT/dt = 0) is exactly Solve's Gauss–Seidel
// equation, so stepping to quiescence reproduces the steady-state solution
// — TestStepConvergesToSolve pins this on every Table 3 configuration.

// capOf returns the effective heat capacitance of a layer, falling back to
// the calibrated defaults when the Params were built without transient
// constants (pre-existing callers construct Params literally).
func (g *Grid) capOf(layer int) float64 {
	c := g.prm.HeatCapacity
	if layer > 0 {
		if t := g.prm.HeatCapacityThin; t > 0 {
			return t
		}
		return DefaultParams().HeatCapacityThin
	}
	if c > 0 {
		return c
	}
	return DefaultParams().HeatCapacity
}

// stableDt computes the explicit-Euler stability limit: half the smallest
// per-cell time constant C_i / (sum of conductances at cell i).
func (g *Grid) stableDt() float64 {
	d := g.dim
	min := math.Inf(1)
	for i := range g.temp {
		c := d.CoordOf(i)
		den := 0.0
		if c.Layer == 0 {
			den += g.prm.GSink
		}
		glat := g.prm.GLat
		if c.Layer > 0 {
			glat = g.prm.GLatThin
		}
		for _, dir := range []geom.Direction{geom.North, geom.South, geom.East, geom.West} {
			if d.Contains(geom.Step(c, dir)) {
				den += glat
			}
		}
		for _, dl := range []int{-1, 1} {
			if d.Contains(geom.Coord{X: c.X, Y: c.Y, Layer: c.Layer + dl}) {
				den += g.prm.GVert
			}
		}
		if den <= 0 {
			continue // isolated cell: any dt is stable for it
		}
		if tau := g.capOf(c.Layer) / den; tau < min {
			min = tau
		}
	}
	if math.IsInf(min, 1) {
		return 1 // single isolated cell; dt is irrelevant
	}
	return 0.5 * min
}

// Step advances the transient model by dt seconds under the given per-cell
// power map (watts, indexed like geom.Dim.Index; nil uses the grid's own
// static power). It sub-steps internally at the explicit-Euler stability
// limit, so any dt is safe; after the first call it allocates nothing.
func (g *Grid) Step(dt float64, powerW []float64) {
	if dt <= 0 {
		return
	}
	if powerW == nil {
		powerW = g.power
	}
	if g.next == nil {
		g.next = make([]float64, len(g.temp))
		g.maxDt = g.stableDt()
	}
	steps := 1
	if dt > g.maxDt {
		steps = int(math.Ceil(dt / g.maxDt))
	}
	h := dt / float64(steps)
	d := g.dim
	for s := 0; s < steps; s++ {
		for i := range g.temp {
			c := d.CoordOf(i)
			t := g.temp[i]
			flux := powerW[i]
			if c.Layer == 0 {
				flux -= g.prm.GSink * (t - g.prm.AmbientC)
			}
			glat := g.prm.GLat
			if c.Layer > 0 {
				glat = g.prm.GLatThin
			}
			for _, dir := range []geom.Direction{geom.North, geom.South, geom.East, geom.West} {
				n := geom.Step(c, dir)
				if d.Contains(n) {
					flux += glat * (g.temp[d.Index(n)] - t)
				}
			}
			for _, dl := range []int{-1, 1} {
				n := geom.Coord{X: c.X, Y: c.Y, Layer: c.Layer + dl}
				if d.Contains(n) {
					flux += g.prm.GVert * (g.temp[d.Index(n)] - t)
				}
			}
			g.next[i] = t + h*flux/g.capOf(c.Layer)
		}
		g.temp, g.next = g.next, g.temp
	}
}
