package thermal

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGridConservation(t *testing.T) {
	// In steady state, the heat entering the sink equals the total power:
	// sum over layer-0 cells of GSink*(T - Tamb) == TotalPower.
	prm := DefaultParams()
	dim := geom.Dim{Width: 8, Height: 8, Layers: 2}
	g := NewGrid(dim, prm)
	g.AddPower(geom.Coord{X: 3, Y: 3, Layer: 1}, prm.CPUPowerW)
	g.Solve(50000, 1e-9)

	sunk := 0.0
	for y := 0; y < dim.Height; y++ {
		for x := 0; x < dim.Width; x++ {
			sunk += prm.GSink * (g.Temp(geom.Coord{X: x, Y: y}) - prm.AmbientC)
		}
	}
	if math.Abs(sunk-g.TotalPower()) > 0.01*g.TotalPower() {
		t.Errorf("heat into sink %.3f W, total power %.3f W", sunk, g.TotalPower())
	}
}

func TestHotspotAboveCPU(t *testing.T) {
	prm := DefaultParams()
	dim := geom.Dim{Width: 8, Height: 8, Layers: 1}
	g := NewGrid(dim, prm)
	cpu := geom.Coord{X: 2, Y: 5}
	g.AddPower(cpu, prm.CPUPowerW)
	g.Solve(20000, 1e-8)
	peak := g.Profile().PeakC
	if g.Temp(cpu) != peak {
		t.Errorf("peak %.2f not at the CPU cell (%.2f)", peak, g.Temp(cpu))
	}
	// Temperature decays with distance from the hotspot.
	if g.Temp(geom.Coord{X: 3, Y: 5}) >= g.Temp(cpu) {
		t.Error("neighbor not cooler than hotspot")
	}
	if g.Temp(geom.Coord{X: 7, Y: 0}) >= g.Temp(geom.Coord{X: 3, Y: 5}) {
		t.Error("far corner not cooler than hotspot neighbor")
	}
}

func TestUpperLayerRunsHotter(t *testing.T) {
	// Same power on layer 1 yields a hotter cell than on layer 0: bonded
	// layers sit behind the inter-wafer resistance.
	prm := DefaultParams()
	dim := geom.Dim{Width: 8, Height: 8, Layers: 2}
	g0 := NewGrid(dim, prm)
	g0.AddPower(geom.Coord{X: 4, Y: 4, Layer: 0}, prm.CPUPowerW)
	g0.Solve(20000, 1e-8)
	g1 := NewGrid(dim, prm)
	g1.AddPower(geom.Coord{X: 4, Y: 4, Layer: 1}, prm.CPUPowerW)
	g1.Solve(20000, 1e-8)
	if g1.Profile().PeakC <= g0.Profile().PeakC {
		t.Errorf("layer-1 peak %.2f not above layer-0 peak %.2f",
			g1.Profile().PeakC, g0.Profile().PeakC)
	}
}

func TestStackingCreatesHotspot(t *testing.T) {
	prm := DefaultParams()
	dim := geom.Dim{Width: 8, Height: 8, Layers: 2}

	stacked := Simulate(dim, []geom.Coord{
		{X: 4, Y: 4, Layer: 0}, {X: 4, Y: 4, Layer: 1},
	}, prm)
	offset := Simulate(dim, []geom.Coord{
		{X: 2, Y: 2, Layer: 0}, {X: 6, Y: 6, Layer: 1},
	}, prm)

	if stacked.PeakC <= offset.PeakC {
		t.Errorf("stacked peak %.2f not above offset peak %.2f", stacked.PeakC, offset.PeakC)
	}
	// Same total power, same footprint: averages nearly equal.
	if math.Abs(stacked.AvgC-offset.AvgC) > 0.5 {
		t.Errorf("averages diverge: %.2f vs %.2f", stacked.AvgC, offset.AvgC)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	byName := map[string]Profile{}
	for _, r := range rows {
		byName[r.Name] = r.Profile
	}
	p := func(name string) Profile {
		prof, ok := byName[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		return prof
	}

	// The paper's qualitative findings, in order of the text:
	// 1. Moving 2D -> 3D raises the average temperature.
	if p("3D-2L, optimal offset").AvgC <= p("2D, maximal offset").AvgC {
		t.Error("3D average not above 2D average")
	}
	if p("3D-4L, optimal offset").AvgC <= p("3D-2L, optimal offset").AvgC {
		t.Error("4L average not above 2L average")
	}
	// 2. Offsetting in all three dimensions gives the best 3D peak.
	if p("3D-2L, optimal offset").PeakC >= p("3D-2L, offset k=1").PeakC {
		t.Error("optimal offset not cooler than k=1")
	}
	// 3. Increasing k reduces peak temperature.
	if p("3D-2L, offset k=2").PeakC >= p("3D-2L, offset k=1").PeakC {
		t.Error("k=2 not cooler than k=1")
	}
	// 4. Stacking is detrimental in both 2L and 4L.
	if p("3D-2L, CPU stacking").PeakC <= p("3D-2L, offset k=1").PeakC {
		t.Error("2L stacking not hotter than any offsetting")
	}
	if p("3D-4L, CPU stacking").PeakC <= p("3D-4L, optimal offset").PeakC {
		t.Error("4L stacking not hotter than 4L offsetting")
	}
	// 5. Peak ordering across layer counts with stacking is dramatic.
	if p("3D-4L, CPU stacking").PeakC <= p("3D-2L, CPU stacking").PeakC {
		t.Error("4L stacking not hotter than 2L stacking")
	}

	// Quantitative anchors (calibrated rows should track the paper).
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"2D peak", p("2D, maximal offset").PeakC, 111.05, 6},
		{"2D avg", p("2D, maximal offset").AvgC, 53.96, 1},
		{"2L avg", p("3D-2L, optimal offset").AvgC, 63.94, 1},
		{"4L avg", p("3D-4L, optimal offset").AvgC, 86.62, 1.5},
		{"2L stacking peak", p("3D-2L, CPU stacking").PeakC, 173.38, 12},
		{"4L stacking peak", p("3D-4L, CPU stacking").PeakC, 287.12, 20},
		{"3D-2L optimal peak", p("3D-2L, optimal offset").PeakC, 119.05, 12},
		{"k=1 peak", p("3D-2L, offset k=1").PeakC, 135.24, 20},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.2f, want %.2f +/- %.1f", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestSolverConverges(t *testing.T) {
	prm := DefaultParams()
	g := NewGrid(geom.Dim{Width: 4, Height: 4, Layers: 1}, prm)
	iters, converged := g.Solve(100000, 1e-9)
	if !converged {
		t.Errorf("solver did not converge in %d iterations", iters)
	}
	// A uniform grid settles near ambient + power/sink conductance.
	want := prm.AmbientC + prm.CellPowerW/prm.GSink
	got := g.Profile().AvgC
	if math.Abs(got-want) > 0.1 {
		t.Errorf("uniform grid avg %.3f, want %.3f", got, want)
	}
}

func TestTotalPowerIndependentOfPlacement(t *testing.T) {
	prm := DefaultParams()
	dim := geom.Dim{Width: 8, Height: 8, Layers: 2}
	a := NewGrid(dim, prm)
	a.AddPower(geom.Coord{X: 1, Y: 1}, 8)
	b := NewGrid(dim, prm)
	b.AddPower(geom.Coord{X: 7, Y: 7, Layer: 1}, 8)
	if math.Abs(a.TotalPower()-b.TotalPower()) > 1e-9 {
		t.Error("placement changed total power")
	}
}
