package thermal

import (
	"fmt"
	"io"

	"repro/internal/geom"
)

// heatShades maps normalized temperature to ASCII density, coolest first.
var heatShades = []byte(" .:-=+*#%@")

// WriteHeatMap renders the grid's current per-layer temperature fields as
// ASCII heat maps: one character per cell, shaded from the grid's coolest
// to hottest cell, with cells listed in cpus printed as 'C'. Both
// cmd/thermal3d (steady-state maps) and nimsim -tmap (end-of-window
// transient maps) render through this function, so the format is pinned by
// one golden test.
func WriteHeatMap(w io.Writer, g *Grid, cpus []geom.Coord) error {
	p := g.Profile()
	span := p.PeakC - p.MinC
	if span <= 0 {
		span = 1
	}
	cpuAt := map[geom.Coord]bool{}
	for _, c := range cpus {
		cpuAt[c] = true
	}
	d := g.Dim()
	for l := 0; l < d.Layers; l++ {
		if _, err := fmt.Fprintf(w, "\nlayer %d (C = CPU):\n", l); err != nil {
			return err
		}
		for y := 0; y < d.Height; y++ {
			line := make([]byte, d.Width)
			for x := 0; x < d.Width; x++ {
				c := geom.Coord{X: x, Y: y, Layer: l}
				if cpuAt[c] {
					line[x] = 'C'
					continue
				}
				idx := int((g.Temp(c) - p.MinC) / span * float64(len(heatShades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(heatShades) {
					idx = len(heatShades) - 1
				}
				line[x] = heatShades[idx]
			}
			if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
				return err
			}
		}
	}
	return nil
}
