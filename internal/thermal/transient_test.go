package thermal

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/geom"
)

// TestStepConvergesToSolve is the transient model's calibration anchor:
// stepping the RC network to quiescence under constant power must land on
// the same per-cell temperatures as the steady-state Gauss–Seidel Solve,
// for every configuration of the paper's Table 3. The two share a fixed
// point by construction (dT/dt = 0 is exactly Solve's balance equation);
// this pins that the discretization and sub-stepping preserve it.
func TestStepConvergesToSolve(t *testing.T) {
	prm := DefaultParams()
	rows, cfgs := Table3Configs()
	for i, cfg := range cfgs {
		top, err := config.NewTopology(cfg)
		if err != nil {
			t.Fatalf("%s: %v", rows[i].Name, err)
		}
		ref, _, converged := SimulateGrid(top.Dim, top.CPUs, prm)
		if !converged {
			t.Fatalf("%s: steady-state solver did not converge", rows[i].Name)
		}

		g := NewGrid(top.Dim, prm)
		for _, c := range top.CPUs {
			g.AddPower(c, prm.CPUPowerW)
		}
		// Step in chunks of ~ the sink time constant until quiescent.
		dt := prm.HeatCapacity / prm.GSink
		var prevPeak float64
		settled := false
		for step := 0; step < 4000; step++ {
			g.Step(dt, nil)
			peak := g.Profile().PeakC
			if step > 0 && math.Abs(peak-prevPeak) < 1e-10 {
				settled = true
				break
			}
			prevPeak = peak
		}
		if !settled {
			t.Fatalf("%s: transient did not settle", rows[i].Name)
		}

		worst := 0.0
		for j, tc := range g.Temps() {
			if d := math.Abs(tc - ref.Temps()[j]); d > worst {
				worst = d
			}
		}
		if worst > 0.05 {
			t.Errorf("%s: transient steady state deviates from Solve by %.4f C", rows[i].Name, worst)
		}
	}
}

// TestStepEnergyDirection checks the basic transient physics: starting at
// ambient, temperatures rise monotonically toward the steady state and a
// shorter exposure stays cooler than a longer one.
func TestStepEnergyDirection(t *testing.T) {
	prm := DefaultParams()
	dim := geom.Dim{Width: 4, Height: 4, Layers: 2}
	g := NewGrid(dim, prm)
	g.AddPower(geom.Coord{X: 1, Y: 1, Layer: 1}, 4)

	g.Step(1e-5, nil)
	early := g.Profile().PeakC
	if early <= prm.AmbientC {
		t.Fatalf("peak %.3f C did not rise above ambient %.1f C", early, prm.AmbientC)
	}
	g.Step(1e-3, nil)
	late := g.Profile().PeakC
	if late <= early {
		t.Fatalf("peak fell from %.3f to %.3f C under constant power", early, late)
	}

	ref := NewGrid(dim, prm)
	ref.AddPower(geom.Coord{X: 1, Y: 1, Layer: 1}, 4)
	if _, ok := ref.Solve(20000, 1e-9); !ok {
		t.Fatal("reference solve did not converge")
	}
	if late > ref.Profile().PeakC+1e-6 {
		t.Fatalf("transient peak %.3f C overshot steady state %.3f C", late, ref.Profile().PeakC)
	}
}

// TestStepSubstepInvariance: one long Step must land where many short
// Steps of the same total duration land (the sub-stepping is internal, so
// callers' choice of dt granularity cannot change the trajectory beyond
// integration error).
func TestStepSubstepInvariance(t *testing.T) {
	prm := DefaultParams()
	dim := geom.Dim{Width: 4, Height: 4, Layers: 2}
	mk := func() *Grid {
		g := NewGrid(dim, prm)
		g.AddPower(geom.Coord{X: 2, Y: 2, Layer: 1}, 8)
		return g
	}
	a, b := mk(), mk()
	a.Step(2e-4, nil)
	for i := 0; i < 20; i++ {
		b.Step(1e-5, nil)
	}
	for i := range a.Temps() {
		if d := math.Abs(a.Temps()[i] - b.Temps()[i]); d > 5e-3 {
			t.Fatalf("cell %d: one 200us step %.6f C vs 20x10us steps %.6f C", i, a.Temps()[i], b.Temps()[i])
		}
	}
}

// TestStepZeroAlloc pins the telemetry hot path: after the first call,
// Step allocates nothing.
func TestStepZeroAlloc(t *testing.T) {
	prm := DefaultParams()
	g := NewGrid(geom.Dim{Width: 8, Height: 8, Layers: 2}, prm)
	g.Step(1e-6, nil) // builds the scratch buffer
	allocs := testing.AllocsPerRun(100, func() { g.Step(2e-6, nil) })
	if allocs > 0 {
		t.Fatalf("Step allocates %.1f times per call in steady state", allocs)
	}
}
