package trace

import (
	"math"
	"testing"

	"repro/internal/cache"
)

func TestProfilesCoverTable5(t *testing.T) {
	want := map[string]float64{
		"ammp": 24.508715, "apsi": 27.013447, "art": 25.638435,
		"equake": 27.502906, "fma3d": 12.599496, "galgel": 38.181613,
		"mgrid": 204.815737, "swim": 164.762040, "wupwise": 141.499738,
	}
	ps := Profiles(8)
	if len(ps) != 9 {
		t.Fatalf("got %d profiles, want 9", len(ps))
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", p.Name)
			continue
		}
		if math.Abs(p.L2TransactionsM-w) > 1e-9 {
			t.Errorf("%s: transactions %f, want %f", p.Name, p.L2TransactionsM, w)
		}
		if p.L1MissRate <= 0 || p.L1MissRate >= 0.1 {
			t.Errorf("%s: implausible L1 miss rate %f", p.Name, p.L1MissRate)
		}
		if p.MemRatio <= 0 || p.WriteFrac <= 0 || p.PrivateLines <= 0 {
			t.Errorf("%s: incomplete profile %+v", p.Name, p)
		}
	}
}

func TestHighTrafficBenchmarksHaveHigherMissRates(t *testing.T) {
	// mgrid, swim and wupwise must exhibit markedly higher L1 miss rates
	// than the rest — the paper's stated reason for their L2 access counts.
	ps := Profiles(8)
	rates := map[string]float64{}
	for _, p := range ps {
		rates[p.Name] = p.L1MissRate
	}
	high := []string{"mgrid", "swim", "wupwise"}
	low := []string{"ammp", "apsi", "art", "equake", "fma3d", "galgel"}
	for _, h := range high {
		for _, l := range low {
			if rates[h] <= 2*rates[l] {
				t.Errorf("%s (%.4f) not well above %s (%.4f)", h, rates[h], l, rates[l])
			}
		}
	}
}

func TestDeriveL1MissRate(t *testing.T) {
	// 204.8M transactions / (2e9 cycles x 8 CPUs x 0.3 x 0.5 IPC) ~ 8.53%.
	got := DeriveL1MissRate(204.815737, 8, 0.3)
	if math.Abs(got-0.08534) > 0.001 {
		t.Errorf("mgrid miss rate = %f", got)
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("swim", 8)
	if !ok || p.Name != "swim" {
		t.Fatalf("ProfileByName failed: %v %v", p, ok)
	}
	if _, ok := ProfileByName("nonexistent", 8); ok {
		t.Fatal("found nonexistent benchmark")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("mgrid", 8)
	a := NewGenerator(p, 3, 7)
	b := NewGenerator(p, 3, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverge at ref %d", i)
		}
	}
	c := NewGenerator(p, 3, 8)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorCPUSeparation(t *testing.T) {
	// Regions partition the address space by id: no private line of one
	// CPU can belong to another CPU's regions, and shared/code lines are
	// common to all.
	p, _ := ProfileByName("swim", 8)
	gens := make([]*Generator, 4)
	seen := make([]map[uint64]bool, 4)
	for i := range gens {
		gens[i] = NewGenerator(p, i, 1)
		seen[i] = map[uint64]bool{}
	}
	shared := p.SharedRegion()
	code := p.CodeRegion()
	for n := 0; n < 20000; n++ {
		for i, g := range gens {
			r := g.Next()
			if shared.Contains(r.Addr) || code.Contains(r.Addr) {
				continue
			}
			if !p.HotRegion(i).Contains(r.Addr) && !p.StreamRegion(i).Contains(r.Addr) {
				t.Fatalf("CPU %d emitted %#x outside its regions", i, uint64(r.Addr))
			}
			seen[i][uint64(r.Addr)] = true
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			for a := range seen[i] {
				if seen[j][a] {
					t.Fatalf("CPUs %d and %d both touch private line %#x", i, j, a)
				}
			}
		}
	}
}

func TestGeneratorMissRateCalibration(t *testing.T) {
	// The fraction of data refs outside the hot set must track L1MissRate.
	for _, name := range []string{"ammp", "mgrid"} {
		p, _ := ProfileByName(name, 8)
		g := NewGenerator(p, 0, 99)
		hot := p.HotRegion(0)
		const n = 300000
		cold := 0
		for i := 0; i < n; i++ {
			if !hot.Contains(g.Next().Addr) {
				cold++
			}
		}
		got := float64(cold) / n
		if math.Abs(got-p.L1MissRate) > p.L1MissRate*0.15 {
			t.Errorf("%s: cold fraction %f, want ~%f", name, got, p.L1MissRate)
		}
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	p, _ := ProfileByName("art", 8)
	g := NewGenerator(p, 0, 5)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if math.Abs(got-p.WriteFrac) > 0.02 {
		t.Errorf("write fraction %f, want ~%f", got, p.WriteFrac)
	}
}

func TestGeneratorGapMean(t *testing.T) {
	p, _ := ProfileByName("apsi", 8)
	g := NewGenerator(p, 0, 11)
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += g.Next().Gap
	}
	mean := float64(sum) / n
	want := (1 - p.MemRatio) / p.MemRatio
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("gap mean %f, want ~%f", mean, want)
	}
}

func TestGeneratorSharedFraction(t *testing.T) {
	p, _ := ProfileByName("equake", 8)
	g := NewGenerator(p, 0, 17)
	sharedRegion := p.SharedRegion()
	hot := p.HotRegion(0)
	shared, misses := 0, 0
	for i := 0; i < 500000; i++ {
		r := g.Next()
		switch {
		case sharedRegion.Contains(r.Addr):
			shared++
			misses++
		case !hot.Contains(r.Addr):
			misses++
		}
	}
	got := float64(shared) / float64(misses)
	if math.Abs(got-p.SharedFrac) > 0.05 {
		t.Errorf("shared fraction of misses %f, want ~%f", got, p.SharedFrac)
	}
}

func TestRNGDeterminismAndSpread(t *testing.T) {
	r := newRNG(123)
	r2 := newRNG(123)
	for i := 0; i < 100; i++ {
		if r.next() != r2.next() {
			t.Fatal("rng not deterministic")
		}
	}
	// Zero seed must not wedge the generator.
	z := newRNG(0)
	if z.next() == 0 && z.next() == 0 {
		t.Error("zero seed produced zero stream")
	}
	// intn stays in range.
	for i := 0; i < 1000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	// float stays in [0,1).
	for i := 0; i < 1000; i++ {
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %f", f)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("intn(0) must panic")
		}
	}()
	newRNG(1).intn(0)
}

// lines converts an int to a line-address offset for test readability.
func lines(n int) cache.LineAddr { return cache.LineAddr(n) }

func TestCodeStream(t *testing.T) {
	p, _ := ProfileByName("fma3d", 8)
	g := NewGenerator(p, 0, 3)
	code := p.CodeRegion()
	if code.Len() <= p.CodeLines || p.CodeLines == 0 {
		t.Fatalf("code region n=%d must cover hot (%d) plus cold lines", code.Len(), p.CodeLines)
	}
	fetches := 0
	seen := map[cache.LineAddr]bool{}
	const refs = 200000
	for i := 0; i < refs; i++ {
		r := g.Next()
		if !r.HasCode {
			continue
		}
		fetches++
		if !code.Contains(r.Code) {
			t.Fatalf("code line %#x outside region", uint64(r.Code))
		}
		seen[r.Code] = true
	}
	if fetches == 0 {
		t.Fatal("no code-line crossings")
	}
	// Jumps plus fall-through must reach a broad part of the hot region.
	if len(seen) < p.CodeLines/4 {
		t.Errorf("only %d of %d hot code lines touched", len(seen), p.CodeLines)
	}
	// Roughly one crossing per instrsPerCodeLine instructions, plus jumps:
	// the crossing rate per reference should be well under 1.
	rate := float64(fetches) / refs
	if rate < 0.1 || rate > 0.5 {
		t.Errorf("code crossing rate %.3f implausible", rate)
	}
}

func TestCodeRegionSharedAcrossCPUs(t *testing.T) {
	p, _ := ProfileByName("art", 8)
	code := p.CodeRegion()
	line := func(g *Generator) cache.LineAddr {
		for {
			if r := g.Next(); r.HasCode {
				return r.Code
			}
		}
	}
	// Both CPUs fetch from the same region (same binary).
	if !code.Contains(line(NewGenerator(p, 0, 1))) {
		t.Fatal("cpu0 outside code region")
	}
	if !code.Contains(line(NewGenerator(p, 3, 1))) {
		t.Fatal("cpu3 outside code region")
	}
}
