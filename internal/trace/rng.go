package trace

// rng is a xorshift64* PRNG: deterministic, seedable, allocation-free. All
// stochastic behavior in the workload generator flows through it so that
// every simulation is exactly reproducible from its seed.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant; zero state is absorbing
	}
	return &rng{state: seed}
}

// next returns the next 64-bit pseudo-random value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// intn returns a pseudo-random int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("trace: intn with n <= 0")
	}
	return int(r.next() % uint64(n))
}

// float returns a pseudo-random float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool { return r.float() < p }
