package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

const sampleTrace = `
# demo trace
R 1000
W 1001 5
F 2000
R 1002
R 0x1003
`

func TestParseTrace(t *testing.T) {
	fs, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 4 {
		t.Fatalf("Len = %d, want 4 data refs", fs.Len())
	}
	r := fs.Next()
	if r.Addr != 0x1000 || r.Write || r.Gap != 2 {
		t.Errorf("ref 0 = %+v", r)
	}
	r = fs.Next()
	if r.Addr != 0x1001 || !r.Write || r.Gap != 5 {
		t.Errorf("ref 1 = %+v", r)
	}
	// The F line attaches to the following reference.
	r = fs.Next()
	if !r.HasCode || r.Code != 0x2000 || r.Addr != 0x1002 {
		t.Errorf("ref 2 = %+v", r)
	}
	r = fs.Next()
	if r.HasCode || r.Addr != 0x1003 {
		t.Errorf("ref 3 = %+v", r)
	}
}

func TestFileStreamWraps(t *testing.T) {
	fs, err := ParseTrace(strings.NewReader("R 10\nR 20\n"))
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := fs.Next(), fs.Next(), fs.Next()
	if a.Addr != 0x10 || b.Addr != 0x20 || c.Addr != 0x10 {
		t.Errorf("wrap sequence %x %x %x", a.Addr, b.Addr, c.Addr)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"R\n",            // missing address
		"R zzz\n",        // bad address
		"R 10 notanum\n", // bad gap
		"X 10\n",         // unknown op
		"# only comments\n",
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted %q", i, c)
		}
	}
}

func TestFootprint(t *testing.T) {
	fs, err := ParseTrace(strings.NewReader("R 10\nW 20\nR 10\nR 30\n"))
	if err != nil {
		t.Fatal(err)
	}
	fp := fs.Footprint()
	if len(fp) != 3 {
		t.Fatalf("footprint = %v", fp)
	}
	want := map[cache.LineAddr]bool{0x10: true, 0x20: true, 0x30: true}
	for _, a := range fp {
		if !want[a] {
			t.Errorf("unexpected footprint line %#x", uint64(a))
		}
	}
}

func TestInstanceSeparatesNamespaces(t *testing.T) {
	p, _ := ProfileByName("art", 8)
	q := p
	q.Instance = 1
	if p.SharedRegion().Line(0) == q.SharedRegion().Line(0) {
		t.Error("instances share shared-region addresses")
	}
	if p.CodeRegion().Line(0) == q.CodeRegion().Line(0) {
		t.Error("instances share code-region addresses")
	}
	// Contains respects namespaces.
	if p.SharedRegion().Contains(q.SharedRegion().Line(3)) {
		t.Error("instance 0 region claims instance 1 addresses")
	}
}

func TestRegionLineInjective(t *testing.T) {
	// Property: distinct indices of one region map to distinct addresses
	// (the frame scatter is a bijection), and hashed regions spread pages
	// over every home cluster.
	f := func(id uint8, seqBit bool) bool {
		r := Region{id: uint64(id), n: 1 << 15, seq: seqBit}
		seen := map[cache.LineAddr]bool{}
		homes := map[uint64]bool{}
		for j := 0; j < r.n; j += 17 { // sample
			a := r.Line(j)
			if seen[a] {
				return false
			}
			seen[a] = true
			homes[(uint64(a)>>10)&15] = true
		}
		if !seqBit && len(homes) != 16 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	// Property: regions with different ids never overlap.
	a := Region{id: 3, n: 4096}
	b := Region{id: 4, n: 4096, seq: true}
	seen := map[cache.LineAddr]bool{}
	for j := 0; j < a.n; j++ {
		seen[a.Line(j)] = true
	}
	for j := 0; j < b.n; j++ {
		if seen[b.Line(j)] {
			t.Fatalf("regions 3 and 4 overlap at index %d", j)
		}
	}
}

func TestParseTraceRejectsDanglingFetch(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("R 10\nF 20\n")); err == nil {
		t.Error("dangling F accepted")
	}
}
