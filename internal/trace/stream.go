package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
)

// Stream supplies one core's memory references. Generator is the built-in
// synthetic implementation; FileStream replays externally captured traces,
// so the simulator can be driven by real workloads (e.g. Pin or DynamoRIO
// address traces) instead of the SPEC OMP models.
type Stream interface {
	// Next returns the next reference. Streams are infinite: replayed
	// traces wrap around at the end.
	Next() Ref
}

// Generator implements Stream.
var _ Stream = (*Generator)(nil)

// FileStream replays a parsed reference trace, wrapping at the end.
type FileStream struct {
	refs []Ref
	pos  int
}

var _ Stream = (*FileStream)(nil)

// ParseTrace reads a text trace: one reference per line,
//
//	R <hex line address>
//	W <hex line address>
//	F <hex line address>   (instruction fetch)
//	# comment
//
// An optional third field gives the non-memory instruction gap before the
// reference (default 2). Instruction-fetch lines attach to the following
// data reference.
func ParseTrace(r io.Reader) (*FileStream, error) {
	s := bufio.NewScanner(r)
	var refs []Ref
	var pendingCode cache.LineAddr
	hasPending := false
	lineNo := 0
	for s.Scan() {
		lineNo++
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W|F <hexaddr> [gap]', got %q", lineNo, line)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		gap := 2
		if len(fields) >= 3 {
			gap, err = strconv.Atoi(fields[2])
			if err != nil || gap < 0 {
				return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[2])
			}
		}
		op := strings.ToUpper(fields[0])
		switch op {
		case "F":
			pendingCode = cache.LineAddr(addr)
			hasPending = true
		case "R", "W":
			ref := Ref{Addr: cache.LineAddr(addr), Write: op == "W", Gap: gap}
			if hasPending {
				ref.HasCode = true
				ref.Code = pendingCode
				hasPending = false
			}
			refs = append(refs, ref)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, op)
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if hasPending {
		return nil, fmt.Errorf("trace: dangling instruction fetch at end of trace (no following data reference)")
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("trace: no references")
	}
	return &FileStream{refs: refs}, nil
}

// Len returns the number of references before the stream wraps.
func (f *FileStream) Len() int { return len(f.refs) }

// Next returns the next reference, wrapping at the end of the trace.
func (f *FileStream) Next() Ref {
	r := f.refs[f.pos]
	f.pos++
	if f.pos == len(f.refs) {
		f.pos = 0
	}
	return r
}

// Footprint returns the distinct data lines the trace touches, for sizing
// warm-up expectations.
func (f *FileStream) Footprint() []cache.LineAddr {
	seen := make(map[cache.LineAddr]bool)
	var out []cache.LineAddr
	for _, r := range f.refs {
		if !seen[r.Addr] {
			seen[r.Addr] = true
			out = append(out, r.Addr)
		}
	}
	return out
}
