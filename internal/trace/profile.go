// Package trace generates the synthetic memory-reference streams that stand
// in for the paper's Simics/SPEC OMP full-system workloads (see DESIGN.md,
// substitutions). Each of the nine benchmarks is characterized by the three
// axes that drive the paper's results: L2 access intensity (from Table 5's
// transaction counts), locality (hot-set vs streaming mix, which sets the
// L1 miss rate), and sharing degree (which determines how much of the L2
// working set is contended between cores).
package trace

import "repro/internal/cache"

// Profile characterizes one benchmark's memory behavior.
type Profile struct {
	// Name is the SPEC OMP benchmark name.
	Name string
	// FastForwardMCycles is Table 5's initialization fast-forward, recorded
	// for documentation (the synthetic generator has no init phase).
	FastForwardMCycles int
	// L2TransactionsM is Table 5's L2 transaction count (millions within
	// the 2-billion-cycle sampling window).
	L2TransactionsM float64

	// MemRatio is the fraction of instructions that reference memory.
	MemRatio float64
	// IFetchShare is the fraction of the benchmark's Table 5 L2
	// transactions that are instruction fetches rather than data accesses.
	// Loop-heavy solvers fetch almost no instructions from L2; fma3d's
	// huge code footprint makes it the instruction-bound outlier.
	IFetchShare float64
	// IFetchColdFrac is the derived per-reference probability of an
	// instruction fetch that misses the L1I (a cold code line), sized so
	// ifetch L2 traffic is IFetchShare of the Table 5 total.
	IFetchColdFrac float64
	// L1MissRate is the target fraction of references that miss the L1 and
	// reach the L2. Derived from Table 5 (see DeriveL1MissRate).
	L1MissRate float64
	// SharedFrac is the fraction of L1-missing references that target the
	// globally shared region rather than the core's private stream.
	SharedFrac float64
	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64

	// PrivateLines is the per-core streaming region size in cache lines;
	// SharedLines sizes the shared region; HotLines sizes the L1-resident
	// hot set.
	PrivateLines int
	SharedLines  int
	HotLines     int

	// CodeLines sizes the benchmark's *hot* instruction footprint in cache
	// lines — the loop nests and hot call chains that dominate execution,
	// not the full binary. SPEC FP codes are loop-heavy, so these fit the
	// 64 KB L1I (1024 lines); the L1I-missing fetch traffic of large-code
	// benchmarks (fma3d above all) is calibrated separately through
	// IFetchShare and the cold code tail. The code region is shared by
	// every core (same binary), read-only, and fetched through the L1
	// instruction cache; Table 5's L2 transaction counts include these
	// instruction fetches.
	CodeLines int

	// Instance is the region-namespace of this profile's address space.
	// A parallel run leaves it zero for every core (one program, one
	// shared region). Multiprogrammed runs give each program a distinct
	// instance so their "shared" and code regions do not alias.
	Instance int

	// LocalizedFrac is the steady-state fraction of a core's private lines
	// that dynamic migration has pulled into its vicinity on a *2D* chip by
	// the end of the paper's 500M-cycle warm-up. Gradual, lazy migration
	// localizes at most about half of a working set even for
	// small-footprint benchmarks (Beckmann & Wood's own CMP finding);
	// streaming benchmarks whose sets exceed a cluster localize least
	// (lines are evicted before accumulating enough hits). The 3D vicinity
	// holds twice the capacity (Figure 8's cylinder vs. disc) and migration
	// paths are half as long, so the *un*-localized fraction squares in 3D;
	// conversely the edge-placed CMP-DNUCA baseline sees only a half-disc
	// vicinity and its migration hops span a longer grid, quartering the
	// localized fraction (see core.Warm).
	LocalizedFrac float64
}

// sampleWindowCycles is Table 5's statistics-collection window.
const sampleWindowCycles = 2_000_000_000

// ipcEstimate is the assumed average IPC of the paper's in-order cores when
// converting Table 5 transaction counts into per-reference miss rates. The
// single-issue cores with blocking loads sustain roughly half an
// instruction per cycle (Figure 15 territory).
const ipcEstimate = 0.5

// DeriveL1MissRate computes the L1 miss rate implied by a Table 5
// transaction count: transactions divided by the total references issued by
// ncpu cores running at ipcEstimate instructions per cycle with the given
// memory-instruction ratio over the sampling window.
func DeriveL1MissRate(l2TransactionsM float64, ncpu int, memRatio float64) float64 {
	refs := float64(sampleWindowCycles) * float64(ncpu) * memRatio * ipcEstimate
	return l2TransactionsM * 1e6 / refs
}

// profiles holds the nine SPEC OMP benchmarks of Table 5. The L1 miss rates
// follow from the transaction counts (mgrid, swim and wupwise exhibit many
// more L2 accesses "as a result of higher L1 miss rates" — Section 5.1);
// sharing fractions reflect the benchmarks' published sharing behavior:
// dense solvers (galgel, swim, mgrid) stream mostly private tiles, while
// the irregular codes (equake, fma3d, art) touch more shared state.
var profiles = []Profile{
	{Name: "ammp", IFetchShare: 0.10, CodeLines: 640, FastForwardMCycles: 3633, L2TransactionsM: 24.508715, SharedFrac: 0.20, PrivateLines: 8192, LocalizedFrac: 0.50},
	{Name: "apsi", IFetchShare: 0.12, CodeLines: 768, FastForwardMCycles: 4453, L2TransactionsM: 27.013447, SharedFrac: 0.15, PrivateLines: 8192, LocalizedFrac: 0.50},
	{Name: "art", IFetchShare: 0.05, CodeLines: 384, FastForwardMCycles: 3523, L2TransactionsM: 25.638435, SharedFrac: 0.30, PrivateLines: 6144, LocalizedFrac: 0.50},
	{Name: "equake", IFetchShare: 0.08, CodeLines: 512, FastForwardMCycles: 21538, L2TransactionsM: 27.502906, SharedFrac: 0.35, PrivateLines: 8192, LocalizedFrac: 0.45},
	{Name: "fma3d", IFetchShare: 0.20, CodeLines: 768, FastForwardMCycles: 18535, L2TransactionsM: 12.599496, SharedFrac: 0.30, PrivateLines: 6144, LocalizedFrac: 0.50},
	{Name: "galgel", IFetchShare: 0.10, CodeLines: 640, FastForwardMCycles: 3665, L2TransactionsM: 38.181613, SharedFrac: 0.15, PrivateLines: 12288, LocalizedFrac: 0.45},
	{Name: "mgrid", IFetchShare: 0.02, CodeLines: 256, FastForwardMCycles: 3533, L2TransactionsM: 204.815737, SharedFrac: 0.10, PrivateLines: 24576, LocalizedFrac: 0.35},
	{Name: "swim", IFetchShare: 0.02, CodeLines: 256, FastForwardMCycles: 4306, L2TransactionsM: 164.762040, SharedFrac: 0.10, PrivateLines: 24576, LocalizedFrac: 0.35},
	{Name: "wupwise", IFetchShare: 0.04, CodeLines: 384, FastForwardMCycles: 18777, L2TransactionsM: 141.499738, SharedFrac: 0.20, PrivateLines: 20480, LocalizedFrac: 0.40},
}

// Profiles returns the nine benchmark profiles with all derived fields
// populated for the given CPU count.
func Profiles(ncpu int) []Profile {
	out := make([]Profile, len(profiles))
	for i, p := range profiles {
		p.MemRatio = 0.3
		p.WriteFrac = 0.3
		total := DeriveL1MissRate(p.L2TransactionsM, ncpu, p.MemRatio)
		p.L1MissRate = total * (1 - p.IFetchShare)
		p.IFetchColdFrac = total * p.IFetchShare
		p.SharedLines = 12288
		p.HotLines = 512
		out[i] = p
	}
	return out
}

// ProfileByName finds a benchmark profile by name.
func ProfileByName(name string, ncpu int) (Profile, bool) {
	for _, p := range Profiles(ncpu) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Ref is one memory reference produced by a generator.
type Ref struct {
	// Addr is the referenced cache line.
	Addr cache.LineAddr
	// Write marks a store.
	Write bool
	// Gap is the number of non-memory instructions the core executes
	// before issuing this reference.
	Gap int
	// HasCode marks that execution entered a new instruction-cache line
	// while reaching this reference; Code is that line. Sequential
	// execution advances roughly one line per sixteen instructions, with
	// occasional jumps across the code region.
	HasCode bool
	Code    cache.LineAddr
}

// Address-space layout of the synthetic workload. Regions are mapped to
// line addresses through deterministic page-frame hashing: each region is a
// sequence of 4 KB pages, and page j of region r lives at a pseudo-random
// frame in r's private slice of the frame space. This reproduces how an OS
// backs virtual regions with scattered physical pages, which is what makes
// NUCA home clusters uniformly distributed in real systems — a contiguous
// layout would alias every working set onto the same few home clusters.
const (
	// linesPerPage is a 4 KB page in 64-byte lines.
	linesPerPage = 64
	// frameBits sizes each region's private frame space (2^24 frames).
	frameBits = 24

	regionShared = 0
	regionCode   = 1
	// Per-core regions: hot set and streaming set get separate ids.
	regionHot    = 2 // regionHot + 2*cpu
	regionStream = 3 // regionStream + 2*cpu
)

// regionID composes a region id from the profile's namespace instance and
// the region kind.
func (p Profile) regionID(kind uint64) uint64 {
	return uint64(p.Instance)<<8 | kind
}

// Region is a page-mapped address region: n lines reachable through Line.
// Sequential regions occupy consecutive page frames (contiguous data: hot
// arrays, program binaries); hashed regions scatter their pages through the
// region's frame space the way an OS backs a large heap with whatever
// physical pages are free — which is what makes NUCA home clusters
// uniformly distributed for large working sets.
type Region struct {
	id  uint64
	n   int
	seq bool
}

// Len returns the region's size in lines.
func (r Region) Len() int { return r.n }

// Line returns the address of the region's j-th line. The mapping is a
// fixed function (no generator state), so every component — generators,
// cache warm-up, tests — sees the same layout.
func (r Region) Line(j int) cache.LineAddr {
	page := uint64(j) / linesPerPage
	off := uint64(j) % linesPerPage
	frame := page
	if !r.seq {
		frame = scatter(page)
	}
	return cache.LineAddr((r.id<<frameBits|frame)*linesPerPage + off)
}

// scatter is a bijection on the frame space (multiplication by an odd
// constant modulo a power of two), so distinct pages always land on
// distinct frames while spreading them across the whole space — and with
// it, across every NUCA home cluster.
func scatter(page uint64) uint64 {
	const odd = 0x9E3779B1 // golden-ratio-derived odd multiplier
	return (page * odd) & (1<<frameBits - 1)
}

// Contains reports whether addr belongs to this region's frame space.
// Region ids partition the address space, so membership is a range check.
func (r Region) Contains(addr cache.LineAddr) bool {
	frame := uint64(addr) / linesPerPage
	return frame>>frameBits == r.id
}

// mix64 is SplitMix64's finalizer: a fixed avalanche permutation.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// coldCodeLines sizes the cold tail of the code region: rarely-executed
// paths whose fetches always miss the L1I. Fetches draw from a
// coldWindowLines-wide working window that drifts one page every
// coldDriftPeriod fetches.
const (
	coldCodeLines   = 4096
	coldWindowLines = 1024
	coldDriftPeriod = 256
)

// instrsPerCodeLine approximates 16 four-byte instructions per 64-byte
// line of straight-line code.
const instrsPerCodeLine = 16

// jumpChance is the per-reference probability that control transfers to a
// random line of the code region instead of falling through.
const jumpChance = 0.05

// HotRegion returns a core's L1-resident hot set: contiguous pages (stack,
// globals, reduction scalars), so it maps conflict-free into the L1.
func (p Profile) HotRegion(cpu int) Region {
	return Region{id: p.regionID(regionHot + 2*uint64(cpu)), n: p.HotLines, seq: true}
}

// StreamRegion returns a core's private streaming set: a large heap region
// backed by scattered pages.
func (p Profile) StreamRegion(cpu int) Region {
	return Region{id: p.regionID(regionStream + 2*uint64(cpu)), n: p.PrivateLines}
}

// StreamLine returns the address of the j-th line of a core's private
// streaming set.
func (p Profile) StreamLine(cpu, j int) cache.LineAddr {
	return p.StreamRegion(cpu).Line(j)
}

// SharedRegion returns the globally shared data region (scattered pages).
func (p Profile) SharedRegion() Region {
	return Region{id: p.regionID(regionShared), n: p.SharedLines}
}

// CodeRegion returns the shared code region: the hot footprint (CodeLines)
// followed by the cold tail. Binaries are contiguous, so the region is
// sequential.
func (p Profile) CodeRegion() Region {
	return Region{id: p.regionID(regionCode), n: p.CodeLines + coldCodeLines, seq: true}
}

// Generator produces the reference stream of one core deterministically.
type Generator struct {
	p   Profile
	cpu int
	rng *rng

	hot    Region
	stream Region
	shared Region
	code   Region

	streamPos int // cursor in the private streaming set

	codeLine    int // current line within the hot code region
	coldLine    int // base of the drifting cold-code working window
	coldFetches int // cold fetches issued, for window drift
	instrAccum  int // instructions since the last code-line boundary
}

// NewGenerator builds the stream for one core. Streams with the same
// profile, cpu and seed are identical.
func NewGenerator(p Profile, cpu int, seed uint64) *Generator {
	return &Generator{
		p:      p,
		cpu:    cpu,
		rng:    newRNG(seed ^ (uint64(cpu+1) * 0xA24BAED4963EE407)),
		hot:    p.HotRegion(cpu),
		stream: p.StreamRegion(cpu),
		shared: p.SharedRegion(),
		code:   p.CodeRegion(),
	}
}

// Next returns the next memory reference.
func (g *Generator) Next() Ref {
	r := Ref{Write: g.rng.chance(g.p.WriteFrac), Gap: g.gap()}
	g.advanceCode(&r)
	if !g.rng.chance(g.p.L1MissRate) {
		// L1-resident access: pick from the hot set.
		r.Addr = g.hot.Line(g.rng.intn(g.p.HotLines))
		return r
	}
	if g.rng.chance(g.p.SharedFrac) {
		// Shared access with a hot-cold skew: half the traffic hits the
		// hottest eighth of the region, concentrating sharing the way
		// OpenMP reduction and boundary data do.
		n := g.p.SharedLines
		if g.rng.chance(0.5) {
			n = max(1, n/8)
		}
		r.Addr = g.shared.Line(g.rng.intn(n))
		return r
	}
	// Private streaming access: advance through the set sequentially,
	// wrapping at the end — classic SPEC OMP grid-sweep behavior.
	r.Addr = g.stream.Line(g.streamPos)
	g.streamPos++
	if g.streamPos >= g.p.PrivateLines {
		g.streamPos = 0
	}
	return r
}

// gap draws the non-memory instruction count before a reference, with mean
// (1-MemRatio)/MemRatio, using a two-point distribution for determinism
// without heavy tails.
func (g *Generator) gap() int {
	mean := (1 - g.p.MemRatio) / g.p.MemRatio
	lo := int(mean)
	frac := mean - float64(lo)
	if g.rng.chance(frac) {
		return lo + 1
	}
	return lo
}

// advanceCode moves the instruction stream forward by the reference's
// instruction count and records a new instruction-cache line if execution
// crossed into one (fall-through or jump).
func (g *Generator) advanceCode(r *Ref) {
	if g.p.CodeLines <= 0 {
		return
	}
	g.instrAccum += r.Gap + 1
	// Cold instruction fetch: a rarely-executed path whose line is not
	// L1I-resident, calibrated so ifetch L2 traffic matches IFetchShare of
	// the Table 5 transaction count. Cold fetches re-walk a working window
	// of procedures that drifts slowly through the tail — real programs
	// revisit the same cold paths (error handlers, phase prologues) many
	// times before moving on, so these lines exhibit L2 reuse even though
	// they thrash the L1I.
	if g.rng.chance(g.p.IFetchColdFrac) {
		r.HasCode = true
		pos := (g.coldLine + g.rng.intn(coldWindowLines)) % coldCodeLines
		r.Code = g.code.Line(g.p.CodeLines + pos)
		g.coldFetches++
		if g.coldFetches%coldDriftPeriod == 0 {
			g.coldLine = (g.coldLine + linesPerPage) % coldCodeLines
		}
		return
	}
	crossed := false
	if g.rng.chance(jumpChance) {
		g.codeLine = g.rng.intn(g.p.CodeLines)
		g.instrAccum = 0
		crossed = true
	} else if g.instrAccum >= instrsPerCodeLine {
		g.instrAccum -= instrsPerCodeLine
		g.codeLine++
		if g.codeLine >= g.p.CodeLines {
			g.codeLine = 0
		}
		crossed = true
	}
	if crossed {
		r.HasCode = true
		r.Code = g.code.Line(g.codeLine)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
