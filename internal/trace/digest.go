package trace

import "repro/internal/digest"

// DigestFold folds the generator's xorshift state and region cursors —
// the entire source of workload nondeterminism. Two runs whose RNG
// lanes agree are replaying the same reference stream.
func (g *Generator) DigestFold(r *digest.Recorder) {
	r.Fold(g.rng.state)
	r.FoldInt(g.streamPos)
	r.FoldInt(g.codeLine)
	r.FoldInt(g.coldLine)
	r.FoldInt(g.coldFetches)
	r.FoldInt(g.instrAccum)
}

// DigestFold folds the replay cursor of a recorded reference stream.
func (f *FileStream) DigestFold(r *digest.Recorder) {
	r.FoldInt(f.pos)
	r.FoldInt(len(f.refs))
}
