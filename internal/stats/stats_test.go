package stats

import (
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Mean() != 0 {
		t.Fatal("empty latency mean must be 0")
	}
	for _, v := range []uint64{10, 20, 30} {
		l.Observe(v)
	}
	if l.Count() != 3 || l.Sum() != 60 {
		t.Fatalf("count=%d sum=%d", l.Count(), l.Sum())
	}
	if l.Mean() != 20 {
		t.Fatalf("Mean = %f, want 20", l.Mean())
	}
	if l.Min() != 10 || l.Max() != 30 {
		t.Fatalf("min=%d max=%d", l.Min(), l.Max())
	}
	l.Reset()
	if l.Count() != 0 || l.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestLatencyZeroSamples pins the zero-sample contract: Min() reports 0
// with nothing observed (ambiguous by design, for callers that know the
// accumulator is populated), while MinOK and String disambiguate an empty
// accumulator from a true 0-cycle minimum.
func TestLatencyZeroSamples(t *testing.T) {
	var l Latency
	if l.Min() != 0 || l.Max() != 0 {
		t.Fatalf("empty: min=%d max=%d, want 0 0", l.Min(), l.Max())
	}
	if v, ok := l.MinOK(); ok || v != 0 {
		t.Fatalf("empty MinOK = (%d, %v), want (0, false)", v, ok)
	}
	if got := l.String(); got != "n=0 (no samples)" {
		t.Fatalf("empty String = %q", got)
	}

	// A genuine 0-cycle sample must be reported as a real minimum.
	l.Observe(0)
	if v, ok := l.MinOK(); !ok || v != 0 {
		t.Fatalf("after Observe(0): MinOK = (%d, %v), want (0, true)", v, ok)
	}

	// A later larger sample must not disturb the true 0 minimum, and a
	// fresh accumulator seeing only large samples must not report 0.
	l.Observe(7)
	if v, _ := l.MinOK(); v != 0 {
		t.Fatalf("min drifted to %d after larger sample", v)
	}
	var big Latency
	big.Observe(9)
	if v, ok := big.MinOK(); !ok || v != 9 {
		t.Fatalf("MinOK = (%d, %v), want (9, true)", v, ok)
	}
	big.Reset()
	if _, ok := big.MinOK(); ok {
		t.Fatal("Reset did not clear the sample count")
	}
}

func TestLatencyInvariants(t *testing.T) {
	f := func(samples []uint16) bool {
		var l Latency
		var sum uint64
		for _, s := range samples {
			l.Observe(uint64(s))
			sum += uint64(s)
		}
		if len(samples) == 0 {
			return l.Count() == 0
		}
		if l.Sum() != sum || l.Count() != uint64(len(samples)) {
			return false
		}
		return l.Min() <= l.Max() &&
			float64(l.Min()) <= l.Mean() && l.Mean() <= float64(l.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for v := uint64(0); v < 50; v++ {
		h.Observe(v)
	}
	if h.Total() != 50 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 5 {
			t.Fatalf("Bucket(%d) = %d, want 5", i, h.Bucket(i))
		}
	}
	if h.Percentile(50) != 25 {
		t.Fatalf("P50 = %d, want 25", h.Percentile(50))
	}
	// Overflow lands in the last bucket.
	h.Observe(1000)
	if h.Bucket(9) != 6 {
		t.Fatalf("overflow bucket = %d, want 6", h.Bucket(9))
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

// TestHistogramOverflowPercentile is the regression test for the
// open-ended last bucket: a percentile landing there must report the
// observed maximum, not the fabricated bound n*width, which understated
// real tails (a 1000-cycle outlier used to read as "P99 = 40").
func TestHistogramOverflowPercentile(t *testing.T) {
	h := NewHistogram(4, 10) // buckets [0,10) [10,20) [20,30) [30,inf)
	for i := 0; i < 99; i++ {
		h.Observe(5)
	}
	h.Observe(1000)
	if got := h.Percentile(50); got != 10 {
		t.Fatalf("P50 = %d, want 10", got)
	}
	if got := h.Percentile(100); got != 1000 {
		t.Fatalf("P100 = %d, want the observed max 1000, not 40", got)
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}

	// Samples inside the last bucket's nominal range also report the true
	// observed maximum rather than the bucket edge.
	h2 := NewHistogram(4, 10)
	h2.Observe(33)
	if got := h2.Percentile(99); got != 33 {
		t.Fatalf("P99 = %d, want 33", got)
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram(4, 2)
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram percentile must be 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%d,%d) did not panic", args[0], args[1])
				}
			}()
			NewHistogram(args[0], uint64(args[1]))
		}()
	}
}

// TestPercentileFromBuckets covers the standalone helper on
// caller-supplied counts (the sampler feeds it interval deltas rather than
// a live Histogram).
func TestPercentileFromBuckets(t *testing.T) {
	// 10 samples in [0,5), 10 in [5,10).
	buckets := []uint64{10, 10, 0, 0}
	if got := PercentileFromBuckets(buckets, 5, 9, 50); got != 5 {
		t.Fatalf("P50 = %d, want 5", got)
	}
	if got := PercentileFromBuckets(buckets, 5, 9, 95); got != 10 {
		t.Fatalf("P95 = %d, want 10", got)
	}
	// Empty counts report zero.
	if got := PercentileFromBuckets([]uint64{0, 0}, 5, 0, 95); got != 0 {
		t.Fatalf("empty P95 = %d, want 0", got)
	}
	// A percentile landing in the open last bucket reports the tracked max.
	tail := []uint64{1, 0, 0, 9}
	if got := PercentileFromBuckets(tail, 5, 123, 99); got != 123 {
		t.Fatalf("open-bucket P99 = %d, want the max 123", got)
	}
	// The histogram method and the helper agree on the same counts.
	h := NewHistogram(4, 10)
	for v := uint64(0); v < 40; v += 2 {
		h.Observe(v)
	}
	raw := make([]uint64, h.NumBuckets())
	for i := range raw {
		raw[i] = h.Bucket(i)
	}
	for _, p := range []float64{25, 50, 90, 99} {
		if a, b := h.Percentile(p), PercentileFromBuckets(raw, 10, h.Max(), p); a != b {
			t.Fatalf("P%.0f: Histogram %d vs helper %d", p, a, b)
		}
	}
}

func TestDist(t *testing.T) {
	d := NewDist(8, 4)
	if d.Count() != 0 || d.Mean() != 0 || d.P95() != 0 {
		t.Fatal("fresh Dist not zero")
	}
	for v := uint64(1); v <= 10; v++ {
		d.Observe(v)
	}
	if d.Count() != 10 || d.Sum() != 55 {
		t.Fatalf("count/sum = %d/%d, want 10/55", d.Count(), d.Sum())
	}
	if d.Mean() != 5.5 {
		t.Fatalf("mean = %f, want 5.5", d.Mean())
	}
	if d.Max() != 10 {
		t.Fatalf("max = %d, want 10", d.Max())
	}
	// P50: 5 of 10 samples lie in [0,4)+[4,8)... the 5th sample (value 5)
	// falls in bucket [4,8), whose upper edge is 8.
	if d.Percentile(50) != 8 {
		t.Fatalf("P50 = %d, want 8", d.Percentile(50))
	}
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 || d.Mean() != 0 || d.Max() != 0 || d.P95() != 0 {
		t.Fatalf("Reset left samples: %+v", d)
	}
	d.Observe(3)
	if d.Count() != 1 || d.P95() != 4 {
		t.Fatalf("post-reset observe: count %d P95 %d", d.Count(), d.P95())
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if s.Value("a") != 1 || s.Value("b") != 3 {
		t.Fatalf("a=%d b=%d", s.Value("a"), s.Value("b"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("missing counter must read 0")
	}
}

func TestSetRegister(t *testing.T) {
	var owned Counter // a counter owned elsewhere (e.g. a Metrics field)
	owned.Add(5)
	s := NewSet()
	s.Register("owned", &owned)
	if s.Value("owned") != 5 {
		t.Fatalf("registered counter reads %d, want 5", s.Value("owned"))
	}
	owned.Inc() // increments through the owner remain visible
	if s.Value("owned") != 6 {
		t.Fatalf("registered counter reads %d after Inc, want 6", s.Value("owned"))
	}
	if names := s.Names(); len(names) != 1 || names[0] != "owned" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSetSnapshot(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	derived := uint64(7)
	s.RegisterFunc("c", func() uint64 { return derived })

	snap := s.Snapshot()
	want := []NameValue{{"a", 1}, {"b", 2}, {"c", 7}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
	for i, nv := range want {
		if snap[i] != nv {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, snap[i], nv)
		}
	}

	// The snapshot is a copy: later counter movement must not show
	// through it (the serving tier hands snapshots across goroutines).
	s.Counter("a").Add(10)
	derived = 100
	if snap[0].Value != 1 || snap[2].Value != 7 {
		t.Fatalf("snapshot mutated by later counter updates: %+v", snap)
	}

	if empty := NewSet().Snapshot(); len(empty) != 0 {
		t.Fatalf("empty set snapshot = %+v, want empty", empty)
	}
}
