// Package stats provides the lightweight counters and latency accumulators
// used throughout the simulator to produce the paper's metrics: average L2
// hit latency, migration counts, IPC inputs, and network traffic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Latency accumulates per-event latencies (in cycles) and reports their
// mean, extremes, and total.
type Latency struct {
	count uint64
	sum   uint64
	min   uint64
	max   uint64
}

// Observe records one latency sample.
func (l *Latency) Observe(cycles uint64) {
	if l.count == 0 || cycles < l.min {
		l.min = cycles
	}
	if cycles > l.max {
		l.max = cycles
	}
	l.count++
	l.sum += cycles
}

// Count returns the number of samples observed.
func (l *Latency) Count() uint64 { return l.count }

// Sum returns the total of all samples.
func (l *Latency) Sum() uint64 { return l.sum }

// Mean returns the average sample, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.count)
}

// Min returns the smallest sample observed. With no samples it returns 0,
// which is indistinguishable from a true 0-cycle minimum — callers that
// may see an empty accumulator should use MinOK (or check Count) instead.
func (l *Latency) Min() uint64 { return l.min }

// MinOK returns the smallest sample observed and whether any sample has
// been recorded at all, disambiguating an empty accumulator from a true
// 0-cycle minimum.
func (l *Latency) MinOK() (uint64, bool) { return l.min, l.count > 0 }

// Max returns the largest sample observed, or 0 with no samples.
func (l *Latency) Max() uint64 { return l.max }

// Reset clears all samples.
func (l *Latency) Reset() { *l = Latency{} }

// String summarizes the accumulator. An empty accumulator says so instead
// of printing a misleading min=0 max=0.
func (l *Latency) String() string {
	if l.count == 0 {
		return "n=0 (no samples)"
	}
	return fmt.Sprintf("n=%d mean=%.2f min=%d max=%d", l.count, l.Mean(), l.min, l.max)
}

// Histogram is a fixed-bucket histogram for cycle-valued samples. Bucket i
// holds samples in [i*width, (i+1)*width); the final bucket is open-ended.
// The largest sample ever observed is tracked separately, so percentiles
// that land in the open-ended bucket report a real value instead of the
// bucket's fabricated lower edge.
type Histogram struct {
	width   uint64
	buckets []uint64
	total   uint64
	max     uint64
}

// NewHistogram creates a histogram with n buckets of the given width.
// Width must be at least 1 and n at least 1.
func NewHistogram(n int, width uint64) *Histogram {
	if n < 1 || width < 1 {
		panic("stats: histogram needs n >= 1 and width >= 1")
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Observe adds a sample to the appropriate bucket.
func (h *Histogram) Observe(v uint64) {
	i := int(v / h.width)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Max returns the largest sample observed, or 0 with no samples.
func (h *Histogram) Max() uint64 { return h.max }

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Width returns the bucket width.
func (h *Histogram) Width() uint64 { return h.width }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Percentile returns the smallest bucket upper bound at or below which at
// least p (0..100) percent of the samples fall. Returns 0 for an empty
// histogram. When the answer lands in the open-ended last bucket, whose
// upper bound is unknown, the observed maximum is reported instead of the
// fabricated edge n*width — large tail samples are no longer understated.
func (h *Histogram) Percentile(p float64) uint64 {
	return PercentileFromBuckets(h.buckets, h.width, h.max, p)
}

// PercentileFromBuckets is the percentile computation shared by Histogram,
// the sampler's interval deltas, and the span breakdown: given fixed-width
// bucket counts (the last bucket open-ended) and the largest sample
// observed, it returns the smallest bucket upper bound at or below which at
// least p (0..100) percent of the samples fall, substituting max for the
// open bucket's unknown edge. Returns 0 when the buckets are empty.
func PercentileFromBuckets(buckets []uint64, width, max uint64, p float64) uint64 {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(total) * p / 100))
	var cum uint64
	for i, b := range buckets {
		cum += b
		if cum >= target {
			if i == len(buckets)-1 {
				return max
			}
			return uint64(i+1) * width
		}
	}
	return max
}

// Dist couples a Latency accumulator with a Histogram so a metric can
// report both moments (mean, min, max) and percentiles from one Observe
// call. It is the building block of the span recorder's per-component
// breakdown and anywhere else a "mean + P95" summary is wanted.
type Dist struct {
	lat  Latency
	hist *Histogram
}

// NewDist returns a distribution with n histogram buckets of the given
// width.
func NewDist(n int, width uint64) Dist {
	return Dist{hist: NewHistogram(n, width)}
}

// Observe records one sample.
func (d *Dist) Observe(v uint64) {
	d.lat.Observe(v)
	d.hist.Observe(v)
}

// Count returns the number of samples observed.
func (d *Dist) Count() uint64 { return d.lat.Count() }

// Sum returns the total of all samples.
func (d *Dist) Sum() uint64 { return d.lat.Sum() }

// Mean returns the average sample, or 0 with no samples.
func (d *Dist) Mean() float64 { return d.lat.Mean() }

// Max returns the largest sample observed, or 0 with no samples.
func (d *Dist) Max() uint64 { return d.lat.Max() }

// Percentile returns the p-th percentile (see Histogram.Percentile).
func (d *Dist) Percentile(p float64) uint64 { return d.hist.Percentile(p) }

// P95 returns the 95th percentile, the summary used throughout the
// breakdown tables.
func (d *Dist) P95() uint64 { return d.hist.Percentile(95) }

// Reset clears all samples. The histogram keeps its shape.
func (d *Dist) Reset() {
	d.lat.Reset()
	clear(d.hist.buckets)
	d.hist.total = 0
	d.hist.max = 0
}

// Set is a named collection of counters, handy for dumping simulator
// summaries in a stable order. Entries are either owned/registered
// Counters or read-only closures (RegisterFunc) for derived counts that
// exist only as computations.
type Set struct {
	counters map[string]*Counter
	funcs    map[string]func() uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter), funcs: make(map[string]func() uint64)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters)+len(s.funcs))
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.funcs {
		if _, dup := s.counters[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Register installs an existing counter under the given name, so a
// component can expose counters it already owns (struct fields, hot-path
// increments untouched) through the set's Names/Value snapshot interface.
// Registering a name twice replaces the earlier counter.
func (s *Set) Register(name string, c *Counter) { s.counters[name] = c }

// RegisterFunc installs a derived counter: a closure evaluated at every
// Value call. It covers counts that exist only as computations — e.g. a
// total summed over components (fabric bus flits) — so they flow through
// the same Names/Value snapshot interface the Sampler's per-interval
// deltas use. A *Counter registered under the same name wins.
func (s *Set) RegisterFunc(name string, fn func() uint64) { s.funcs[name] = fn }

// NameValue is one counter's name and value, the element of a Snapshot.
type NameValue struct {
	Name  string
	Value uint64
}

// Snapshot evaluates every counter (owned and derived) and returns the
// values as a self-contained slice in sorted name order. The counters
// themselves are not synchronized — Snapshot must be called from the
// goroutine that owns them (for a simulation, the goroutine stepping the
// engine) — but the returned slice shares no memory with the set, so it
// is safe to publish to other goroutines; this is how the serving tier
// exposes a running job's counters on /metrics without racing the
// simulator's hot-path increments.
func (s *Set) Snapshot() []NameValue {
	names := s.Names()
	snap := make([]NameValue, len(names))
	for i, n := range names {
		snap[i] = NameValue{Name: n, Value: s.Value(n)}
	}
	return snap
}

// Value returns the value of the named counter, or 0 if absent.
func (s *Set) Value(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	if fn, ok := s.funcs[name]; ok {
		return fn()
	}
	return 0
}
