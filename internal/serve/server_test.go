package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinyBody is a small but real job: a full 3D machine, short windows,
// sampling fast enough to produce a healthy row count.
func tinyBody(seed uint64) string {
	return fmt.Sprintf(`{
		"scheme": "dnuca3d", "benchmark": "mgrid",
		"warm_cycles": 1000, "measure_cycles": 6000,
		"sample_interval": 500, "seed": %d
	}`, seed)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSubmitPollResult walks the basic service path: submit, poll status
// to completion, check fraction and Results.
func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	resp, body := post(t, ts.URL+"/jobs", tinyBody(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202: %s", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q, want miss", xc)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submit status = %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", st.ID, resp.StatusCode)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Fraction != 1 {
		t.Fatalf("done job fraction = %v, want 1", st.Fraction)
	}
	if len(st.Results) == 0 {
		t.Fatal("done job has no results")
	}
	var res struct {
		IPC      float64 `json:"IPC"`
		L2Hits   uint64  `json:"L2Hits"`
		Cycles   uint64  `json:"Cycles"`
		Scheme   string  `json:"Scheme"`
		BenchRun string  `json:"Benchmark"`
	}
	if err := json.Unmarshal(st.Results, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.L2Hits == 0 {
		t.Fatalf("results look empty: %s", st.Results)
	}
	if st.Rows == 0 {
		t.Fatal("no sampled rows recorded despite sample_interval")
	}
}

// TestCacheHitByteIdentical is the determinism ⇒ cacheability contract: a
// second identical submission answers 200 with X-Cache: hit and Results
// bytes identical to the first run's, without running anything.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	resp, body := post(t, ts.URL+"/jobs?wait=1", tinyBody(42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST ?wait=1 = %d: %s", resp.StatusCode, body)
	}
	var first JobStatus
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.State != StateDone {
		t.Fatalf("first run state = %q: %s", first.State, first.Error)
	}
	submitted := s.m.submitted.Load()

	resp, body = post(t, ts.URL+"/jobs", tinyBody(42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200", resp.StatusCode)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("X-Cache = %q, want hit", xc)
	}
	var second JobStatus
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("cache hit returned job %s, first run was %s", second.ID, first.ID)
	}
	if !bytes.Equal(second.Results, first.Results) {
		t.Fatalf("cached Results not byte-identical:\nfirst:  %s\nsecond: %s", first.Results, second.Results)
	}
	if got := s.m.submitted.Load(); got != submitted {
		t.Fatalf("cache hit enqueued a new job (submitted %d → %d)", submitted, got)
	}
	if s.m.cacheHits.Load() == 0 {
		t.Fatal("cache hit not counted")
	}

	// A different seed is a different identity: it must miss.
	resp, _ = post(t, ts.URL+"/jobs", tinyBody(43))
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("different seed X-Cache = %q, want miss", xc)
	}
}

// TestCoalesceInFlight pins duplicate-submission coalescing: with the
// single worker busy on a filler job, two identical submissions of a
// queued job map onto one registry entry and one execution.
func TestCoalesceInFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	// Occupy the only worker so the next job stays queued.
	resp, _ := post(t, ts.URL+"/jobs", tinyBody(100))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filler submit = %d", resp.StatusCode)
	}

	resp, body := post(t, ts.URL+"/jobs", tinyBody(200))
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("first submit X-Cache = %q, want miss", xc)
	}
	var first JobStatus
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	resp, body = post(t, ts.URL+"/jobs", tinyBody(200))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit = %d, want 202", resp.StatusCode)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "coalesced" {
		t.Fatalf("duplicate submit X-Cache = %q, want coalesced", xc)
	}
	var dup JobStatus
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate got job %s, original %s", dup.ID, first.ID)
	}
	if dup.Submits != 2 {
		t.Fatalf("submits = %d, want 2", dup.Submits)
	}
	if s.m.coalesced.Load() != 1 {
		t.Fatalf("coalesced counter = %d, want 1", s.m.coalesced.Load())
	}

	// Both jobs drain; the registry holds exactly two entries.
	resp, body = post(t, ts.URL+"/jobs?wait=1", tinyBody(200))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait on coalesced job = %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/jobs")
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("registry has %d jobs, want 2 (filler + coalesced)", len(list.Jobs))
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes an SSE body until the stream closes, returning every
// frame.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestStreamLiveAndReplay covers both SSE paths: a subscriber connected
// while the job runs receives header, every row, and the done event; a
// late subscriber gets a full replay. The rows must match the final
// status's row count — the stream drops nothing.
func TestStreamLiveAndReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A longer measurement so the stream has something to follow live.
	body := `{"scheme":"dnuca3d","benchmark":"swim","warm_cycles":2000,"measure_cycles":30000,"sample_interval":500,"seed":9}`
	resp, out := post(t, ts.URL+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, out)
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}

	streamResp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	events := readSSE(t, streamResp)
	checkStream(t, events)
	liveRows := countRows(events)

	// Late subscriber: the job is done; the whole series replays.
	streamResp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, streamResp)
	checkStream(t, replay)
	if replayRows := countRows(replay); replayRows != liveRows {
		t.Fatalf("replay has %d rows, live stream had %d", replayRows, liveRows)
	}

	// The final status agrees on the row count.
	_, out = get(t, ts.URL+"/jobs/"+st.ID)
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Rows != liveRows {
		t.Fatalf("status rows_streamed = %d, stream delivered %d", st.Rows, liveRows)
	}
}

func countRows(events []sseEvent) int {
	n := 0
	for _, e := range events {
		if e.event == "row" {
			n++
		}
	}
	return n
}

// checkStream validates SSE framing: header first, then rows of matching
// width with strictly increasing cycles, then exactly one done event.
func checkStream(t *testing.T, events []sseEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty SSE stream")
	}
	if events[0].event != "header" {
		t.Fatalf("first event = %q, want header", events[0].event)
	}
	var header []string
	if err := json.Unmarshal([]byte(events[0].data), &header); err != nil {
		t.Fatal(err)
	}
	if len(header) == 0 || header[0] != "cycle" {
		t.Fatalf("header = %v", header)
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("last event = %q (%s), want done", last.event, last.data)
	}
	prevCycle := -1.0
	rows := 0
	for _, e := range events[1 : len(events)-1] {
		if e.event != "row" {
			t.Fatalf("unexpected event %q mid-stream", e.event)
		}
		var row []float64
		if err := json.Unmarshal([]byte(e.data), &row); err != nil {
			t.Fatal(err)
		}
		if len(row) != len(header) {
			t.Fatalf("row width %d, header width %d", len(row), len(header))
		}
		if row[0] <= prevCycle {
			t.Fatalf("cycles not increasing: %v after %v", row[0], prevCycle)
		}
		prevCycle = row[0]
		rows++
	}
	if rows == 0 {
		t.Fatal("stream carried no rows")
	}
	var done struct {
		Rows int `json:"rows"`
	}
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatal(err)
	}
	if done.Rows != rows {
		t.Fatalf("done event says %d rows, stream carried %d", done.Rows, rows)
	}
}

// TestHealthzAndMetrics checks the observability endpoints' content.
func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var hz struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Workers != 1 {
		t.Fatalf("healthz body = %s", body)
	}

	if resp, body := post(t, ts.URL+"/jobs?wait=1", tinyBody(7)); resp.StatusCode != http.StatusOK {
		t.Fatalf("job = %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"nimsim_jobs_submitted_total 1",
		"nimsim_jobs_completed_total 1",
		"nimsim_cache_hits_total 0",
		"nimsim_jobs_registered 1",
		"# TYPE nimsim_job_progress gauge",
		`counter="l2_hits"`,
		`counter="flit_hops"`,
		"nimsim_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Draining flips healthz to 503.
	s.Close()
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503: %s", resp.StatusCode, body)
	}
}

// TestQueueBackpressure: a full queue answers 503 instead of blocking or
// growing without bound.
func TestQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	// Jobs long enough that the single worker cannot drain the queue
	// while the submissions arrive. Distinct seeds prevent coalescing.
	slow := func(seed uint64) string {
		return fmt.Sprintf(`{"scheme":"dnuca3d","benchmark":"mgrid","warm_cycles":0,"measure_cycles":300000,"no_samples":true,"seed":%d}`, seed)
	}
	// Worker takes the first job; the second fills the 1-deep queue; a
	// later one must bounce.
	post(t, ts.URL+"/jobs", slow(1))
	post(t, ts.URL+"/jobs", slow(2))
	rejected := false
	for seed := uint64(3); seed < 8; seed++ {
		resp, _ := post(t, ts.URL+"/jobs", slow(seed))
		if resp.StatusCode == http.StatusServiceUnavailable {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("no submission was rejected despite a saturated queue")
	}
	if s.m.rejected.Load() == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

// TestBadRequests: malformed JSON, unknown scheme, unknown benchmark,
// unknown job id.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	if resp, _ := post(t, ts.URL+"/jobs", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/jobs", `{"scheme":"nosuch"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown scheme = %d, want 400", resp.StatusCode)
	}
	// An unknown benchmark passes validation (the runner rejects it at
	// execution), so the job fails rather than the submit.
	resp, body := post(t, ts.URL+"/jobs?wait=1", `{"scheme":"dnuca3d","benchmark":"nosuch","warm_cycles":0,"measure_cycles":0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown benchmark submit = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Errorf("unknown benchmark job state = %q (%q), want failed", st.State, st.Error)
	}
	if resp, _ := get(t, ts.URL+"/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/jobs/deadbeef/stream"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream = %d, want 404", resp.StatusCode)
	}
}
