package serve

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, explicitly — the package's blank-import side effect
// registers on http.DefaultServeMux, which no server here uses. Keeping
// registration explicit means a mux exposes the profiler only when its
// owner asked for it: the serve daemon's API mux stays profiler-free
// unless Options.EnablePprof is set, and `nimsim -pprof` gets a dedicated
// mux instead of whatever else leaked into the default one.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// PprofMux returns a fresh mux serving only the pprof handlers — the
// standalone profiling listener for `nimsim -pprof <addr>` when no job
// API shares the address.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	return mux
}
