package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/prof"
)

// buildVersion is the module version stamped into the binary, resolved
// once for the nimsim_build_info metric ("dev" for unstamped builds,
// e.g. `go run` or a plain `go build` of the work tree).
var buildVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}()

// BuildVersion reports the module version stamped into the binary — the
// same string nimsim_build_info and the BENCH_*.json host stamps carry
// ("dev" for unstamped builds). Exported for `nimsim -version`.
func BuildVersion() string { return buildVersion }

// daemonMetrics are the server's own counters, updated from handler and
// worker goroutines; atomics keep /metrics race-free without sharing the
// registry lock.
type daemonMetrics struct {
	submitted  atomic.Uint64 // new jobs accepted and enqueued
	completed  atomic.Uint64 // jobs finished successfully
	failed     atomic.Uint64 // jobs finished with an error
	cacheHits  atomic.Uint64 // POSTs answered from a finished job
	coalesced  atomic.Uint64 // POSTs folded onto an in-flight job
	rejected   atomic.Uint64 // POSTs refused by queue backpressure
	sseClients atomic.Int64  // currently connected /stream subscribers
}

// handleMetrics is GET /metrics in Prometheus text exposition format:
// daemon-level counters and gauges, plus per-job completion fractions and
// the per-job simulator counters published through the runner's race-safe
// stats.Set snapshots (a running job's numbers update every measurement
// chunk; a finished job's freeze at the final snapshot).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.jobs[id])
	}
	queued := len(s.queue)
	s.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("nimsim_jobs_submitted_total", "New jobs accepted and enqueued.", s.m.submitted.Load())
	counter("nimsim_jobs_completed_total", "Jobs finished successfully.", s.m.completed.Load())
	counter("nimsim_jobs_failed_total", "Jobs finished with an error.", s.m.failed.Load())
	counter("nimsim_cache_hits_total", "Submissions answered from a finished job's cached results.", s.m.cacheHits.Load())
	counter("nimsim_coalesced_total", "Submissions folded onto an identical in-flight job.", s.m.coalesced.Load())
	counter("nimsim_rejected_total", "Submissions refused by queue backpressure.", s.m.rejected.Load())
	gauge("nimsim_jobs_queued", "Jobs accepted but not yet running.", float64(queued))
	gauge("nimsim_jobs_registered", "Jobs in the registry (the result cache).", float64(len(recs)))
	gauge("nimsim_sse_clients", "Currently connected /stream subscribers.", float64(s.m.sseClients.Load()))
	gauge("nimsim_workers", "Simulation worker pool size.", float64(s.opts.Workers))
	gauge("nimsim_uptime_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "# HELP nimsim_build_info Build metadata as labels; the value is always 1.\n# TYPE nimsim_build_info gauge\nnimsim_build_info{version=%q,go_version=%q} 1\n",
		buildVersion, runtime.Version())

	running := 0
	type jobRow struct {
		id       string
		state    string
		fraction float64
		shards   int
		counters map[string]uint64
		profile  *prof.Snapshot

		terminal      bool
		dropped       uint64
		digest        string // final 64-bit state digest (16 hex), "" if undigested
		digestIval    uint64
		verified      bool
		mismatch      bool
		mismatchCycle uint64
		mismatchLane  string
	}
	rows := make([]jobRow, 0, len(recs))
	for _, rec := range recs {
		rec.mu.Lock()
		jr := jobRow{id: rec.id, state: rec.state, fraction: rec.fraction, shards: rec.run.Shards, profile: rec.profile}
		if jr.shards < 1 {
			jr.shards = 1 // a zero-valued Shards runs the serial path
		}
		if len(rec.counters) > 0 {
			jr.counters = make(map[string]uint64, len(rec.counters))
			for _, nv := range rec.counters {
				jr.counters[nv.Name] = nv.Value
			}
		}
		jr.terminal = terminal(rec.state)
		jr.dropped = rec.droppedEvents
		if rec.digest != nil {
			jr.digest = rec.digest.Digest
			jr.digestIval = rec.digest.Interval
		}
		jr.verified, jr.mismatch = rec.verified, rec.mismatch
		jr.mismatchCycle, jr.mismatchLane = rec.mismatchCycle, rec.mismatchLane
		rec.mu.Unlock()
		if jr.state == StateRunning {
			running++
		}
		rows = append(rows, jr)
	}
	gauge("nimsim_jobs_running", "Jobs currently executing on a worker.", float64(running))
	gauge("nimsim_jobs_inflight", "Jobs accepted but not yet finished (queued + running).", float64(queued+running))

	fmt.Fprintf(&b, "# HELP nimsim_job_progress Completion fraction of each registered job.\n# TYPE nimsim_job_progress gauge\n")
	for _, jr := range rows {
		fmt.Fprintf(&b, "nimsim_job_progress{job=%q,state=%q} %g\n", jr.id, jr.state, jr.fraction)
	}
	fmt.Fprintf(&b, "# HELP nimsim_job_shards Layer-shard goroutines the job's network phase fans out over (1 = serial).\n# TYPE nimsim_job_shards gauge\n")
	for _, jr := range rows {
		fmt.Fprintf(&b, "nimsim_job_shards{job=%q} %d\n", jr.id, jr.shards)
	}
	fmt.Fprintf(&b, "# HELP nimsim_job_counter Per-job simulator counters (cumulative over the measurement window).\n# TYPE nimsim_job_counter counter\n")
	for _, jr := range rows {
		names := make([]string, 0, len(jr.counters))
		for n := range jr.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "nimsim_job_counter{job=%q,counter=%q} %d\n", jr.id, n, jr.counters[n])
		}
	}

	// Host-side phase profile, from the profiler every job runs with
	// (see runJob): where each job's wall-clock goes, live while it runs
	// and frozen at the final snapshot once done.
	fmt.Fprintf(&b, "# HELP nimsim_job_phase_seconds Host wall-clock seconds attributed to each simulation-loop phase, per job.\n# TYPE nimsim_job_phase_seconds gauge\n")
	for _, jr := range rows {
		if jr.profile == nil {
			continue
		}
		for p := 0; p < prof.NumPhases; p++ {
			if jr.profile.PhaseSeconds[p] == 0 {
				continue
			}
			fmt.Fprintf(&b, "nimsim_job_phase_seconds{job=%q,phase=%q} %g\n",
				jr.id, prof.Phase(p).String(), jr.profile.PhaseSeconds[p])
		}
	}
	fmt.Fprintf(&b, "# HELP nimsim_job_cycles_per_sec Simulated cycles per host wall-clock second, per job.\n# TYPE nimsim_job_cycles_per_sec gauge\n")
	for _, jr := range rows {
		if jr.profile == nil {
			continue
		}
		fmt.Fprintf(&b, "nimsim_job_cycles_per_sec{job=%q} %g\n", jr.id, jr.profile.CyclesPerSec)
	}
	fmt.Fprintf(&b, "# HELP nimsim_job_barrier_wait_frac Fraction of sharded-round worker time spent waiting at the cycle barrier, per job (serial jobs report nothing).\n# TYPE nimsim_job_barrier_wait_frac gauge\n")
	for _, jr := range rows {
		if jr.profile == nil || jr.profile.BarrierWaitFrac == 0 {
			continue
		}
		fmt.Fprintf(&b, "nimsim_job_barrier_wait_frac{job=%q} %g\n", jr.id, jr.profile.BarrierWaitFrac)
	}

	// Trace-ring drops, per finished job: non-zero means the job's Chrome
	// trace is incomplete (obs.RingSink shed events under backpressure).
	fmt.Fprintf(&b, "# HELP nimsim_job_dropped_events Trace events lost to ring-buffer backpressure, per finished job.\n# TYPE nimsim_job_dropped_events gauge\n")
	for _, jr := range rows {
		if !jr.terminal {
			continue
		}
		fmt.Fprintf(&b, "nimsim_job_dropped_events{job=%q} %d\n", jr.id, jr.dropped)
	}

	// State digests: the run's final 64-bit digest as a label (info-style
	// metric, value always 1 — 64-bit digests do not fit a float64), plus
	// the first mismatching cycle when a DigestVerify reference comparison
	// found one.
	fmt.Fprintf(&b, "# HELP nimsim_job_digest_info Final 64-bit state digest of each digested job as a label; the value is always 1.\n# TYPE nimsim_job_digest_info gauge\n")
	for _, jr := range rows {
		if jr.digest == "" {
			continue
		}
		fmt.Fprintf(&b, "nimsim_job_digest_info{job=%q,digest=%q,interval=\"%d\",verified=%q} 1\n",
			jr.id, jr.digest, jr.digestIval, boolLabel(jr.verified))
	}
	fmt.Fprintf(&b, "# HELP nimsim_job_digest_mismatch_cycle First cycle where a DigestVerify reference comparison diverged, labeled with the offending subsystem.\n# TYPE nimsim_job_digest_mismatch_cycle gauge\n")
	for _, jr := range rows {
		if !jr.mismatch {
			continue
		}
		fmt.Fprintf(&b, "nimsim_job_digest_mismatch_cycle{job=%q,lane=%q} %d\n", jr.id, jr.mismatchLane, jr.mismatchCycle)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String())
}

func boolLabel(v bool) string {
	if v {
		return "true"
	}
	return "false"
}
