package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/digest"
	"repro/internal/runner"
)

// Options configures a Server. The zero value serves on :8080 with
// GOMAXPROCS workers, a 64-deep queue, and 1000-cycle default sampling.
type Options struct {
	// Addr is the listen address for ListenAndServe (":8080" default).
	Addr string
	// Workers bounds concurrently running simulations; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects new submissions with 503 (backpressure). <= 0 selects 64.
	QueueDepth int
	// DefaultSampleInterval is the metrics sampling period (cycles) for
	// jobs that do not choose one; 0 selects 1000. Sampling is what makes
	// a job's /stream live, so the default keeps every job streamable.
	DefaultSampleInterval uint64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's own mux — the deliberate way to share one listener between
	// the job API and the profiler (see PprofMux for a dedicated one).
	EnablePprof bool
	// DrainTimeout bounds how long ListenAndServe waits for open HTTP
	// connections (e.g. SSE streams) after shutdown begins; 0 selects 10s.
	// In-flight simulations are always run to completion regardless.
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultSampleInterval == 0 {
		o.DefaultSampleInterval = 1000
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Server is the simulation-as-a-service daemon: a job registry that
// doubles as the result cache, a bounded worker pool over
// internal/runner, and the HTTP surface described in the package docs.
// Create with New (which starts the workers), serve with ListenAndServe
// or mount Handler on a listener of your own, and Close when done.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job // id → record; the registry IS the cache
	order    []string        // ids in first-submission order, for GET /jobs
	queue    chan *job
	draining bool

	wg        sync.WaitGroup // workers
	closeOnce sync.Once

	start time.Time
	m     daemonMetrics
}

// New builds a server and starts its worker pool. The returned server is
// ready: mount Handler() on any listener, or call ListenAndServe.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts.withDefaults(),
		jobs:  make(map[string]*job),
		start: time.Now(),
	}
	s.queue = make(chan *job, s.opts.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.opts.EnablePprof {
		RegisterPprof(s.mux)
	}
	s.wg.Add(s.opts.Workers)
	for i := 0; i < s.opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler, for mounting on an existing
// listener or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves the HTTP API on Options.Addr until ctx is
// canceled (wire it to SIGINT via signal.NotifyContext for the
// conventional daemon lifecycle), then drains: the listener closes, open
// connections get DrainTimeout to finish, queued and running simulations
// run to completion, and only then does ListenAndServe return.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.mux}
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		shCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()
	err = httpSrv.Serve(ln)
	s.Close()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.opts.Addr }

// Close stops accepting jobs, waits for every queued and running
// simulation to finish, and releases the worker pool. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		close(s.queue)
		s.mu.Unlock()
		s.wg.Wait()
	})
}

func (s *Server) worker() {
	defer s.wg.Done()
	for rec := range s.queue {
		s.runJob(rec)
	}
}

// runJob executes one registered job on this worker goroutine, publishing
// progress, sampled rows, and counter snapshots into the record as the
// simulation advances. The runner supplies panic/error capture; the
// record never leaves a terminal state, so a cached entry is immutable.
func (s *Server) runJob(rec *job) {
	rec.setState(StateRunning)
	j := rec.run
	j.Progress = rec.setFraction
	j.OnStats = rec.setCounters
	// Every job runs with the host profiler attached. The profiler is
	// provably non-perturbing (Results stay bit-identical, see
	// internal/prof), so attaching it unconditionally adds per-phase
	// wall-clock gauges to /metrics without touching the job identity —
	// a profiled run's cache entry still answers any submission.
	j.Profile = true
	j.OnProfile = rec.setProfile
	if j.SampleInterval > 0 {
		j.OnSample = rec.appendRow
	}
	res := runner.Run([]runner.Job{j}, 1)[0]
	if res.Err != nil {
		s.m.failed.Add(1)
		rec.fail(res.Err, time.Now())
		return
	}
	b, err := json.Marshal(res.Results)
	if err != nil {
		s.m.failed.Add(1)
		rec.fail(fmt.Errorf("marshaling results: %w", err), time.Now())
		return
	}
	if res.Results.Digests != nil {
		var dropped uint64
		if res.Samples != nil {
			dropped = res.Samples.DroppedEvents
		}
		rec.setDigest(res.Results.Digests, dropped)
		s.verifyDigest(rec, res.Results.Digests)
	} else if res.Samples != nil {
		rec.setDigest(nil, res.Samples.DroppedEvents)
	}
	s.m.completed.Add(1)
	rec.finish(b, time.Now())
}

// verifyDigest is the DigestVerify rerun: the same job as a serial
// reference (Shards=1, no hooks), its digest stream compared against the
// primary run's. A mismatch names the first divergent cycle and
// subsystem on the status API and /metrics — the daemon catching a
// broken bit-identity contract in production rather than in CI. A failed
// rerun leaves the job unverified (the primary results stand).
func (s *Server) verifyDigest(rec *job, primary *digest.Report) {
	if !rec.verify {
		return
	}
	ref := rec.run
	ref.Shards = 1
	refRes := runner.Run([]runner.Job{ref}, 1)[0]
	if refRes.Err != nil || refRes.Results.Digests == nil {
		return
	}
	if div, ok := digest.Compare(primary.Stream, refRes.Results.Digests.Stream); ok {
		rec.setVerify(true, div.Cycle, div.Lane.String())
	} else {
		rec.setVerify(false, 0, "")
	}
}

// handleSubmit is POST /jobs: normalize, hash, and either return the
// already-registered job (cache hit when finished, coalesce when still in
// flight) or register and enqueue a new one. ?wait=1 blocks until the job
// reaches a terminal state. The X-Cache header says which path was taken:
// "hit", "coalesced", or "miss".
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	run, err := s.buildJob(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id := jobID(run)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	rec, known := s.jobs[id]
	if known {
		rec.mu.Lock()
		rec.submits++
		state := rec.state
		rec.mu.Unlock()
		s.mu.Unlock()
		if terminal(state) {
			s.m.cacheHits.Add(1)
			w.Header().Set("X-Cache", "hit")
			writeJSON(w, http.StatusOK, rec.status(true))
			return
		}
		s.m.coalesced.Add(1)
		w.Header().Set("X-Cache", "coalesced")
		s.respondMaybeWait(w, r, rec, http.StatusAccepted)
		return
	}
	rec = newJob(id, run, time.Now())
	rec.verify = req.DigestVerify && run.DigestInterval > 0
	select {
	case s.queue <- rec:
	default:
		s.mu.Unlock()
		s.m.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("job queue full (%d deep); retry later", s.opts.QueueDepth))
		return
	}
	s.jobs[id] = rec
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.m.submitted.Add(1)
	w.Header().Set("X-Cache", "miss")
	s.respondMaybeWait(w, r, rec, http.StatusAccepted)
}

// respondMaybeWait writes the job's status — after blocking for the
// terminal state first when the request carries ?wait.
func (s *Server) respondMaybeWait(w http.ResponseWriter, r *http.Request, rec *job, code int) {
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, code, rec.status(false))
		return
	}
	if !rec.awaitTerminal(r.Context()) {
		httpError(w, http.StatusRequestTimeout, fmt.Errorf("canceled while waiting for job %s", rec.id))
		return
	}
	writeJSON(w, http.StatusOK, rec.status(true))
}

// awaitTerminal blocks until the job finishes or ctx is canceled,
// reporting which (true = finished).
func (rec *job) awaitTerminal(ctx context.Context) bool {
	stop := context.AfterFunc(ctx, func() {
		rec.mu.Lock()
		rec.cond.Broadcast()
		rec.mu.Unlock()
	})
	defer stop()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for !terminal(rec.state) && ctx.Err() == nil {
		rec.cond.Wait()
	}
	return terminal(rec.state)
}

// handleList is GET /jobs: every registered job in submission order,
// without result payloads.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(recs))
	for i, rec := range recs {
		out[i] = rec.status(false)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

// handleStatus is GET /jobs/{id}: full status including Results once
// done. A finished job's Results bytes are served verbatim from the
// cache, so every read is byte-identical to the first.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rec.status(true))
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleHealthz is GET /healthz: 200 with a small status document while
// serving, 503 once draining — the conventional readiness contract.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	registered := len(s.jobs)
	queued := len(s.queue)
	s.mu.Unlock()
	body := struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptime_seconds"`
		Registered int     `json:"jobs_registered"`
		Queued     int     `json:"jobs_queued"`
		Workers    int     `json:"workers"`
	}{"ok", time.Since(s.start).Seconds(), registered, queued, s.opts.Workers}
	code := http.StatusOK
	if draining {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
