package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/digest"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ParseScheme resolves the short scheme names used on the command line
// and in job submissions.
func ParseScheme(name string) (config.Scheme, bool) {
	switch strings.ToLower(name) {
	case "dnuca":
		return config.CMPDNUCA, true
	case "dnuca2d":
		return config.CMPDNUCA2D, true
	case "snuca3d":
		return config.CMPSNUCA3D, true
	case "dnuca3d":
		return config.CMPDNUCA3D, true
	}
	return 0, false
}

// JobRequest is the POST /jobs body. Either set Config to a complete
// machine description, or name a Scheme and let the Table 4 defaults plus
// the optional overrides build one. Omitted warm/measure windows default
// to the CLI's 50k/250k; an explicit 0 is honored literally.
type JobRequest struct {
	Scheme    string `json:"scheme,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`

	WarmCycles    *uint64 `json:"warm_cycles,omitempty"`
	MeasureCycles *uint64 `json:"measure_cycles,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`

	// SampleInterval is the metrics sampling period in cycles; 0 selects
	// the server's default, so every job is streamable by default. Set
	// NoSamples to run without a sampler at all (no live stream).
	SampleInterval  uint64 `json:"sample_interval,omitempty"`
	NoSamples       bool   `json:"no_samples,omitempty"`
	ThermalInterval uint64 `json:"thermal_interval,omitempty"`
	RecordSpans     bool   `json:"record_spans,omitempty"`

	// DigestInterval, when non-zero, attaches the state-digest recorder
	// (runner.Job.DigestInterval): the job's Results carry the Digests
	// report, GET /jobs/{id} a digest summary, and /metrics the
	// nimsim_job_digest_info family. Unlike Shards it IS part of the job
	// identity — digesting adds the Digests field to the Results bytes,
	// so digested and undigested submissions must not share a cache entry.
	DigestInterval uint64 `json:"digest_interval,omitempty"`
	// DigestVerify, when true (and DigestInterval non-zero), makes the
	// worker rerun the job as a serial reference after the primary run
	// and compare the two digest streams, publishing any mismatch as
	// nimsim_job_digest_mismatch_cycle — a paid-for, on-demand audit of
	// the bit-identity contract (it roughly doubles the job's cost).
	// Like Shards it is NOT part of the job identity (it changes no
	// Results byte), so the flag on the submission that first registers
	// the job wins; coalesced and cached submissions inherit it.
	DigestVerify bool `json:"digest_verify,omitempty"`

	// Shards, when > 1, runs the job's network phase sharded across that
	// many layer goroutines (runner.Job.Shards). Results are bit-identical
	// to a serial run, so this is a latency knob only — it never changes
	// the job id, and a sharded submission can be answered from a serial
	// run's cache entry (and vice versa). The server clamps the value so
	// workers x shards stays within runtime.NumCPU().
	Shards int `json:"shards,omitempty"`

	// Config-building overrides (ignored when Config is given).
	Layers    int     `json:"layers,omitempty"`
	Pillars   int     `json:"pillars,omitempty"`
	L2MB      int     `json:"l2_mb,omitempty"`
	StackCPUs bool    `json:"stack_cpus,omitempty"`
	DTMPolicy string  `json:"dtm_policy,omitempty"`
	TripTempC float64 `json:"trip_temp_c,omitempty"`
	DutyCycle string  `json:"duty_cycle,omitempty"`

	// Config, when non-nil, is the complete machine description and
	// overrides every building field above.
	Config *config.Config `json:"config,omitempty"`
}

// buildJob normalizes a request into the runner job it describes, or
// rejects it. The returned job carries no hooks; the worker adds them.
func (s *Server) buildJob(req JobRequest) (runner.Job, error) {
	var cfg config.Config
	switch {
	case req.Config != nil:
		cfg = *req.Config
	default:
		schemeName := req.Scheme
		if schemeName == "" {
			schemeName = "dnuca3d"
		}
		sch, ok := ParseScheme(schemeName)
		if !ok {
			return runner.Job{}, fmt.Errorf("unknown scheme %q (want dnuca, dnuca2d, snuca3d, dnuca3d)", req.Scheme)
		}
		cfg = config.Default(sch)
		if req.Layers > 0 {
			cfg.Layers = req.Layers
		}
		if req.Pillars > 0 {
			cfg.NumPillars = req.Pillars
		}
		if req.L2MB > 0 {
			var err error
			if cfg, err = cfg.WithL2Size(req.L2MB); err != nil {
				return runner.Job{}, err
			}
		}
		cfg.StackCPUs = req.StackCPUs
		cfg.DTMPolicy = req.DTMPolicy
		cfg.TripTempC = req.TripTempC
		cfg.DutyCycle = req.DutyCycle
	}
	if err := cfg.Validate(); err != nil {
		return runner.Job{}, err
	}

	bench := req.Benchmark
	if bench == "" {
		bench = "mgrid"
	}
	warm, measure := uint64(50_000), uint64(250_000)
	if req.WarmCycles != nil {
		warm = *req.WarmCycles
	}
	if req.MeasureCycles != nil {
		measure = *req.MeasureCycles
	}
	sample := req.SampleInterval
	if sample == 0 && !req.NoSamples {
		sample = s.opts.DefaultSampleInterval
	}
	if req.NoSamples {
		sample = 0
	}
	thermal := req.ThermalInterval
	if cfg.DTMActive() && thermal == 0 {
		// DTM needs the thermal loop; default its step to the sampling
		// period (or the sampler default) instead of failing the job.
		thermal = sample
		if thermal == 0 {
			thermal = s.opts.DefaultSampleInterval
		}
	}
	// Cap intra-job parallelism so the pool's effective concurrency —
	// workers x shards — stays within the machine: each worker may fan a
	// job out over at most NumCPU/Workers shard goroutines. A request for
	// more is clamped, not rejected, because the result is bit-identical
	// either way.
	shards := req.Shards
	if maxShards := runtime.NumCPU() / s.opts.Workers; shards > maxShards {
		shards = maxShards
	}
	if shards < 1 {
		shards = 1
	}
	return runner.Job{
		Config:          cfg,
		Benchmark:       bench,
		WarmCycles:      warm,
		MeasureCycles:   measure,
		Seed:            req.Seed,
		SampleInterval:  sample,
		ThermalInterval: thermal,
		Shards:          shards,
		RecordSpans:     req.RecordSpans,
		DigestInterval:  req.DigestInterval,
	}, nil
}

// jobIdentity is the canonical cache key: every field that can change a
// deterministic run's observable output. Hashing its JSON encoding gives
// the job id — identical submissions collapse onto one registry entry,
// which is the whole caching and coalescing mechanism.
//
// Job.Shards is deliberately absent: the sharding contract
// (core.System.SetShards) makes a sharded run bit-identical to a serial
// one, so submissions differing only in shard count MUST collapse onto
// the same entry — a serial run's cached results answer a sharded
// request byte-for-byte, and vice versa.
type jobIdentity struct {
	ConfigHash      string `json:"config_hash"`
	Benchmark       string `json:"benchmark"`
	WarmCycles      uint64 `json:"warm_cycles"`
	MeasureCycles   uint64 `json:"measure_cycles"`
	Seed            uint64 `json:"seed"`
	SampleInterval  uint64 `json:"sample_interval"`
	ThermalInterval uint64 `json:"thermal_interval"`
	RecordSpans     bool   `json:"record_spans"`
	DigestInterval  uint64 `json:"digest_interval"`
}

// jobID derives the registry key for a normalized runner job: 16 hex
// characters of the SHA-256 of the job's canonical identity.
func jobID(j runner.Job) string {
	ident := jobIdentity{
		ConfigHash:      config.CanonicalHash(j.Config),
		Benchmark:       j.Benchmark,
		WarmCycles:      j.WarmCycles,
		MeasureCycles:   j.MeasureCycles,
		Seed:            j.Seed,
		SampleInterval:  j.SampleInterval,
		ThermalInterval: j.ThermalInterval,
		RecordSpans:     j.RecordSpans,
		DigestInterval:  j.DigestInterval,
	}
	b, err := json.Marshal(ident)
	if err != nil {
		panic(fmt.Sprintf("serve: job identity encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one registry entry: the normalized runner job plus everything
// its worker has published so far. All mutable fields are guarded by mu;
// cond broadcasts on every publication (new row, fraction, state change)
// so SSE streams and ?wait=1 submissions can sleep instead of polling.
type job struct {
	mu   sync.Mutex
	cond *sync.Cond

	id  string
	run runner.Job // hook-free template; the worker adds hooks

	// verify records the first submission's DigestVerify request; the
	// worker acts on it after the primary run (see Server.runJob).
	verify bool

	state    string
	fraction float64
	submits  int // total POSTs that mapped here (1 + hits + coalesces)
	created  time.Time
	finished time.Time

	header   []string
	rows     [][]float64
	counters []stats.NameValue
	profile  *prof.Snapshot // latest host-side phase snapshot, nil until first chunk

	digest        *digest.Report // final digest report, nil unless the job digested
	droppedEvents uint64         // trace-ring events lost to backpressure (obs.RingSink)
	verified      bool           // serial reference rerun completed and streams compared
	mismatch      bool           // the reference comparison found a divergence
	mismatchCycle uint64
	mismatchLane  string

	resultJSON json.RawMessage // canonical Results bytes, marshaled once
	errMsg     string
}

func newJob(id string, run runner.Job, now time.Time) *job {
	rec := &job{id: id, run: run, state: StateQueued, submits: 1, created: now}
	rec.cond = sync.NewCond(&rec.mu)
	return rec
}

// terminal reports whether state is one a job never leaves.
func terminal(state string) bool { return state == StateDone || state == StateFailed }

func (rec *job) setState(state string) {
	rec.mu.Lock()
	rec.state = state
	rec.cond.Broadcast()
	rec.mu.Unlock()
}

// setFraction is the runner Progress hook.
func (rec *job) setFraction(f float64) {
	rec.mu.Lock()
	rec.fraction = f
	rec.cond.Broadcast()
	rec.mu.Unlock()
}

// setCounters is the runner OnStats hook; snap is already a self-owned
// copy (stats.Set.Snapshot), so the record can retain it as-is.
func (rec *job) setCounters(snap []stats.NameValue) {
	rec.mu.Lock()
	rec.counters = snap
	rec.mu.Unlock()
}

// setProfile is the runner OnProfile hook: the latest host-side phase
// snapshot. Snapshots are self-contained values, so the record just
// swaps in the newest; /metrics reads the pointer under mu and never
// mutates through it.
func (rec *job) setProfile(snap prof.Snapshot) {
	rec.mu.Lock()
	rec.profile = &snap
	rec.mu.Unlock()
}

// appendRow is the runner OnSample hook. The sampler owns its slices, so
// the row is copied before publication; the header is copied once.
func (rec *job) appendRow(header []string, row []float64) {
	rec.mu.Lock()
	if rec.header == nil {
		rec.header = append([]string(nil), header...)
	}
	rec.rows = append(rec.rows, append([]float64(nil), row...))
	rec.cond.Broadcast()
	rec.mu.Unlock()
}

// setDigest publishes the run's final digest report and the trace-ring
// drop count alongside it (both land together, from the run's Results).
func (rec *job) setDigest(rep *digest.Report, dropped uint64) {
	rec.mu.Lock()
	rec.digest = rep
	rec.droppedEvents = dropped
	rec.mu.Unlock()
}

// setVerify publishes the outcome of the serial-reference digest
// comparison (see Server.runJob).
func (rec *job) setVerify(mismatch bool, cycle uint64, lane string) {
	rec.mu.Lock()
	rec.verified = true
	rec.mismatch = mismatch
	rec.mismatchCycle = cycle
	rec.mismatchLane = lane
	rec.mu.Unlock()
}

// finish publishes the final Results bytes and flips the state to done.
// The bytes are marshaled exactly once and served verbatim from then on,
// which is what makes a cache hit byte-identical to the first run.
func (rec *job) finish(resultJSON []byte, now time.Time) {
	rec.mu.Lock()
	rec.resultJSON = resultJSON
	rec.fraction = 1
	rec.state = StateDone
	rec.finished = now
	rec.cond.Broadcast()
	rec.mu.Unlock()
}

func (rec *job) fail(err error, now time.Time) {
	rec.mu.Lock()
	rec.errMsg = err.Error()
	rec.state = StateFailed
	rec.finished = now
	rec.cond.Broadcast()
	rec.mu.Unlock()
}

// JobStatus is the wire representation of a job on /jobs and /jobs/{id}.
type JobStatus struct {
	ID         string          `json:"id"`
	State      string          `json:"state"`
	Fraction   float64         `json:"fraction"`
	Submits    int             `json:"submits"`
	Scheme     string          `json:"scheme"`
	Benchmark  string          `json:"benchmark"`
	ConfigHash string          `json:"config_hash"`
	Created    time.Time       `json:"created"`
	Rows       int             `json:"rows_streamed"`
	Error      string          `json:"error,omitempty"`
	Digest     *DigestStatus   `json:"digest,omitempty"`
	Results    json.RawMessage `json:"results,omitempty"`
}

// DigestStatus summarizes a digested job on the status API: the run's
// final 64-bit state digest plus, when DigestVerify was requested, the
// outcome of the serial-reference comparison.
type DigestStatus struct {
	Digest   string `json:"digest"`
	Interval uint64 `json:"interval"`
	Records  int    `json:"records"`
	// Verified reports that the serial reference rerun completed and its
	// digest stream was compared against the primary run's.
	Verified bool `json:"verified,omitempty"`
	// Mismatch, MismatchCycle, and MismatchLane report the comparison's
	// first point of departure, present only when the streams differed.
	Mismatch      bool   `json:"mismatch,omitempty"`
	MismatchCycle uint64 `json:"mismatch_cycle,omitempty"`
	MismatchLane  string `json:"mismatch_lane,omitempty"`
}

// status snapshots the record for the JSON API. withResults selects
// whether the (possibly large) Results payload rides along.
func (rec *job) status(withResults bool) JobStatus {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	st := JobStatus{
		ID:         rec.id,
		State:      rec.state,
		Fraction:   rec.fraction,
		Submits:    rec.submits,
		Scheme:     rec.run.Config.Scheme.String(),
		Benchmark:  rec.run.Benchmark,
		ConfigHash: config.CanonicalHash(rec.run.Config),
		Created:    rec.created,
		Rows:       len(rec.rows),
		Error:      rec.errMsg,
	}
	if rec.digest != nil {
		st.Digest = &DigestStatus{
			Digest:        rec.digest.Digest,
			Interval:      rec.digest.Interval,
			Records:       rec.digest.Records,
			Verified:      rec.verified,
			Mismatch:      rec.mismatch,
			MismatchCycle: rec.mismatchCycle,
			MismatchLane:  rec.mismatchLane,
		}
	}
	if withResults {
		st.Results = rec.resultJSON
	}
	return st
}
