// Package serve turns the simulator into a long-running
// simulation-as-a-service daemon: an HTTP/JSON job API over the
// internal/runner worker pool, with live interval-metrics streaming,
// Prometheus-format daemon metrics, health reporting, and a result cache
// keyed by the canonical configuration hash.
//
// The serving tier leans on one property end to end: the simulator is
// deterministic. A job is fully identified by its configuration hash
// (config.CanonicalHash) plus the workload parameters (benchmark, warm
// and measure windows, seed, sampling and thermal intervals, span
// recording); two submissions with the same identity must produce the
// same Results, byte for byte. That makes finished results cacheable
// forever — the registry doubles as the cache — and makes it safe to
// coalesce identical in-flight submissions onto a single execution: both
// clients observe the one job.
//
// Endpoints:
//
//	POST /jobs             submit a job (JSON body; ?wait=1 blocks until done)
//	GET  /jobs             list all registered jobs
//	GET  /jobs/{id}        status: state, completion fraction, final Results
//	GET  /jobs/{id}/stream live SSE feed of the job's sampled metrics rows
//	GET  /metrics          Prometheus text format: daemon + per-job counters
//	GET  /healthz          liveness/readiness (503 while draining)
//	/debug/pprof/*         optional, only when Options.EnablePprof is set
//
// Concurrency model: each job runs on exactly one worker goroutine (the
// bounded pool), which owns the simulator. Everything the HTTP handlers
// read — completion fraction, sampled rows, counter snapshots, the final
// marshaled Results — is published by that goroutine through the job
// record's mutex, via the runner's Progress/OnSample/OnStats hooks and
// stats.Set.Snapshot. Handlers never touch a live simulator.
package serve
