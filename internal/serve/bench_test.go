package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
)

// benchJob is the workload both arms simulate: small enough that the
// serving overhead is a visible fraction of the round-trip, big enough
// that the measurement is a real simulation and not pure HTTP.
const (
	benchWarm    = 1_000
	benchMeasure = 10_000
)

// BenchmarkServeOverhead measures the serving tax: the same job run by a
// direct runner.Run call versus a POST /jobs?wait=1 round-trip to the
// daemon over a real localhost listener. The seed varies per iteration so
// every daemon submission is a cache miss — otherwise the cache would
// answer from the second iteration on and the comparison would be
// meaningless.
func BenchmarkServeOverhead(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := runner.Job{
				Config:        config.Default(config.CMPDNUCA3D),
				Benchmark:     "mgrid",
				WarmCycles:    benchWarm,
				MeasureCycles: benchMeasure,
				Seed:          uint64(i) + 1,
			}
			res := runner.Run([]runner.Job{j}, 1)[0]
			if res.Err != nil {
				b.Fatalf("direct run: %v", res.Err)
			}
		}
	})

	b.Run("daemon", func(b *testing.B) {
		s := New(Options{Workers: 1})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"scheme":"dnuca3d","benchmark":"mgrid","warm_cycles":%d,"measure_cycles":%d,"no_samples":true,"seed":%d}`,
				benchWarm, benchMeasure, uint64(i)+1)
			resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatalf("submit: %v", err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("submit: status %d", resp.StatusCode)
			}
			if hit := resp.Header.Get("X-Cache"); hit != "miss" {
				b.Fatalf("iteration %d was X-Cache %q, want miss (seed not defeating cache?)", i, hit)
			}
			resp.Body.Close()
		}
	})
}
