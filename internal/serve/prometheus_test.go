package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one exposition sample: name, optional label set,
// value. Label values are quoted strings with \" and \\ escapes.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? (\S+)$`)

// parseExposition validates the Prometheus text format line by line and
// returns the samples grouped by family name. It enforces the contract
// the satellite asks for: every family that emits a sample has # HELP
// and # TYPE headers, and every sample line parses.
func parseExposition(t *testing.T, body string) map[string][]string {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]bool{}
	samples := map[string][]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("HELP line without help text: %q", line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || (kind != "counter" && kind != "gauge") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, value := m[1], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("sample %q has non-numeric value %q", name, value)
		}
		samples[name] = append(samples[name], line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name := range samples {
		if !helped[name] {
			t.Errorf("family %s has samples but no # HELP", name)
		}
		if !typed[name] {
			t.Errorf("family %s has samples but no # TYPE", name)
		}
	}
	return samples
}

// TestMetricsExposition runs a real job to completion and checks that
// the /metrics output parses as Prometheus text exposition, that every
// family carries HELP/TYPE headers, and that the always-on host profiler
// surfaced the per-job phase and throughput gauges.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, body := post(t, ts.URL+"/jobs?wait=1", tinyBody(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs?wait=1 = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job state = %q: %s", st.State, st.Error)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	samples := parseExposition(t, string(body))

	for _, fam := range []string{
		"nimsim_build_info", "nimsim_jobs_inflight",
		"nimsim_job_phase_seconds", "nimsim_job_cycles_per_sec",
	} {
		if len(samples[fam]) == 0 {
			t.Errorf("no %s samples in exposition", fam)
		}
	}

	build := samples["nimsim_build_info"]
	if len(build) != 1 || !strings.Contains(build[0], `go_version="go`) ||
		!strings.Contains(build[0], `version="`) || !strings.HasSuffix(build[0], " 1") {
		t.Errorf("nimsim_build_info = %q, want one sample with version labels and value 1", build)
	}

	// The finished job must carry phase attribution and a throughput
	// figure — the profiler is always on, no opt-in knob.
	jobLabel := fmt.Sprintf("{job=%q}", st.ID)
	var cps string
	for _, line := range samples["nimsim_job_cycles_per_sec"] {
		if strings.Contains(line, jobLabel) {
			cps = line
		}
	}
	if cps == "" {
		t.Fatalf("no nimsim_job_cycles_per_sec sample for job %s:\n%s", st.ID, body)
	}
	v, err := strconv.ParseFloat(cps[strings.LastIndex(cps, " ")+1:], 64)
	if err != nil || v <= 0 {
		t.Errorf("cycles/sec sample %q, want a positive value", cps)
	}
	phases := 0
	for _, line := range samples["nimsim_job_phase_seconds"] {
		if strings.Contains(line, fmt.Sprintf("job=%q", st.ID)) {
			phases++
		}
	}
	if phases < 2 {
		t.Errorf("job %s has %d phase samples, want several (cpu, protocol, net, ...)", st.ID, phases)
	}
}
