package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// TestShardedJobIdentity pins the cache contract for intra-job
// parallelism: Shards is a latency knob, not an identity field, so
// submissions differing only in shard count must hash to the same job id
// and collapse onto one registry entry.
func TestShardedJobIdentity(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	base := JobRequest{Scheme: "dnuca3d", Benchmark: "mgrid", Seed: 7}
	ids := make(map[string]bool)
	for _, shards := range []int{0, 1, 2, 4, 64} {
		req := base
		req.Shards = shards
		job, err := s.buildJob(req)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		ids[jobID(job)] = true
	}
	if len(ids) != 1 {
		t.Fatalf("shard counts produced %d distinct job ids, want 1", len(ids))
	}
}

// TestShardedConcurrencyClamp pins the workers x shards <= NumCPU cap: a
// request for more shards than the per-worker budget is clamped, never
// rejected (the result is bit-identical either way).
func TestShardedConcurrencyClamp(t *testing.T) {
	ncpu := runtime.NumCPU()
	for _, tc := range []struct{ workers, want, req int }{
		{workers: 1, req: ncpu, want: ncpu},
		{workers: 1, req: ncpu + 5, want: ncpu},
		{workers: ncpu, req: 8, want: 1},
		{workers: 1, req: 0, want: 1},
	} {
		s := New(Options{Workers: tc.workers})
		job, err := s.buildJob(JobRequest{Scheme: "dnuca3d", Shards: tc.req})
		if err != nil {
			t.Fatal(err)
		}
		if job.Shards != tc.want {
			t.Errorf("workers=%d shards=%d: job.Shards = %d, want %d",
				tc.workers, tc.req, job.Shards, tc.want)
		}
		s.Close()
	}
}

// TestShardedSubmitCacheAndMetrics runs a sharded submission end to end:
// the job completes, a serial resubmission is a cache hit (same id, same
// bytes), and /metrics carries the per-job shard-count gauge.
func TestShardedSubmitCacheAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	body := `{
		"scheme": "dnuca3d", "benchmark": "mgrid", "layers": 4, "stack_cpus": true,
		"warm_cycles": 1000, "measure_cycles": 4000,
		"sample_interval": 500, "seed": 9, "shards": 2
	}`
	resp, out := post(t, ts.URL+"/jobs?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs?wait=1 = %d: %s", resp.StatusCode, out)
	}

	serial := strings.Replace(body, `"shards": 2`, `"shards": 1`, 1)
	resp2, out2 := post(t, ts.URL+"/jobs", serial)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("serial resubmission: status %d, X-Cache %q, want 200 hit: %s",
			resp2.StatusCode, resp2.Header.Get("X-Cache"), out2)
	}

	wantShards := runtime.NumCPU() / s.opts.Workers
	if wantShards < 1 {
		wantShards = 1
	}
	if wantShards > 2 {
		wantShards = 2
	}
	_, metrics := get(t, ts.URL+"/metrics")
	s.mu.Lock()
	var gotShards int
	for _, rec := range s.jobs {
		gotShards = rec.run.Shards
	}
	s.mu.Unlock()
	if gotShards != wantShards {
		t.Fatalf("registered job Shards = %d, want %d (NumCPU=%d, workers=1, requested 2)",
			gotShards, wantShards, runtime.NumCPU())
	}
	line := fmt.Sprintf("} %d\n", wantShards)
	if !strings.Contains(string(metrics), "nimsim_job_shards{job=") ||
		!strings.Contains(string(metrics), line) {
		t.Fatalf("/metrics nimsim_job_shards line missing value %d:\n%s", wantShards, metrics)
	}
}
