package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestJobIdentityDefaultsVsExplicit guards the cache key against
// normalization drift: a submission that relies on every default and one
// that spells the same values out explicitly describe the same run, so
// they must hash to the same job id.
func TestJobIdentityDefaultsVsExplicit(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	warm, measure := uint64(50_000), uint64(250_000)
	explicit := JobRequest{
		Scheme:         "dnuca3d",
		Benchmark:      "mgrid",
		WarmCycles:     &warm,
		MeasureCycles:  &measure,
		SampleInterval: s.opts.DefaultSampleInterval,
	}
	implicit := JobRequest{} // every field defaulted

	ja, err := s.buildJob(explicit)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.buildJob(implicit)
	if err != nil {
		t.Fatal(err)
	}
	if jobID(ja) != jobID(jb) {
		t.Errorf("explicit defaults hash to %s, implicit to %s — cache key drift",
			jobID(ja), jobID(jb))
	}
}

// TestJobIdentityFieldOrder: JSON field order is presentation, not
// semantics — two orderings of the same submission must collapse onto
// one id through the full decode -> normalize -> hash pipeline.
func TestJobIdentityFieldOrder(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	bodies := []string{
		`{"scheme":"dnuca3d","benchmark":"swim","seed":7,"warm_cycles":1000,"measure_cycles":4000,"layers":4,"stack_cpus":true}`,
		`{"stack_cpus":true,"layers":4,"measure_cycles":4000,"warm_cycles":1000,"seed":7,"benchmark":"swim","scheme":"dnuca3d"}`,
	}
	ids := make(map[string]bool)
	for _, body := range bodies {
		var req JobRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		j, err := s.buildJob(req)
		if err != nil {
			t.Fatal(err)
		}
		ids[jobID(j)] = true
	}
	if len(ids) != 1 {
		t.Errorf("field order produced %d distinct job ids, want 1", len(ids))
	}
}

// TestJobIdentityConfigRoundTrip pins config.CanonicalHash against the
// two ways a machine reaches the server: named scheme (the server builds
// the config) and explicit Config (the client ships one, typically after
// a JSON round trip). The same machine must hash identically on both
// paths, and a marshal/unmarshal cycle must not change the hash.
func TestJobIdentityConfigRoundTrip(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	cfg := config.Default(config.CMPDNUCA3D)
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var round config.Config
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if config.CanonicalHash(cfg) != config.CanonicalHash(round) {
		t.Fatal("CanonicalHash changed across a JSON round trip")
	}

	byScheme, err := s.buildJob(JobRequest{Scheme: "dnuca3d"})
	if err != nil {
		t.Fatal(err)
	}
	byConfig, err := s.buildJob(JobRequest{Config: &round})
	if err != nil {
		t.Fatal(err)
	}
	if jobID(byScheme) != jobID(byConfig) {
		t.Errorf("scheme-built job %s != explicit-config job %s for the same machine",
			jobID(byScheme), jobID(byConfig))
	}
}

// TestDigestJobIdentity pins the identity rules for the digest fields:
// DigestInterval changes the Results bytes (the Digests report rides in
// them), so it must split the cache; DigestVerify changes nothing a
// client reads back, so — like Shards — it must not.
func TestDigestJobIdentity(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	base := JobRequest{Scheme: "dnuca3d", Benchmark: "mgrid", Seed: 3}
	id := func(req JobRequest) string {
		j, err := s.buildJob(req)
		if err != nil {
			t.Fatal(err)
		}
		return jobID(j)
	}
	plain := id(base)

	digested := base
	digested.DigestInterval = 500
	if id(digested) == plain {
		t.Error("digest_interval did not change the job id — digested and plain runs would share a cache entry")
	}

	verified := digested
	verified.DigestVerify = true
	if id(verified) != id(digested) {
		t.Error("digest_verify changed the job id — verification is an audit, not a different run")
	}
}

// TestDigestJobEndToEnd submits a digested, verified job and checks the
// whole surface: the status API's digest summary, the Results payload,
// and the /metrics digest and dropped-event families.
func TestDigestJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	body := `{
		"scheme": "dnuca3d", "benchmark": "mgrid", "layers": 4, "stack_cpus": true,
		"warm_cycles": 1000, "measure_cycles": 4000, "sample_interval": 500,
		"seed": 5, "shards": 2, "digest_interval": 500, "digest_verify": true
	}`
	resp, out := post(t, ts.URL+"/jobs?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs?wait=1 = %d: %s", resp.StatusCode, out)
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job state %q: %s", st.State, out)
	}
	if st.Digest == nil {
		t.Fatalf("no digest summary on a digested job: %s", out)
	}
	if len(st.Digest.Digest) != 16 || st.Digest.Interval != 500 || st.Digest.Records != 8 {
		t.Errorf("digest summary wrong: %+v", st.Digest)
	}
	if !st.Digest.Verified {
		t.Error("digest_verify requested but job not verified")
	}
	if st.Digest.Mismatch {
		t.Errorf("sharded run mismatched its serial reference at cycle %d in %s — bit-identity broken",
			st.Digest.MismatchCycle, st.Digest.MismatchLane)
	}
	if !strings.Contains(string(st.Results), `"Digests"`) {
		t.Error("Results payload carries no Digests report")
	}

	_, metrics := get(t, ts.URL+"/metrics")
	m := string(metrics)
	if !strings.Contains(m, `nimsim_job_digest_info{job=`) ||
		!strings.Contains(m, `digest="`+st.Digest.Digest+`"`) {
		t.Errorf("/metrics missing nimsim_job_digest_info for digest %s:\n%s", st.Digest.Digest, m)
	}
	if !strings.Contains(m, `verified="true"`) {
		t.Errorf("/metrics digest info not marked verified:\n%s", m)
	}
	if !strings.Contains(m, `nimsim_job_dropped_events{job=`) {
		t.Errorf("/metrics missing nimsim_job_dropped_events:\n%s", m)
	}
	if strings.Contains(m, "nimsim_job_digest_mismatch_cycle{") {
		t.Errorf("/metrics reports a digest mismatch for a matching run:\n%s", m)
	}
}
