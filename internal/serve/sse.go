package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// handleStream is GET /jobs/{id}/stream: a Server-Sent Events feed of the
// job's sampled interval-metrics rows — the obs.Sampler's JSON rows,
// including the thermal/DTM columns when the job attached that pipeline —
// live while the job runs. Event types:
//
//	header  the column list, once, before the first row
//	row     one sampled row as a JSON array (same order as header)
//	done    the job reached a terminal success state; the stream ends
//	error   the job failed; data carries the message; the stream ends
//
// A subscriber that connects mid-run first receives every row sampled so
// far (the record retains them all), then follows live; connecting after
// completion replays the full series and closes. No rows are ever
// dropped: the stream reads the record's append-only row log by index,
// sleeping on its condition variable between publications.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering the feed
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.m.sseClients.Add(1)
	defer s.m.sseClients.Add(-1)

	// Wake the wait loop when the client goes away, so a disconnected
	// stream does not pin the handler until the next row.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		rec.mu.Lock()
		rec.cond.Broadcast()
		rec.mu.Unlock()
	})
	defer stop()

	sent := 0
	headerSent := false
	for {
		rec.mu.Lock()
		for sent >= len(rec.rows) && !terminal(rec.state) && ctx.Err() == nil {
			rec.cond.Wait()
		}
		pending := rec.rows[sent:]
		state := rec.state
		errMsg := rec.errMsg
		header := rec.header
		rec.mu.Unlock()

		if ctx.Err() != nil {
			return
		}
		if !headerSent && header != nil {
			if err := writeEvent(w, "header", header); err != nil {
				return
			}
			headerSent = true
		}
		for _, row := range pending {
			if err := writeEvent(w, "row", row); err != nil {
				return
			}
		}
		sent += len(pending)
		flusher.Flush()

		if terminal(state) && sent == rec.rowCount() {
			if state == StateFailed {
				_ = writeEvent(w, "error", struct {
					Error string `json:"error"`
				}{errMsg})
			} else {
				_ = writeEvent(w, "done", struct {
					State string `json:"state"`
					Rows  int    `json:"rows"`
				}{state, sent})
			}
			flusher.Flush()
			return
		}
	}
}

// rowCount reads the published row total (terminal records are immutable,
// so this closes the check-then-finish race in the stream loop exactly).
func (rec *job) rowCount() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return len(rec.rows)
}

// writeEvent emits one SSE frame: "event: <type>" plus a JSON data line.
func writeEvent(w http.ResponseWriter, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
