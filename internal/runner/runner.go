package runner

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Job describes one warmed, settled, measured simulation. The zero values
// of WarmCycles and MeasureCycles are honored literally (a zero-cycle
// window), so callers should populate both.
type Job struct {
	// Label is an optional caller-chosen tag carried through to the
	// Result; the runner never interprets it.
	Label string
	// Config is the complete machine description, including the scheme
	// and any per-job overrides (L2 size, layer count, pillar count, ...).
	Config config.Config
	// Benchmark names a SPEC OMP profile (trace.ProfileByName) to run on
	// every core.
	Benchmark string
	// WarmCycles settles the warmed caches before measurement begins.
	WarmCycles uint64
	// MeasureCycles is the statistics window.
	MeasureCycles uint64
	// Seed makes the run deterministic.
	Seed uint64
	// SampleInterval, when non-zero, attaches an interval metrics sampler
	// (core.System.AttachSampler) for the measurement window; its time
	// series lands in Result.Samples. Zero leaves sampling off, costing
	// nothing.
	SampleInterval uint64
	// ThermalInterval, when non-zero, attaches the activity-driven
	// power/thermal pipeline (core.System.AttachThermal) stepping the
	// transient RC grid every ThermalInterval cycles of the measurement
	// window; the run-level report lands in Results.Thermal, and any
	// attached sampler gains the thermal columns. Zero leaves the pipeline
	// off, costing nothing.
	//
	// When Config.DTMActive() (Config.DTMPolicy names any policy), the
	// runner attaches the DTM controller instead (core.System.AttachDTM,
	// which subsumes the thermal attach at the same interval), and
	// Results.DTM carries the management report. DTM needs the thermal
	// loop, so a DTM-active job with a zero ThermalInterval fails.
	ThermalInterval uint64
	// Shards, when > 1, runs the simulation's network phase sharded
	// across that many layer goroutines (core.System.SetShards). A
	// sharded run is bit-identical to a serial one — same Results, same
	// samples — so this is purely a wall-clock knob for the latency of a
	// single job; it composes multiplicatively with Pool.Workers, so
	// callers sweeping many jobs should keep Workers x Shards within the
	// machine's core count. Values <= 1, single-layer configs, and the
	// VerticalNoC ablation run the historical serial path.
	Shards int

	// DigestInterval, when non-zero, attaches the state-digest recorder
	// (core.System.AttachDigest) snapshotting every DigestInterval cycles
	// of the measurement window; the summary lands in Results.Digests
	// (whose in-memory Stream carries the full snapshot sequence), and
	// any attached sampler gains the digest columns. Digesting is a pure
	// observation: Results minus the Digests field are bit-identical to
	// an undigested run. Zero leaves it off, costing nothing.
	DigestInterval uint64
	// DigestStart delays the digest attach by that many measurement
	// cycles: the window's first DigestStart cycles run undigested, then
	// the recorder attaches and snapshots the rest. This is the
	// divergence bisector's refinement knob — rerun a window digesting
	// every cycle, but only over the coarse-divergent tail — and it
	// changes Results.Digests coverage accordingly. Ignored when
	// DigestInterval is zero; a DigestStart past the window clamps to it.
	// A late-attached recorder registers after the sampler, so the
	// sampler digest columns require DigestStart == 0.
	DigestStart uint64

	// RecordSpans attaches a transaction span recorder
	// (core.System.AttachSpans), so Results.Breakdown carries the
	// per-component latency decomposition of the measurement window. The
	// recorder attaches before warm-up and is reset with the statistics,
	// making the breakdown cover exactly the transactions the measured
	// latency means do. False leaves span tracing off, costing nothing.
	RecordSpans bool

	// Progress, when non-nil, receives the job's completion fraction —
	// warm+measure cycles executed over the total — as the simulation
	// advances. The sequence is monotonically non-decreasing, stays in
	// [0, 1], and always ends with exactly 1.0 (including for zero-cycle
	// windows). Setting it makes the runner advance the machine in
	// bounded chunks instead of two long Run calls; chunked execution is
	// cycle-for-cycle identical to unchunked (the engine's idle skip
	// resumes across chunk boundaries), so Results are unchanged. Calls
	// arrive on the worker goroutine executing this job.
	Progress func(fraction float64)

	// OnSample, when non-nil (and SampleInterval non-zero), streams each
	// sampled interval-metrics row the moment it is taken, via the
	// sampler's row sink (obs.Sampler.SetRowSink): header is the column
	// list (first entry "cycle"), row the freshly appended values. The
	// slices are owned by the sampler — copy to retain. Calls arrive on
	// the worker goroutine; hand the data off quickly (the simulated
	// clock is stopped while the sink runs). Result.Samples still carries
	// the complete series at the end.
	OnSample func(header []string, row []float64)

	// OnStats, when non-nil, receives a race-safe snapshot of the
	// machine's counter registry (core.System.StatsRegistry) after each
	// measurement chunk and once more at completion. The snapshot is
	// taken between engine runs on the worker goroutine and shares no
	// memory with the live counters, so the receiver may publish it to
	// other goroutines as-is — the serving tier's /metrics reads these.
	// Setting it implies chunked execution, as for Progress.
	OnStats func(snap []stats.NameValue)

	// Profile attaches the host-side phase profiler
	// (core.System.AttachProfile) before warm-up, so Results.Profile
	// carries the whole run's wall-clock attribution — per-phase shares,
	// shard barrier-wait, throughput windows. Host-side only: a profiled
	// job's Results (Profile field aside) are bit-identical to an
	// unprofiled job's. False leaves it off, costing nothing.
	Profile bool

	// OnProfile, when non-nil (and Profile true), receives a cheap live
	// snapshot of the profiler — wall time, cycles/sec, per-phase
	// seconds, barrier-wait fraction — after each measurement chunk and
	// once more at completion; the serving tier's per-job phase gauges
	// read these. The snapshot is a value taken between engine runs on
	// the worker goroutine. Setting it implies chunked execution, as for
	// Progress.
	OnProfile func(snap prof.Snapshot)
}

// Result pairs a Job with its outcome. Exactly one of Results/Err is
// meaningful: Err != nil means the job failed and Results is zero.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// Job echoes the job that produced this result.
	Job Job
	// Results is the measurement summary for a successful run.
	Results core.Results
	// Err captures a per-job failure (unknown benchmark, invalid config,
	// or a recovered simulation panic). A failed job never aborts the
	// surrounding sweep.
	Err error
	// Samples is the per-job interval metrics time series, present only
	// when Job.SampleInterval was non-zero and the job succeeded.
	Samples *obs.TimeSeries
}

// Pool is a bounded worker pool for simulation sweeps. The zero value is
// ready to use and runs on runtime.GOMAXPROCS(0) workers.
type Pool struct {
	// Workers bounds the number of concurrently running simulations.
	// Values <= 0 select runtime.GOMAXPROCS(0). Workers == 1 runs the
	// jobs sequentially on the calling goroutine, preserving the
	// pre-runner behavior exactly.
	Workers int
	// Progress, when non-nil, is invoked once per finished job with the
	// number of jobs done so far, the total, and the finished job's
	// result. Calls are serialized and arrive in completion order (which
	// under parallelism is not input order — use Result.Index).
	Progress func(done, total int, r Result)
}

// Run executes every job and returns one Result per job, in input order
// regardless of the completion order. It never returns an error itself:
// per-job failures land in the corresponding Result.Err, so one bad job
// cannot take down a long sweep.
func (p *Pool) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	if workers == 1 {
		for i, j := range jobs {
			results[i] = runOne(i, j)
			if p.Progress != nil {
				p.Progress(i+1, len(jobs), results[i])
			}
		}
		return results
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done and serializes Progress
		done int
		next = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				r := runOne(i, jobs[i])
				results[i] = r
				if p.Progress != nil {
					mu.Lock()
					done++
					p.Progress(done, len(jobs), r)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Run executes jobs on a default pool with the given worker bound; see
// Pool.Run for the ordering and error-capture contract.
func Run(jobs []Job, workers int) []Result {
	p := Pool{Workers: workers}
	return p.Run(jobs)
}

// runOne builds, warms, settles, and measures one simulation, converting
// any failure — including a panic inside the simulator — into Result.Err.
func runOne(i int, j Job) (res Result) {
	res = Result{Index: i, Job: j}
	defer func() {
		if v := recover(); v != nil {
			res.Err = fmt.Errorf("runner: job %d (%s on %s) panicked: %v",
				i, j.Config.Scheme, j.Benchmark, v)
			res.Results = core.Results{}
		}
	}()
	bench, ok := trace.ProfileByName(j.Benchmark, j.Config.NumCPUs)
	if !ok {
		res.Err = fmt.Errorf("runner: unknown benchmark %q", j.Benchmark)
		return res
	}
	sys, err := core.NewSystem(j.Config, bench, j.Seed)
	if err != nil {
		res.Err = err
		return res
	}
	defer sys.Close()
	if j.Shards > 1 {
		sys.SetShards(j.Shards)
	}
	if j.RecordSpans {
		// Before warm-up, so transactions in flight across ResetStats carry
		// spans and the breakdown matches the measured means exactly.
		sys.AttachSpans()
	}
	var rec *prof.Recorder
	if j.Profile {
		// Before warm-up too: the profiler attributes host time, and warm
		// cycles cost host time worth seeing in the dominance table.
		rec = sys.AttachProfile()
	}
	sys.Warm(j.Seed)
	sys.Start()
	// Progress spans both windows proportionally: the warm phase covers
	// [0, warmFrac], the measurement phase [warmFrac, 1].
	total := j.WarmCycles + j.MeasureCycles
	warmFrac := 0.0
	if total > 0 {
		warmFrac = float64(j.WarmCycles) / float64(total)
	}
	runChunked(sys, j, rec, j.WarmCycles, 0, warmFrac, false)
	sys.ResetStats()
	if j.ThermalInterval > 0 {
		// Before the sampler: the tracker must tick (flushing its power
		// window and stepping the grid) before the sampler reads the
		// thermal columns.
		if j.Config.DTMActive() {
			if _, err := sys.AttachDTM(j.ThermalInterval); err != nil {
				res.Err = err
				return res
			}
		} else {
			sys.AttachThermal(j.ThermalInterval)
		}
	} else if j.Config.DTMActive() {
		res.Err = fmt.Errorf("runner: job %d sets DTMPolicy=%q but no ThermalInterval (DTM needs the thermal loop)",
			i, j.Config.DTMPolicy)
		return res
	}
	// Digest recorder before the sampler, so the sampler's digest columns
	// read the snapshot the recorder just took at the same cycle. A
	// non-zero DigestStart defers the attach into the window instead.
	digestStart := uint64(0)
	if j.DigestInterval > 0 {
		digestStart = j.DigestStart
		if digestStart > j.MeasureCycles {
			digestStart = j.MeasureCycles
		}
		if digestStart == 0 {
			sys.AttachDigest(j.DigestInterval).Reserve(int(j.MeasureCycles/j.DigestInterval) + 1)
		}
	}
	var sampler *obs.Sampler
	if j.SampleInterval > 0 {
		sampler = sys.AttachSampler(j.SampleInterval)
		if j.OnSample != nil {
			sampler.SetRowSink(j.OnSample)
		}
	}
	if digestStart > 0 {
		// Split the window at the deferred attach point; both segments are
		// ordinary chunked runs, so progress/stats hooks see one window.
		measureFrac := 1 - warmFrac
		startFrac := measureFrac * float64(digestStart) / float64(j.MeasureCycles)
		runChunked(sys, j, rec, digestStart, warmFrac, startFrac, true)
		rest := j.MeasureCycles - digestStart
		sys.AttachDigest(j.DigestInterval).Reserve(int(rest/j.DigestInterval) + 1)
		runChunked(sys, j, rec, rest, warmFrac+startFrac, measureFrac-startFrac, true)
	} else {
		runChunked(sys, j, rec, j.MeasureCycles, warmFrac, 1-warmFrac, true)
	}
	if j.Progress != nil {
		j.Progress(1)
	}
	if j.OnStats != nil {
		j.OnStats(sys.StatsRegistry().Snapshot())
	}
	if j.OnProfile != nil && rec != nil {
		j.OnProfile(rec.Snap())
	}
	res.Results = sys.Results()
	if sampler != nil {
		res.Samples = sampler.Series()
	}
	return res
}

// progressChunks bounds how many Run calls a chunked phase splits into;
// 64 keeps the per-call overhead invisible (each chunk is thousands of
// cycles for realistic windows) while giving ~1.5% progress granularity.
const progressChunks = 64

// runChunked advances the machine by cycles, either in one Run call (no
// hooks set — the historical path, zero behavior change) or in up to
// progressChunks bounded chunks, reporting base+span*done/cycles after
// each. Chunked execution is cycle-for-cycle identical to a single Run:
// the engine's idle-cycle skip restarts at each chunk boundary and the
// skipped steps are no-ops, so only the observation points differ.
// measuring gates the OnStats hook to the measurement window, where the
// counters mean something.
func runChunked(sys *core.System, j Job, rec *prof.Recorder, cycles uint64, base, span float64, measuring bool) {
	hooked := j.Progress != nil ||
		(measuring && (j.OnStats != nil || (j.OnProfile != nil && rec != nil)))
	if !hooked || cycles == 0 {
		sys.Run(cycles)
		return
	}
	chunk := cycles / progressChunks
	if chunk == 0 {
		chunk = 1
	}
	var done uint64
	for done < cycles {
		n := chunk
		if cycles-done < n {
			n = cycles - done
		}
		sys.Run(n)
		done += n
		if j.Progress != nil {
			f := base + span*float64(done)/float64(cycles)
			if f > 1 { // float round-off; the contract is [0, 1]
				f = 1
			}
			j.Progress(f)
		}
		if measuring && j.OnStats != nil {
			j.OnStats(sys.StatsRegistry().Snapshot())
		}
		if measuring && j.OnProfile != nil && rec != nil {
			j.OnProfile(rec.Snap())
		}
	}
}

// FirstError returns the first failed job's error in input order, or nil
// when every job succeeded — the policy the public sweep helpers use to
// keep their historical (results, error) signatures.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
