package runner

import (
	"fmt"

	"repro/internal/digest"
)

// DivergeReport is the outcome of a side-by-side divergence hunt: either
// the two runs' digest streams agree everywhere (Equal), or the first
// divergent cycle and the subsystem whose state first differed.
type DivergeReport struct {
	// Equal reports that every compared snapshot agreed.
	Equal bool `json:"equal"`
	// Interval is the coarse snapshot period the side-by-side runs used.
	Interval uint64 `json:"interval"`
	// Records is the number of snapshots compared (the shorter stream).
	Records int `json:"records"`
	// DigestA and DigestB are the runs' final 64-bit digests, 16 hex
	// digits each — unequal exactly when the runs diverged.
	DigestA string `json:"digest_a"`
	DigestB string `json:"digest_b"`
	// Cycle is the first divergent cycle: exact when Refined, otherwise
	// the first divergent coarse snapshot (state diverged somewhere in
	// the Interval cycles ending there).
	Cycle uint64 `json:"cycle,omitempty"`
	// Lane names the subsystem whose digest chain first differed at that
	// cycle — where to start looking.
	Lane string `json:"lane,omitempty"`
	// CoarseCycle is the coarse-pass divergent snapshot the refinement
	// pass narrowed from.
	CoarseCycle uint64 `json:"coarse_cycle,omitempty"`
	// Refined reports that the per-cycle refinement pass ran, making
	// Cycle exact.
	Refined bool `json:"refined,omitempty"`
}

// Diverge runs two job configurations side by side, binary-searches
// their digest streams for the first divergent snapshot, then reruns
// just the divergent window digesting every cycle to pin the exact
// first divergent cycle and the offending subsystem.
//
// The two streams compare cycle-for-cycle, so b's warm and measure
// windows are forced to a's; everything else — scheme, topology,
// policies, seed, shard count — may differ, which is the point: serial
// vs sharded, or two policy variants, attest (or refute) bit-identity
// with a named first point of departure. interval is the coarse
// snapshot period (0 selects 1000); the refinement pass costs roughly
// one extra interval's worth of per-cycle digesting on top of two
// coarse runs.
func Diverge(a, b Job, interval uint64) (*DivergeReport, error) {
	if interval == 0 {
		interval = 1000
	}
	b.WarmCycles, b.MeasureCycles = a.WarmCycles, a.MeasureCycles
	a.DigestInterval, b.DigestInterval = interval, interval
	a.DigestStart, b.DigestStart = 0, 0

	sa, sb, da, db, err := runDigestPair(a, b)
	if err != nil {
		return nil, err
	}
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	rep := &DivergeReport{Interval: interval, Records: n, DigestA: da, DigestB: db}
	div, ok := digest.Compare(sa, sb)
	if !ok {
		rep.Equal = true
		return rep, nil
	}
	rep.CoarseCycle = div.Cycle
	rep.Cycle = div.Cycle
	rep.Lane = div.Lane.String()
	if interval == 1 {
		rep.Refined = true
		return rep, nil
	}

	// Refinement: state diverged in (CoarseCycle-interval, CoarseCycle].
	// Rerun both jobs (deterministic, so they replay exactly), running
	// undigested up to the last agreeing snapshot, then digest every
	// cycle through the divergent one.
	fa, fb := a, b
	fa.DigestInterval, fb.DigestInterval = 1, 1
	start := uint64(0)
	if div.Cycle >= a.WarmCycles+interval {
		start = div.Cycle - interval - a.WarmCycles
	}
	fa.DigestStart, fb.DigestStart = start, start
	mc := div.Cycle - a.WarmCycles + 1
	fa.MeasureCycles, fb.MeasureCycles = mc, mc
	stripHooks(&fa)
	stripHooks(&fb)
	ra, rb, _, _, err := runDigestPair(fa, fb)
	if err != nil {
		return nil, fmt.Errorf("refinement pass: %w", err)
	}
	if rdiv, rok := digest.Compare(ra, rb); rok {
		rep.Cycle = rdiv.Cycle
		rep.Lane = rdiv.Lane.String()
		rep.Refined = true
	}
	return rep, nil
}

// runDigestPair runs both jobs concurrently and returns their digest
// streams and final digests.
func runDigestPair(a, b Job) (sa, sb []digest.Record, da, db string, err error) {
	res := Run([]Job{a, b}, 2)
	for i, r := range res {
		if r.Err != nil {
			return nil, nil, "", "", fmt.Errorf("runner: diverge run %c failed: %w", 'A'+byte(i), r.Err)
		}
		if r.Results.Digests == nil {
			return nil, nil, "", "", fmt.Errorf("runner: diverge run %c produced no digest stream", 'A'+byte(i))
		}
	}
	return res[0].Results.Digests.Stream, res[1].Results.Digests.Stream,
		res[0].Results.Digests.Digest, res[1].Results.Digests.Digest, nil
}

// stripHooks drops the caller's observation hooks from a refinement
// rerun — the caller already saw the coarse pass's progress, and the
// rerun's windows differ from the hooks' expectations.
func stripHooks(j *Job) {
	j.Progress, j.OnSample, j.OnStats, j.OnProfile = nil, nil, nil, nil
}
