// Package runner is the batch sweep engine behind the paper's evaluation:
// a bounded worker pool that fans independent, deterministic simulations
// out over the machine's cores and collects their results back in input
// order. Every experiment in Section 5 (nine SPEC OMP benchmarks, four
// schemes, optional seed repetition, plus the cache-size / pillar / layer
// sweeps of Figures 16-18) is a slice of such jobs, and none of them share
// state, so the sweep parallelizes embarrassingly.
//
// The model is deliberately small:
//
//   - a Job names one simulation: a full config.Config (scheme, L2 size,
//     layer count, pillar count, every Table 4 knob), a benchmark, the
//     warm/measure windows, and a seed;
//   - Pool.Run executes a slice of jobs on at most Workers goroutines
//     (default runtime.GOMAXPROCS(0); Workers == 1 degenerates to the
//     exact sequential loop the repository started with) and returns one
//     Result per job, positionally matched to the input slice;
//   - a failed job — unknown benchmark, invalid config, even a panicking
//     simulation — is captured in its Result.Err and never aborts the
//     sweep or kills the process;
//   - an optional Progress callback observes completions serially, in
//     completion order, for live reporting.
//
// Because each Job builds its own core.System and the simulator holds no
// package-level mutable state, a parallel sweep is bit-identical to a
// sequential one for equal seeds; TestPoolParallelMatchesSequential pins
// that guarantee down.
package runner
