package runner

import (
	"math"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// testJobs builds a small but heterogeneous sweep: two schemes and two
// benchmarks, short windows, distinct seeds.
func testJobs() []Job {
	var jobs []Job
	for _, s := range []config.Scheme{config.CMPSNUCA3D, config.CMPDNUCA3D} {
		for i, b := range []string{"mgrid", "swim"} {
			jobs = append(jobs, Job{
				Config:        config.Default(s),
				Benchmark:     b,
				WarmCycles:    2_000,
				MeasureCycles: 6_000,
				Seed:          uint64(1 + i),
			})
		}
	}
	return jobs
}

// TestPoolParallelMatchesSequential is the determinism guarantee: a
// parallel sweep must produce byte-identical Results to a sequential one
// for identical seeds. It also doubles as a race-detector probe for hidden
// shared state between Simulation instances (run via `go test -race`).
func TestPoolParallelMatchesSequential(t *testing.T) {
	jobs := testJobs()
	seq := Run(jobs, 1)
	par := Run(jobs, 4)
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("got %d/%d results for %d jobs", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Results != par[i].Results {
			t.Errorf("job %d (%s on %s): parallel results diverge from sequential\nseq: %+v\npar: %+v",
				i, jobs[i].Config.Scheme, jobs[i].Benchmark, seq[i].Results, par[i].Results)
		}
		if par[i].Index != i {
			t.Errorf("job %d: Index = %d, want input order preserved", i, par[i].Index)
		}
	}
}

// TestPoolMoreWorkersThanJobs checks the worker bound is clamped and a
// wide pool still returns everything in order.
func TestPoolMoreWorkersThanJobs(t *testing.T) {
	jobs := testJobs()[:2]
	res := Run(jobs, 64)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Job.Benchmark != jobs[i].Benchmark {
			t.Errorf("result %d echoes job %q, want %q", i, r.Job.Benchmark, jobs[i].Benchmark)
		}
	}
}

// TestPoolCapturesPerJobErrors checks that a failing job neither kills the
// sweep nor perturbs its neighbors' slots.
func TestPoolCapturesPerJobErrors(t *testing.T) {
	jobs := testJobs()
	bad := Job{Config: config.Default(config.CMPSNUCA3D), Benchmark: "no-such-bench",
		WarmCycles: 100, MeasureCycles: 100, Seed: 1}
	jobs = append(jobs[:2:2], append([]Job{bad}, jobs[2:]...)...)
	for _, workers := range []int{1, 3} {
		res := Run(jobs, workers)
		if err := FirstError(res); err == nil {
			t.Fatalf("workers=%d: FirstError = nil, want unknown-benchmark error", workers)
		}
		for i, r := range res {
			if i == 2 {
				if r.Err == nil {
					t.Errorf("workers=%d: bad job succeeded", workers)
				}
				continue
			}
			if r.Err != nil {
				t.Errorf("workers=%d: good job %d failed: %v", workers, i, r.Err)
			}
			if r.Results.L2Accesses == 0 {
				t.Errorf("workers=%d: good job %d measured nothing", workers, i)
			}
		}
	}
}

// TestPoolInvalidConfig checks that config validation failures are
// captured per job rather than escaping as panics.
func TestPoolInvalidConfig(t *testing.T) {
	res := Run([]Job{{Config: config.Config{}, Benchmark: "mgrid"}}, 2)
	if res[0].Err == nil {
		t.Fatal("zero config ran successfully, want a captured error")
	}
}

// TestPoolProgress checks that the callback fires exactly once per job,
// serially, with a monotonically increasing done count — including from
// concurrent workers, which the race detector verifies.
func TestPoolProgress(t *testing.T) {
	jobs := testJobs()
	var mu sync.Mutex
	var dones []int
	seen := make(map[int]bool)
	p := Pool{Workers: 4, Progress: func(done, total int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(jobs) {
			t.Errorf("total = %d, want %d", total, len(jobs))
		}
		dones = append(dones, done)
		seen[r.Index] = true
	}}
	p.Run(jobs)
	if len(dones) != len(jobs) {
		t.Fatalf("progress fired %d times, want %d", len(dones), len(jobs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v, want 1..%d", dones, len(jobs))
		}
	}
	for i := range jobs {
		if !seen[i] {
			t.Errorf("no progress report for job %d", i)
		}
	}
}

// TestPoolSampleInterval checks that a job requesting interval metrics
// carries its time series in the result — and that jobs without it don't.
func TestPoolSampleInterval(t *testing.T) {
	jobs := testJobs()[:2]
	jobs[0].SampleInterval = 1_000
	res := Run(jobs, 2)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	ts := res[0].Samples
	if ts == nil {
		t.Fatal("sampled job returned no time series")
	}
	if len(ts.Header) == 0 || ts.Header[0] != "cycle" {
		t.Fatalf("header = %v, want cycle first", ts.Header)
	}
	// 6k measured cycles at a 1k interval, minus the priming tick.
	if len(ts.Rows) < 4 {
		t.Fatalf("%d rows sampled over a 6k-cycle window", len(ts.Rows))
	}
	accCol := -1
	for i, h := range ts.Header {
		if h == "l2_accesses" {
			accCol = i
		}
	}
	if accCol < 0 {
		t.Fatalf("header %v missing l2_accesses", ts.Header)
	}
	var prev, accSum float64 = -1, 0
	for i, row := range ts.Rows {
		if len(row) != len(ts.Header) {
			t.Fatalf("row %d has %d fields, header %d", i, len(row), len(ts.Header))
		}
		if row[0] <= prev {
			t.Fatalf("cycles not increasing at row %d", i)
		}
		prev = row[0]
		accSum += row[accCol]
	}
	if accSum == 0 {
		t.Error("sampled deltas all zero on a live run")
	}
	if accSum > float64(res[0].Results.L2Accesses) {
		t.Errorf("deltas sum to %v, cumulative counter is %d", accSum, res[0].Results.L2Accesses)
	}
	if res[1].Samples != nil {
		t.Error("unsampled job carries a time series")
	}
}

// TestPoolRecordSpans checks the span-recording path: a job with
// RecordSpans set carries the latency decomposition in its Results, exact
// against the measured means, while plain jobs stay breakdown-free.
func TestPoolRecordSpans(t *testing.T) {
	jobs := testJobs()[:2]
	jobs[0].RecordSpans = true
	res := Run(jobs, 2)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	bd := res[0].Results.Breakdown
	if bd == nil {
		t.Fatal("RecordSpans job returned no breakdown")
	}
	if bd.Hits.Transactions == 0 {
		t.Fatal("breakdown traced no hits on a live run")
	}
	if got, want := bd.Hits.MeanTotal, res[0].Results.AvgL2HitLatency; math.Abs(got-want) > 1e-9 {
		t.Errorf("breakdown hit mean %f != measured %f", got, want)
	}
	if res[1].Results.Breakdown != nil {
		t.Error("plain job carries a breakdown")
	}
}

// TestPoolEmpty checks the degenerate sweep.
func TestPoolEmpty(t *testing.T) {
	if res := Run(nil, 8); len(res) != 0 {
		t.Fatalf("empty sweep returned %d results", len(res))
	}
}

// BenchmarkSweepSequential and BenchmarkSweepParallel time the same
// four-job sweep at one worker versus GOMAXPROCS workers; on a multi-core
// machine the ratio is the wall-clock speedup of `-parallel`.
func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchmarkSweep(b, 0) }

func benchmarkSweep(b *testing.B, workers int) {
	jobs := testJobs()
	for i := 0; i < b.N; i++ {
		res := Run(jobs, workers)
		if err := FirstError(res); err != nil {
			b.Fatal(err)
		}
	}
}

// TestJobProgressFraction pins the per-job completion-fraction contract:
// monotonically non-decreasing, bounded by [0, 1], final value exactly
// 1.0, spanning both the warm and the measurement windows — and, because
// setting the hook switches the runner to chunked execution, that a
// hooked run's Results are identical to an unhooked one's.
func TestJobProgressFraction(t *testing.T) {
	base := Job{
		Config:        config.Default(config.CMPDNUCA3D),
		Benchmark:     "mgrid",
		WarmCycles:    3_000,
		MeasureCycles: 9_000,
		Seed:          7,
	}
	plain := Run([]Job{base}, 1)[0]
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}

	var fracs []float64
	hooked := base
	hooked.Progress = func(f float64) { fracs = append(fracs, f) }
	got := Run([]Job{hooked}, 1)[0]
	if got.Err != nil {
		t.Fatal(got.Err)
	}

	if len(fracs) == 0 {
		t.Fatal("progress hook never called")
	}
	for i, f := range fracs {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %d = %v outside [0, 1]", i, f)
		}
		if i > 0 && f < fracs[i-1] {
			t.Fatalf("fraction %d = %v after %v: not monotonic", i, f, fracs[i-1])
		}
	}
	if last := fracs[len(fracs)-1]; last != 1.0 {
		t.Fatalf("final fraction = %v, want exactly 1.0", last)
	}
	// ~64 chunks per phase plus the final 1.0: the hook must report real
	// intermediate progress, not just completion.
	if len(fracs) < 10 {
		t.Fatalf("only %d progress reports; chunking is not happening", len(fracs))
	}
	// The first report is one warm chunk: a small, non-zero fraction well
	// inside the warm window's [0, warmFrac] share.
	warmFrac := float64(base.WarmCycles) / float64(base.WarmCycles+base.MeasureCycles)
	if fracs[0] <= 0 || fracs[0] > warmFrac/32 {
		t.Errorf("first fraction = %v, want one warm chunk (0, %v]", fracs[0], warmFrac/32)
	}

	if got.Results != plain.Results {
		t.Errorf("chunked run diverged from unchunked:\nchunked:   %+v\nunchunked: %+v",
			got.Results, plain.Results)
	}
}

// TestJobProgressZeroWindow: zero-cycle windows are honored literally and
// must still finish with fraction 1.0.
func TestJobProgressZeroWindow(t *testing.T) {
	var fracs []float64
	j := Job{
		Config:    config.Default(config.CMPSNUCA3D),
		Benchmark: "mgrid",
		Seed:      1,
		Progress:  func(f float64) { fracs = append(fracs, f) },
	}
	if r := Run([]Job{j}, 1)[0]; r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(fracs) == 0 || fracs[len(fracs)-1] != 1.0 {
		t.Fatalf("fractions = %v, want final 1.0", fracs)
	}
}

// TestJobOnSampleAndOnStats checks the streaming hooks: every sampled row
// tees through OnSample exactly as it lands in Result.Samples, and
// OnStats snapshots are monotone in every counter with a final snapshot
// matching the run's cumulative counts.
func TestJobOnSampleAndOnStats(t *testing.T) {
	var streamed [][]float64
	var headers []string
	var snaps [][]stats.NameValue
	j := Job{
		Config:         config.Default(config.CMPDNUCA3D),
		Benchmark:      "swim",
		WarmCycles:     2_000,
		MeasureCycles:  8_000,
		Seed:           3,
		SampleInterval: 500,
		OnSample: func(header []string, row []float64) {
			headers = header // stable slice; last assignment is fine
			streamed = append(streamed, append([]float64(nil), row...))
		},
		OnStats: func(snap []stats.NameValue) { snaps = append(snaps, snap) },
	}
	r := Run([]Job{j}, 1)[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Samples == nil {
		t.Fatal("no samples despite SampleInterval")
	}
	if len(streamed) != len(r.Samples.Rows) {
		t.Fatalf("streamed %d rows, series has %d", len(streamed), len(r.Samples.Rows))
	}
	for i := range streamed {
		for jx, v := range r.Samples.Rows[i] {
			if streamed[i][jx] != v {
				t.Fatalf("streamed row %d = %v != series row %v", i, streamed[i], r.Samples.Rows[i])
			}
		}
	}
	if len(headers) != len(r.Samples.Header) {
		t.Fatalf("streamed header %v != series header %v", headers, r.Samples.Header)
	}

	if len(snaps) < 2 {
		t.Fatalf("only %d stats snapshots; want one per measure chunk plus completion", len(snaps))
	}
	value := func(snap []stats.NameValue, name string) uint64 {
		for _, nv := range snap {
			if nv.Name == name {
				return nv.Value
			}
		}
		t.Fatalf("counter %q missing from snapshot", name)
		return 0
	}
	var prev uint64
	for i, snap := range snaps {
		v := value(snap, "l2_accesses")
		if v < prev {
			t.Fatalf("snapshot %d l2_accesses = %d after %d: cumulative counters went backwards", i, v, prev)
		}
		prev = v
	}
	final := snaps[len(snaps)-1]
	if got := value(final, "l2_accesses"); got != r.Results.L2Accesses {
		t.Errorf("final snapshot l2_accesses = %d, Results.L2Accesses = %d", got, r.Results.L2Accesses)
	}
}
