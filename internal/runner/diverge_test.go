package runner

import (
	"testing"

	"repro/internal/config"
	"repro/internal/digest"
)

// divergeBase is the common half of every bisection pair: the stacked
// four-layer machine (so shard variants describe the same hardware),
// short windows.
func divergeBase() Job {
	cfg := config.Default(config.CMPDNUCA3D)
	cfg.Layers = 4
	cfg.StackCPUs = true
	return Job{
		Config:        cfg,
		Benchmark:     "mgrid",
		WarmCycles:    2_000,
		MeasureCycles: 8_000,
		Seed:          1,
	}
}

// TestDivergeEqual: a job against its sharded self must come back equal
// with matching final digests — the bisector attesting the sharding
// contract rather than finding phantom divergences.
func TestDivergeEqual(t *testing.T) {
	a := divergeBase()
	b := a
	b.Shards = 2
	rep, err := Diverge(a, b, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal {
		t.Fatalf("serial vs shards=2 reported divergence at cycle %d in %s", rep.Cycle, rep.Lane)
	}
	if rep.DigestA != rep.DigestB || rep.DigestA == "" {
		t.Errorf("equal runs with different final digests: %s vs %s", rep.DigestA, rep.DigestB)
	}
	if rep.Records != 8 {
		t.Errorf("compared %d snapshots, want 8 (cycles 2000..9000 every 1000)", rep.Records)
	}
}

// TestDivergeSeedPerturbation: a perturbed seed makes the workloads
// differ from the first warm cycle on, so the bisector must report a
// divergence, refine it to an exact cycle no later than the first
// coarse snapshot, and name a valid lane.
func TestDivergeSeedPerturbation(t *testing.T) {
	a := divergeBase()
	b := a
	b.Seed = 2
	rep, err := Diverge(a, b, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equal {
		t.Fatal("seed-perturbed pair reported equal")
	}
	if rep.DigestA == rep.DigestB {
		t.Errorf("diverged runs share final digest %s", rep.DigestA)
	}
	if !rep.Refined {
		t.Error("refinement pass did not run")
	}
	if rep.Cycle > rep.CoarseCycle {
		t.Errorf("refined cycle %d after coarse hit %d", rep.Cycle, rep.CoarseCycle)
	}
	// The measurement window steps cycles [warm, warm+measure), so the
	// first snapshot digests the warm boundary cycle itself — and a seed
	// perturbation has already diverged by then.
	if rep.CoarseCycle != a.WarmCycles {
		t.Errorf("coarse divergence at cycle %d, want the first snapshot (%d)",
			rep.CoarseCycle, a.WarmCycles)
	}
	valid := false
	for l := 0; l < digest.NumLanes; l++ {
		if rep.Lane == digest.Lane(l).String() {
			valid = true
		}
	}
	if !valid {
		t.Errorf("divergence lane %q is not a known subsystem", rep.Lane)
	}
}

// TestDivergeForcesWindows: mismatched windows on the variant are
// overridden so the streams align snapshot-for-snapshot.
func TestDivergeForcesWindows(t *testing.T) {
	a := divergeBase()
	b := a
	b.WarmCycles, b.MeasureCycles = 1, 100 // would misalign if honored
	rep, err := Diverge(a, b, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal || rep.Records != 8 {
		t.Fatalf("window-forced pair: equal=%v records=%d, want equal over 8 snapshots",
			rep.Equal, rep.Records)
	}
}
