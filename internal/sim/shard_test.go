package sim

import "testing"

// TestShardedGroupBarrier drives a ShardGroup through many rounds and
// checks the lockstep contract: after each Cycle every task has run
// exactly once more, and writes made by the caller between rounds are
// visible to the workers (the -race leg verifies the happens-before
// edges the channel handshake provides).
func TestShardedGroupBarrier(t *testing.T) {
	const n = 4
	var round int
	counts := make([]int, n)
	seen := make([]int, n)
	tasks := make([]func(), n)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		labels[i] = "layer-0"
		tasks[i] = func() {
			counts[i]++
			seen[i] = round // caller's write, published by the barrier
		}
	}
	g := NewShardGroup(labels, tasks)
	defer g.Close()
	for r := 1; r <= 100; r++ {
		round = r
		g.Cycle()
		for i := 0; i < n; i++ {
			if counts[i] != r {
				t.Fatalf("round %d: task %d ran %d times", r, i, counts[i])
			}
			if seen[i] != r {
				t.Fatalf("round %d: task %d saw stale round %d", r, i, seen[i])
			}
		}
	}
}

// TestShardedGroupCloseIdempotent checks Close may be called repeatedly.
func TestShardedGroupCloseIdempotent(t *testing.T) {
	g := NewShardGroup([]string{"layer-0"}, []func(){func() {}})
	g.Cycle()
	g.Close()
	g.Close()
}
