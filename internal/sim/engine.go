// Package sim provides the cycle-stepped simulation engine shared by every
// timed component: a global clock, a Ticker registry for components that do
// work every cycle (routers, buses), and an event queue for fixed-latency
// completions (tag lookups, bank accesses, memory fetches).
//
// The event queue is a hierarchical timing wheel specialized for the short
// fixed latencies that dominate the workload: events within the 256-cycle
// horizon land in an O(1) ring of per-cycle buckets, the rest in a small
// overflow heap that drains into the ring as the clock approaches. Events
// are plain structs stored by value in the bucket slices, so steady-state
// scheduling performs no per-event heap allocation. Same-cycle ordering is
// schedule order: per-bucket FIFO replaces the binary heap's (cycle, seq)
// tie-break with identical semantics.
package sim

import (
	"time"

	"repro/internal/prof"
)

// Ticker is a component that performs work on every clock edge.
type Ticker interface {
	// Tick advances the component by one cycle. The current cycle number is
	// passed for components that stamp or age state.
	Tick(cycle uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(cycle uint64)

// Tick calls the function.
func (f TickerFunc) Tick(cycle uint64) { f(cycle) }

// IdleTicker is optionally implemented by tickers whose Tick is a no-op
// while they are idle. When every registered ticker implements it and all
// report idle, Run fast-forwards the clock over event-free cycles instead of
// stepping through them. Idle must only return true when Tick would perform
// no work; a ticker may still record the clock in its idle Tick (the fabric
// does, to timestamp injections), because the engine always executes the
// final cycle of a skipped stretch normally — every cycle in which an event
// fires is immediately preceded by a real ticker round, exactly as in
// unskipped execution.
type IdleTicker interface {
	Ticker
	Idle() bool
}

// Handler receives typed events scheduled with AfterEvent. The kind and
// data are opaque to the engine; the scheduling component dispatches on
// them, which avoids allocating a capturing closure per scheduled event on
// hot paths.
type Handler interface {
	HandleEvent(kind uint8, data any)
}

// wheelBits sizes the near wheel: 2^wheelBits per-cycle buckets. 256 covers
// every fixed latency in the simulated machine except the DRAM access.
const (
	wheelBits = 8
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// event is a scheduled callback: either a legacy closure (fn != nil) or a
// typed (handler, kind, data) triple dispatched without allocation.
type event struct {
	at   uint64
	seq  uint64 // global schedule order, for the overflow heap's tie-break
	h    Handler
	data any
	fn   func()
	kind uint8
}

func (e *Engine) fire(ev *event) {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.h.HandleEvent(ev.kind, ev.data)
}

// Engine owns the global clock. Each Step runs, in order: all events due at
// the current cycle, then every registered ticker, then advances the clock.
type Engine struct {
	cycle uint64
	seq   uint64

	// buckets is the near wheel: bucket[c&wheelMask] holds the events for
	// cycle c, c in [cycle, cycle+wheelSize). Within a bucket events fire
	// in append (schedule) order.
	buckets [wheelSize][]event
	inWheel int // events currently stored in the near wheel

	// overflow holds events beyond the wheel horizon, ordered by (at, seq);
	// Step migrates them into the wheel as their cycle approaches.
	overflow []event

	// overdue holds events scheduled for a cycle whose bucket has already
	// been drained (an After(0) from a ticker, or At on a past cycle).
	// They fire at the start of the next Step, before that cycle's bucket.
	overdue []event

	// drained is true between this cycle's bucket drain and the clock
	// advance; a same-cycle event scheduled in that window must go to
	// overdue rather than the already-visited bucket.
	drained bool

	tickers []Ticker
	// idlers mirrors tickers when every registered ticker implements
	// IdleTicker; skippable records that property.
	idlers    []IdleTicker
	skippable bool
	noSkip    bool

	// prof, when non-nil, receives host-side wall-clock attribution for
	// every step: each fired event and each ticker's Tick is timed with
	// monotonic clock deltas and folded into the recorder under the phase
	// the classifiers assign (see SetProfiler). The nil path is the
	// untouched hot path — one pointer check per Step and per Run.
	prof         *prof.Recorder
	classifyEv   func(kind uint8, closure bool) prof.Phase
	classifyTick func(t Ticker) prof.Phase
	// tickerPhase caches classifyTick per registered ticker, in
	// registration order; prof.PhaseSelf marks tickers that time
	// themselves into the recorder (the fabric, which splits its tick
	// into serial vs sharded), so the engine takes no readings for them.
	tickerPhase []prof.Phase
}

// NewEngine returns an engine at cycle 0 with no components.
func NewEngine() *Engine {
	return &Engine{skippable: true}
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.cycle }

// Register adds a ticker that will run every cycle, in registration order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	if it, ok := t.(IdleTicker); ok && e.skippable {
		e.idlers = append(e.idlers, it)
	} else {
		e.skippable = false
		e.idlers = nil
	}
	if e.classifyTick != nil {
		e.tickerPhase = append(e.tickerPhase, e.classifyTick(t))
	}
}

// SetProfiler attaches a host-side phase profiler: every fired event is
// classified by eventPhase (kind plus whether it is a legacy closure) and
// every ticker by tickerPhase — returning prof.PhaseSelf for tickers that
// record their own time (the fabric). Tickers registered later are
// classified on registration. A nil recorder detaches, restoring the
// zero-overhead step. Attribution never feeds back into simulation state,
// so a profiled run is bit-identical to an unprofiled one.
func (e *Engine) SetProfiler(r *prof.Recorder, eventPhase func(kind uint8, closure bool) prof.Phase, tickerPhase func(Ticker) prof.Phase) {
	e.prof = r
	e.tickerPhase = e.tickerPhase[:0]
	if r == nil {
		e.classifyEv, e.classifyTick = nil, nil
		return
	}
	e.classifyEv, e.classifyTick = eventPhase, tickerPhase
	for _, t := range e.tickers {
		e.tickerPhase = append(e.tickerPhase, tickerPhase(t))
	}
}

// SetIdleSkip enables (default) or disables idle-cycle fast-forwarding in
// Run. Skipping never changes observable behavior — it only engages when
// every ticker reports a no-op Tick — so disabling it is useful solely for
// equivalence testing and profiling.
func (e *Engine) SetIdleSkip(on bool) { e.noSkip = !on }

// schedule inserts an event at its cycle.
func (e *Engine) schedule(ev event) {
	switch {
	case ev.at == e.cycle && !e.drained:
		// Fires later this Step (scheduled from an event callback) or at
		// the start of the next one (scheduled between Steps); either way
		// the bucket for the current cycle has not been drained yet.
		e.buckets[ev.at&wheelMask] = append(e.buckets[ev.at&wheelMask], ev)
		e.inWheel++
	case ev.at <= e.cycle:
		// This cycle's drain already ran; fire first thing next Step.
		e.overdue = append(e.overdue, ev)
	case ev.at-e.cycle < wheelSize:
		e.buckets[ev.at&wheelMask] = append(e.buckets[ev.at&wheelMask], ev)
		e.inWheel++
	default:
		e.pushOverflow(ev)
	}
}

// After schedules fn to run delay cycles from now. A delay of 0 runs fn at
// the start of the next Step (events for the current cycle have already
// fired once Step begins executing tickers).
func (e *Engine) After(delay uint64, fn func()) {
	e.seq++
	e.schedule(event{at: e.cycle + delay, seq: e.seq, fn: fn})
}

// At schedules fn for an absolute cycle. Cycles in the past fire on the
// next Step.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.cycle {
		cycle = e.cycle
	}
	e.seq++
	e.schedule(event{at: cycle, seq: e.seq, fn: fn})
}

// AfterEvent schedules a typed event delay cycles from now: h.HandleEvent
// (kind, data) runs with the same ordering guarantees as After. Unlike
// After it captures no closure, so scheduling allocates nothing once the
// wheel's bucket slices have grown to steady-state capacity; data should be
// a pointer (storing a pointer in an interface does not allocate).
func (e *Engine) AfterEvent(delay uint64, h Handler, kind uint8, data any) {
	e.seq++
	e.schedule(event{at: e.cycle + delay, seq: e.seq, h: h, kind: kind, data: data})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.inWheel + len(e.overflow) + len(e.overdue) }

// migrate pulls overflow events whose cycle entered the wheel horizon into
// their buckets. The overflow heap pops in (at, seq) order, preserving
// schedule order among migrated events; the rare append behind an event
// scheduled directly into the bucket is repaired by a seq sort.
func (e *Engine) migrate() {
	for len(e.overflow) > 0 && e.overflow[0].at < e.cycle+wheelSize {
		ev := e.popOverflow()
		b := e.buckets[ev.at&wheelMask]
		if n := len(b); n > 0 && b[n-1].seq > ev.seq {
			// An event for this cycle was scheduled directly into the
			// bucket before this (older) one migrated: insert in seq order.
			i := n
			for i > 0 && b[i-1].seq > ev.seq {
				i--
			}
			b = append(b, event{})
			copy(b[i+1:], b[i:])
			b[i] = ev
		} else {
			b = append(b, ev)
		}
		e.buckets[ev.at&wheelMask] = b
		e.inWheel++
	}
}

// Step advances the simulation by one cycle: due events fire first (they may
// schedule more events, including for this same cycle), then tickers run.
func (e *Engine) Step() {
	if e.prof != nil {
		e.stepProfiled()
		return
	}
	e.migrate()
	if len(e.overdue) > 0 {
		// Events whose cycle was drained before they were scheduled; they
		// precede this cycle's bucket (their cycle stamp is older). Firing
		// them cannot grow overdue: the current bucket is undrained, so
		// same-cycle reschedules land there.
		for i := 0; i < len(e.overdue); i++ {
			e.fire(&e.overdue[i])
		}
		clear(e.overdue)
		e.overdue = e.overdue[:0]
	}
	slot := e.cycle & wheelMask
	for i := 0; i < len(e.buckets[slot]); i++ {
		ev := e.buckets[slot][i] // copy: firing may append and reallocate
		e.fire(&ev)
		e.inWheel--
	}
	clear(e.buckets[slot])
	e.buckets[slot] = e.buckets[slot][:0]
	e.drained = true
	for _, t := range e.tickers {
		t.Tick(e.cycle)
	}
	e.drained = false
	e.cycle++
}

// stepProfiled is Step with phase attribution — kept in lockstep with the
// unprofiled body above (same ordering, same drained-flag discipline), plus
// chained monotonic clock readings: each fired event's delta lands under
// its classified phase, each ticker is timed around its Tick (except
// self-timing ones), and everything unclaimed falls to the engine phase by
// subtraction at report time.
func (e *Engine) stepProfiled() {
	e.prof.StepDone()
	e.migrate()
	last := time.Now()
	if len(e.overdue) > 0 {
		for i := 0; i < len(e.overdue); i++ {
			e.fire(&e.overdue[i])
			last = e.recordEvent(&e.overdue[i], last)
		}
		clear(e.overdue)
		e.overdue = e.overdue[:0]
	}
	slot := e.cycle & wheelMask
	for i := 0; i < len(e.buckets[slot]); i++ {
		ev := e.buckets[slot][i] // copy: firing may append and reallocate
		e.fire(&ev)
		e.inWheel--
		last = e.recordEvent(&ev, last)
	}
	clear(e.buckets[slot])
	e.buckets[slot] = e.buckets[slot][:0]
	e.drained = true
	for ti, t := range e.tickers {
		ph := e.tickerPhase[ti]
		if ph == prof.PhaseSelf {
			t.Tick(e.cycle)
			continue
		}
		t0 := time.Now()
		t.Tick(e.cycle)
		e.prof.Record(ph, time.Since(t0).Nanoseconds())
	}
	e.drained = false
	e.cycle++
}

// recordEvent attributes the wall time since the previous reading to the
// just-fired event's phase and returns the new reading. Chaining readings
// costs one clock call per event instead of two.
func (e *Engine) recordEvent(ev *event, last time.Time) time.Time {
	now := time.Now()
	e.prof.Record(e.classifyEv(ev.kind, ev.fn != nil), now.Sub(last).Nanoseconds())
	return now
}

// idle reports whether every registered ticker is skip-safe and idle.
func (e *Engine) idle() bool {
	if !e.skippable || e.noSkip {
		return false
	}
	for _, t := range e.idlers {
		if !t.Idle() {
			return false
		}
	}
	return true
}

// nextEventAt returns the earliest scheduled event cycle, or false when no
// events are pending. Overdue events fire on the very next Step, so they
// report the current cycle.
func (e *Engine) nextEventAt() (uint64, bool) {
	if len(e.overdue) > 0 {
		return e.cycle, true
	}
	at := uint64(0)
	ok := false
	if e.inWheel > 0 {
		for i := uint64(0); i < wheelSize; i++ {
			c := e.cycle + i
			if len(e.buckets[c&wheelMask]) > 0 {
				at, ok = c, true
				break
			}
		}
	}
	if len(e.overflow) > 0 && (!ok || e.overflow[0].at < at) {
		at, ok = e.overflow[0].at, true
	}
	return at, ok
}

// Run advances the simulation by n cycles. When every registered ticker
// implements IdleTicker and all report idle, the clock fast-forwards over
// event-free cycles; events still fire at exactly the cycles they were
// scheduled for, so results are identical to stepping every cycle.
//
// With a profiler attached each Run is one throughput window in the
// recorder's rolling series (cycles advanced over wall time).
func (e *Engine) Run(n uint64) {
	if e.prof != nil {
		start, c0 := e.prof.RunStart(), e.cycle
		e.runLoop(n)
		e.prof.RunEnd(start, e.cycle-c0)
		return
	}
	e.runLoop(n)
}

func (e *Engine) runLoop(n uint64) {
	end := e.cycle + n
	for e.cycle < end {
		if e.cycle+1 < end && e.idle() {
			// Fast-forward to the cycle before the next event (or the
			// window's last cycle). The skipped Steps are provably no-ops:
			// no events are due and every ticker reports an idle Tick. The
			// stretch's final cycle steps normally, so tickers observe the
			// clock exactly as in unskipped execution before any event fires.
			target := end - 1
			if next, ok := e.nextEventAt(); ok && next <= target {
				target = next - 1
			}
			if target > e.cycle {
				e.cycle = target
			}
		}
		e.Step()
	}
}

// RunUntil advances the simulation until done reports true or the cycle
// limit is reached. It returns true if done became true before the limit.
// Like Run, a profiled RunUntil records one throughput window.
func (e *Engine) RunUntil(done func() bool, limit uint64) bool {
	if e.prof != nil {
		start, c0 := e.prof.RunStart(), e.cycle
		ok := e.runUntilLoop(done, limit)
		e.prof.RunEnd(start, e.cycle-c0)
		return ok
	}
	return e.runUntilLoop(done, limit)
}

func (e *Engine) runUntilLoop(done func() bool, limit uint64) bool {
	for e.cycle < limit {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}

// pushOverflow inserts an event into the overflow min-heap, ordered by
// (at, seq). The heap stores plain structs and is maintained by hand, so no
// interface{} boxing occurs.
func (e *Engine) pushOverflow(ev event) {
	e.overflow = append(e.overflow, ev)
	i := len(e.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(&e.overflow[i], &e.overflow[parent]) {
			break
		}
		e.overflow[i], e.overflow[parent] = e.overflow[parent], e.overflow[i]
		i = parent
	}
}

// popOverflow removes and returns the earliest overflow event.
func (e *Engine) popOverflow() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the payload pointers
	e.overflow = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && overflowLess(&h[r], &h[l]) {
			child = r
		}
		if !overflowLess(&h[child], &h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

func overflowLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
