// Package sim provides the cycle-stepped simulation engine shared by every
// timed component: a global clock, a Ticker registry for components that do
// work every cycle (routers, buses), and an event queue for fixed-latency
// completions (tag lookups, bank accesses, memory fetches).
package sim

import "container/heap"

// Ticker is a component that performs work on every clock edge.
type Ticker interface {
	// Tick advances the component by one cycle. The current cycle number is
	// passed for components that stamp or age state.
	Tick(cycle uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(cycle uint64)

// Tick calls the function.
func (f TickerFunc) Tick(cycle uint64) { f(cycle) }

// event is a scheduled callback.
type event struct {
	at  uint64
	seq uint64 // tie-break so same-cycle events run in schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine owns the global clock. Each Step runs, in order: all events due at
// the current cycle, then every registered ticker, then advances the clock.
type Engine struct {
	cycle   uint64
	seq     uint64
	events  eventHeap
	tickers []Ticker
}

// NewEngine returns an engine at cycle 0 with no components.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.cycle }

// Register adds a ticker that will run every cycle, in registration order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// After schedules fn to run delay cycles from now. A delay of 0 runs fn at
// the start of the next Step (events for the current cycle have already
// fired once Step begins executing tickers).
func (e *Engine) After(delay uint64, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: e.cycle + delay, seq: e.seq, fn: fn})
}

// At schedules fn for an absolute cycle. Cycles in the past fire on the
// next Step.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.cycle {
		cycle = e.cycle
	}
	e.seq++
	heap.Push(&e.events, event{at: cycle, seq: e.seq, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step advances the simulation by one cycle: due events fire first (they may
// schedule more events, including for this same cycle), then tickers run.
func (e *Engine) Step() {
	for len(e.events) > 0 && e.events[0].at <= e.cycle {
		ev := heap.Pop(&e.events).(event)
		ev.fn()
	}
	for _, t := range e.tickers {
		t.Tick(e.cycle)
	}
	e.cycle++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil advances the simulation until done reports true or the cycle
// limit is reached. It returns true if done became true before the limit.
func (e *Engine) RunUntil(done func() bool, limit uint64) bool {
	for e.cycle < limit {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}
