package sim

import (
	"testing"
)

// Timing-wheel-specific coverage: delays beyond the wheel horizon, overflow
// migration ordering, overdue events, idle-cycle skipping, and the
// zero-allocation guarantees the hot paths rely on.

func TestOverflowDelayBeyondWheel(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	// MemoryCycles-style delay, far past the 256-cycle wheel horizon.
	e.After(1000, func() { fired = append(fired, e.Now()) })
	e.After(300, func() { fired = append(fired, e.Now()) })
	e.After(wheelSize, func() { fired = append(fired, e.Now()) }) // first overflow cycle
	e.After(wheelSize-1, func() { fired = append(fired, e.Now()) })
	e.Run(1100)
	want := []uint64{wheelSize - 1, wheelSize, 300, 1000}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestOverflowSameCycleKeepsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(500, func() { order = append(order, i) })
	}
	e.Run(600)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestOverflowMigrationBehindDirectInsert(t *testing.T) {
	// An event scheduled early for cycle 300 sits in the overflow heap. At
	// cycle 45 (= 300 - wheelSize + 1, before the Step that migrates it) a
	// second event is scheduled directly into bucket 300 with a larger seq.
	// Migration must insert the older event in front of it.
	e := NewEngine()
	var order []int
	e.After(300, func() { order = append(order, 1) })
	e.Run(300 - wheelSize + 1)
	e.After(wheelSize-1, func() { order = append(order, 2) }) // also cycle 300
	e.Run(300)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestWheelWrapsRepeatedly(t *testing.T) {
	// A self-rescheduling event crossing the wheel boundary many times.
	e := NewEngine()
	var fired []uint64
	var step func()
	step = func() {
		fired = append(fired, e.Now())
		if len(fired) < 8 {
			e.After(100, step)
		}
	}
	e.After(100, step)
	e.Run(1000)
	if len(fired) != 8 {
		t.Fatalf("fired %d times: %v", len(fired), fired)
	}
	for i, c := range fired {
		if c != uint64(100*(i+1)) {
			t.Fatalf("fired = %v", fired)
		}
	}
}

func TestZeroDelayFromTickerFiresBeforeNextBucket(t *testing.T) {
	// An After(0) issued during the ticker phase of cycle 5 carries cycle
	// stamp 5; it must fire at the start of Step 6 ahead of events scheduled
	// for cycle 6 (matching the old heap's (cycle, seq) order).
	e := NewEngine()
	var order []string
	e.After(6, func() { order = append(order, "six") })
	done := false
	e.Register(TickerFunc(func(c uint64) {
		if c == 5 && !done {
			done = true
			e.After(0, func() { order = append(order, "late5") })
		}
	}))
	e.Run(10)
	if len(order) != 2 || order[0] != "late5" || order[1] != "six" {
		t.Fatalf("order = %v, want [late5 six]", order)
	}
}

// busyBox is an IdleTicker that does work only while a countdown is armed
// (by an event), recording the cycles on which it was busy.
type busyBox struct {
	remaining int
	log       []uint64
}

func (b *busyBox) Tick(c uint64) {
	if b.remaining > 0 {
		b.log = append(b.log, c)
		b.remaining--
	}
}

func (b *busyBox) Idle() bool { return b.remaining == 0 }

// runBusySchedule drives one engine through a fixed event schedule and
// returns the cycles on which the ticker did work.
func runBusySchedule(skip bool) ([]uint64, uint64) {
	e := NewEngine()
	b := &busyBox{}
	e.Register(b)
	e.SetIdleSkip(skip)
	e.After(10, func() { b.remaining = 3 })
	e.After(100, func() { b.remaining = 2 })
	e.After(400, func() { b.remaining = 1 }) // via the overflow heap
	e.Run(500)
	return b.log, e.Now()
}

func TestIdleSkipEquivalence(t *testing.T) {
	got, gotNow := runBusySchedule(true)
	want, wantNow := runBusySchedule(false)
	if gotNow != wantNow {
		t.Fatalf("Now: skip=%d noskip=%d", gotNow, wantNow)
	}
	if len(got) != len(want) {
		t.Fatalf("busy cycles: skip=%v noskip=%v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("busy cycles: skip=%v noskip=%v", got, want)
		}
	}
	wantCycles := []uint64{10, 11, 12, 100, 101, 400}
	for i, c := range wantCycles {
		if want[i] != c {
			t.Fatalf("reference run busy at %v, want %v", want, wantCycles)
		}
	}
}

// clockBox models the fabric: its idle Tick still records the clock, which
// events read the following cycle (packet injection timestamps).
type clockBox struct{ last uint64 }

func (b *clockBox) Tick(c uint64) { b.last = c }
func (b *clockBox) Idle() bool    { return true }

func TestSkipTicksFinalCycleBeforeEvent(t *testing.T) {
	e := NewEngine()
	cb := &clockBox{last: ^uint64(0)}
	e.Register(cb)
	var seen uint64
	e.After(100, func() { seen = cb.last })
	e.Run(200)
	// In unskipped execution the last tick before the cycle-100 event phase
	// is Tick(99); skipping must preserve that view.
	if seen != 99 {
		t.Fatalf("event saw ticker clock %d, want 99", seen)
	}
	if cb.last != 199 {
		t.Fatalf("final ticker clock %d, want 199", cb.last)
	}
}

func TestPlainTickerDisablesSkip(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Register(TickerFunc(func(uint64) { ticks++ }))
	e.Run(100)
	if ticks != 100 {
		t.Fatalf("ticked %d of 100 cycles with a non-idling ticker", ticks)
	}
}

func TestSkipWithNoEvents(t *testing.T) {
	e := NewEngine()
	cb := &clockBox{}
	e.Register(cb)
	e.Run(10_000_000) // would take a while if actually stepped
	if e.Now() != 10_000_000 {
		t.Fatalf("Now = %d", e.Now())
	}
	if cb.last != 10_000_000-1 {
		t.Fatalf("final ticker clock %d, want %d", cb.last, 10_000_000-1)
	}
}

// nopHandler is a Handler for the allocation tests.
type nopHandler struct{ n int }

func (h *nopHandler) HandleEvent(kind uint8, data any) { h.n++ }

func TestAfterEventStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := &nopHandler{}
	// Warm the bucket slices across the whole wheel.
	for i := 0; i < 2*wheelSize; i++ {
		e.AfterEvent(1, h, 0, h)
		e.Step()
	}
	avg := testing.AllocsPerRun(200, func() {
		e.AfterEvent(1, h, 0, h)
		e.AfterEvent(5, h, 1, h)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("AfterEvent+Step allocates %.1f objects/op, want 0", avg)
	}
}

func TestAfterPreboundStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 2*wheelSize; i++ {
		e.After(1, fn)
		e.Step()
	}
	avg := testing.AllocsPerRun(200, func() {
		e.After(1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("After(prebound)+Step allocates %.1f objects/op, want 0", avg)
	}
}
