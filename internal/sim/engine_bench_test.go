package sim

import (
	"container/heap"
	"testing"
)

// legacyQueue reproduces the engine's previous event queue — a container/heap
// min-heap of pointer events ordered by (at, seq) — so BenchmarkEventQueue
// can compare the timing wheel against what it replaced on the same workload.
type legacyEvent struct {
	at  uint64
	seq uint64
	fn  func()
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x any)        { *h = append(*h, x.(*legacyEvent)) }
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	return ev
}

type legacyQueue struct {
	cycle uint64
	seq   uint64
	h     legacyHeap
}

func (q *legacyQueue) after(delay uint64, fn func()) {
	q.seq++
	heap.Push(&q.h, &legacyEvent{at: q.cycle + delay, seq: q.seq, fn: fn})
}

func (q *legacyQueue) step() {
	for len(q.h) > 0 && q.h[0].at <= q.cycle {
		heap.Pop(&q.h).(*legacyEvent).fn()
	}
	q.cycle++
}

// benchDelays mirrors the simulated machine's latency mix (Table 4): mostly
// short tag/bank/L1 completions, occasionally a DRAM access that lands in the
// wheel's overflow heap.
var benchDelays = [8]uint64{4, 5, 3, 1, 5, 4, 3, 260}

func BenchmarkEventQueue(b *testing.B) {
	// Each op: schedule 4 events with the Table 4 delay mix (chosen by a
	// deterministic LCG), then advance one cycle and fire what is due.
	b.Run("heap", func(b *testing.B) {
		q := &legacyQueue{}
		fn := func() {}
		rng := uint64(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 4; k++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				q.after(benchDelays[rng>>61], fn)
			}
			q.step()
		}
	})
	b.Run("wheel", func(b *testing.B) {
		e := NewEngine()
		fn := func() {}
		rng := uint64(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 4; k++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				e.After(benchDelays[rng>>61], fn)
			}
			e.Step()
		}
	})
	b.Run("wheel-typed", func(b *testing.B) {
		e := NewEngine()
		h := &nopHandler{}
		rng := uint64(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 4; k++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				e.AfterEvent(benchDelays[rng>>61], h, 0, h)
			}
			e.Step()
		}
	})
}
