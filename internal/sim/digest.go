package sim

import "repro/internal/digest"

// DigestFold folds the engine's own state — cycle, event sequence
// counter, and every pending event in the wheel, overflow heap, and
// overdue list — into the engine lane. It runs from a digest ticker,
// i.e. after the current cycle's bucket has been drained and cleared,
// so the scan observes exactly the events still scheduled for future
// cycles. Event handlers and closures are folded by presence only
// (function pointers are host addresses, not simulator state); their
// ordering and timing are pinned by (at, seq, kind).
func (e *Engine) DigestFold(r *digest.Recorder) {
	r.Fold(e.cycle)
	r.Fold(e.seq)
	r.FoldInt(e.inWheel)
	for i := uint64(0); i < wheelSize; i++ {
		bucket := e.buckets[(e.cycle+i)&wheelMask]
		for j := range bucket {
			foldEvent(r, &bucket[j])
		}
	}
	// The overflow heap's slice layout is a deterministic function of
	// the push/pop history, so index order is stable across runs.
	for i := range e.overflow {
		foldEvent(r, &e.overflow[i])
	}
	for i := range e.overdue {
		foldEvent(r, &e.overdue[i])
	}
}

func foldEvent(r *digest.Recorder, ev *event) {
	r.Fold(ev.at)
	r.Fold(ev.seq)
	r.Fold(uint64(ev.kind))
	r.FoldBool(ev.fn != nil)
}
