package sim

import (
	"context"
	"runtime/pprof"
	"time"

	"repro/internal/prof"
)

// ShardGroup runs a fixed set of shard tasks in lockstep rounds on
// persistent worker goroutines — the execution primitive behind the
// fabric's spatial domain decomposition (fabric.Fabric.SetShards).
//
// The synchronization model is classic conservative-lookahead PDES: a
// shard may advance to min(neighbor horizons) + L, where L is the minimum
// cross-shard latency. In this simulator the shards are device layers and
// the only cross-shard edges are the dTDMA pillar buses, whose minimum
// crossing time is one bus slot — L = 1 cycle — so the lookahead window
// degenerates to lockstep: every shard advances exactly one cycle per
// round and Cycle is the horizon barrier. The primitive therefore exposes
// a per-round barrier rather than per-shard horizon clocks; a larger L
// would let shards run L cycles between barriers, but the dTDMA slot
// wheel re-arbitrates every cycle, so L is structurally 1 here.
//
// Each worker is labeled via runtime/pprof.Do ("shard" label key), so CPU
// profiles attribute time per shard and cross-layer load imbalance is
// visible in -pprof output.
//
// Cycle provides happens-before edges both ways (the start-channel sends
// publish the caller's writes to the workers, the done-channel receives
// publish the workers' writes back), so tasks may freely write
// shard-local state between rounds without further synchronization.
type ShardGroup struct {
	start  []chan struct{}
	done   chan struct{}
	closed bool

	// prof, when non-nil, receives per-shard busy time (each worker
	// times its task into its own padded slot) and whole-round wall
	// time, from which barrier wait falls out by subtraction. Written
	// only between rounds; the start-channel sends publish it to the
	// workers, so no further synchronization is needed.
	prof *prof.ShardSet
}

// NewShardGroup spawns one labeled worker per task; labels[i] names
// tasks[i] in pprof profiles. The workers idle until Cycle.
func NewShardGroup(labels []string, tasks []func()) *ShardGroup {
	if len(labels) != len(tasks) {
		panic("sim: ShardGroup labels/tasks length mismatch")
	}
	g := &ShardGroup{done: make(chan struct{}, len(tasks))}
	for i := range tasks {
		ch := make(chan struct{}, 1)
		g.start = append(g.start, ch)
		go g.worker(i, labels[i], tasks[i], ch)
	}
	return g
}

// SetProfile attaches (nil detaches) the shard telemetry block. Must be
// called between rounds — the fabric does so from the simulation
// goroutine, which is also the goroutine that calls Cycle.
func (g *ShardGroup) SetProfile(s *prof.ShardSet) { g.prof = s }

func (g *ShardGroup) worker(i int, label string, task func(), start <-chan struct{}) {
	pprof.Do(context.Background(), pprof.Labels("shard", label), func(context.Context) {
		for range start {
			if ss := g.prof; ss != nil {
				t0 := time.Now()
				task()
				ss.AddBusy(i, time.Since(t0).Nanoseconds())
			} else {
				task()
			}
			g.done <- struct{}{}
		}
	})
}

// Cycle runs every task once and returns when all have finished — one
// lookahead window (one simulated cycle, since L = 1). The channel
// handshake is the barrier.
func (g *ShardGroup) Cycle() {
	ss := g.prof
	var t0 time.Time
	if ss != nil {
		t0 = time.Now()
	}
	for _, ch := range g.start {
		ch <- struct{}{}
	}
	for range g.start {
		<-g.done
	}
	if ss != nil {
		ss.RoundDone(time.Since(t0).Nanoseconds())
	}
}

// Close terminates the workers; the group must not be cycled afterwards.
// Idempotent.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.start {
		close(ch)
	}
}
