package sim

import "testing"

func TestEngineClock(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatal("fresh engine must start at cycle 0")
	}
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(5, func() { order = append(order, 2) })
	e.After(3, func() { order = append(order, 1) })
	e.After(5, func() { order = append(order, 3) }) // same cycle, later schedule
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEventFiresAtExactCycle(t *testing.T) {
	e := NewEngine()
	var fired uint64
	e.After(7, func() { fired = e.Now() })
	e.Run(20)
	if fired != 7 {
		t.Fatalf("event fired at %d, want 7", fired)
	}
}

func TestZeroDelayEventRunsNextStep(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(0, func() { ran = true })
	e.Step()
	if !ran {
		t.Fatal("zero-delay event must run on the next Step")
	}
}

func TestEventMayScheduleSameCycle(t *testing.T) {
	e := NewEngine()
	var hits []uint64
	e.After(2, func() {
		hits = append(hits, e.Now())
		e.After(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run(5)
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 2 {
		t.Fatalf("hits = %v, want [2 2]", hits)
	}
}

func TestAtClampsPast(t *testing.T) {
	e := NewEngine()
	e.Run(5)
	ran := false
	e.At(2, func() { ran = true }) // in the past
	e.Step()
	if !ran {
		t.Fatal("past-scheduled event must fire on next Step")
	}
}

func TestTickersRunEveryCycle(t *testing.T) {
	e := NewEngine()
	var ticks []uint64
	e.Register(TickerFunc(func(c uint64) { ticks = append(ticks, c) }))
	e.Run(3)
	if len(ticks) != 3 || ticks[0] != 0 || ticks[2] != 2 {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestEventsBeforeTickersWithinStep(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register(TickerFunc(func(c uint64) {
		if c == 1 {
			order = append(order, "tick")
		}
	}))
	e.After(1, func() { order = append(order, "event") })
	e.Run(3)
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v, want [event tick]", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	done := false
	e.After(4, func() { done = true })
	if !e.RunUntil(func() bool { return done }, 100) {
		t.Fatal("RunUntil should have succeeded")
	}
	if e.Now() > 6 {
		t.Fatalf("ran too long: %d", e.Now())
	}
	e2 := NewEngine()
	if e2.RunUntil(func() bool { return false }, 50) {
		t.Fatal("RunUntil should have hit the limit")
	}
	if e2.Now() != 50 {
		t.Fatalf("limit stop at %d, want 50", e2.Now())
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run(5)
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}
