// Package geom provides the coordinate system and distance metrics for the
// 3D Network-in-Memory topology: stacked device layers, each carrying a 2D
// mesh of nodes, with vertical pillar positions shared by all layers.
package geom

import "fmt"

// Coord identifies a node in the 3D chip: a position (X, Y) within the 2D
// mesh of a device layer, plus the layer index (0 = bottom).
type Coord struct {
	X, Y, Layer int
}

// String renders the coordinate as "(x,y,Lz)".
func (c Coord) String() string {
	return fmt.Sprintf("(%d,%d,L%d)", c.X, c.Y, c.Layer)
}

// SameLayer reports whether both coordinates are on the same device layer.
func (c Coord) SameLayer(o Coord) bool { return c.Layer == o.Layer }

// ManhattanXY returns the in-plane Manhattan distance, ignoring layers.
// It is the hop count of dimension-order routing within one layer.
func (c Coord) ManhattanXY(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

// HopsVia returns the total network hops from c to o when the vertical
// traversal happens at pillar p: in-plane hops to the pillar, one hop for
// the single-hop dTDMA bus (any number of layers), and in-plane hops from
// the pillar to the destination. If c and o share a layer the pillar is
// irrelevant and the plain Manhattan distance is returned.
func (c Coord) HopsVia(o Coord, p Coord) int {
	if c.SameLayer(o) {
		return c.ManhattanXY(o)
	}
	return c.ManhattanXY(Coord{p.X, p.Y, c.Layer}) + 1 + o.ManhattanXY(Coord{p.X, p.Y, o.Layer})
}

// Dim describes the mesh dimensions of the chip: Width x Height nodes per
// layer, and Layers stacked device layers.
type Dim struct {
	Width, Height, Layers int
}

// Nodes returns the total number of mesh nodes in the chip.
func (d Dim) Nodes() int { return d.Width * d.Height * d.Layers }

// NodesPerLayer returns the number of mesh nodes on one layer.
func (d Dim) NodesPerLayer() int { return d.Width * d.Height }

// Contains reports whether c is a valid coordinate within the chip.
func (d Dim) Contains(c Coord) bool {
	return c.X >= 0 && c.X < d.Width &&
		c.Y >= 0 && c.Y < d.Height &&
		c.Layer >= 0 && c.Layer < d.Layers
}

// Index flattens a coordinate to a dense index in [0, Nodes()).
func (d Dim) Index(c Coord) int {
	return c.Layer*d.Width*d.Height + c.Y*d.Width + c.X
}

// CoordOf is the inverse of Index.
func (d Dim) CoordOf(i int) Coord {
	per := d.Width * d.Height
	l := i / per
	r := i % per
	return Coord{X: r % d.Width, Y: r / d.Width, Layer: l}
}

// Direction identifies one of the router's physical channels in the mesh,
// including the vertical pillar port of gateway routers.
type Direction int

// Mesh directions. Local is the processing-element port; Vertical is the
// dTDMA pillar port present only on pillar routers. Up and Down exist only
// in the 7-port-router ablation (the design alternative the paper
// considered and rejected in Section 3.1), where vertical traversal is
// hop-by-hop through stacked routers instead of a single-hop bus.
const (
	North Direction = iota
	South
	East
	West
	Local
	Vertical
	Up
	Down
	NumDirections
)

// String returns the conventional single-word name of the direction.
func (dir Direction) String() string {
	switch dir {
	case North:
		return "North"
	case South:
		return "South"
	case East:
		return "East"
	case West:
		return "West"
	case Local:
		return "Local"
	case Vertical:
		return "Vertical"
	case Up:
		return "Up"
	case Down:
		return "Down"
	}
	return fmt.Sprintf("Direction(%d)", int(dir))
}

// Opposite returns the facing direction (North<->South, East<->West).
// Local and Vertical are their own opposites.
func (dir Direction) Opposite() Direction {
	switch dir {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	case Up:
		return Down
	case Down:
		return Up
	}
	return dir
}

// Step returns the coordinate one hop from c in the given in-plane
// direction. North decreases Y; East increases X.
func Step(c Coord, dir Direction) Coord {
	switch dir {
	case North:
		return Coord{c.X, c.Y - 1, c.Layer}
	case South:
		return Coord{c.X, c.Y + 1, c.Layer}
	case East:
		return Coord{c.X + 1, c.Y, c.Layer}
	case West:
		return Coord{c.X - 1, c.Y, c.Layer}
	case Up:
		return Coord{c.X, c.Y, c.Layer + 1}
	case Down:
		return Coord{c.X, c.Y, c.Layer - 1}
	}
	return c
}

// DOR computes the next in-plane hop under dimension-order (X then Y)
// routing from cur toward dst, both assumed to be on the same layer.
// It returns Local when cur already equals dst's in-plane position.
func DOR(cur, dst Coord) Direction {
	switch {
	case cur.X < dst.X:
		return East
	case cur.X > dst.X:
		return West
	case cur.Y < dst.Y:
		return South
	case cur.Y > dst.Y:
		return North
	}
	return Local
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
