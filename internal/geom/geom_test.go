package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattanXY(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0, 0}, Coord{0, 0, 0}, 0},
		{Coord{0, 0, 0}, Coord{3, 4, 0}, 7},
		{Coord{3, 4, 0}, Coord{0, 0, 0}, 7},
		{Coord{2, 2, 0}, Coord{2, 5, 1}, 3}, // layers ignored
		{Coord{5, 1, 3}, Coord{1, 1, 3}, 4},
	}
	for _, c := range cases {
		if got := c.a.ManhattanXY(c.b); got != c.want {
			t.Errorf("ManhattanXY(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Coord{int(ax), int(ay), 0}
		b := Coord{int(bx), int(by), 0}
		return a.ManhattanXY(b) == b.ManhattanXY(a) && a.ManhattanXY(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{int(ax), int(ay), 0}
		b := Coord{int(bx), int(by), 0}
		c := Coord{int(cx), int(cy), 0}
		return a.ManhattanXY(c) <= a.ManhattanXY(b)+b.ManhattanXY(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsVia(t *testing.T) {
	src := Coord{1, 1, 0}
	dst := Coord{4, 2, 1}
	p := Coord{2, 2, 0}
	// src->pillar: |1-2|+|1-2| = 2; bus: 1; pillar->dst: |2-4|+|2-2| = 2.
	if got := src.HopsVia(dst, p); got != 5 {
		t.Errorf("HopsVia = %d, want 5", got)
	}
	// Same layer: pillar irrelevant.
	sameDst := Coord{4, 2, 0}
	if got := src.HopsVia(sameDst, p); got != src.ManhattanXY(sameDst) {
		t.Errorf("same-layer HopsVia = %d, want %d", got, src.ManhattanXY(sameDst))
	}
}

func TestDimIndexRoundTrip(t *testing.T) {
	d := Dim{Width: 7, Height: 5, Layers: 3}
	if d.Nodes() != 105 {
		t.Fatalf("Nodes = %d, want 105", d.Nodes())
	}
	if d.NodesPerLayer() != 35 {
		t.Fatalf("NodesPerLayer = %d, want 35", d.NodesPerLayer())
	}
	seen := make(map[int]bool)
	for l := 0; l < d.Layers; l++ {
		for y := 0; y < d.Height; y++ {
			for x := 0; x < d.Width; x++ {
				c := Coord{x, y, l}
				if !d.Contains(c) {
					t.Fatalf("Contains(%v) = false", c)
				}
				i := d.Index(c)
				if i < 0 || i >= d.Nodes() {
					t.Fatalf("Index(%v) = %d out of range", c, i)
				}
				if seen[i] {
					t.Fatalf("Index(%v) = %d collides", c, i)
				}
				seen[i] = true
				if back := d.CoordOf(i); back != c {
					t.Fatalf("CoordOf(Index(%v)) = %v", c, back)
				}
			}
		}
	}
}

func TestDimContainsRejects(t *testing.T) {
	d := Dim{Width: 4, Height: 4, Layers: 2}
	for _, c := range []Coord{
		{-1, 0, 0}, {0, -1, 0}, {0, 0, -1},
		{4, 0, 0}, {0, 4, 0}, {0, 0, 2},
	} {
		if d.Contains(c) {
			t.Errorf("Contains(%v) = true, want false", c)
		}
	}
}

func TestStepAndOpposite(t *testing.T) {
	c := Coord{2, 2, 1}
	for _, dir := range []Direction{North, South, East, West} {
		s := Step(c, dir)
		if s.ManhattanXY(c) != 1 || s.Layer != c.Layer {
			t.Errorf("Step(%v,%v) = %v", c, dir, s)
		}
		if back := Step(s, dir.Opposite()); back != c {
			t.Errorf("Step back from %v via %v = %v, want %v", s, dir.Opposite(), back, c)
		}
	}
	if Step(c, Local) != c || Step(c, Vertical) != c {
		t.Error("Step must not move for Local/Vertical")
	}
	if Local.Opposite() != Local || Vertical.Opposite() != Vertical {
		t.Error("Local/Vertical must be self-opposite")
	}
}

func TestDORReachesDestination(t *testing.T) {
	f := func(sx, sy, dx, dy uint8) bool {
		cur := Coord{int(sx % 16), int(sy % 16), 0}
		dst := Coord{int(dx % 16), int(dy % 16), 0}
		steps := 0
		for cur != dst {
			dir := DOR(cur, dst)
			if dir == Local {
				return false // claims arrival before reaching dst
			}
			next := Step(cur, dir)
			// Every DOR step must strictly reduce the distance.
			if next.ManhattanXY(dst) != cur.ManhattanXY(dst)-1 {
				return false
			}
			cur = next
			steps++
			if steps > 64 {
				return false
			}
		}
		return DOR(cur, dst) == Local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDORXBeforeY(t *testing.T) {
	// Dimension-order routing must exhaust X before moving in Y.
	cur := Coord{0, 0, 0}
	dst := Coord{3, 3, 0}
	if dir := DOR(cur, dst); dir != East {
		t.Errorf("DOR = %v, want East first", dir)
	}
	cur = Coord{3, 0, 0}
	if dir := DOR(cur, dst); dir != South {
		t.Errorf("DOR = %v, want South after X done", dir)
	}
}

func TestDirectionString(t *testing.T) {
	names := map[Direction]string{
		North: "North", South: "South", East: "East",
		West: "West", Local: "Local", Vertical: "Vertical",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(d), d.String(), want)
		}
	}
}

func TestHopsViaSymmetric(t *testing.T) {
	// The pillar path length is symmetric in source and destination.
	f := func(sx, sy, sl, dx, dy, px, py uint8) bool {
		src := Coord{int(sx % 16), int(sy % 8), int(sl % 2)}
		dst := Coord{int(dx % 16), int(dy % 8), 1 - int(sl%2)}
		p := Coord{int(px % 16), int(py % 8), 0}
		return src.HopsVia(dst, p) == dst.HopsVia(src, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsViaLowerBound(t *testing.T) {
	// Triangle inequality: detouring through the pillar can never beat the
	// direct in-plane distance plus one vertical hop, minus what the
	// pillar's own proximity to the destination saves.
	f := func(sx, sy, dx, dy, px, py uint8) bool {
		src := Coord{int(sx % 16), int(sy % 8), 0}
		dst := Coord{int(dx % 16), int(dy % 8), 1}
		p := Coord{int(px % 16), int(py % 8), 0}
		return src.HopsVia(dst, p) >= src.ManhattanXY(dst)+1-2*dst.ManhattanXY(Coord{p.X, p.Y, dst.Layer})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
