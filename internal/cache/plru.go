package cache

// plruTree is a binary-tree pseudo-LRU replacement policy for a power-of-two
// number of ways, the policy the paper's L2 uses (Section 4.2.2). Each
// internal node holds one bit pointing toward the less recently used half;
// touching a way flips the bits along its path to point away from it.
type plruTree struct {
	ways int
	bits []bool // ways-1 internal nodes, heap order, root at index 0
}

func newPLRU(ways int) plruTree {
	if ways < 1 || ways&(ways-1) != 0 {
		panic("cache: pLRU ways must be a positive power of two")
	}
	return plruTree{ways: ways, bits: make([]bool, ways-1)}
}

// touch marks a way most-recently-used.
func (t *plruTree) touch(way int) {
	if t.ways == 1 {
		return
	}
	node := 0
	lo, hi := 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			t.bits[node] = true // LRU half is the right side
			node = 2*node + 1
			hi = mid
		} else {
			t.bits[node] = false // LRU half is the left side
			node = 2*node + 2
			lo = mid
		}
	}
}

// victim returns the pseudo-least-recently-used way.
func (t *plruTree) victim() int {
	if t.ways == 1 {
		return 0
	}
	node := 0
	lo, hi := 0, t.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.bits[node] {
			node = 2*node + 2 // right half is LRU
			lo = mid
		} else {
			node = 2*node + 1 // left half is LRU
			hi = mid
		}
	}
	return lo
}
