// Package cache provides the storage structures of the memory hierarchy:
// set-associative banks with tree pseudo-LRU replacement, the address
// mapping of the clustered NUCA L2 (Section 4.2.2 of the paper), and the
// line metadata the management policies operate on (migration counters,
// lazy-migration marks, and the co-located L1 directory state).
package cache

import "fmt"

// LineAddr is a cache-line address: the byte address divided by the line
// size. All of the memory system works in line addresses.
type LineAddr uint64

// Geometry describes the clustered L2 organization. The default (Table 4)
// is 16 clusters x 16 banks x 64 sets x 16 ways x 64-byte lines = 16 MB.
type Geometry struct {
	Clusters        int // number of clusters (each with its own tag array)
	BanksPerCluster int // banks per cluster
	SetsPerBank     int // sets in one bank
	Ways            int // associativity
	LineBytes       int // line size in bytes
}

// DefaultGeometry returns the paper's Table 4 configuration:
// 16 MB = 256 x 64 KB banks, 16-way, 64 B lines, 16 clusters of 16 banks.
func DefaultGeometry() Geometry {
	return Geometry{
		Clusters:        16,
		BanksPerCluster: 16,
		SetsPerBank:     64,
		Ways:            16,
		LineBytes:       64,
	}
}

// Validate checks that every field is a positive power of two (the address
// mapping uses bit slicing).
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v < 1 || v&(v-1) != 0 {
			return fmt.Errorf("cache: %s = %d must be a positive power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Clusters", g.Clusters},
		{"BanksPerCluster", g.BanksPerCluster},
		{"SetsPerBank", g.SetsPerBank},
		{"Ways", g.Ways},
		{"LineBytes", g.LineBytes},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes returns the aggregate L2 capacity.
func (g Geometry) TotalBytes() int {
	return g.Clusters * g.BanksPerCluster * g.SetsPerBank * g.Ways * g.LineBytes
}

// TotalBanks returns the number of banks in the whole L2.
func (g Geometry) TotalBanks() int { return g.Clusters * g.BanksPerCluster }

// BankBytes returns the capacity of one bank.
func (g Geometry) BankBytes() int { return g.SetsPerBank * g.Ways * g.LineBytes }

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Place decomposes a line address per the paper's placement policy:
// the low-order bits of the cache index pick the bank within the cluster,
// the remaining index bits pick the set within the bank, and the low-order
// bits of the cache tag pick the *initial* (home) cluster. Migration later
// moves a line between clusters, but bank-in-cluster and set are fixed
// functions of the address, so a line occupies the same slot shape in any
// cluster it visits.
type Place struct {
	HomeCluster int    // initial cluster (low tag bits)
	Bank        int    // bank within any cluster
	Set         int    // set within that bank
	Tag         uint64 // remaining address bits, stored in the tag array
}

// PlaceOf maps a line address to its placement.
func (g Geometry) PlaceOf(a LineAddr) Place {
	bankBits := log2(g.BanksPerCluster)
	setBits := log2(g.SetsPerBank)
	clusterMask := uint64(g.Clusters - 1)
	idx := uint64(a) & ((1 << (bankBits + setBits)) - 1)
	tag := uint64(a) >> (bankBits + setBits)
	return Place{
		HomeCluster: int(tag & clusterMask),
		Bank:        int(idx & uint64(g.BanksPerCluster-1)),
		Set:         int(idx >> bankBits),
		Tag:         tag,
	}
}

// LineOf reconstructs a line address from a placement (inverse of PlaceOf).
func (g Geometry) LineOf(p Place) LineAddr {
	bankBits := log2(g.BanksPerCluster)
	setBits := log2(g.SetsPerBank)
	idx := uint64(p.Set)<<bankBits | uint64(p.Bank)
	return LineAddr(p.Tag<<(bankBits+setBits) | idx)
}

// Entry is one cache line's metadata. Directory state for the L1 coherence
// protocol (Sharers) is co-located with the tag entry, and the migration
// policy's saturating access counter lives here too.
type Entry struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// Migrating marks a line being lazily migrated: it remains hittable at
	// its old location until the new location acknowledges (Section 4.2.3).
	Migrating bool
	// Replica marks a read-only copy created by the victim-replication
	// extension; the authoritative copy lives in another cluster.
	Replica bool
	// Sharers is the bitmask of CPUs holding the line in their L1.
	Sharers uint16
	// Hits is the migration policy's saturating access counter.
	Hits uint8
	// LastCPU is the CPU that last hit this line (-1 if none): consecutive
	// hits by the same remote CPU drive migration toward it.
	LastCPU int8
}

// Set is one associative set with tree pseudo-LRU replacement.
type Set struct {
	ways []Entry
	plru plruTree
}

// newSet builds a set with the given associativity (power of two).
func newSet(ways int) Set {
	return Set{ways: make([]Entry, ways), plru: newPLRU(ways)}
}

// Ways returns the associativity.
func (s *Set) Ways() int { return len(s.ways) }

// Way returns the entry in the given way for inspection or mutation.
func (s *Set) Way(i int) *Entry { return &s.ways[i] }

// Lookup finds a valid entry with the given tag, returning its way.
func (s *Set) Lookup(tag uint64) (way int, ok bool) {
	for i := range s.ways {
		if s.ways[i].Valid && s.ways[i].Tag == tag {
			return i, true
		}
	}
	return 0, false
}

// Touch marks the way most-recently-used.
func (s *Set) Touch(way int) { s.plru.touch(way) }

// Victim returns the way to evict: an invalid way if one exists, otherwise
// the pseudo-LRU choice.
func (s *Set) Victim() int {
	for i := range s.ways {
		if !s.ways[i].Valid {
			return i
		}
	}
	return s.plru.victim()
}

// Insert places a tag into the set, evicting the victim way if it was
// valid. It returns the way used and the displaced entry (ok reports
// whether a valid entry was evicted). The new entry starts clean with no
// sharers and is marked most-recently-used.
func (s *Set) Insert(tag uint64) (way int, evicted Entry, ok bool) {
	way = s.Victim()
	evicted, ok = s.ways[way], s.ways[way].Valid
	s.ways[way] = Entry{Tag: tag, Valid: true, LastCPU: -1}
	s.plru.touch(way)
	return way, evicted, ok
}

// InsertFree places a tag into an invalid way without evicting anything,
// reporting failure when the set is full. Cache warm-up uses it to build a
// steady state without displacing already-placed lines.
func (s *Set) InsertFree(tag uint64) (way int, ok bool) {
	for i := range s.ways {
		if !s.ways[i].Valid {
			s.ways[i] = Entry{Tag: tag, Valid: true, LastCPU: -1}
			s.plru.touch(i)
			return i, true
		}
	}
	return 0, false
}

// InsertReplica places a read-only replica into the set, displacing only an
// invalid way or another replica — never an authoritative line (the
// victim-replication capacity rule). It reports failure when every way
// holds a non-replica line, and returns any displaced replica so its
// bookkeeping can be cleaned up.
func (s *Set) InsertReplica(tag uint64) (way int, displaced Entry, hadDisplaced, ok bool) {
	victim := -1
	for i := range s.ways {
		if !s.ways[i].Valid {
			victim = i
			break
		}
		if s.ways[i].Replica && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		return 0, Entry{}, false, false
	}
	displaced, hadDisplaced = s.ways[victim], s.ways[victim].Valid
	s.ways[victim] = Entry{Tag: tag, Valid: true, Replica: true, LastCPU: -1}
	s.plru.touch(victim)
	return victim, displaced, hadDisplaced, true
}

// Invalidate clears the entry holding tag, reporting whether it was found.
func (s *Set) Invalidate(tag uint64) bool {
	if way, ok := s.Lookup(tag); ok {
		s.ways[way] = Entry{}
		return true
	}
	return false
}

// ValidCount returns the number of valid entries.
func (s *Set) ValidCount() int {
	n := 0
	for i := range s.ways {
		if s.ways[i].Valid {
			n++
		}
	}
	return n
}

// Bank is one L2 cache bank: an array of sets. Access timing (the 5-cycle
// bank access of Table 4) is charged by the L2 controller, not here.
type Bank struct {
	sets []Set
	// Reads and Writes count accesses for the dynamic-power model.
	Reads  uint64
	Writes uint64
}

// NewBank builds a bank with the given set count and associativity.
func NewBank(sets, ways int) *Bank {
	b := &Bank{sets: make([]Set, sets)}
	for i := range b.sets {
		b.sets[i] = newSet(ways)
	}
	return b
}

// Set returns set i.
func (b *Bank) Set(i int) *Set { return &b.sets[i] }

// NumSets returns the number of sets.
func (b *Bank) NumSets() int { return len(b.sets) }

// ValidLines counts valid entries across the bank.
func (b *Bank) ValidLines() int {
	n := 0
	for i := range b.sets {
		n += b.sets[i].ValidCount()
	}
	return n
}
