package cache

import "repro/internal/digest"

// DigestFold folds the bank's access counters and the full tag array —
// every way's tag, coherence/migration bits, sharer vector, and the
// per-set PLRU bits — into the recorder's current lane. Entries fold as
// two packed words each so a full L2 sweep stays cheap enough for
// per-cycle digesting during divergence refinement.
func (b *Bank) DigestFold(r *digest.Recorder) {
	r.Fold(b.Reads)
	r.Fold(b.Writes)
	for i := range b.sets {
		s := &b.sets[i]
		var plru uint64
		for j, bit := range s.plru.bits {
			if bit {
				plru |= 1 << uint(j)
			}
		}
		r.Fold(plru)
		for w := range s.ways {
			e := &s.ways[w]
			var flags uint64
			if e.Valid {
				flags |= 1
			}
			if e.Dirty {
				flags |= 2
			}
			if e.Migrating {
				flags |= 4
			}
			if e.Replica {
				flags |= 8
			}
			flags |= uint64(e.Sharers) << 8
			flags |= uint64(e.Hits) << 24
			flags |= uint64(uint8(e.LastCPU)) << 32
			r.Fold(e.Tag)
			r.Fold(flags)
		}
	}
}
