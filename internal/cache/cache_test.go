package cache

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalBytes() != 16<<20 {
		t.Errorf("TotalBytes = %d, want 16MB", g.TotalBytes())
	}
	if g.TotalBanks() != 256 {
		t.Errorf("TotalBanks = %d, want 256", g.TotalBanks())
	}
	if g.BankBytes() != 64<<10 {
		t.Errorf("BankBytes = %d, want 64KB", g.BankBytes())
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	bad := []Geometry{
		{Clusters: 3, BanksPerCluster: 16, SetsPerBank: 64, Ways: 16, LineBytes: 64},
		{Clusters: 16, BanksPerCluster: 0, SetsPerBank: 64, Ways: 16, LineBytes: 64},
		{Clusters: 16, BanksPerCluster: 16, SetsPerBank: -2, Ways: 16, LineBytes: 64},
		{Clusters: 16, BanksPerCluster: 16, SetsPerBank: 64, Ways: 12, LineBytes: 64},
		{Clusters: 16, BanksPerCluster: 16, SetsPerBank: 64, Ways: 16, LineBytes: 48},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
}

func TestPlaceOfRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(a uint32) bool {
		addr := LineAddr(a)
		p := g.PlaceOf(addr)
		if p.Bank < 0 || p.Bank >= g.BanksPerCluster {
			return false
		}
		if p.Set < 0 || p.Set >= g.SetsPerBank {
			return false
		}
		if p.HomeCluster < 0 || p.HomeCluster >= g.Clusters {
			return false
		}
		return g.LineOf(p) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlaceOfBitSlicing(t *testing.T) {
	g := DefaultGeometry()
	// bank = low 4 bits, set = next 6, tag = rest, home = tag low 4.
	a := LineAddr(0b_1011_0101_110101_0011)
	p := g.PlaceOf(a)
	if p.Bank != 0b0011 {
		t.Errorf("Bank = %d", p.Bank)
	}
	if p.Set != 0b110101 {
		t.Errorf("Set = %d", p.Set)
	}
	if p.Tag != 0b1011_0101 {
		t.Errorf("Tag = %d", p.Tag)
	}
	if p.HomeCluster != 0b0101 {
		t.Errorf("HomeCluster = %d", p.HomeCluster)
	}
}

func TestConsecutiveLinesSpreadOverBanks(t *testing.T) {
	g := DefaultGeometry()
	// Consecutive line addresses must hit consecutive banks (index low bits).
	for i := 0; i < g.BanksPerCluster; i++ {
		if p := g.PlaceOf(LineAddr(i)); p.Bank != i {
			t.Fatalf("line %d -> bank %d", i, p.Bank)
		}
	}
}

func TestSetLookupInsertInvalidate(t *testing.T) {
	s := newSet(4)
	if _, ok := s.Lookup(42); ok {
		t.Fatal("lookup hit in empty set")
	}
	way, _, evicted := s.Insert(42)
	if evicted {
		t.Fatal("eviction from empty set")
	}
	if got, ok := s.Lookup(42); !ok || got != way {
		t.Fatalf("lookup after insert: way=%d ok=%v", got, ok)
	}
	if !s.Invalidate(42) {
		t.Fatal("invalidate failed")
	}
	if _, ok := s.Lookup(42); ok {
		t.Fatal("lookup hit after invalidate")
	}
	if s.Invalidate(42) {
		t.Fatal("double invalidate reported success")
	}
}

func TestSetEvictsWhenFull(t *testing.T) {
	s := newSet(4)
	for tag := uint64(0); tag < 4; tag++ {
		if _, _, ev := s.Insert(tag); ev {
			t.Fatalf("unexpected eviction inserting %d", tag)
		}
	}
	if s.ValidCount() != 4 {
		t.Fatalf("ValidCount = %d", s.ValidCount())
	}
	_, evictedEntry, ev := s.Insert(99)
	if !ev {
		t.Fatal("full set must evict")
	}
	if !evictedEntry.Valid {
		t.Fatal("evicted entry must have been valid")
	}
	if _, ok := s.Lookup(99); !ok {
		t.Fatal("new tag not present")
	}
	if s.ValidCount() != 4 {
		t.Fatalf("ValidCount after eviction = %d", s.ValidCount())
	}
}

func TestPLRUVictimIsNotMRU(t *testing.T) {
	for _, ways := range []int{2, 4, 8, 16} {
		p := newPLRU(ways)
		for w := 0; w < ways; w++ {
			p.touch(w)
			if v := p.victim(); v == w {
				t.Errorf("ways=%d: victim %d equals just-touched way", ways, v)
			}
		}
	}
}

func TestPLRUFullCycle(t *testing.T) {
	// Touching ways 0..n-1 in order leaves way 0 as the victim.
	p := newPLRU(8)
	for w := 0; w < 8; w++ {
		p.touch(w)
	}
	if v := p.victim(); v != 0 {
		t.Errorf("victim = %d, want 0 after in-order touches", v)
	}
}

func TestPLRUSingleWay(t *testing.T) {
	p := newPLRU(1)
	p.touch(0)
	if p.victim() != 0 {
		t.Error("single-way victim must be 0")
	}
}

func TestPLRUPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newPLRU(3) must panic")
		}
	}()
	newPLRU(3)
}

func TestPLRUApproximatesLRUUnderScan(t *testing.T) {
	// Property: under a repeating scan of ways+1 distinct tags through a
	// set, every insert evicts (thrash), exercising victim rotation without
	// ever returning an out-of-range way.
	s := newSet(4)
	for i := 0; i < 100; i++ {
		tag := uint64(i % 5)
		if _, ok := s.Lookup(tag); !ok {
			way, _, _ := s.Insert(tag)
			if way < 0 || way >= 4 {
				t.Fatalf("way %d out of range", way)
			}
		} else {
			if w, _ := s.Lookup(tag); true {
				s.Touch(w)
			}
		}
	}
}

func TestBank(t *testing.T) {
	b := NewBank(8, 4)
	if b.NumSets() != 8 {
		t.Fatalf("NumSets = %d", b.NumSets())
	}
	b.Set(3).Insert(7)
	if b.ValidLines() != 1 {
		t.Fatalf("ValidLines = %d", b.ValidLines())
	}
	if _, ok := b.Set(3).Lookup(7); !ok {
		t.Fatal("inserted line not found")
	}
	if _, ok := b.Set(2).Lookup(7); ok {
		t.Fatal("line leaked into wrong set")
	}
}

func TestEntryDefaults(t *testing.T) {
	s := newSet(2)
	way, _, _ := s.Insert(5)
	e := s.Way(way)
	if e.Dirty || e.Migrating || e.Sharers != 0 || e.Hits != 0 {
		t.Errorf("fresh entry has nonzero policy state: %+v", e)
	}
	if e.LastCPU != -1 {
		t.Errorf("LastCPU = %d, want -1", e.LastCPU)
	}
}

func TestDistinctAddressesDistinctPlaces(t *testing.T) {
	g := Geometry{Clusters: 4, BanksPerCluster: 4, SetsPerBank: 8, Ways: 2, LineBytes: 64}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[Place]LineAddr{}
	for a := LineAddr(0); a < 1024; a++ {
		p := g.PlaceOf(a)
		if prev, dup := seen[p]; dup {
			t.Fatalf("addresses %d and %d share place %+v", prev, a, p)
		}
		seen[p] = a
	}
}

func TestInsertReplicaPrefersInvalidThenReplica(t *testing.T) {
	s := newSet(4)
	// Empty set: uses an invalid way.
	way, _, had, ok := s.InsertReplica(1)
	if !ok || had {
		t.Fatalf("ok=%v had=%v", ok, had)
	}
	if !s.Way(way).Replica {
		t.Fatal("entry not marked replica")
	}
	// Fill the rest with primaries.
	for tag := uint64(10); s.ValidCount() < 4; tag++ {
		s.Insert(tag)
	}
	// A second replica must displace the first replica, not a primary.
	way2, displaced, had2, ok2 := s.InsertReplica(2)
	if !ok2 || !had2 {
		t.Fatalf("ok=%v had=%v", ok2, had2)
	}
	if !displaced.Replica || displaced.Tag != 1 {
		t.Fatalf("displaced %+v, want the old replica", displaced)
	}
	if !s.Way(way2).Replica || s.Way(way2).Tag != 2 {
		t.Fatal("new replica not installed")
	}
}

func TestInsertReplicaRefusesFullPrimarySet(t *testing.T) {
	s := newSet(2)
	s.Insert(10)
	s.Insert(11)
	if _, _, _, ok := s.InsertReplica(1); ok {
		t.Fatal("replica displaced a primary")
	}
	// Primaries untouched.
	if _, ok := s.Lookup(10); !ok {
		t.Fatal("primary 10 lost")
	}
	if _, ok := s.Lookup(11); !ok {
		t.Fatal("primary 11 lost")
	}
}
