package digest

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMixAvalanche sanity-checks the finalizer: distinct inputs map to
// distinct outputs and zero does not fix-point (a zeroed subsystem still
// advances its chain).
func TestMixAvalanche(t *testing.T) {
	seen := map[uint64]uint64{}
	for _, x := range []uint64{0, 1, 2, 1 << 63, ^uint64(0), 0xDEADBEEF} {
		m := Mix(x)
		if m == x {
			t.Errorf("Mix(%#x) = input (fixed point)", x)
		}
		if prev, dup := seen[m]; dup {
			t.Errorf("Mix collision: %#x and %#x both -> %#x", prev, x, m)
		}
		seen[m] = x
	}
}

func TestLaneNames(t *testing.T) {
	want := []string{"cpu", "cache", "noc", "dtdma", "engine", "thermal", "dtm", "rng"}
	if len(want) != NumLanes {
		t.Fatalf("test out of date: %d lane names for %d lanes", len(want), NumLanes)
	}
	for l, name := range want {
		if got := Lane(l).String(); got != name {
			t.Errorf("Lane(%d).String() = %q, want %q", l, got, name)
		}
	}
	if got := Lane(-1).String(); got != "unknown" {
		t.Errorf("Lane(-1).String() = %q", got)
	}
	if got := Lane(NumLanes).String(); got != "unknown" {
		t.Errorf("Lane(NumLanes).String() = %q", got)
	}
}

// fixedWalker folds one word per lane: the per-lane value from vals,
// keyed by a counter so successive snapshots fold fresh state.
func fixedWalker(vals *[NumLanes]uint64) func(*Recorder) {
	return func(r *Recorder) {
		for l := 0; l < NumLanes; l++ {
			r.BeginLane(Lane(l))
			r.Fold(vals[l])
		}
	}
}

// TestRecorderStream checks interval gating, cycle-0 skipping, and the
// cumulative-record invariants Compare relies on.
func TestRecorderStream(t *testing.T) {
	var vals [NumLanes]uint64
	rec := NewRecorder(10)
	rec.SetWalker(fixedWalker(&vals))
	for c := uint64(0); c <= 100; c++ {
		vals[0] = c
		rec.Tick(c)
	}
	recs := rec.Records()
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10 (cycles 10..100, cycle 0 skipped)", len(recs))
	}
	for i, r := range recs {
		if want := uint64(10 * (i + 1)); r.Cycle != want {
			t.Errorf("record %d at cycle %d, want %d", i, r.Cycle, want)
		}
		if r.Digest == 0 {
			t.Errorf("record %d has zero digest", i)
		}
		if i > 0 && r.Digest == recs[i-1].Digest {
			t.Errorf("records %d and %d share a digest despite differing state", i-1, i)
		}
	}
	if rec.Digest() != recs[len(recs)-1].Digest {
		t.Error("Recorder.Digest() != last record's digest")
	}
	if rec.LaneValue(LaneCPU) != recs[len(recs)-1].Lanes[LaneCPU] {
		t.Error("LaneValue(cpu) != last record's cpu chain")
	}
}

// TestRecorderDeterminism: identical fold sequences give identical
// streams; a single-word difference in one lane changes that lane's
// chain and every later overall digest.
func TestRecorderDeterminism(t *testing.T) {
	run := func(perturbAt uint64) []Record {
		var vals [NumLanes]uint64
		rec := NewRecorder(5)
		rec.SetWalker(fixedWalker(&vals))
		for c := uint64(1); c <= 50; c++ {
			vals[LaneNoC] = c
			if c == perturbAt {
				vals[LaneNoC]++
			}
			rec.Tick(c)
		}
		return rec.Records()
	}
	a, b := run(0), run(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical runs diverged at record %d", i)
		}
	}
	if _, ok := Compare(a, b); ok {
		t.Error("Compare found divergence between identical streams")
	}

	// Perturb cycle 25: records 1..4 (cycles 5..20) agree, record 5
	// (cycle 25) diverges in the noc lane.
	c := run(25)
	div, ok := Compare(a, c)
	if !ok {
		t.Fatal("Compare missed a real divergence")
	}
	if div.Cycle != 25 || div.Index != 4 || div.Lane != LaneNoC {
		t.Errorf("divergence at cycle %d index %d lane %s, want cycle 25 index 4 lane noc",
			div.Cycle, div.Index, div.Lane)
	}
	for i := 0; i < div.Index; i++ {
		if a[i] != c[i] {
			t.Errorf("record %d differs before the reported divergence", i)
		}
	}
}

// TestCompareEdges exercises first-record and last-record divergences,
// unequal lengths, and empty streams — the binary search's boundaries.
func TestCompareEdges(t *testing.T) {
	mk := func(n int, divergeFrom int) []Record {
		out := make([]Record, n)
		d := uint64(0)
		for i := range out {
			word := uint64(i)
			if i >= divergeFrom {
				word++
			}
			var lanes [NumLanes]uint64
			lanes[LaneEngine] = Mix(word)
			d = Mix(d ^ lanes[LaneEngine])
			out[i] = Record{Cycle: uint64(i+1) * 100, Lanes: lanes, Digest: d}
		}
		return out
	}
	base := mk(20, 99)

	if _, ok := Compare(nil, nil); ok {
		t.Error("Compare(nil, nil) reported divergence")
	}
	if _, ok := Compare(base, nil); ok {
		t.Error("Compare against empty stream reported divergence")
	}
	if div, ok := Compare(base, mk(20, 0)); !ok || div.Index != 0 || div.Cycle != 100 {
		t.Errorf("first-record divergence: got %+v ok=%v", div, ok)
	}
	if div, ok := Compare(base, mk(20, 19)); !ok || div.Index != 19 || div.Cycle != 2000 {
		t.Errorf("last-record divergence: got %+v ok=%v", div, ok)
	}
	// A shorter stream that agrees on its whole length: no divergence —
	// the comparison covers only the common prefix.
	if _, ok := Compare(base, base[:7]); ok {
		t.Error("prefix-equal streams reported divergence")
	}
	// Divergence beyond the shorter stream's end is invisible.
	if _, ok := Compare(base[:10], mk(20, 15)); ok {
		t.Error("divergence past the common prefix reported")
	}
	div, ok := Compare(base[:10], mk(20, 4))
	if !ok || div.Index != 4 {
		t.Errorf("mid-prefix divergence with unequal lengths: got %+v ok=%v", div, ok)
	}
	if div.Lane != LaneEngine {
		t.Errorf("divergent lane %s, want engine", div.Lane)
	}
}

// TestReportShape checks the JSON summary: 16-hex digests, all lanes in
// order, and the stream excluded from serialization.
func TestReportShape(t *testing.T) {
	var vals [NumLanes]uint64
	rec := NewRecorder(1)
	rec.SetWalker(fixedWalker(&vals))
	for c := uint64(1); c <= 5; c++ {
		vals[0] = c
		rec.Tick(c)
	}
	rep := rec.Report()
	if rep.Interval != 1 || rep.Records != 5 || len(rep.Stream) != 5 {
		t.Fatalf("report summary wrong: %+v", rep)
	}
	if len(rep.Digest) != 16 || strings.Trim(rep.Digest, "0123456789abcdef") != "" {
		t.Errorf("digest %q is not 16 lowercase hex digits", rep.Digest)
	}
	if len(rep.Lanes) != NumLanes {
		t.Fatalf("report has %d lanes, want %d", len(rep.Lanes), NumLanes)
	}
	for l, ld := range rep.Lanes {
		if ld.Lane != Lane(l).String() {
			t.Errorf("lane %d named %q, want %q", l, ld.Lane, Lane(l).String())
		}
		if len(ld.Digest) != 16 {
			t.Errorf("lane %s digest %q is not 16 digits", ld.Lane, ld.Digest)
		}
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Stream") || strings.Contains(string(b), "stream") {
		t.Errorf("stream leaked into report JSON: %s", b)
	}
}

// TestReserveIdempotent: Reserve never shrinks and repeated calls with
// satisfied capacity do nothing.
func TestReserveIdempotent(t *testing.T) {
	rec := NewRecorder(1)
	rec.SetWalker(func(r *Recorder) { r.BeginLane(LaneCPU); r.Fold(1) })
	rec.Reserve(100)
	c := cap(rec.stream)
	rec.Reserve(50)
	if cap(rec.stream) != c {
		t.Error("Reserve with satisfied capacity reallocated")
	}
	for i := uint64(1); i <= 100; i++ {
		rec.Tick(i)
	}
	if cap(rec.stream) != c {
		t.Error("recording within reserved capacity reallocated")
	}
}

func TestNewRecorderPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0)
}
