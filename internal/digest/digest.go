// Package digest computes incremental state digests of a running
// simulation. A Recorder periodically folds every stateful subsystem —
// CPUs and L1s, L2 tags and the MSI directory, router queues and
// in-flight packets, dTDMA slot state, the event engine's wheel and
// heap, the thermal grid, DTM hysteresis masks, and the trace RNGs —
// into per-subsystem hash chains. The chains are themselves chained, so
// one final 64-bit digest attests the whole run, while the per-lane
// sub-digests identify *where* state first differed when two runs
// disagree.
//
// The recorder is strictly an observer: it reads simulator state and
// writes only into its own arrays, so an attached run is bit-identical
// to a detached one (pinned by TestDigestDoesNotPerturb), and the
// record path allocates nothing once the stream slice is grown
// (Reserve pre-grows it; the alloc pin covers the steady state).
package digest

import "math"

// Lane names one hash chain — one stateful subsystem folded per
// snapshot. Lanes are ordered; the overall digest chains them in this
// order, and Compare reports the first differing lane of the first
// differing snapshot as the offending subsystem.
type Lane int

const (
	// LaneCPU covers per-CPU architectural state: instruction and
	// access counters, blocked/stalled refs, store credits, and both
	// private L1 caches (tags, state bits, PLRU).
	LaneCPU Lane = iota
	// LaneCache covers the shared L2: cluster bank tags and state
	// bits, tag-port reservations, the MSI directory (line locations,
	// in-flight transactions, replica sets), and the protocol metric
	// counters.
	LaneCache
	// LaneNoC covers the mesh: per-router source queues, virtual
	// channels, in-flight flits and their packets, and the fabric's
	// injection/delivery bookkeeping.
	LaneNoC
	// LaneDTDMA covers the vertical pillar buses: transmit buffers,
	// the slot wheel position, and pending-flit counters.
	LaneDTDMA
	// LaneEngine covers the event engine: cycle, sequence counter,
	// timing wheel, overflow heap, and overdue list.
	LaneEngine
	// LaneThermal covers the thermal grid's power and temperature
	// fields.
	LaneThermal
	// LaneDTM covers the DTM controller's hysteresis masks, duty
	// slots, and report counters.
	LaneDTM
	// LaneRNG covers the trace generators: xorshift state and region
	// cursors per CPU.
	LaneRNG
	// NumLanes is the number of per-subsystem hash chains.
	NumLanes = int(LaneRNG) + 1
)

var laneNames = [NumLanes]string{
	"cpu", "cache", "noc", "dtdma", "engine", "thermal", "dtm", "rng",
}

// String returns the lane's short name (used in reports, sampler
// columns, and divergence diagnostics).
func (l Lane) String() string {
	if l < 0 || int(l) >= NumLanes {
		return "unknown"
	}
	return laneNames[l]
}

// Mix is the SplitMix64 finalizer: a cheap, high-quality 64-bit
// avalanche. The chains fold state word-by-word as
// cur = Mix(cur ^ word), so every bit of every folded word diffuses
// into the running digest. Exported so subsystem walkers can build
// order-independent folds (commutative XOR of per-entry Mix chains)
// for map-backed state whose iteration order Go randomizes.
func Mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Record is one digest snapshot: the cycle it was taken at, the
// cumulative per-lane chain values, and the cumulative overall digest
// (the lanes chained together, chained onto the previous record's
// digest). Because every field is cumulative, two streams that agree
// at record i agree on all simulator state folded up to and including
// cycle Record[i].Cycle — which is what lets Compare binary-search for
// the first divergence instead of scanning.
type Record struct {
	Cycle  uint64
	Lanes  [NumLanes]uint64
	Digest uint64
}

// LaneDigest pairs a lane name with its final chain value for the
// JSON report.
type LaneDigest struct {
	Lane   string `json:"lane"`
	Digest string `json:"digest"`
}

// Report is the JSON-facing summary attached to Results.Digests. The
// full snapshot stream stays in memory only (the bisector and the
// shard-invariance test consume it); serializing thousands of records
// into every Results blob would bloat the result cache for no reader.
type Report struct {
	// Interval is the snapshot period in cycles.
	Interval uint64 `json:"interval"`
	// Records is the number of snapshots taken.
	Records int `json:"records"`
	// Digest is the final cumulative digest as 16 hex digits — the
	// one value that attests the whole run.
	Digest string `json:"digest"`
	// Lanes holds the final per-subsystem chain values, in lane
	// order.
	Lanes []LaneDigest `json:"lanes"`
	// Stream is the in-memory snapshot sequence; deliberately not
	// serialized (see type comment).
	Stream []Record `json:"-"`
}

// Recorder is the incremental digest engine. It implements sim.Ticker:
// every interval cycles the walker installed by the owning system
// folds all subsystem state through BeginLane/Fold, and the recorder
// appends one cumulative Record. All mutable state lives in fixed
// arrays plus one amortized-append slice, so the record path is
// allocation-free in steady state.
type Recorder struct {
	interval uint64
	walk     func(*Recorder)

	lane   Lane              // lane currently being folded
	cur    [NumLanes]uint64  // working chain values for this snapshot
	chains [NumLanes]uint64  // cumulative per-lane chains
	digest uint64            // cumulative overall digest
	stream []Record
}

// NewRecorder returns a recorder snapshotting every interval cycles.
// It panics on interval < 1 (like obs.NewSampler): a zero interval is
// a caller bug, not a mode.
func NewRecorder(interval uint64) *Recorder {
	if interval < 1 {
		panic("digest: interval must be >= 1")
	}
	return &Recorder{interval: interval}
}

// Interval returns the snapshot period in cycles.
func (r *Recorder) Interval() uint64 { return r.interval }

// SetWalker installs the state-traversal function invoked at each
// snapshot. The walker must call BeginLane for each lane in order and
// fold that subsystem's state; it runs after the engine drains the
// cycle's events, so it always observes post-barrier serial state.
func (r *Recorder) SetWalker(walk func(*Recorder)) { r.walk = walk }

// BeginLane switches folding to lane l. Subsequent Fold calls extend
// that lane's chain.
func (r *Recorder) BeginLane(l Lane) { r.lane = l }

// Fold chains one state word into the current lane.
func (r *Recorder) Fold(x uint64) {
	r.cur[r.lane] = Mix(r.cur[r.lane] ^ x)
}

// FoldBool folds a flag (1 for true, 0 for false — still chained, so
// position matters).
func (r *Recorder) FoldBool(b bool) {
	var x uint64
	if b {
		x = 1
	}
	r.Fold(x)
}

// FoldInt folds a signed integer by bit pattern.
func (r *Recorder) FoldInt(v int) { r.Fold(uint64(v)) }

// FoldFloat folds a float64 by IEEE-754 bit pattern — exact, so two runs
// whose floating-point state differs in the last ulp still diverge.
func (r *Recorder) FoldFloat(f float64) { r.Fold(math.Float64bits(f)) }

// Mixed folds x into the current lane without touching the chain and
// returns the chained value — the building block for commutative
// folds over Go maps: hash each entry with Mix chains off a fixed
// seed, XOR the per-entry results (order-independent), then Fold the
// XOR once.
func Mixed(seed, x uint64) uint64 { return Mix(seed ^ x) }

// Reserve pre-grows the snapshot stream to hold n records, so a sized
// run's record path performs no appends-with-growth. AttachDigest
// callers size it from the planned run length; the alloc-pin test
// measures the post-Reserve steady state.
func (r *Recorder) Reserve(n int) {
	if cap(r.stream)-len(r.stream) >= n {
		return
	}
	grown := make([]Record, len(r.stream), len(r.stream)+n)
	copy(grown, r.stream)
	r.stream = grown
}

// Tick implements sim.Ticker: on interval boundaries it runs the
// walker and appends one cumulative snapshot. Cycle 0 is skipped (the
// sampler does the same — the measurement window opens after warmup,
// and a cycle-0 snapshot would digest pre-reset state).
func (r *Recorder) Tick(cycle uint64) {
	if cycle == 0 || cycle%r.interval != 0 || r.walk == nil {
		return
	}
	r.cur = r.chains
	r.walk(r)
	r.chains = r.cur
	d := r.digest
	for l := 0; l < NumLanes; l++ {
		d = Mix(d ^ r.chains[l])
	}
	r.digest = d
	r.stream = append(r.stream, Record{Cycle: cycle, Lanes: r.chains, Digest: d})
}

// Records returns the snapshot stream (live slice; callers must not
// mutate it).
func (r *Recorder) Records() []Record { return r.stream }

// Digest returns the current cumulative overall digest.
func (r *Recorder) Digest() uint64 { return r.digest }

// LaneValue returns lane l's current cumulative chain value.
func (r *Recorder) LaneValue(l Lane) uint64 { return r.chains[l] }

// Report summarizes the stream for Results.Digests.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Interval: r.interval,
		Records:  len(r.stream),
		Digest:   hex16(r.digest),
		Stream:   r.stream,
	}
	rep.Lanes = make([]LaneDigest, NumLanes)
	for l := 0; l < NumLanes; l++ {
		rep.Lanes[l] = LaneDigest{Lane: Lane(l).String(), Digest: hex16(r.chains[l])}
	}
	return rep
}

// hex16 formats a digest as 16 lowercase hex digits without pulling
// in fmt (keeps the package dependency-free).
func hex16(x uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[x&0xF]
		x >>= 4
	}
	return string(b[:])
}

// Divergence locates where two digest streams first disagree.
type Divergence struct {
	// Cycle is the first snapshot cycle whose digests differ. State
	// diverged somewhere in (Cycle-interval, Cycle]; rerunning with
	// interval 1 narrows it to the exact cycle.
	Cycle uint64
	// Lane is the first differing subsystem chain (in lane order) at
	// that snapshot — the place to start looking.
	Lane Lane
	// Index is the snapshot's index in both streams.
	Index int
}

// Compare binary-searches two digest streams for the first divergent
// snapshot and returns it, or ok=false when the common prefix agrees
// everywhere. Streams must come from runs with the same interval; the
// comparison covers min(len(a), len(b)) records. The search is valid
// because Record.Digest is cumulative: agreement at index i implies
// agreement at every index before it.
func Compare(a, b []Record) (d Divergence, ok bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 || a[n-1].Digest == b[n-1].Digest {
		return Divergence{}, false
	}
	// Invariant: a[hi] differs, everything before lo agrees.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid].Digest == b[mid].Digest {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	d.Index = lo
	d.Cycle = a[lo].Cycle
	d.Lane = Lane(0)
	for l := 0; l < NumLanes; l++ {
		if a[lo].Lanes[l] != b[lo].Lanes[l] {
			d.Lane = Lane(l)
			break
		}
	}
	return d, true
}
