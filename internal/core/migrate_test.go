package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
)

func TestClusterStepMovesXFirst(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	// Cluster grid is 4x2 per layer. From cluster 0 (0,0) toward cluster 7
	// (3,1): X first.
	next := s.clusterStep(0, 7)
	if next != 1 {
		t.Errorf("step = %d, want 1 (east)", next)
	}
	// X aligned: move in Y.
	next = s.clusterStep(3, 7)
	if next != 7 {
		t.Errorf("step = %d, want 7 (south)", next)
	}
	// Stays on its layer.
	layer1From := 8 // first cluster of layer 1
	next = s.clusterStep(layer1From, 15)
	if s.Top.ClusterLayer(next) != 1 {
		t.Errorf("step crossed layers: %d", next)
	}
}

func TestMigrationTargetSameLayer(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := 0
	home := s.Top.CPUCluster(cpu)
	// From the CPU's own cluster: no migration.
	if got := s.migrationTarget(home, cpu); got != -1 {
		t.Errorf("migration from local cluster = %d, want -1", got)
	}
}

func TestMigrationTargetOtherLayerHeadsToPillar(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := 0
	cpuPos := s.Top.CPUs[cpu]
	other := 1 - cpuPos.Layer
	pillar := s.Top.PillarOf(cpuPos)
	pillarCluster := s.Top.ClusterOf(withLayer(pillar, other))

	// From the pillar cluster itself: settled, no migration.
	if got := s.migrationTarget(pillarCluster, cpu); got != -1 {
		t.Errorf("migration from pillar cluster = %d, want -1", got)
	}
	// From any other cluster on that layer: one step, same layer, strictly
	// closer to the pillar cluster.
	per := s.Top.ClustersPerLayer()
	for i := 0; i < per; i++ {
		from := other*per + i
		if from == pillarCluster {
			continue
		}
		got := s.migrationTarget(from, cpu)
		if got < 0 {
			continue // fully blocked paths are allowed to stay put
		}
		if s.Top.ClusterLayer(got) != other {
			t.Fatalf("from %d: target %d crossed layers", from, got)
		}
		if clusterDist(s, got, pillarCluster) >= clusterDist(s, from, pillarCluster) {
			t.Fatalf("from %d: target %d not closer to pillar cluster %d",
				from, got, pillarCluster)
		}
	}
}

func TestStepTowardWithoutSkipLandsAnywhere(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	s.Cfg.SkipCPUClusters = false
	cpu := 0
	dst := s.Top.CPUCluster(cpu)
	layer := s.Top.ClusterLayer(dst)
	per := s.Top.ClustersPerLayer()
	for i := 0; i < per; i++ {
		from := layer*per + i
		if from == dst {
			continue
		}
		next := s.stepToward(from, dst, cpu)
		// Without skipping, the step is always the adjacent cluster.
		if next != s.clusterStep(from, dst) {
			t.Errorf("from %d: next = %d, want plain grid step %d",
				from, next, s.clusterStep(from, dst))
		}
	}
}

func TestMigrationThresholdRespected(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	layer := cpu.pos.Layer
	per := s.Top.ClustersPerLayer()
	far := -1
	for i := 0; i < per; i++ {
		id := layer*per + i
		if id != cpu.cluster && s.clusterCPU[id] < 0 {
			far = id
		}
	}
	addr := cache.LineAddr(0x1001)
	s.Clusters[far].install(addr, 0, false)

	// threshold-1 accesses: no migration yet.
	for i := 0; i < s.Cfg.MigrationThreshold-1; i++ {
		s.startTxn(cpu, addr, false)
		drain(t, s)
	}
	if s.M.Migrations.Value() != 0 {
		t.Fatalf("migrated after %d hits (threshold %d)",
			s.Cfg.MigrationThreshold-1, s.Cfg.MigrationThreshold)
	}
	// One more triggers it.
	s.startTxn(cpu, addr, false)
	drain(t, s)
	if s.M.Migrations.Value() != 1 {
		t.Fatalf("migrations = %d after threshold hits", s.M.Migrations.Value())
	}
}

func TestAlternatingCPUsPreventMigration(t *testing.T) {
	// Two CPUs alternating on a line never accumulate threshold consecutive
	// hits, so a contended line stays put — the policy's intended behavior
	// for shared data.
	s := testSystem(t, config.CMPDNUCA3D)
	// Find a cluster that is remote to both CPU 0 and CPU 1.
	c0, c1 := s.Top.CPUCluster(0), s.Top.CPUCluster(1)
	far := -1
	for id := range s.Clusters {
		if id != c0 && id != c1 && s.clusterCPU[id] < 0 {
			far = id
		}
	}
	addr := cache.LineAddr(0x2002)
	s.Clusters[far].install(addr, 0, false)
	for i := 0; i < 8; i++ {
		s.startTxn(s.CPUs[i%2], addr, false)
		drain(t, s)
	}
	if s.M.Migrations.Value() != 0 {
		t.Errorf("contended line migrated %d times", s.M.Migrations.Value())
	}
	if s.lineLoc[addr] != far {
		t.Error("contended line moved")
	}
}

func TestMigratingFlagPreventsDoubleMigration(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	layer := cpu.pos.Layer
	per := s.Top.ClustersPerLayer()
	far := -1
	for i := 0; i < per; i++ {
		id := layer*per + i
		if id != cpu.cluster && s.clusterCPU[id] < 0 {
			far = id
		}
	}
	addr := cache.LineAddr(0x3003)
	s.Clusters[far].install(addr, 0, false)
	// Hammer the line with enough back-to-back accesses to trigger the
	// threshold several times over before the first migration completes.
	for i := 0; i < 3*s.Cfg.MigrationThreshold; i++ {
		s.startTxn(cpu, addr, false)
	}
	drain(t, s)
	s.Engine.Run(5000)
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
	// Exactly one migration can have started from the original location
	// before its Migrating flag was set (subsequent steps may chain from
	// the new location, but each location migrates at most once per visit).
	if s.M.Migrations.Value() > 3 {
		t.Errorf("implausibly many migrations: %d", s.M.Migrations.Value())
	}
}
