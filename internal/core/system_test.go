package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/trace"
)

// testSystem builds a system that is NOT started: tests drive transactions
// by hand and step the engine.
func testSystem(t *testing.T, scheme config.Scheme) *System {
	t.Helper()
	prof, ok := trace.ProfileByName("ammp", 8)
	if !ok {
		t.Fatal("profile missing")
	}
	s, err := NewSystem(config.Default(scheme), prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drain runs the engine until no transactions remain outstanding.
func drain(t *testing.T, s *System) {
	t.Helper()
	ok := s.Engine.RunUntil(func() bool { return len(s.txns) == 0 }, s.Engine.Now()+100000)
	if !ok {
		t.Fatalf("transactions stuck: %d outstanding", len(s.txns))
	}
}

func TestReadMissFetchesFromMemory(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	addr := cache.LineAddr(0x12345)
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	if s.M.L2Misses.Value() != 1 || s.M.MemReads.Value() != 1 {
		t.Fatalf("misses=%d memreads=%d", s.M.L2Misses.Value(), s.M.MemReads.Value())
	}
	// The line now resides at its home cluster.
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	if loc, ok := s.lineLoc[addr]; !ok || loc != home {
		t.Fatalf("line at %d, want home %d", loc, home)
	}
	// Miss latency includes the 260-cycle memory access.
	if s.M.MissLatency.Min() < uint64(s.Cfg.MemoryCycles) {
		t.Errorf("miss latency %d below memory latency", s.M.MissLatency.Min())
	}
	// A second access hits.
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	if s.M.L2Hits.Value() != 1 {
		t.Fatalf("hits=%d after refetch", s.M.L2Hits.Value())
	}
}

func TestSNUCAProbesOnlyHome(t *testing.T) {
	s := testSystem(t, config.CMPSNUCA3D)
	addr := cache.LineAddr(0x777)
	s.Clusters[s.Cfg.L2.PlaceOf(addr).HomeCluster].install(addr, 0, false)
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	if s.M.ProbesSent.Value() != 1 {
		t.Errorf("static scheme sent %d probes, want 1", s.M.ProbesSent.Value())
	}
	if s.M.L2Hits.Value() != 1 {
		t.Error("home-cluster hit not recorded")
	}
}

func TestPerfectSearchProbesOnce(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA)
	addr := cache.LineAddr(0x888)
	// Park the line far from its home so only the location map can find it
	// in one probe.
	s.Clusters[3].install(addr, 0, false)
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	if s.M.ProbesSent.Value() != 1 {
		t.Errorf("perfect search sent %d probes, want 1", s.M.ProbesSent.Value())
	}
	if s.M.L2Hits.Value() != 1 {
		t.Error("hit not recorded")
	}
}

func TestTwoStepSearchFindsRemoteLine(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	// Place the line in a cluster that is neither local nor a step-1
	// neighbor of CPU 0.
	step1 := map[int]bool{cpu.cluster: true}
	for _, nb := range s.Top.InLayerNeighbors(cpu.cluster) {
		step1[nb] = true
	}
	for _, vn := range s.Top.VerticalNeighbors(cpu.pos) {
		step1[vn] = true
	}
	remote := -1
	for id := range s.Clusters {
		if !step1[id] {
			remote = id
			break
		}
	}
	if remote < 0 {
		t.Fatal("no remote cluster available")
	}
	addr := cache.LineAddr(0x999)
	s.Clusters[remote].install(addr, 0, false)

	s.startTxn(cpu, addr, false)
	drain(t, s)
	if s.M.Step2Searches.Value() != 1 {
		t.Errorf("step-2 searches = %d, want 1", s.M.Step2Searches.Value())
	}
	if s.M.L2Hits.Value() != 1 || s.M.L2Misses.Value() != 0 {
		t.Errorf("hits=%d misses=%d", s.M.L2Hits.Value(), s.M.L2Misses.Value())
	}
}

func TestStep1HitAvoidsStep2(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	addr := cache.LineAddr(0xabc)
	s.Clusters[cpu.cluster].install(addr, 0, false)
	s.startTxn(cpu, addr, false)
	drain(t, s)
	if s.M.Step2Searches.Value() != 0 {
		t.Error("local hit escalated to step 2")
	}
	// Local hits are fast: direct tag + bank + short data trip.
	if s.M.HitLatency.Mean() > 20 {
		t.Errorf("local hit latency %.1f implausibly high", s.M.HitLatency.Mean())
	}
}

func TestMigrationTowardAccessor(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	// Start the line on the CPU's own layer, far away.
	layer := cpu.pos.Layer
	per := s.Top.ClustersPerLayer()
	far := -1
	for i := 0; i < per; i++ {
		id := layer*per + i
		if id != cpu.cluster && s.clusterCPU[id] < 0 {
			far = id // take the last processor-free cluster on the layer
		}
	}
	addr := cache.LineAddr(0x4242)
	s.Clusters[far].install(addr, 0, false)

	prevDist := clusterDist(s, far, cpu.cluster)
	for round := 0; round < 12 && s.lineLoc[addr] != cpu.cluster; round++ {
		for i := 0; i < s.Cfg.MigrationThreshold; i++ {
			s.startTxn(cpu, addr, false)
			drain(t, s)
		}
		// Let any triggered migration complete.
		s.Engine.Run(5000)
		cur := s.lineLoc[addr]
		d := clusterDist(s, cur, cpu.cluster)
		if d > prevDist {
			t.Fatalf("line moved away: cluster %d at distance %d (was %d)", cur, d, prevDist)
		}
		prevDist = d
	}
	if s.lineLoc[addr] != cpu.cluster {
		t.Fatalf("line never reached the accessor's cluster (at %d, want %d)",
			s.lineLoc[addr], cpu.cluster)
	}
	if s.M.Migrations.Value() == 0 {
		t.Fatal("no migrations counted")
	}
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
}

// clusterDist is the grid distance between two same-layer clusters.
func clusterDist(s *System, a, b int) int {
	per := s.Top.ClustersPerLayer()
	ax, ay := a%per%s.Top.ClusterW, a%per/s.Top.ClusterW
	bx, by := b%per%s.Top.ClusterW, b%per/s.Top.ClusterW
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func TestInterLayerMigrationStaysOnLayer(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	otherLayer := 1 - cpu.pos.Layer
	per := s.Top.ClustersPerLayer()
	// Find a processor-free cluster on the other layer, away from the
	// CPU's pillar cluster there.
	pillar := s.Top.PillarOf(cpu.pos)
	pillarCluster := s.Top.ClusterOf(withLayer(pillar, otherLayer))
	far := -1
	for i := 0; i < per; i++ {
		id := otherLayer*per + i
		if id != pillarCluster && s.clusterCPU[id] < 0 {
			far = id
		}
	}
	addr := cache.LineAddr(0x5151)
	s.Clusters[far].install(addr, 0, false)

	for round := 0; round < 12 && s.lineLoc[addr] != pillarCluster; round++ {
		for i := 0; i < s.Cfg.MigrationThreshold; i++ {
			s.startTxn(cpu, addr, false)
			drain(t, s)
		}
		s.Engine.Run(5000)
		if got := s.Top.ClusterLayer(s.lineLoc[addr]); got != otherLayer {
			t.Fatalf("line crossed layers: now on layer %d", got)
		}
	}
	if s.lineLoc[addr] != pillarCluster {
		t.Fatalf("line at cluster %d, want pillar cluster %d", s.lineLoc[addr], pillarCluster)
	}
}

func TestMigrationSkipsCPUClusters(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	// Unit-level: stepping toward a destination skips occupied clusters.
	cpu := 0
	from := -1
	dst := s.Top.CPUCluster(cpu)
	// Find a processor cluster adjacent (in grid) between some far cluster
	// and dst by brute force: verify stepToward never returns a cluster
	// owned by another CPU.
	per := s.Top.ClustersPerLayer()
	layer := s.Top.ClusterLayer(dst)
	for i := 0; i < per; i++ {
		id := layer*per + i
		if id != dst {
			from = id
			next := s.stepToward(from, dst, cpu)
			if next >= 0 && next != dst {
				if owner := s.clusterCPU[next]; owner >= 0 && owner != cpu {
					t.Errorf("step from %d landed on CPU %d's cluster %d", from, owner, next)
				}
			}
		}
	}
}

func TestNoMigrationInSNUCA(t *testing.T) {
	s := testSystem(t, config.CMPSNUCA3D)
	addr := cache.LineAddr(0x31)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)
	for i := 0; i < 10; i++ {
		s.startTxn(s.CPUs[0], addr, false)
		drain(t, s)
	}
	if s.M.Migrations.Value() != 0 {
		t.Errorf("static scheme migrated %d times", s.M.Migrations.Value())
	}
	if s.lineLoc[addr] != home {
		t.Error("line moved in static scheme")
	}
}

func TestStoreInvalidatesOtherSharers(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	addr := cache.LineAddr(0x61)
	// CPU 1 loads the line (becomes a sharer with an L1 copy).
	s.startTxn(s.CPUs[1], addr, false)
	drain(t, s)
	s.CPUs[1].l1.install(addr, false)
	if hit, _ := s.CPUs[1].l1.lookup(addr); !hit {
		t.Fatal("setup: CPU 1 missing L1 copy")
	}
	// CPU 0 stores: read-for-ownership must invalidate CPU 1's copy.
	s.startTxn(s.CPUs[0], addr, true)
	drain(t, s)
	s.Engine.Run(2000) // let invalidations and acks arrive
	if hit, _ := s.CPUs[1].l1.lookup(addr); hit {
		t.Error("CPU 1's L1 copy survived a remote store")
	}
	if s.M.Invalidations.Value() == 0 {
		t.Error("no invalidations counted")
	}
	if s.M.InvalAcks.Value() == 0 {
		t.Error("no invalidation acks received")
	}
}

func TestExclusiveTransactionSetsDirty(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	addr := cache.LineAddr(0x71)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)
	s.startTxn(s.CPUs[2], addr, true)
	drain(t, s)
	p := s.Cfg.L2.PlaceOf(addr)
	set := s.Clusters[s.lineLoc[addr]].set(p)
	way, ok := set.Lookup(p.Tag)
	if !ok {
		t.Fatal("line vanished")
	}
	e := set.Way(way)
	if !e.Dirty {
		t.Error("store did not mark line dirty")
	}
	if e.Sharers != 1<<2 {
		t.Errorf("sharers = %b, want only CPU 2", e.Sharers)
	}
}

func TestEvictionBackInvalidates(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	// Fill one set completely, with CPU 3 sharing the first line.
	p0 := s.Cfg.L2.PlaceOf(cache.LineAddr(0))
	cl := s.Clusters[0]
	ways := s.Cfg.L2.Ways
	stride := cache.LineAddr(s.Cfg.L2.BanksPerCluster * s.Cfg.L2.SetsPerBank * s.Cfg.L2.Clusters)
	first := cache.LineAddr(0)
	s.CPUs[3].l1.install(first, false)
	cl.install(first, 1<<3, true)
	for i := 1; i < ways; i++ {
		cl.install(first+stride*cache.LineAddr(i), 0, false)
	}
	if got := cl.set(p0).ValidCount(); got != ways {
		t.Fatalf("set holds %d lines, want %d", got, ways)
	}
	// One more insert forces an eviction.
	cl.install(first+stride*cache.LineAddr(ways), 0, false)
	s.Engine.Run(2000)
	if s.M.Evictions.Value() != 1 {
		t.Fatalf("evictions = %d", s.M.Evictions.Value())
	}
	// The dirty victim counts a memory writeback, and its sharer loses the
	// L1 copy (back-invalidation) if the victim was the shared line.
	if s.M.BackInvals.Value()+s.M.MemWrites.Value() == 0 {
		t.Error("eviction produced neither back-invalidations nor writebacks")
	}
}

func TestLazyMigrationOldCopyHittable(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	cpu := s.CPUs[0]
	layer := cpu.pos.Layer
	per := s.Top.ClustersPerLayer()
	far := -1
	for i := 0; i < per; i++ {
		id := layer*per + i
		if id != cpu.cluster && s.clusterCPU[id] < 0 {
			far = id
		}
	}
	addr := cache.LineAddr(0x91)
	s.Clusters[far].install(addr, 0, false)
	// Drive exactly threshold hits to trigger the migration, then probe
	// immediately: the old copy must still satisfy the request.
	for i := 0; i < s.Cfg.MigrationThreshold; i++ {
		s.startTxn(cpu, addr, false)
		drain(t, s)
	}
	if s.M.Migrations.Value() != 1 {
		t.Fatalf("migrations = %d, want 1", s.M.Migrations.Value())
	}
	// Probe while MigData may still be in flight.
	hitsBefore := s.M.L2Hits.Value()
	s.startTxn(cpu, addr, false)
	drain(t, s)
	if s.M.L2Hits.Value() != hitsBefore+1 {
		t.Error("request during migration missed (false miss)")
	}
	s.Engine.Run(5000)
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		prof, _ := trace.ProfileByName("art", 8)
		s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 99)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(99)
		s.Start()
		s.Run(30000)
		return s.Results()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestWarmResidency(t *testing.T) {
	for _, scheme := range []config.Scheme{config.CMPDNUCA2D, config.CMPSNUCA3D, config.CMPDNUCA3D} {
		prof, _ := trace.ProfileByName("art", 8)
		s, err := NewSystem(config.Default(scheme), prof, 3)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(3)
		if err := s.CheckSingleCopy(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// The vast majority of the working set must be resident.
		total, resident := 0, 0
		count := func(r trace.Region) {
			for i := 0; i < r.Len(); i++ {
				total++
				if _, ok := s.lineLoc[r.Line(i)]; ok {
					resident++
				}
			}
		}
		count(prof.SharedRegion())
		for id := range s.CPUs {
			count(prof.HotRegion(id))
			count(prof.StreamRegion(id))
		}
		if float64(resident) < 0.95*float64(total) {
			t.Errorf("%v: only %d of %d lines resident after warm", scheme, resident, total)
		}
		// Static scheme: every resident line is at its home cluster.
		if scheme == config.CMPSNUCA3D {
			for addr, loc := range s.lineLoc {
				if home := s.Cfg.L2.PlaceOf(addr).HomeCluster; loc != home {
					t.Fatalf("SNUCA line %#x at %d, home %d", uint64(addr), loc, home)
				}
			}
		}
	}
}

func TestEndToEndInvariants(t *testing.T) {
	for _, scheme := range []config.Scheme{config.CMPDNUCA, config.CMPDNUCA2D, config.CMPSNUCA3D, config.CMPDNUCA3D} {
		prof, _ := trace.ProfileByName("galgel", 8)
		s, err := NewSystem(config.Default(scheme), prof, 11)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(11)
		s.Start()
		s.Run(20000)
		s.ResetStats()
		s.Run(60000)
		r := s.Results()
		if r.Instructions == 0 || r.IPC <= 0 {
			t.Errorf("%v: no progress (%+v)", scheme, r)
		}
		if r.L2Hits+r.L2Misses == 0 {
			t.Errorf("%v: no completed L2 transactions", scheme)
		}
		if r.L2Hits > 0 && (r.AvgL2HitLatency < 5 || r.AvgL2HitLatency > 200) {
			t.Errorf("%v: implausible hit latency %.1f", scheme, r.AvgL2HitLatency)
		}
		if scheme == config.CMPSNUCA3D && r.Migrations != 0 {
			t.Errorf("SNUCA migrated %d times", r.Migrations)
		}
		if err := s.CheckSingleCopy(); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestResultsWindowing(t *testing.T) {
	prof, _ := trace.ProfileByName("apsi", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(5)
	s.Start()
	s.Run(20000)
	s.ResetStats()
	r0 := s.Results()
	if r0.Cycles != 0 || r0.Instructions != 0 {
		t.Fatalf("fresh window not empty: %+v", r0)
	}
	s.Run(10000)
	r1 := s.Results()
	if r1.Cycles != 10000 {
		t.Errorf("window cycles = %d, want 10000", r1.Cycles)
	}
	if r1.Instructions == 0 {
		t.Error("no instructions in window")
	}
}

func withLayer(c geom.Coord, layer int) geom.Coord {
	c.Layer = layer
	return c
}

func TestMemoryControllerPath(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	if len(s.memCtrls) != s.Cfg.MemControllers {
		t.Fatalf("%d controllers, want %d", len(s.memCtrls), s.Cfg.MemControllers)
	}
	for i, c := range s.memCtrls {
		if c.Layer != 0 {
			t.Errorf("controller %d not on layer 0: %v", i, c)
		}
		if c.Y != 0 && c.Y != s.Top.Dim.Height-1 {
			t.Errorf("controller %d not on a chip edge: %v", i, c)
		}
	}
	// A miss travels to a controller and back: latency strictly above the
	// bare DRAM latency by at least the round-trip hops.
	addr := cache.LineAddr(0xdead)
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	min := s.M.MissLatency.Min()
	if min <= uint64(s.Cfg.MemoryCycles)+4 {
		t.Errorf("miss latency %d barely above DRAM latency; network legs missing", min)
	}
	// Different CPUs prefer their nearest controller.
	a := s.nearestMemCtrl(s.Top.CPUs[0])
	found := false
	for i := range s.CPUs {
		if s.nearestMemCtrl(s.Top.CPUs[i]) != a {
			found = true
		}
	}
	if !found && s.Cfg.MemControllers > 1 {
		t.Error("all CPUs map to one controller")
	}
}

func TestMixedWorkloads(t *testing.T) {
	cfg := config.Default(config.CMPDNUCA3D)
	profs := make([]trace.Profile, cfg.NumCPUs)
	for i := range profs {
		name := "art"
		if i%2 == 1 {
			name = "mgrid"
		}
		profs[i], _ = trace.ProfileByName(name, cfg.NumCPUs)
	}
	s, err := NewSystemMixed(cfg, profs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Benchmark != "art+mgrid" {
		t.Errorf("label = %q", s.Benchmark)
	}
	// Distinct programs get distinct namespaces; same program shares one.
	if s.profs[0].Instance == s.profs[1].Instance {
		t.Error("art and mgrid share a namespace")
	}
	if s.profs[0].Instance != s.profs[2].Instance {
		t.Error("two art cores got different namespaces")
	}
	s.Warm(5)
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Run(20_000)
	s.ResetStats()
	s.Run(60_000)
	r := s.Results()
	if r.L2Hits == 0 || r.IPC <= 0 {
		t.Fatalf("mixed run made no progress: %+v", r)
	}
	// The mgrid cores are L2-bound and must run slower than the art cores.
	var artInstr, mgridInstr uint64
	for i, c := range s.CPUs {
		if i%2 == 0 {
			artInstr += c.instrs
		} else {
			mgridInstr += c.instrs
		}
	}
	if mgridInstr >= artInstr {
		t.Errorf("mgrid cores (%d instrs) not slower than art cores (%d)", mgridInstr, artInstr)
	}
}

func TestMixedRejectsWrongCount(t *testing.T) {
	cfg := config.Default(config.CMPDNUCA3D)
	p, _ := trace.ProfileByName("art", 8)
	if _, err := NewSystemMixed(cfg, []trace.Profile{p}, 1); err == nil {
		t.Error("accepted 1 profile for 8 CPUs")
	}
}

// fixedStream replays a fixed slice of refs forever.
type fixedStream struct {
	refs []trace.Ref
	pos  int
}

func (f *fixedStream) Next() trace.Ref {
	r := f.refs[f.pos%len(f.refs)]
	f.pos++
	return r
}

func TestStreamDrivenSystem(t *testing.T) {
	cfg := config.Default(config.CMPSNUCA3D)
	streams := make([]trace.Stream, cfg.NumCPUs)
	var footprint []cache.LineAddr
	for i := range streams {
		var refs []trace.Ref
		for j := 0; j < 2048; j++ {
			addr := cache.LineAddr(0x8000*(i+1) + j)
			refs = append(refs, trace.Ref{Addr: addr, Gap: 2, Write: j%9 == 0})
			footprint = append(footprint, addr)
		}
		streams[i] = &fixedStream{refs: refs}
	}
	s, err := NewSystemStreams(cfg, streams, "unit-stream")
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1) // must be a no-op for stream systems
	if len(s.lineLoc) != 0 {
		t.Fatal("profile warm ran on a stream-driven system")
	}
	s.WarmAddresses(footprint)
	if len(s.lineLoc) != len(footprint) {
		t.Fatalf("warmed %d of %d lines", len(s.lineLoc), len(footprint))
	}
	s.Start()
	s.Run(20_000)
	s.ResetStats()
	s.Run(50_000)
	r := s.Results()
	if r.Benchmark != "unit-stream" {
		t.Errorf("label = %q", r.Benchmark)
	}
	if r.L2Hits == 0 {
		t.Fatal("stream-driven run produced no L2 hits")
	}
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsRejectWrongCount(t *testing.T) {
	cfg := config.Default(config.CMPSNUCA3D)
	if _, err := NewSystemStreams(cfg, []trace.Stream{&fixedStream{refs: []trace.Ref{{}}}}, "x"); err == nil {
		t.Error("accepted 1 stream for 8 CPUs")
	}
}

func TestPerClassLatencyBreakdown(t *testing.T) {
	prof, _ := trace.ProfileByName("equake", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(5)
	s.Start()
	s.Run(30_000)
	s.ResetStats()
	s.Run(100_000)
	r := s.Results()
	if r.AvgPrivateHitLatency <= 0 || r.AvgSharedHitLatency <= 0 {
		t.Fatalf("class latencies missing: %+v", r)
	}
	// Migration localizes private lines; shared lines cannot follow anyone.
	if r.AvgPrivateHitLatency >= r.AvgSharedHitLatency {
		t.Errorf("private hits (%.1f) not faster than shared hits (%.1f)",
			r.AvgPrivateHitLatency, r.AvgSharedHitLatency)
	}
	// Class means must bracket the overall mean.
	lo := r.AvgPrivateHitLatency
	hi := r.AvgSharedHitLatency
	if r.AvgCodeHitLatency > hi {
		hi = r.AvgCodeHitLatency
	}
	if r.AvgL2HitLatency < lo-1 || r.AvgL2HitLatency > hi+1 {
		t.Errorf("overall %.1f outside class range [%.1f, %.1f]", r.AvgL2HitLatency, lo, hi)
	}
}

func TestTagPortContention(t *testing.T) {
	run := func(ports int) (float64, uint64) {
		prof, _ := trace.ProfileByName("mgrid", 8)
		cfg := config.Default(config.CMPSNUCA3D)
		cfg.TagPorts = ports
		s, err := NewSystem(cfg, prof, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(5)
		s.Start()
		s.Run(20_000)
		s.ResetStats()
		s.Run(80_000)
		var wait uint64
		for _, cl := range s.Clusters {
			wait += cl.TagPortWait
		}
		return s.Results().AvgL2HitLatency, wait
	}
	ideal, idealWait := run(0)
	single, singleWait := run(1)
	if idealWait != 0 {
		t.Errorf("unlimited ports accumulated %d wait cycles", idealWait)
	}
	if singleWait == 0 {
		t.Error("single-ported tag arrays never contended under mgrid load")
	}
	if single < ideal {
		t.Errorf("single-ported latency %.1f below idealized %.1f", single, ideal)
	}
}

func TestTagPortSerializesBackToBackProbes(t *testing.T) {
	prof, _ := trace.ProfileByName("ammp", 8)
	cfg := config.Default(config.CMPSNUCA3D)
	cfg.TagPorts = 1
	s, err := NewSystem(cfg, prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Clusters[0]
	// Two lookups in the same cycle: the second waits TagCycles.
	d1 := cl.tagDelay()
	d2 := cl.tagDelay()
	if d1 != uint64(cfg.TagCycles) {
		t.Errorf("first delay %d, want %d", d1, cfg.TagCycles)
	}
	if d2 != uint64(2*cfg.TagCycles) {
		t.Errorf("second delay %d, want %d", d2, 2*cfg.TagCycles)
	}
	if cl.TagPortWait != uint64(cfg.TagCycles) {
		t.Errorf("wait = %d", cl.TagPortWait)
	}
}
