// Package core is the paper's primary contribution assembled into a
// full-system simulator: the 3D Network-in-Memory L2 cache for chip
// multiprocessors. It binds the cycle-accurate interconnect (internal/noc,
// internal/dtdma, internal/fabric) to the clustered NUCA L2 (internal/cache)
// under the management policies of Section 4:
//
//   - two-step search (local + neighbor + pillar-broadcast tag probes, then
//     multicast to the remaining clusters),
//   - placement by the low-order cache-tag bits,
//   - pseudo-LRU replacement,
//   - gradual cache-line migration that skips clusters owned by other
//     processors intra-layer and migrates toward the accessing CPU's pillar
//     — never across layers — when the line lives on a different layer,
//   - lazy migration (the old copy stays hittable until the new location
//     acknowledges), and
//   - a directory-based MSI protocol for the private write-through L1s.
//
// The System type wires eight in-order cores (or any configured number)
// driven by internal/trace reference streams through the fabric into the
// L2, and exposes the measurements the paper reports: average L2 hit
// latency, migration counts, and IPC.
package core
