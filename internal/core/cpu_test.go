package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

func TestCPUBlockingLoad(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	addr := cache.LineAddr(0x10)
	s.Clusters[c.cluster].install(addr, 0, false)

	// A load that misses L1 blocks until data returns, then fills the L1.
	// The transaction issues after the L1 lookup latency.
	c.load(trace.Ref{Addr: addr})
	s.Engine.Run(uint64(s.Cfg.L1HitCycles) + 1)
	drain(t, s)
	s.Engine.Run(10)
	if hit, mod := c.l1.lookup(addr); !hit || mod {
		t.Errorf("after load: hit=%v mod=%v, want Shared fill", hit, mod)
	}
	if c.loads != 1 {
		t.Errorf("loads = %d", c.loads)
	}
}

func TestCPUStoreFillsModified(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	addr := cache.LineAddr(0x20)
	s.Clusters[c.cluster].install(addr, 0, false)

	c.store(trace.Ref{Addr: addr, Write: true})
	drain(t, s)
	s.Engine.Run(10)
	if _, mod := c.l1.lookup(addr); !mod {
		t.Error("store completion did not fill Modified")
	}
	if c.storeCredits != storeBufferSlots {
		t.Errorf("store credit not returned: %d", c.storeCredits)
	}
}

func TestCPUStoreHitModifiedIsFree(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	addr := cache.LineAddr(0x30)
	c.l1.install(addr, true)
	before := s.M.L2Accesses.Value()
	c.store(trace.Ref{Addr: addr, Write: true})
	s.Engine.Run(10)
	if s.M.L2Accesses.Value() != before {
		t.Error("store to Modified line generated L2 traffic")
	}
}

func TestCPUStoreHitSharedUpgrades(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	addr := cache.LineAddr(0x40)
	s.Clusters[c.cluster].install(addr, 0, false)
	c.l1.install(addr, false) // Shared in L1
	c.store(trace.Ref{Addr: addr, Write: true})
	drain(t, s)
	s.Engine.Run(10)
	if _, mod := c.l1.lookup(addr); !mod {
		t.Error("shared line not upgraded to Modified after store")
	}
	if s.M.L2Accesses.Value() != 1 {
		t.Errorf("upgrade generated %d L2 accesses, want 1", s.M.L2Accesses.Value())
	}
}

func TestCPUStoreBufferBlocks(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	// Issue more store misses than buffer slots, back to back; the extra
	// one must park in blockedStore instead of issuing.
	for i := 0; i <= storeBufferSlots; i++ {
		addr := cache.LineAddr(0x1000 + i*0x100)
		s.Clusters[c.cluster].install(addr, 0, false)
		c.store(trace.Ref{Addr: addr, Write: true})
	}
	if !c.hasBlocked {
		t.Fatal("store buffer overflow did not block")
	}
	if c.storeCredits != 0 {
		t.Fatalf("credits = %d with blocked store", c.storeCredits)
	}
	drain(t, s)
	s.Engine.Run(100)
	if c.hasBlocked {
		t.Error("blocked store never resumed")
	}
	if c.storeCredits != storeBufferSlots {
		t.Errorf("credits = %d after drain, want %d", c.storeCredits, storeBufferSlots)
	}
}

func TestCPUInstructionAccounting(t *testing.T) {
	prof, _ := trace.ProfileByName("ammp", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(3)
	s.Start()
	s.Run(10_000)
	for i, c := range s.CPUs {
		if c.instrs == 0 {
			t.Errorf("CPU %d executed nothing", i)
		}
		if c.loads == 0 || c.stores == 0 {
			t.Errorf("CPU %d: loads=%d stores=%d", i, c.loads, c.stores)
		}
		// Memory references can't exceed instructions.
		if c.loads+c.stores > c.instrs {
			t.Errorf("CPU %d: %d refs > %d instrs", i, c.loads+c.stores, c.instrs)
		}
	}
}

func TestCPUsDesynchronized(t *testing.T) {
	// Cores start staggered; their instruction counts should not be in
	// lockstep after a while (different reference streams).
	prof, _ := trace.ProfileByName("mgrid", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(3)
	s.Start()
	s.Run(20_000)
	counts := map[uint64]int{}
	for _, c := range s.CPUs {
		counts[c.instrs]++
	}
	if len(counts) < 2 {
		t.Error("all CPUs in lockstep")
	}
}

func TestRouterPipelineSlowsL2(t *testing.T) {
	run := func(pipe int) float64 {
		prof, _ := trace.ProfileByName("art", 8)
		cfg := config.Default(config.CMPDNUCA3D)
		cfg.RouterPipeline = pipe
		s, err := NewSystem(cfg, prof, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(5)
		s.Start()
		s.Run(20_000)
		s.ResetStats()
		s.Run(40_000)
		return s.Results().AvgL2HitLatency
	}
	one, four := run(1), run(4)
	if four <= one+5 {
		t.Errorf("4-stage routers (%.1f) not clearly slower than single-stage (%.1f)", four, one)
	}
}

func TestBroadcastSearchFindsEverythingInOneStep(t *testing.T) {
	prof, _ := trace.ProfileByName("art", 8)
	cfg := config.Default(config.CMPDNUCA3D)
	cfg.BroadcastSearch = true
	s, err := NewSystem(cfg, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A line in the farthest cluster is still found without step 2.
	addr := cache.LineAddr(0x50)
	s.Clusters[s.Top.NumClusters()-1].install(addr, 0, false)
	s.startTxn(s.CPUs[0], addr, false)
	drain(t, s)
	if s.M.Step2Searches.Value() != 0 {
		t.Error("broadcast search escalated to step 2")
	}
	if s.M.L2Hits.Value() != 1 {
		t.Error("broadcast search missed a resident line")
	}
	if s.M.ProbesSent.Value() != uint64(s.Top.NumClusters()) {
		t.Errorf("probes = %d, want %d", s.M.ProbesSent.Value(), s.Top.NumClusters())
	}
}

func TestInstructionFetchPath(t *testing.T) {
	prof, _ := trace.ProfileByName("fma3d", 8) // largest code footprint
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(3)
	s.Start()
	s.Run(40_000)
	var fetches, misses uint64
	for _, c := range s.CPUs {
		fetches += c.ifetches
		misses += c.ifetchMisses
	}
	if fetches == 0 {
		t.Fatal("no instruction fetches")
	}
	if misses == 0 {
		t.Fatal("fma3d's 384KB code never missed a 64KB L1I")
	}
	if misses > fetches {
		t.Fatalf("misses %d > fetches %d", misses, fetches)
	}
}

func TestIfetchFillsL1INotL1D(t *testing.T) {
	s := testSystem(t, config.CMPDNUCA3D)
	c := s.CPUs[0]
	prof := s.profs[0]
	codeLine := prof.CodeRegion().Line(0)
	s.Clusters[s.Cfg.L2.PlaceOf(codeLine).HomeCluster].install(codeLine, 0, false)

	ref := trace.Ref{Addr: 0x999, HasCode: true, Code: codeLine}
	s.Clusters[s.Cfg.L2.PlaceOf(0x999).HomeCluster].install(0x999, 0, false)
	c.access(ref)
	s.Engine.Run(uint64(s.Cfg.L1HitCycles) + 1)
	drain(t, s)
	s.Engine.Run(20)
	if hit, _ := c.l1i.lookup(codeLine); !hit {
		t.Error("code line not in L1I")
	}
	if hit, _ := c.l1.lookup(codeLine); hit {
		t.Error("code line leaked into L1D")
	}
}

func TestSmallCodeFootprintRarelyMisses(t *testing.T) {
	// mgrid's 32KB loop nest fits the 64KB L1I: after warm-up, fetch misses
	// must be a tiny fraction of fetches.
	prof, _ := trace.ProfileByName("mgrid", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(3)
	s.Start()
	s.Run(40_000)
	var fetches, misses uint64
	for _, c := range s.CPUs {
		fetches += c.ifetches
		misses += c.ifetchMisses
	}
	if fetches == 0 {
		t.Fatal("no fetches")
	}
	if rate := float64(misses) / float64(fetches); rate > 0.02 {
		t.Errorf("mgrid ifetch miss rate %.3f implausibly high", rate)
	}
}
