package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestStaticWarmNeverSpills is the regression test for a subtle modeling
// bug: warm-up once spilled lines that did not fit their home cluster into
// neighboring clusters. A migrating scheme's search finds such lines, but a
// static NUCA only ever looks at the home cluster — spilled lines became
// permanently invisible, and every access paid a full memory round trip
// that was then recorded as a ~300-cycle "hit" through the post-fetch
// forwarding path.
func TestStaticWarmNeverSpills(t *testing.T) {
	for _, bench := range []string{"mgrid", "swim", "fma3d"} {
		prof, _ := trace.ProfileByName(bench, 8)
		s, err := NewSystem(config.Default(config.CMPSNUCA3D), prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(1)
		for addr, loc := range s.lineLoc {
			if home := s.Cfg.L2.PlaceOf(addr).HomeCluster; loc != home {
				t.Fatalf("%s: line %#x warmed into cluster %d, home %d",
					bench, uint64(addr), loc, home)
			}
		}
	}
}

func TestStaticHitTailBounded(t *testing.T) {
	// End-to-end guard on the same bug: a static scheme's hit latency can
	// never approach memory latency, because every hit is a direct
	// home-cluster access.
	prof, _ := trace.ProfileByName("mgrid", 8)
	s, err := NewSystem(config.Default(config.CMPSNUCA3D), prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1)
	s.Start()
	s.Run(40_000)
	s.ResetStats()
	s.Run(120_000)
	r := s.Results()
	if r.L2Hits == 0 {
		t.Fatal("no hits")
	}
	if r.P99L2HitLatency >= uint64(s.Cfg.MemoryCycles) {
		t.Errorf("P99 hit latency %d reaches memory latency: invisible lines?",
			r.P99L2HitLatency)
	}
}

func TestWarmMigratingPlacesInVicinity(t *testing.T) {
	prof, _ := trace.ProfileByName("art", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1)
	// A good fraction of each CPU's private lines must be resident in its
	// own cluster after warm (art localizes heavily).
	for id := range s.CPUs {
		st := prof.StreamRegion(id)
		local := 0
		for i := 0; i < st.Len(); i++ {
			if loc, ok := s.lineLoc[st.Line(i)]; ok && loc == s.CPUs[id].cluster {
				local++
			}
		}
		if float64(local) < 0.3*float64(st.Len()) {
			t.Errorf("CPU %d: only %d of %d private lines local after warm", id, local, st.Len())
		}
	}
}

func TestWarmSeedsMigrationCounters(t *testing.T) {
	prof, _ := trace.ProfileByName("swim", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1)
	// Un-localized private lines sit one hit below the migration threshold.
	st := prof.StreamRegion(0)
	seeded := 0
	for i := 0; i < st.Len(); i++ {
		addr := st.Line(i)
		loc, ok := s.lineLoc[addr]
		if !ok || loc == s.CPUs[0].cluster {
			continue
		}
		p := s.Cfg.L2.PlaceOf(addr)
		if way, found := s.Clusters[loc].set(p).Lookup(p.Tag); found {
			if int(s.Clusters[loc].set(p).Way(way).Hits) == s.Cfg.MigrationThreshold-1 {
				seeded++
			}
		}
	}
	if seeded == 0 {
		t.Error("no mid-migration counters seeded")
	}
}

func TestHeatmapOutput(t *testing.T) {
	prof, _ := trace.ProfileByName("art", 8)
	s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1)
	s.Start()
	s.Run(20_000)
	var sb strings.Builder
	s.WriteHeatmap(&sb)
	out := sb.String()
	if !strings.Contains(out, "layer 0:") || !strings.Contains(out, "layer 1:") {
		t.Error("heatmap missing layer sections")
	}
	if !strings.Contains(out, "C") {
		t.Error("heatmap missing CPU markers")
	}
	var br strings.Builder
	s.BusReport(&br)
	if !strings.Contains(br.String(), "bus 0") {
		t.Errorf("bus report missing rows: %q", br.String())
	}
}
