package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// AttachProbe attaches the observability probe to every instrumented
// layer: the protocol engine (migration and MSI coherence events), the
// fabric (packet inject/eject), every router (per-hop routing, VC stalls),
// and every pillar bus (dTDMA arbitration). A nil probe detaches all of
// them, restoring the zero-overhead path.
func (s *System) AttachProbe(p *obs.Probe) {
	s.obsProbe = p
	s.Fab.SetProbe(p)
}

// AttachSpans attaches a transaction span recorder: from now on every L2
// transaction carries a component ledger that tiles its whole lifetime —
// search windows, per-hop network time split into queue vs link, pillar-bus
// arbitration vs transfer, tag and bank service, DRAM — and Results gains
// the aggregate Breakdown. Transactions already in flight are not traced,
// so attach before the measurement window opens — ResetStats resets the
// recorder's aggregates along with the other statistics, which makes the
// traced set exactly the set the measured latency means cover. Unlike
// AttachProbe the recorder registers no tickers and never wakes the
// fabric, so idle-cycle skipping stays engaged; spans and chains are
// pooled, so steady-state recording allocates nothing.
func (s *System) AttachSpans() *obs.SpanRecorder {
	s.spans = obs.NewSpanRecorder()
	return s.spans
}

// AttachSampler registers a periodic metrics sampler with the engine:
// every interval cycles it appends one row of interval metrics — counter
// deltas from a stats.Set registry backed by the live Metrics fields, the
// L2 hit-latency mean and P95 over the interval, mesh router utilization,
// and per-pillar bus occupancy. The returned sampler keeps accumulating
// until the simulation stops; read it with Series().
//
// Column semantics:
//
//	l2_accesses, l2_hits, l2_misses, migrations, invalidations,
//	evictions, mem_reads, mem_writes, probes_sent
//	    — events in the interval (deltas of the cumulative counters, so
//	      "migrations" is the migration rate per interval)
//	hit_lat_mean, hit_lat_p95
//	    — over the hits completing inside the interval (0 with no hits)
//	router_util
//	    — flits forwarded per router per cycle, averaged over the mesh
//	bus<N>_occ
//	    — fraction of the interval's cycles pillar bus N carried a flit
func (s *System) AttachSampler(interval uint64) *obs.Sampler {
	sm := obs.NewSampler(interval)

	// The counter registry: the sampler snapshots these through the
	// stats.Set Names/Value interface; the hot paths keep incrementing
	// the Metrics fields directly. Metrics.Reset assigns through the
	// pointer receiver, so the registered addresses stay live across
	// ResetStats.
	reg := stats.NewSet()
	reg.Register("l2_accesses", &s.M.L2Accesses)
	reg.Register("l2_hits", &s.M.L2Hits)
	reg.Register("l2_misses", &s.M.L2Misses)
	reg.Register("migrations", &s.M.Migrations)
	reg.Register("invalidations", &s.M.Invalidations)
	reg.Register("evictions", &s.M.Evictions)
	reg.Register("mem_reads", &s.M.MemReads)
	reg.Register("mem_writes", &s.M.MemWrites)
	reg.Register("probes_sent", &s.M.ProbesSent)
	sm.AddCounterSet(reg)

	// L2 hit latency over the interval: deltas of the cumulative
	// accumulator. ResetStats (which zeroes the accumulator) restarts the
	// window instead of producing a negative delta.
	var lastSum, lastCount uint64
	sm.AddGauge("hit_lat_mean", func(uint64) float64 {
		sum, count := s.M.HitLatency.Sum(), s.M.HitLatency.Count()
		if count < lastCount {
			lastSum, lastCount = 0, 0
		}
		dSum, dCount := sum-lastSum, count-lastCount
		lastSum, lastCount = sum, count
		if dCount == 0 {
			return 0
		}
		return float64(dSum) / float64(dCount)
	})

	// Interval P95 from the hit-latency histogram's bucket deltas. The
	// open-ended last bucket reports the cumulative observed maximum (the
	// per-interval maximum is not tracked).
	lastBuckets := make([]uint64, s.M.HitHist.NumBuckets())
	var lastHistTotal uint64
	sm.AddGauge("hit_lat_p95", func(uint64) float64 {
		h := s.M.HitHist
		nb := h.NumBuckets()
		if nb != len(lastBuckets) || h.Total() < lastHistTotal {
			// The histogram was replaced by ResetStats; restart the window.
			lastBuckets = make([]uint64, nb)
		}
		lastHistTotal = h.Total()
		deltas := make([]uint64, nb)
		for i := 0; i < nb; i++ {
			c := h.Bucket(i)
			deltas[i] = c - lastBuckets[i]
			lastBuckets[i] = c
		}
		return float64(stats.PercentileFromBuckets(deltas, h.Width(), h.Max(), 95))
	})

	// Mesh utilization: flits forwarded per router per cycle.
	nodes := float64(s.Top.Dim.Nodes())
	var lastFwd uint64
	sm.AddGauge("router_util", func(uint64) float64 {
		cur := s.Fab.ForwardedFlits()
		d := cur - lastFwd
		lastFwd = cur
		return float64(d) / (nodes * float64(interval))
	})

	// Per-pillar bus occupancy: busy cycles / interval cycles.
	for i, b := range s.Fab.Buses() {
		b := b
		var lastBusy uint64
		sm.AddGauge(fmt.Sprintf("bus%d_occ", i), func(uint64) float64 {
			d := b.BusyCycles - lastBusy
			lastBusy = b.BusyCycles
			return float64(d) / float64(interval)
		})
	}

	s.Engine.Register(sm)
	return sm
}
