package core

import (
	"fmt"
	"io"

	"repro/internal/digest"
	"repro/internal/dtm"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
)

// AttachProbe attaches the observability probe to every instrumented
// layer: the protocol engine (migration, MSI coherence, and cache SRAM
// events), the fabric (packet inject/eject), every router (per-hop
// routing, VC stalls), and every pillar bus (dTDMA arbitration). A nil
// probe detaches all of them, restoring the zero-overhead path.
//
// AttachProbe is the low-level hook: it installs exactly the given probe.
// AttachTracer and AttachThermal compose on top of it — prefer those.
func (s *System) AttachProbe(p *obs.Probe) {
	s.obsProbe = p
	s.Fab.SetProbe(p)
}

// AttachTracer routes probe events into the given sink (nil detaches the
// tracer). It composes with an attached thermal pipeline: with both
// active, every event tees into the trace sink and the energy accountant.
func (s *System) AttachTracer(sink obs.Sink) {
	s.traceSink = sink
	s.refreshProbe()
}

// AttachThermal attaches the activity→power→temperature pipeline: an
// energy accountant (Table-1-calibrated per-event charging, fed by the
// same probe events the tracer sees) and a transient RC thermal grid
// stepped every interval cycles, with each core's instruction delta
// charged at its cell. Results gains the run-level Thermal report.
//
// Attach at the start of the window to track (typically right after
// ResetStats), and before AttachSampler if the sampler should carry the
// thermal columns — the tracker must tick (and so flush its window)
// before the sampler reads the window's values.
func (s *System) AttachThermal(interval uint64) *obs.ThermalTracker {
	tt := obs.NewThermalTracker(s.Top.Dim, thermal.DefaultParams(), power.TelemetryModel(), interval)
	for _, c := range s.CPUs {
		c := c
		tt.AddCPU(c.pos, func() uint64 { return c.instrs })
	}
	s.thermalT = tt
	s.refreshProbe()
	s.Engine.Register(tt)
	return tt
}

// AttachDTM closes the thermal loop: it builds a dtm.Controller from the
// config's DTM fields (DTMPolicy, TripTempC, DutyCycle), attaches the
// thermal pipeline stepping every interval cycles if one is not already
// attached, and wires the controller as the tracker's actor plus into
// every actuator path — migration targeting (veto), bank access (drowsy
// wakeups), CPU issue (duty-cycling), and, when the reroute policy is
// enabled, the fabric's pillar selection. Attach at the start of the
// window to manage (typically right after ResetStats), in place of
// AttachThermal; Results gains both the Thermal and the DTM reports.
//
// The error cases are an unparseable Cfg.DTMPolicy or Cfg.DutyCycle. An
// empty policy ("" or "none") is valid and attaches a controller that
// actuates nothing — useful for verifying the loop itself is inert (see
// TestDTMDoesNotPerturbWhenDisabled).
func (s *System) AttachDTM(interval uint64) (*dtm.Controller, error) {
	pol, err := dtm.ParsePolicy(s.Cfg.DTMPolicy)
	if err != nil {
		return nil, err
	}
	on, period, err := dtm.ParseDuty(s.Cfg.DutyCycle)
	if err != nil {
		return nil, err
	}
	if s.thermalT == nil {
		s.AttachThermal(interval)
	}
	prm := thermal.DefaultParams()
	ctl := dtm.NewController(s.Top.Dim, pol, dtm.Options{
		TripC:          s.Cfg.TripTempC,
		DutyOn:         on,
		DutyPeriod:     period,
		CellLeakW:      prm.CellPowerW,
		DrowsyLeakFrac: power.DrowsyLeakageFraction,
		WakeupCycles:   power.DrowsyWakeupCycles,
		ClockHz:        power.ClockHz,
	})
	for _, c := range s.CPUs {
		ctl.AddCPU(c.pos)
	}
	s.thermalT.SetActor(ctl)
	if pol.Has(dtm.PolicyReroute) {
		// Install the pillar bias only when the policy wants it, so the
		// other policies keep the fabric's unbiased selection path.
		s.Fab.SetPillarPenalty(ctl.PillarPenalty, ctl.NotePillarDiversion)
	}
	s.dtm = ctl
	return ctl, nil
}

// WriteThermalMap renders per-layer ASCII temperature maps of the attached
// thermal tracker's grid, marking CPU cells. It errors when no thermal
// pipeline is attached.
func (s *System) WriteThermalMap(w io.Writer) error {
	if s.thermalT == nil {
		return fmt.Errorf("core: no thermal pipeline attached (call AttachThermal first)")
	}
	return thermal.WriteHeatMap(w, s.thermalT.Grid(), s.Top.CPUs)
}

// refreshProbe rebuilds the probe from the attached tracer and thermal
// sinks (either, both teed, or detached), then reconciles sharding: an
// attached tracer forces the serial path (global cycle order), and
// detaching it restores the requested shard count.
func (s *System) refreshProbe() {
	var sink obs.Sink
	if s.thermalT != nil {
		sink = s.thermalT.Sink()
	}
	sink = obs.Tee(s.traceSink, sink)
	s.AttachProbe(obs.NewProbe(sink))
	s.applySharding()
}

// AttachProfile attaches the host-side phase profiler ("flight
// recorder"): from now on every Engine.Run is wall-clock-attributed
// across the loop's phases — CPU pipeline events vs protocol/cluster
// events in the engine drain (split by typed event kind), the network
// tick serial vs sharded (the fabric self-times it), the thermal and
// sampler tickers, and the engine's own bookkeeping as the residual —
// plus per-shard busy/barrier-wait time when sharding is in force, a
// rolling cycles/sec window series, and allocation deltas. Results gains
// the Profile report.
//
// Measurement is host-side only: monotonic clock deltas folded into
// value-typed accumulators, nothing fed back into simulation state — so
// an attached run is bit-identical to a detached one (the contract is
// pinned by TestProfileDoesNotPerturb), idle-cycle skipping stays
// engaged, and sharding is unaffected. Attach any time; idempotent
// (subsequent calls return the same recorder). Attach before Warm to
// profile the whole run, since attribution starts at attachment.
func (s *System) AttachProfile() *prof.Recorder {
	if s.hostProf != nil {
		return s.hostProf
	}
	rec := prof.NewRecorder()
	s.hostProf = rec
	s.Engine.SetProfiler(rec, eventPhase, tickerPhase)
	s.Fab.SetProfiler(rec)
	return rec
}

// eventPhase classifies a typed engine event for the profiler: the CPU
// pipeline kinds are the core's fetch-execute loop; everything else —
// cluster serves, migrations, replicas, memory path, and any legacy
// closure — is protocol work.
func eventPhase(kind uint8, closure bool) prof.Phase {
	if closure {
		return prof.PhaseProtocol
	}
	switch kind {
	case evCPUStep, evCPUAccess, evCPUIfetch, evCPUData, evCPULoadMiss:
		return prof.PhaseCPU
	}
	return prof.PhaseProtocol
}

// tickerPhase classifies a registered ticker for the profiler. The
// fabric is PhaseSelf: it times its own tick so the serial/sharded split
// is attributed correctly (the engine cannot see which path a cycle
// took).
func tickerPhase(t sim.Ticker) prof.Phase {
	switch t.(type) {
	case *fabric.Fabric:
		return prof.PhaseSelf
	case *obs.ThermalTracker:
		return prof.PhaseThermal
	case *obs.Sampler:
		return prof.PhaseSampler
	}
	return prof.PhaseOther
}

// AttachSpans attaches a transaction span recorder: from now on every L2
// transaction carries a component ledger that tiles its whole lifetime —
// search windows, per-hop network time split into queue vs link, pillar-bus
// arbitration vs transfer, tag and bank service, DRAM — and Results gains
// the aggregate Breakdown. Transactions already in flight are not traced,
// so attach before the measurement window opens — ResetStats resets the
// recorder's aggregates along with the other statistics, which makes the
// traced set exactly the set the measured latency means cover. Unlike
// AttachProbe the recorder registers no tickers and never wakes the
// fabric, so idle-cycle skipping stays engaged; spans and chains are
// pooled, so steady-state recording allocates nothing.
func (s *System) AttachSpans() *obs.SpanRecorder {
	s.spans = obs.NewSpanRecorder()
	return s.spans
}

// StatsRegistry returns the machine's counter registry: the live Metrics
// fields and raw fabric traffic counters exposed through the stats.Set
// Names/Value interface. The registry is built once and shared — the
// sampler's per-interval deltas read it, and the serving tier snapshots
// it (stats.Set.Snapshot, called between engine runs on the simulation's
// goroutine) to publish per-job counters on /metrics. The hot paths keep
// incrementing the Metrics fields directly: Metrics.Reset assigns through
// the pointer receiver, so the registered addresses stay live across
// ResetStats.
func (s *System) StatsRegistry() *stats.Set {
	if s.statsReg != nil {
		return s.statsReg
	}
	reg := stats.NewSet()
	reg.Register("l2_accesses", &s.M.L2Accesses)
	reg.Register("l2_hits", &s.M.L2Hits)
	reg.Register("l2_misses", &s.M.L2Misses)
	reg.Register("migrations", &s.M.Migrations)
	reg.Register("invalidations", &s.M.Invalidations)
	reg.Register("evictions", &s.M.Evictions)
	reg.Register("mem_reads", &s.M.MemReads)
	reg.Register("mem_writes", &s.M.MemWrites)
	reg.Register("probes_sent", &s.M.ProbesSent)
	// Raw traffic totals: flit_hops is a live fabric counter; bus_flits
	// exists only as a sum over the pillar buses, so it registers as a
	// derived-counter closure.
	reg.Register("flit_hops", &s.Fab.FlitHops)
	reg.RegisterFunc("bus_flits", s.Fab.BusFlits)
	s.statsReg = reg
	return reg
}

// AttachSampler registers a periodic metrics sampler with the engine:
// every interval cycles it appends one row of interval metrics — counter
// deltas from a stats.Set registry backed by the live Metrics fields, the
// L2 hit-latency mean and P95 over the interval, mesh router utilization,
// and per-pillar bus occupancy. The returned sampler keeps accumulating
// until the simulation stops; read it with Series().
//
// Column semantics:
//
//	l2_accesses, l2_hits, l2_misses, migrations, invalidations,
//	evictions, mem_reads, mem_writes, probes_sent
//	    — events in the interval (deltas of the cumulative counters, so
//	      "migrations" is the migration rate per interval)
//	hit_lat_mean, hit_lat_p95
//	    — over the hits completing inside the interval (0 with no hits)
//	router_util
//	    — flits forwarded per router per cycle, averaged over the mesh
//	bus<N>_occ
//	    — fraction of the interval's cycles pillar bus N carried a flit
func (s *System) AttachSampler(interval uint64) *obs.Sampler {
	sm := obs.NewSampler(interval)
	sm.AddCounterSet(s.StatsRegistry())

	// L2 hit latency over the interval: deltas of the cumulative
	// accumulator. ResetStats (which zeroes the accumulator) restarts the
	// window instead of producing a negative delta.
	var lastSum, lastCount uint64
	sm.AddGauge("hit_lat_mean", func(uint64) float64 {
		sum, count := s.M.HitLatency.Sum(), s.M.HitLatency.Count()
		if count < lastCount {
			lastSum, lastCount = 0, 0
		}
		dSum, dCount := sum-lastSum, count-lastCount
		lastSum, lastCount = sum, count
		if dCount == 0 {
			return 0
		}
		return float64(dSum) / float64(dCount)
	})

	// Interval P95 from the hit-latency histogram's bucket deltas. The
	// open-ended last bucket reports the cumulative observed maximum (the
	// per-interval maximum is not tracked).
	lastBuckets := make([]uint64, s.M.HitHist.NumBuckets())
	var lastHistTotal uint64
	sm.AddGauge("hit_lat_p95", func(uint64) float64 {
		h := s.M.HitHist
		nb := h.NumBuckets()
		if nb != len(lastBuckets) || h.Total() < lastHistTotal {
			// The histogram was replaced by ResetStats; restart the window.
			lastBuckets = make([]uint64, nb)
		}
		lastHistTotal = h.Total()
		deltas := make([]uint64, nb)
		for i := 0; i < nb; i++ {
			c := h.Bucket(i)
			deltas[i] = c - lastBuckets[i]
			lastBuckets[i] = c
		}
		return float64(stats.PercentileFromBuckets(deltas, h.Width(), h.Max(), 95))
	})

	// Mesh utilization: flits forwarded per router per cycle.
	nodes := float64(s.Top.Dim.Nodes())
	var lastFwd uint64
	sm.AddGauge("router_util", func(uint64) float64 {
		cur := s.Fab.ForwardedFlits()
		d := cur - lastFwd
		lastFwd = cur
		return float64(d) / (nodes * float64(interval))
	})

	// Per-pillar bus occupancy: busy cycles / interval cycles.
	for i, b := range s.Fab.Buses() {
		b := b
		var lastBusy uint64
		sm.AddGauge(fmt.Sprintf("bus%d_occ", i), func(uint64) float64 {
			d := b.BusyCycles - lastBusy
			lastBusy = b.BusyCycles
			return float64(d) / float64(interval)
		})
	}

	// Thermal telemetry columns, present only when the pipeline is
	// attached (AttachThermal must precede AttachSampler so the tracker
	// ticks — and flushes its window — before the sampler reads it):
	// per-component window power, per-layer peak/mean temperature, and
	// the hotspot coordinates.
	if tt := s.thermalT; tt != nil {
		comps := []struct {
			name string
			c    obs.PowerComponent
		}{
			{"p_cpu_w", obs.PowCPU},
			{"p_net_w", obs.PowNetwork},
			{"p_bus_w", obs.PowBus},
			{"p_tag_w", obs.PowTags},
			{"p_bank_w", obs.PowBanks},
			{"p_mig_w", obs.PowMigration},
		}
		sm.AddGauge("power_w", func(uint64) float64 {
			w := tt.WindowPowerW()
			sum := 0.0
			for _, v := range w {
				sum += v
			}
			return sum
		})
		for _, cc := range comps {
			cc := cc
			sm.AddGauge(cc.name, func(uint64) float64 { return tt.WindowPowerW()[cc.c] })
		}
		for l := 0; l < s.Top.Dim.Layers; l++ {
			l := l
			sm.AddGauge(fmt.Sprintf("t_peak_l%d", l), func(uint64) float64 { return tt.LayerProfileNow(l).PeakC })
			sm.AddGauge(fmt.Sprintf("t_mean_l%d", l), func(uint64) float64 { return tt.LayerProfileNow(l).AvgC })
		}
		sm.AddGauge("t_hot_x", func(uint64) float64 { c, _ := tt.Hotspot(); return float64(c.X) })
		sm.AddGauge("t_hot_y", func(uint64) float64 { c, _ := tt.Hotspot(); return float64(c.Y) })
		sm.AddGauge("t_hot_layer", func(uint64) float64 { c, _ := tt.Hotspot(); return float64(c.Layer) })
		sm.AddGauge("t_hot_c", func(uint64) float64 { _, t := tt.Hotspot(); return t })
	}

	// Digest telemetry columns, present only when a digest recorder is
	// attached (AttachDigest must precede AttachSampler so the recorder
	// ticks before the sampler reads it): the cumulative overall digest
	// and the per-subsystem chains, truncated to float64's 53-bit
	// mantissa (a diagnostic fingerprint for eyeballing when two sampled
	// runs diverge, not the attestation value — Results.Digests carries
	// the full 64 bits).
	if dr := s.digestRec; dr != nil {
		const mant53 = 1<<53 - 1
		sm.AddGauge("digest", func(uint64) float64 { return float64(dr.Digest() & mant53) })
		for l := 0; l < digest.NumLanes; l++ {
			l := digest.Lane(l)
			sm.AddGauge("digest_"+l.String(), func(uint64) float64 { return float64(dr.LaneValue(l) & mant53) })
		}
	}

	s.Engine.Register(sm)
	return sm
}
