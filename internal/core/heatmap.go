package core

import (
	"fmt"
	"io"

	"repro/internal/geom"
)

// WriteHeatmap renders per-layer ASCII maps of router utilization
// (forwarded flits since construction), marking processors and pillars.
// It visualizes the congestion arguments of Section 3.3: traffic
// concentrates around pillars and CPU clusters, and stacking CPUs on a
// pillar column saturates it.
func (s *System) WriteHeatmap(w io.Writer) {
	dim := s.Top.Dim
	var max uint64
	for i := 0; i < dim.Nodes(); i++ {
		if f := s.Fab.Router(dim.CoordOf(i)).ForwardedFlits; f > max {
			max = f
		}
	}
	if max == 0 {
		max = 1
	}
	shades := []byte(" .:-=+*#%@")
	cpuAt := make(map[geom.Coord]bool, len(s.Top.CPUs))
	for _, c := range s.Top.CPUs {
		cpuAt[c] = true
	}
	pillarAt := make(map[[2]int]bool, len(s.Top.Pillars))
	for _, p := range s.Top.Pillars {
		pillarAt[[2]int{p.X, p.Y}] = true
	}

	fmt.Fprintf(w, "router utilization (max %d flits; C = CPU node, P = pillar-only node)\n", max)
	for l := 0; l < dim.Layers; l++ {
		fmt.Fprintf(w, "layer %d:\n", l)
		for y := 0; y < dim.Height; y++ {
			for x := 0; x < dim.Width; x++ {
				c := geom.Coord{X: x, Y: y, Layer: l}
				switch {
				case cpuAt[c]:
					fmt.Fprint(w, "C")
				case pillarAt[[2]int{x, y}]:
					fmt.Fprint(w, "P")
				default:
					f := s.Fab.Router(c).ForwardedFlits
					idx := int(uint64(len(shades)-1) * f / max)
					fmt.Fprintf(w, "%c", shades[idx])
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// BusReport summarizes each pillar bus: flits carried and utilization over
// the machine's lifetime.
func (s *System) BusReport(w io.Writer) {
	buses := s.Fab.Buses()
	if len(buses) == 0 {
		fmt.Fprintln(w, "no pillar buses (single layer or router-vertical mode)")
		return
	}
	cycles := s.Engine.Now()
	if cycles == 0 {
		cycles = 1
	}
	fmt.Fprintf(w, "%-8s %10s %12s %12s\n", "pillar", "position", "flits", "utilization")
	for _, b := range buses {
		fmt.Fprintf(w, "bus %-4d %10v %12d %11.2f%%\n",
			b.ID(), b.Pos(), b.TotalFlits, 100*float64(b.BusyCycles)/float64(cycles))
	}
}
