package core

import (
	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/obs"
)

// maybeMigrate applies the cache-line migration policy of Section 4.2.3
// after a hit by the given CPU. Lines accessed repeatedly by the same
// remote CPU take gradual migration steps toward it; intra-layer movement
// skips clusters owned by other processors; a line on a different layer
// than its accessor migrates toward the accessor's pillar within its own
// layer and never crosses layers. Migration is lazy: the old copy remains
// hittable until the new location acknowledges.
func (s *System) maybeMigrate(cl *Cluster, addr cache.LineAddr, p cache.Place, e *cache.Entry, cpu int) {
	if !s.Cfg.Scheme.Migrates() || e.Migrating {
		return
	}
	if int(e.LastCPU) == cpu {
		if e.Hits < 255 {
			e.Hits++
		}
	} else {
		e.LastCPU = int8(cpu)
		e.Hits = 1
	}
	if cl.id == s.Top.CPUCluster(cpu) {
		return // already in the accessor's local cluster
	}
	if int(e.Hits) < s.Cfg.MigrationThreshold {
		return
	}
	target := s.migrationTarget(cl.id, cpu)
	if target < 0 || target == cl.id {
		return
	}
	if s.dtm != nil && s.dtm.VetoMigration(s.Top.ClusterCenter(target)) {
		// DTM veto: the step would move the line toward a cell above the
		// trip point. Restart the hit count so the line re-qualifies over
		// a full threshold window, by which time the target may have
		// cooled past the release temperature.
		e.Hits = 0
		return
	}
	e.Hits = 0
	e.Migrating = true
	s.M.Migrations.Inc()
	if s.obsProbe != nil {
		// An intra-layer step heads for the accessor's local cluster; a
		// line on a different layer steps toward the accessor's pillar
		// within its own layer (Section 4.2.3).
		kind := obs.EvMigStep
		if s.Top.ClusterLayer(cl.id) != s.Top.CPUs[cpu].Layer {
			kind = obs.EvMigPillar
		}
		c := cl.center
		s.obsProbe.Emit(obs.Event{
			Cycle: s.Engine.Now(), Kind: kind,
			X: c.X, Y: c.Y, Layer: c.Layer,
			ID: uint64(addr), A: uint64(cl.id), B: uint64(target),
		})
	}
	s.send(s.Top.BankCoord(cl.id, p.Bank), &Msg{
		Kind:      msgMigData,
		Cluster:   target,
		Origin:    cl.id,
		Addr:      addr,
		Sharers:   e.Sharers,
		Dirty:     e.Dirty,
		ToCluster: true,
	})
}

// migrationTarget computes the next cluster for one migration step of a
// line currently in cluster `from`, accessed by `cpu`. It returns -1 when
// no movement is warranted.
func (s *System) migrationTarget(from, cpu int) int {
	t := s.Top
	var dst int
	if t.ClusterLayer(from) == t.CPUs[cpu].Layer {
		// Same layer as the accessor: head for its local cluster.
		dst = t.CPUCluster(cpu)
	} else {
		// Different layer: head for the accessor's pillar on the line's own
		// layer; the pillar provides single-hop vertical access, so the
		// line never needs to change layers (Section 4.2.3).
		pillar := t.PillarOf(t.CPUs[cpu])
		dst = t.ClusterOf(geom.Coord{X: pillar.X, Y: pillar.Y, Layer: t.ClusterLayer(from)})
	}
	if from == dst {
		return -1
	}
	return s.stepToward(from, dst, cpu)
}

// stepToward walks one migration step through the cluster grid from `from`
// toward dst (X dimension first), skipping clusters that host processors
// other than the accessor so their local access patterns are undisturbed.
// Skipped clusters are stepped over within the same migration, landing the
// line in the next closest processor-free cluster (or the destination).
func (s *System) stepToward(from, dst, cpu int) int {
	cur := from
	for cur != dst {
		next := s.clusterStep(cur, dst)
		if next == dst {
			return next
		}
		if s.Cfg.SkipCPUClusters {
			if owner := s.clusterCPU[next]; owner >= 0 && owner != cpu {
				cur = next
				continue
			}
		}
		return next
	}
	return -1
}

// clusterStep returns the cluster one grid step from cur toward dst within
// their (shared) layer, moving in X before Y like the network's
// dimension-order routing.
func (s *System) clusterStep(cur, dst int) int {
	t := s.Top
	per := t.ClustersPerLayer()
	base := cur - cur%per
	cx, cy := cur%per%t.ClusterW, cur%per/t.ClusterW
	dx, dy := dst%per%t.ClusterW, dst%per/t.ClusterW
	switch {
	case cx < dx:
		cx++
	case cx > dx:
		cx--
	case cy < dy:
		cy++
	case cy > dy:
		cy--
	}
	return base + cy*t.ClusterW + cx
}
