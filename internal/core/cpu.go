package core

import (
	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/trace"
)

// storeBufferSlots bounds outstanding stores per core. An in-order core
// retires stores through a small write buffer; when it fills, the core
// stalls until an exclusive transaction completes.
const storeBufferSlots = 8

// CPU is one in-order, single-issue core (Table 4) with its private
// write-through L1, driven by a deterministic reference stream. Loads block
// the core; stores retire through the store buffer and complete in the
// background via exclusive L2 transactions.
type CPU struct {
	sys     *System
	id      int
	pos     geom.Coord
	cluster int
	l1      *l1 // data cache
	l1i     *l1 // instruction cache (the paper's split I/D L1)
	gen     trace.Stream

	instrs       uint64
	loads        uint64
	stores       uint64
	ifetches     uint64
	ifetchMisses uint64
	storeCredits int

	// blockedStore/stalledRef hold the reference waiting on a full store
	// buffer / an ifetch miss; pendingRef carries the reference of the
	// core's single outstanding typed pipeline event (the in-order core
	// never has two such events in flight). Value fields: scheduling a
	// delayed access allocates nothing.
	blockedStore trace.Ref
	hasBlocked   bool
	stalledRef   trace.Ref
	hasStalled   bool
	pendingRef   trace.Ref

	running bool
}

func newCPU(sys *System, id int, gen trace.Stream) *CPU {
	pos := sys.Top.CPUs[id]
	return &CPU{
		sys:          sys,
		id:           id,
		pos:          pos,
		cluster:      sys.Top.ClusterOf(pos),
		l1:           newL1(sys.Cfg.L1Sets, sys.Cfg.L1Ways),
		l1i:          newL1(sys.Cfg.L1Sets, sys.Cfg.L1Ways),
		gen:          gen,
		storeCredits: storeBufferSlots,
	}
}

// start begins execution; the stagger desynchronizes the cores slightly, as
// real cores never tick in lockstep.
func (c *CPU) start() {
	c.running = true
	c.sys.Engine.AfterEvent(uint64(1+c.id), c.sys, evCPUStep, c)
}

// step fetches the next reference, executes its leading non-memory
// instructions (one per cycle at issue width 1), then performs the access.
func (c *CPU) step() {
	if !c.running {
		return
	}
	if c.sys.dtm != nil && c.sys.dtm.DutyStall(c.id) {
		// DTM duty-cycling: the core's cell is above the trip point, and
		// this front-end slot is a skip slot — stall one cycle without
		// fetching. Retiring fewer instructions per cycle is exactly how
		// the actuator sheds the core's 8 W budget.
		c.sys.Engine.AfterEvent(1, c.sys, evCPUStep, c)
		return
	}
	ref := c.gen.Next()
	c.instrs += uint64(ref.Gap)
	if ref.Gap == 0 {
		c.access(ref)
		return
	}
	c.pendingRef = ref
	c.sys.Engine.AfterEvent(uint64(ref.Gap), c.sys, evCPUAccess, c)
}

func (c *CPU) access(ref trace.Ref) {
	c.instrs++
	if ref.HasCode {
		c.ifetches++
		if hit, _ := c.l1i.lookup(ref.Code); !hit {
			// An instruction-cache miss stalls the in-order front end; the
			// data access resumes when the code line returns.
			c.ifetchMisses++
			c.stalledRef = ref
			c.hasStalled = true
			c.sys.Engine.AfterEvent(uint64(c.sys.Cfg.L1HitCycles), c.sys, evCPUIfetch, c)
			return
		}
	}
	c.dataAccess(ref)
}

// ifetchDone fills the instruction cache and resumes the stalled reference.
func (c *CPU) ifetchDone(code cache.LineAddr) {
	c.l1i.install(code, false)
	if !c.hasStalled {
		return
	}
	c.pendingRef = c.stalledRef
	c.hasStalled = false
	c.sys.Engine.AfterEvent(1, c.sys, evCPUData, c)
}

func (c *CPU) dataAccess(ref trace.Ref) {
	if ref.Write {
		c.store(ref)
	} else {
		c.load(ref)
	}
}

// load performs a blocking read: an L1 hit costs L1HitCycles; a miss issues
// an L2 read transaction and stalls the core until the data returns.
func (c *CPU) load(ref trace.Ref) {
	c.loads++
	if hit, _ := c.l1.lookup(ref.Addr); hit {
		c.sys.Engine.AfterEvent(uint64(c.sys.Cfg.L1HitCycles), c.sys, evCPUStep, c)
		return
	}
	c.pendingRef = ref
	c.sys.Engine.AfterEvent(uint64(c.sys.Cfg.L1HitCycles), c.sys, evCPULoadMiss, c)
}

// store performs a write-through store. A hit on a Modified line retires
// immediately; a hit on a Shared line needs an ownership upgrade; a miss is
// a read-for-ownership. Upgrades and RFOs run in the background through the
// store buffer; a full buffer stalls the core.
func (c *CPU) store(ref trace.Ref) {
	c.stores++
	hit, modified := c.l1.lookup(ref.Addr)
	if hit && modified {
		c.sys.Engine.AfterEvent(1, c.sys, evCPUStep, c)
		return
	}
	if c.storeCredits == 0 {
		c.blockedStore = ref
		c.hasBlocked = true
		return // resumed by storeDone
	}
	c.storeCredits--
	c.sys.startTxn(c, ref.Addr, true)
	c.sys.Engine.AfterEvent(1, c.sys, evCPUStep, c)
}

// loadDone receives the data for a blocking load: fill the L1 Shared and
// resume execution.
func (c *CPU) loadDone(addr cache.LineAddr) {
	c.l1.install(addr, false)
	c.sys.Engine.AfterEvent(1, c.sys, evCPUStep, c)
}

// storeDone completes an exclusive transaction: fill Modified, return the
// store-buffer credit, and unblock a stalled store if one is waiting.
func (c *CPU) storeDone(addr cache.LineAddr) {
	c.l1.install(addr, true)
	c.storeCredits++
	if c.hasBlocked {
		ref := c.blockedStore
		c.hasBlocked = false
		c.storeCredits--
		c.sys.startTxn(c, ref.Addr, true)
		c.sys.Engine.AfterEvent(1, c.sys, evCPUStep, c)
	}
}

// handle dispatches a CPU-addressed network message.
func (c *CPU) handle(m *Msg, cycle uint64) {
	switch m.Kind {
	case msgData:
		c.sys.data(m, cycle)
	case msgNack:
		c.sys.nack(m.Txn)
	case msgInval:
		c.l1.invalidate(m.Addr)
		c.sys.send(c.pos, &Msg{Kind: msgInvalAck, Cluster: m.Cluster, CPU: c.id, Addr: m.Addr, ToCluster: true})
	default:
		panic("core: CPU received " + m.Kind.String())
	}
}
