package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestL1HitMiss(t *testing.T) {
	c := newL1(512, 2)
	if hit, _ := c.lookup(100); hit {
		t.Fatal("hit in empty L1")
	}
	c.install(100, false)
	hit, mod := c.lookup(100)
	if !hit || mod {
		t.Fatalf("hit=%v mod=%v, want hit Shared", hit, mod)
	}
	c.install(200, true)
	hit, mod = c.lookup(200)
	if !hit || !mod {
		t.Fatalf("hit=%v mod=%v, want hit Modified", hit, mod)
	}
}

func TestL1Counters(t *testing.T) {
	c := newL1(512, 2)
	c.lookup(1) // miss
	c.install(1, false)
	c.lookup(1) // hit
	c.lookup(2) // miss
	if c.Hits != 1 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestL1Invalidate(t *testing.T) {
	c := newL1(512, 2)
	c.install(42, true)
	if !c.invalidate(42) {
		t.Fatal("invalidate missed present line")
	}
	if hit, _ := c.lookup(42); hit {
		t.Fatal("line present after invalidate")
	}
	if c.invalidate(42) {
		t.Fatal("invalidate of absent line reported success")
	}
}

func TestL1Upgrade(t *testing.T) {
	c := newL1(512, 2)
	c.install(7, false)
	if !c.upgrade(7) {
		t.Fatal("upgrade failed on present line")
	}
	if _, mod := c.lookup(7); !mod {
		t.Fatal("line not Modified after upgrade")
	}
	if c.upgrade(8) {
		t.Fatal("upgrade of absent line reported success")
	}
}

func TestL1ReinstallMergesState(t *testing.T) {
	c := newL1(512, 2)
	c.install(5, true)
	c.install(5, false) // re-install Shared must not demote M
	if _, mod := c.lookup(5); !mod {
		t.Error("re-install demoted Modified line")
	}
}

func TestL1Conflict(t *testing.T) {
	// Three lines mapping to the same 2-way set: one must be evicted.
	c := newL1(512, 2)
	a := cache.LineAddr(0)
	b := cache.LineAddr(512)
	d := cache.LineAddr(1024)
	c.install(a, false)
	c.install(b, false)
	c.install(d, false)
	present := 0
	for _, addr := range []cache.LineAddr{a, b, d} {
		if hit, _ := c.lookup(addr); hit {
			present++
		}
	}
	if present != 2 {
		t.Errorf("%d of 3 conflicting lines present, want 2", present)
	}
}

func TestL1SetMappingIsModulo(t *testing.T) {
	f := func(addr uint32) bool {
		c := newL1(512, 2)
		set, tag := c.place(cache.LineAddr(addr))
		if set != int(addr%512) {
			return false
		}
		return tag == uint64(addr)/512
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL1DistinctAddressesDontAlias(t *testing.T) {
	// Two addresses with the same set but different tags never alias.
	c := newL1(512, 2)
	a := cache.LineAddr(3)
	b := cache.LineAddr(3 + 512)
	c.install(a, true)
	c.install(b, false)
	if _, mod := c.lookup(b); mod {
		t.Error("address b aliased to a's Modified state")
	}
	if _, mod := c.lookup(a); !mod {
		t.Error("address a lost its state")
	}
}

func TestMsgKindStrings(t *testing.T) {
	kinds := []msgKind{msgProbeRead, msgProbeExcl, msgNack, msgData,
		msgInval, msgInvalAck, msgMigData, msgMigInval}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "Unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestMsgFlits(t *testing.T) {
	if msgData.flits() != 4 || msgMigData.flits() != 4 {
		t.Error("data messages must be 4 flits (one 64-byte line)")
	}
	for _, k := range []msgKind{msgProbeRead, msgProbeExcl, msgNack, msgInval, msgInvalAck, msgMigInval} {
		if k.flits() != 1 {
			t.Errorf("%v must be a single flit", k)
		}
	}
}
