package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestIdleSkipSystemEquivalence proves the engine's idle-cycle
// fast-forwarding is invisible at the system level: a full warm + measure
// run with skipping enabled (the default) produces results identical to one
// that steps through every cycle, down to every counter and latency moment.
func TestIdleSkipSystemEquivalence(t *testing.T) {
	run := func(skip bool) Results {
		prof, ok := trace.ProfileByName("mgrid", 8)
		if !ok {
			t.Fatal("profile missing")
		}
		s, err := NewSystem(config.Default(config.CMPDNUCA3D), prof, 11)
		if err != nil {
			t.Fatal(err)
		}
		s.Engine.SetIdleSkip(skip)
		s.Warm(11)
		s.Start()
		s.Run(5_000)
		s.ResetStats()
		s.Run(20_000)
		return s.Results()
	}
	skipped, stepped := run(true), run(false)
	if skipped != stepped {
		t.Fatalf("idle skipping changed results:\n skip: %+v\n step: %+v", skipped, stepped)
	}
}
