package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"
)

// vrSystem builds an un-started SNUCA+VR system for hand-driven tests.
func vrSystem(t *testing.T) *System {
	t.Helper()
	prof, _ := trace.ProfileByName("ammp", 8)
	cfg := config.Default(config.CMPSNUCA3D)
	cfg.VictimReplication = true
	s, err := NewSystem(cfg, prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// remoteAddr returns a line whose home cluster is neither the CPU's local
// cluster nor on a set the CPU's cluster has special state in.
func remoteAddr(s *System, cpu *CPU) cache.LineAddr {
	for a := cache.LineAddr(0); ; a++ {
		if s.Cfg.L2.PlaceOf(a).HomeCluster != cpu.cluster {
			return a
		}
	}
}

func TestReplicationCreatesLocalCopy(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)

	// First read: local replica check misses, home hits, replica pushed.
	s.startTxn(cpu, addr, false)
	drain(t, s)
	s.Engine.Run(2000) // let the replica land
	if s.M.Replications.Value() != 1 {
		t.Fatalf("replications = %d, want 1", s.M.Replications.Value())
	}
	if !s.Clusters[cpu.cluster].lookup(addr) {
		t.Fatal("replica not resident in the local cluster")
	}
	if s.lineLoc[addr] != home {
		t.Error("primary location moved")
	}
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}

	// Second read: the parallel local probe hits the replica; the home
	// reply arrives later and is dropped as a duplicate.
	probesBefore := s.M.ProbesSent.Value()
	s.startTxn(cpu, addr, false)
	drain(t, s)
	if got := s.M.ProbesSent.Value() - probesBefore; got != 2 {
		t.Errorf("second read sent %d probes, want 2 (local + home in parallel)", got)
	}
	if s.M.ReplicaHits.Value() == 0 {
		t.Error("no replica hit recorded")
	}
}

func TestReplicationLowersLatency(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)

	s.startTxn(cpu, addr, false)
	drain(t, s)
	first := s.M.HitLatency.Max()
	s.Engine.Run(2000)
	s.M.HitLatency.Reset()

	s.startTxn(cpu, addr, false)
	drain(t, s)
	second := s.M.HitLatency.Max()
	if second >= first {
		t.Errorf("replica hit (%d) not faster than remote hit (%d)", second, first)
	}
}

func TestWriteInvalidatesReplicas(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)

	s.startTxn(cpu, addr, false) // read -> replica
	drain(t, s)
	s.Engine.Run(2000)
	if !s.Clusters[cpu.cluster].lookup(addr) {
		t.Fatal("setup: replica missing")
	}

	// Another CPU writes: the replica must die.
	writer := s.CPUs[1]
	s.startTxn(writer, addr, true)
	drain(t, s)
	s.Engine.Run(2000)
	if s.Clusters[cpu.cluster].lookup(addr) {
		t.Error("replica survived a remote write")
	}
	if s.M.ReplicaInvals.Value() == 0 {
		t.Error("no replica invalidations counted")
	}
	if len(s.replicas) != 0 {
		t.Errorf("replica mask not empty: %v", s.replicas)
	}
}

func TestReplicaNeverDisplacesPrimary(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)

	// Fill the target set in the CPU's local cluster with primaries.
	p := s.Cfg.L2.PlaceOf(addr)
	stride := cache.LineAddr(s.Cfg.L2.BanksPerCluster * s.Cfg.L2.SetsPerBank * s.Cfg.L2.Clusters)
	local := s.Clusters[cpu.cluster]
	for i := 1; i <= s.Cfg.L2.Ways; i++ {
		local.install(addr+stride*cache.LineAddr(i), 0, false)
	}
	if got := local.set(p).ValidCount(); got != s.Cfg.L2.Ways {
		t.Fatalf("setup: set holds %d", got)
	}

	s.startTxn(cpu, addr, false)
	drain(t, s)
	s.Engine.Run(2000)
	// Replication attempted but found no displaceable way.
	way, ok := local.set(p).Lookup(p.Tag)
	if ok && local.set(p).Way(way).Replica {
		t.Error("replica displaced an authoritative line")
	}
	for w := 0; w < local.set(p).Ways(); w++ {
		if e := local.set(p).Way(w); e.Valid && e.Replica {
			t.Error("a replica appeared in a set full of primaries")
		}
	}
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaExclusiveProbeNacksAndDies(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)
	s.startTxn(cpu, addr, false)
	drain(t, s)
	s.Engine.Run(2000)

	// The same CPU now writes: its local probe finds a replica, which must
	// nack and self-invalidate; ownership comes from the home cluster.
	// (SNUCA+VR sends exclusive requests straight home, so drive the
	// replica path directly.)
	p := s.Cfg.L2.PlaceOf(addr)
	local := s.Clusters[cpu.cluster]
	if _, ok := local.set(p).Lookup(p.Tag); !ok {
		t.Fatal("setup: replica missing")
	}
	s.nextTxn++
	tx := &txn{id: s.nextTxn, cpu: cpu, addr: addr, excl: true, issued: s.Engine.Now(), memCtrl: -1}
	s.txns[tx.id] = tx
	s.probe(tx, cpu.cluster)
	s.Engine.Run(50)
	if _, ok := local.set(p).Lookup(p.Tag); ok {
		t.Error("replica survived an exclusive probe")
	}
	// The transaction then proceeds (nack -> home under SNUCA rules).
	drain(t, s)
}

func TestMemoryRefillInvalidatesStaleReplicas(t *testing.T) {
	s := vrSystem(t)
	cpu := s.CPUs[0]
	addr := remoteAddr(s, cpu)
	home := s.Cfg.L2.PlaceOf(addr).HomeCluster
	s.Clusters[home].install(addr, 0, false)
	s.startTxn(cpu, addr, false)
	drain(t, s)
	s.Engine.Run(2000)

	// Evict the primary behind the replica's back.
	p := s.Cfg.L2.PlaceOf(addr)
	s.Clusters[home].set(p).Invalidate(p.Tag)
	delete(s.lineLoc, addr)

	// A write by another CPU misses everywhere and refills from memory;
	// the stale replica must be gone afterward.
	s.startTxn(s.CPUs[1], addr, true)
	drain(t, s)
	s.Engine.Run(2000)
	if s.Clusters[cpu.cluster].lookup(addr) {
		t.Error("stale replica survived a memory refill")
	}
	if err := s.CheckSingleCopy(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	run := func(vr bool) Results {
		prof, _ := trace.ProfileByName("equake", 8) // highest shared fraction
		cfg := config.Default(config.CMPSNUCA3D)
		cfg.VictimReplication = vr
		s, err := NewSystem(cfg, prof, 9)
		if err != nil {
			t.Fatal(err)
		}
		s.Warm(9)
		s.Start()
		s.Run(50_000)
		s.ResetStats()
		s.Run(300_000)
		if err := s.CheckSingleCopy(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckReplicaConsistency(); err != nil {
			t.Fatal(err)
		}
		return s.Results()
	}
	plain, vr := run(false), run(true)
	if vr.Replications == 0 {
		t.Fatalf("replication inactive: %+v", vr)
	}
	if plain.Replications != 0 || plain.ReplicaHits != 0 {
		t.Error("plain SNUCA replicated")
	}
	if vr.ReplicaHits == 0 {
		t.Error("no replica ever re-read; window too short for reuse")
	}
	// Replication must not hurt average hit latency, and replica hits are
	// strictly local (they shift the latency distribution downward). The
	// L1 absorbs most short-term reuse, so the gain at this window size is
	// modest; require no regression plus observable replica service.
	if vr.AvgL2HitLatency > plain.AvgL2HitLatency+0.5 {
		t.Errorf("VR latency %.1f regressed vs plain %.1f",
			vr.AvgL2HitLatency, plain.AvgL2HitLatency)
	}
}
