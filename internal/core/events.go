package core

import "repro/internal/obs"

// Typed event kinds for the engine's allocation-free scheduling path
// (sim.Engine.AfterEvent). Every fixed-latency completion on the simulator's
// hot path — tag lookups, bank accesses, memory fetches, CPU pipeline
// delays — used to capture a closure per scheduled event; they are now a
// (kind, payload-pointer) pair dispatched by System.HandleEvent. The payload
// is always a live pointer (*Msg, *CPU, *txn), so storing it in the event's
// interface field does not allocate.
const (
	// evClusterServe serves a network tag probe after the tag-array delay.
	// Data: *Msg (the probe; Msg.Cluster is the serving cluster).
	evClusterServe uint8 = iota
	// evClusterServeDirect serves a local-CPU probe through the direct
	// tag-array connection. Data: *Msg.
	evClusterServeDirect
	// evClusterMigData installs a migrated line after the bank write.
	// Data: *Msg.
	evClusterMigData
	// evClusterMigInval retires a lazily-migrated old copy after the tag
	// access. Data: *Msg.
	evClusterMigInval
	// evClusterReplData installs a replica after the bank write. Data: *Msg.
	evClusterReplData
	// evClusterReplInval drops a replica after the tag access. Data: *Msg.
	evClusterReplInval
	// evClusterDataReply sends the data reply from the serving bank once the
	// bank access completes. Data: *Msg — the original probe, mutated in
	// place into the msgData reply (the probe is terminal once it hits).
	evClusterDataReply
	// evCPUStep resumes a core's fetch-execute loop. Data: *CPU.
	evCPUStep
	// evCPUAccess performs the reference in CPU.pendingRef after its
	// leading non-memory instructions. Data: *CPU.
	evCPUAccess
	// evCPUIfetch opens the instruction-fetch transaction for the stalled
	// reference after the L1I lookup. Data: *CPU.
	evCPUIfetch
	// evCPUData performs the data access of the reference that was stalled
	// behind an ifetch miss. Data: *CPU (reference in CPU.pendingRef).
	evCPUData
	// evCPULoadMiss opens the L2 read transaction for a load that missed
	// the L1. Data: *CPU (reference in CPU.pendingRef).
	evCPULoadMiss
	// evMemArrive completes an off-chip fetch after the DRAM latency.
	// Data: *txn.
	evMemArrive
	// evMemData sends the fetched line from the serving memory controller
	// once the home bank's fill completes. Data: *txn.
	evMemData
)

// HandleEvent dispatches the typed events scheduled by the protocol and
// core models. It implements sim.Handler.
func (s *System) HandleEvent(kind uint8, data any) {
	switch kind {
	case evClusterServe:
		m := data.(*Msg)
		s.Clusters[m.Cluster].serve(m, false)
	case evClusterServeDirect:
		m := data.(*Msg)
		s.Clusters[m.Cluster].serve(m, true)
	case evClusterMigData:
		m := data.(*Msg)
		s.Clusters[m.Cluster].finishMigration(m)
	case evClusterMigInval:
		m := data.(*Msg)
		s.Clusters[m.Cluster].retireOldCopy(m)
	case evClusterReplData:
		m := data.(*Msg)
		s.Clusters[m.Cluster].installReplica(m)
	case evClusterReplInval:
		m := data.(*Msg)
		s.Clusters[m.Cluster].dropReplica(m)
	case evClusterDataReply:
		m := data.(*Msg)
		p := s.Cfg.L2.PlaceOf(m.Addr)
		s.send(s.Top.BankCoord(m.Cluster, p.Bank), m)
	case evCPUStep:
		data.(*CPU).step()
	case evCPUAccess:
		c := data.(*CPU)
		c.access(c.pendingRef)
	case evCPUIfetch:
		c := data.(*CPU)
		s.startIfetch(c, c.stalledRef.Code)
	case evCPUData:
		c := data.(*CPU)
		c.dataAccess(c.pendingRef)
	case evCPULoadMiss:
		c := data.(*CPU)
		s.startTxn(c, c.pendingRef.Addr, false)
	case evMemArrive:
		t := data.(*txn)
		if t.span != nil {
			if _, live := s.txns[t.id]; live {
				s.spans.Mark(t.span, obs.CompDram, s.Engine.Now())
			}
		}
		s.memArrive(t)
	case evMemData:
		t := data.(*txn)
		from := t.cpu.pos
		if t.memCtrl >= 0 {
			from = s.memCtrls[t.memCtrl]
		}
		home := s.Cfg.L2.PlaceOf(t.addr).HomeCluster
		m := &Msg{
			Kind: msgData, Txn: t.id, CPU: t.cpu.id, Cluster: home,
			Addr: t.addr, FromMemory: true,
		}
		if t.span != nil {
			if _, live := s.txns[t.id]; live {
				now := s.Engine.Now()
				s.spans.Mark(t.span, obs.CompBank, now)
				// Reuse the parked memory-request ledger for the reply leg
				// (a post-fetch forward may have released it; open a fresh
				// one then).
				if t.chain == nil {
					t.chain = s.spans.GetChain(now)
				}
				t.chain.SentAt = now
				m.chain = t.chain
				t.chain = nil
			}
		}
		s.send(from, m)
	default:
		panic("core: unknown event kind")
	}
}
