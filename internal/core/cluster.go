package core

import (
	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Cluster is one L2 cluster: a tile of banks, the cluster's tag array, the
// co-located directory slice, and the controller logic block (Section 4.1).
// The controller sits at the tile's central node; banks occupy the tile.
// Tag lookups cost TagCycles and bank accesses BankCycles (Table 4);
// network distance to and from the banks is paid in real packet hops.
type Cluster struct {
	id     int
	sys    *System
	banks  []*cache.Bank
	center geom.Coord

	// portFree holds, per tag-array port, the cycle the port becomes
	// available; empty when lookups are unlimited (Config.TagPorts == 0).
	portFree []uint64

	// TagLookups counts tag-array activations (for the power model);
	// TagPortWait accumulates cycles probes spent waiting for a port.
	TagLookups  uint64
	TagPortWait uint64
}

func newCluster(id int, sys *System) *Cluster {
	g := sys.Cfg.L2
	cl := &Cluster{
		id:     id,
		sys:    sys,
		banks:  make([]*cache.Bank, g.BanksPerCluster),
		center: sys.Top.ClusterCenter(id),
	}
	for i := range cl.banks {
		cl.banks[i] = cache.NewBank(g.SetsPerBank, g.Ways)
	}
	if sys.Cfg.TagPorts > 0 {
		cl.portFree = make([]uint64, sys.Cfg.TagPorts)
	}
	return cl
}

// tagDelay returns how long a lookup arriving now must wait before its
// TagCycles access completes, claiming a tag-array port when they are
// bounded.
func (cl *Cluster) tagDelay() uint64 {
	lat := uint64(cl.sys.Cfg.TagCycles)
	if cl.portFree == nil {
		return lat
	}
	now := cl.sys.Engine.Now()
	best := 0
	for i := 1; i < len(cl.portFree); i++ {
		if cl.portFree[i] < cl.portFree[best] {
			best = i
		}
	}
	start := now
	if cl.portFree[best] > now {
		start = cl.portFree[best]
		cl.TagPortWait += start - now
	}
	cl.portFree[best] = start + lat
	return start - now + lat
}

// set returns the associative set a line maps to within this cluster.
func (cl *Cluster) set(p cache.Place) *cache.Set {
	return cl.banks[p.Bank].Set(p.Set)
}

// bankDelay returns the access latency of the given bank: the Table 4
// L2BankCycles, plus the drowsy wakeup when an attached DTM controller
// holds the bank's cell in the drowsy retention state. Unmanaged runs
// pay one nil check.
func (cl *Cluster) bankDelay(bank int) uint64 {
	d := uint64(cl.sys.Cfg.L2BankCycles)
	if cl.sys.dtm != nil {
		d += cl.sys.dtm.BankWakeup(cl.sys.Top.BankCoord(cl.id, bank))
	}
	return d
}

// handle dispatches a cluster-addressed message that arrived over the
// network.
func (cl *Cluster) handle(m *Msg) {
	s := cl.sys
	switch m.Kind {
	case msgProbeRead, msgProbeExcl:
		// Tag array lookup latency (plus any wait for a port), then service.
		d := cl.tagDelay()
		if m.chain != nil {
			m.chain.Tag = d
		}
		s.Engine.AfterEvent(d, s, evClusterServe, m)
	case msgMigData:
		s.Engine.AfterEvent(cl.bankDelay(s.Cfg.L2.PlaceOf(m.Addr).Bank), s, evClusterMigData, m)
	case msgMigInval:
		s.Engine.AfterEvent(uint64(s.Cfg.TagCycles), s, evClusterMigInval, m)
	case msgReplData:
		s.Engine.AfterEvent(cl.bankDelay(s.Cfg.L2.PlaceOf(m.Addr).Bank), s, evClusterReplData, m)
	case msgReplInval:
		s.Engine.AfterEvent(uint64(s.Cfg.TagCycles), s, evClusterReplInval, m)
	case msgInvalAck:
		cl.sys.M.InvalAcks.Inc()
	default:
		panic("core: cluster received " + m.Kind.String())
	}
}

// serveDirect performs the local-processor path: the cluster's tag array
// has a direct connection to its local CPU (Section 4.1), so the lookup
// costs TagCycles with no network traversal; only the data reply (from the
// bank) rides the network.
func (cl *Cluster) serveDirect(m *Msg) {
	d := cl.tagDelay()
	if m.chain != nil {
		m.chain.Tag = d
	}
	cl.sys.Engine.AfterEvent(d, cl.sys, evClusterServeDirect, m)
}

// serve performs the tag lookup and, on a hit, the directory actions, the
// migration-policy update, and the data reply. On a miss a nack returns to
// the requester (directly for the local tag array, over the network
// otherwise).
func (cl *Cluster) serve(m *Msg, direct bool) {
	s := cl.sys
	cl.TagLookups++
	if s.obsProbe != nil {
		s.obsProbe.Emit(obs.Event{
			Cycle: s.Engine.Now(), Kind: obs.EvTagProbe,
			X: cl.center.X, Y: cl.center.Y, Layer: cl.center.Layer,
			ID: uint64(m.Addr), A: uint64(cl.id),
		})
	}
	p := s.Cfg.L2.PlaceOf(m.Addr)
	set := cl.set(p)
	way, ok := set.Lookup(p.Tag)
	if !ok {
		cl.nackProbe(m, direct)
		return
	}

	e := set.Way(way)
	set.Touch(way)
	bank := cl.banks[p.Bank]
	if m.Kind == msgProbeExcl {
		if e.Replica {
			// Replicas are read-only: drop this copy and report a miss;
			// the authoritative copy grants ownership.
			s.replicas[m.Addr] &^= 1 << uint(cl.id)
			s.cleanReplicaMask(m.Addr)
			s.dropReplicaL1Sharers(m.Addr, cl, *e)
			set.Invalidate(p.Tag)
			cl.nackProbe(m, direct)
			return
		}
		bank.Writes++
		cl.emitBank(obs.EvBankWrite, p.Bank, m.Addr)
		cl.invalidateSharers(e, m.Addr, m.CPU)
		s.invalidateReplicas(m.Addr, cl.center, -1)
		e.Sharers = 1 << uint(m.CPU)
		e.Dirty = true
		if s.obsProbe != nil {
			s.obsProbe.Emit(obs.Event{
				Cycle: s.Engine.Now(), Kind: obs.EvCohUpgrade,
				X: cl.center.X, Y: cl.center.Y, Layer: cl.center.Layer,
				ID: uint64(m.Addr), A: uint64(m.CPU),
			})
		}
	} else {
		bank.Reads++
		cl.emitBank(obs.EvBankRead, p.Bank, m.Addr)
		e.Sharers |= 1 << uint(m.CPU)
		if e.Replica {
			s.M.ReplicaHits.Inc()
		} else {
			s.maybeReplicate(cl, m.Addr, e, m.CPU)
		}
	}
	if !e.Replica {
		s.maybeMigrate(cl, m.Addr, p, e, m.CPU)
	}

	// The probe is terminal on a hit: reuse it, mutated in place, as the
	// data reply instead of allocating a fresh Msg. The reply is sent from
	// the serving bank's node once the bank access completes.
	m.Kind = msgData
	m.Cluster = cl.id
	m.ToCluster = false
	// The bank delay includes any DTM drowsy wakeup, so the span ledger's
	// bank component covers the real service time.
	d := cl.bankDelay(p.Bank)
	if m.chain != nil {
		m.chain.Bank = d
	}
	s.Engine.AfterEvent(d, s, evClusterDataReply, m)
}

// nackProbe reports a tag miss back to the requester: directly into the
// transaction table for the local tag array, or as a msgNack over the
// network, reusing the terminal probe Msg as the reply.
func (cl *Cluster) nackProbe(m *Msg, direct bool) {
	if m.chain != nil {
		// The attempt lost; the NACK reply carries no ledger.
		cl.sys.spans.PutChain(m.chain)
		m.chain = nil
	}
	if direct {
		cl.sys.nack(m.Txn)
		return
	}
	m.Kind = msgNack
	m.Cluster = cl.id
	m.ToCluster = false
	cl.sys.send(cl.center, m)
}

// invalidateSharers sends directory invalidations to every L1 holding the
// line except the new owner.
func (cl *Cluster) invalidateSharers(e *cache.Entry, addr cache.LineAddr, owner int) {
	for c := range cl.sys.CPUs {
		if c == owner || e.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		cl.sys.M.Invalidations.Inc()
		if cl.sys.obsProbe != nil {
			cl.sys.obsProbe.Emit(obs.Event{
				Cycle: cl.sys.Engine.Now(), Kind: obs.EvCohInval,
				X: cl.center.X, Y: cl.center.Y, Layer: cl.center.Layer,
				ID: uint64(addr), A: uint64(c),
			})
		}
		cl.sys.send(cl.center, &Msg{Kind: msgInval, CPU: c, Cluster: cl.id, Addr: addr})
	}
}

// lookup reports whether the cluster currently holds the line.
func (cl *Cluster) lookup(addr cache.LineAddr) bool {
	p := cl.sys.Cfg.L2.PlaceOf(addr)
	_, ok := cl.set(p).Lookup(p.Tag)
	return ok
}

// install fills a line into this cluster (memory fetch or duplicate-free
// re-insertion), handling the eviction of the displaced victim: the global
// location map is updated, L1 sharers of the victim receive
// back-invalidations, and dirty victims count a memory writeback.
func (cl *Cluster) install(addr cache.LineAddr, sharers uint16, dirty bool) {
	s := cl.sys
	p := s.Cfg.L2.PlaceOf(addr)
	set := cl.set(p)
	if way, ok := set.Lookup(p.Tag); ok {
		// Already present (racing fill, or a replica that now becomes the
		// authoritative copy): merge directory state and claim primacy.
		e := set.Way(way)
		e.Sharers |= sharers
		e.Dirty = e.Dirty || dirty
		if e.Replica {
			e.Replica = false
			s.replicas[addr] &^= 1 << uint(cl.id)
			s.cleanReplicaMask(addr)
		}
		s.lineLoc[addr] = cl.id
		return
	}
	way, victim, evicted := set.Insert(p.Tag)
	if evicted {
		cl.evict(p, victim)
	}
	e := set.Way(way)
	e.Sharers = sharers
	e.Dirty = dirty
	cl.banks[p.Bank].Writes++
	cl.emitBank(obs.EvBankWrite, p.Bank, addr)
	s.lineLoc[addr] = cl.id
}

// emitBank reports a bank SRAM access (EvBankRead or EvBankWrite) to the
// attached probe at the bank's own cell — the energy accountant charges
// the access where the SRAM physically sits, not at the cluster's tag
// node. No-op when detached.
func (cl *Cluster) emitBank(kind obs.Kind, bank int, addr cache.LineAddr) {
	s := cl.sys
	if s.obsProbe == nil {
		return
	}
	c := s.Top.BankCoord(cl.id, bank)
	s.obsProbe.Emit(obs.Event{
		Cycle: s.Engine.Now(), Kind: kind,
		X: c.X, Y: c.Y, Layer: c.Layer,
		ID: uint64(addr), A: uint64(cl.id), B: uint64(bank),
	})
}

// evict completes the removal of a victim entry: location map cleanup,
// back-invalidation of L1 sharers, and the dirty writeback count.
func (cl *Cluster) evict(p cache.Place, victim cache.Entry) {
	s := cl.sys
	s.M.Evictions.Inc()
	victimAddr := s.Cfg.L2.LineOf(cache.Place{Bank: p.Bank, Set: p.Set, Tag: victim.Tag})
	if victim.Replica {
		s.dropReplicaState(victimAddr, cl.id, victim)
		return
	}
	if loc, ok := s.lineLoc[victimAddr]; ok && loc == cl.id {
		delete(s.lineLoc, victimAddr)
	}
	if victim.Dirty {
		s.M.MemWrites.Inc()
		if s.obsProbe != nil {
			s.obsProbe.Emit(obs.Event{
				Cycle: s.Engine.Now(), Kind: obs.EvCohWriteback,
				X: cl.center.X, Y: cl.center.Y, Layer: cl.center.Layer,
				ID: uint64(victimAddr), A: uint64(cl.id),
			})
		}
	}
	for c := range s.CPUs {
		if victim.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		s.M.BackInvals.Inc()
		if s.obsProbe != nil {
			s.obsProbe.Emit(obs.Event{
				Cycle: s.Engine.Now(), Kind: obs.EvCohBackInval,
				X: cl.center.X, Y: cl.center.Y, Layer: cl.center.Layer,
				ID: uint64(victimAddr), A: uint64(c),
			})
		}
		s.send(cl.center, &Msg{Kind: msgInval, CPU: c, Cluster: cl.id, Addr: victimAddr})
	}
}

// finishMigration installs an arriving migrated line and retires the old
// copy (lazy migration: the old cluster stays hittable until the MigInval
// lands there).
func (cl *Cluster) finishMigration(m *Msg) {
	s := cl.sys
	cl.install(m.Addr, m.Sharers, m.Dirty)
	s.send(cl.center, &Msg{
		Kind: msgMigInval, Cluster: m.Origin, Addr: m.Addr, ToCluster: true,
	})
}

// retireOldCopy drops the stale copy left behind by a completed migration.
func (cl *Cluster) retireOldCopy(m *Msg) {
	p := cl.sys.Cfg.L2.PlaceOf(m.Addr)
	cl.set(p).Invalidate(p.Tag)
}
