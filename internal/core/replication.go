package core

import (
	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Victim replication (the replication-based management alternative of
// Section 2.1, after Zhang & Asanovic): a remote read hit leaves a
// read-only replica of the line in the requesting core's local cluster, so
// repeated reads become local. Replicas obey three rules:
//
//  1. capacity: a replica may displace only an invalid way or another
//     replica, never an authoritative line;
//  2. coherence: any write (read-for-ownership or upgrade) invalidates
//     every replica before the primary grants ownership, and so does a
//     fresh install from memory;
//  3. identity: the global location map tracks only the primary; the
//     replica mask is separate bookkeeping.
//
// Replicas serve read probes like any resident line (the existing
// transaction table already deduplicates multiple data replies), and they
// nack-and-die on exclusive probes.

// maybeReplicate runs after a remote read hit: push a replica toward the
// requester's local cluster unless one is already there (or being sent).
func (s *System) maybeReplicate(cl *Cluster, addr cache.LineAddr, e *cache.Entry, cpu int) {
	if !s.Cfg.VictimReplication || e.Migrating {
		return
	}
	local := s.CPUs[cpu].cluster
	if local == cl.id {
		return
	}
	if loc, ok := s.lineLoc[addr]; ok && loc == local {
		return // the primary itself lives in the requester's cluster
	}
	bit := uint16(1) << uint(local)
	if s.replicas[addr]&bit != 0 {
		return // already replicated (or replica in flight)
	}
	s.replicas[addr] |= bit
	s.M.Replications.Inc()
	p := s.Cfg.L2.PlaceOf(addr)
	s.send(s.Top.BankCoord(cl.id, p.Bank), &Msg{
		Kind: msgReplData, Cluster: local, Origin: cl.id, Addr: addr, ToCluster: true,
	})
}

// installReplica handles an arriving msgReplData at the requester's local
// cluster.
func (cl *Cluster) installReplica(m *Msg) {
	s := cl.sys
	bit := uint16(1) << uint(cl.id)
	p := s.Cfg.L2.PlaceOf(m.Addr)
	set := cl.set(p)
	if _, ok := set.Lookup(p.Tag); ok {
		// The line arrived here by other means (migration or a racing
		// fill); the replica is redundant.
		s.replicas[m.Addr] &^= bit
		s.cleanReplicaMask(m.Addr)
		return
	}
	_, displaced, hadDisplaced, ok := set.InsertReplica(p.Tag)
	if !ok {
		// Every way holds an authoritative line; replication loses.
		s.replicas[m.Addr] &^= bit
		s.cleanReplicaMask(m.Addr)
		return
	}
	if hadDisplaced && displaced.Replica {
		old := s.Cfg.L2.LineOf(cache.Place{Bank: p.Bank, Set: p.Set, Tag: displaced.Tag})
		s.dropReplicaState(old, cl.id, displaced)
	}
	cl.banks[p.Bank].Writes++
	cl.emitBank(obs.EvBankWrite, p.Bank, m.Addr)
}

// invalidateReplicas sends drop messages to every cluster holding a replica
// of addr, except the given cluster (-1 for none). Called by the primary on
// exclusive access and by the memory path before a fresh install.
func (s *System) invalidateReplicas(addr cache.LineAddr, from geom.Coord, except int) {
	mask := s.replicas[addr]
	if mask == 0 {
		return
	}
	for cl := 0; cl < s.Top.NumClusters(); cl++ {
		if mask&(1<<uint(cl)) == 0 || cl == except {
			continue
		}
		s.M.ReplicaInvals.Inc()
		s.send(from, &Msg{Kind: msgReplInval, Cluster: cl, Addr: addr, ToCluster: true})
	}
	if except >= 0 {
		s.replicas[addr] = mask & (1 << uint(except))
	} else {
		delete(s.replicas, addr)
	}
}

// dropReplica handles an arriving msgReplInval: remove the local replica
// and invalidate the L1s that read through it.
func (cl *Cluster) dropReplica(m *Msg) {
	s := cl.sys
	p := s.Cfg.L2.PlaceOf(m.Addr)
	set := cl.set(p)
	way, ok := set.Lookup(p.Tag)
	if !ok {
		return
	}
	e := set.Way(way)
	if !e.Replica {
		return // the primary migrated here meanwhile; leave it alone
	}
	s.dropReplicaL1Sharers(m.Addr, cl, *e)
	set.Invalidate(p.Tag)
}

// dropReplicaState clears bookkeeping for a replica displaced by another
// replica's insertion, including its L1 sharers.
func (s *System) dropReplicaState(addr cache.LineAddr, cluster int, e cache.Entry) {
	s.replicas[addr] &^= 1 << uint(cluster)
	s.cleanReplicaMask(addr)
	s.dropReplicaL1Sharers(addr, s.Clusters[cluster], e)
}

// dropReplicaL1Sharers back-invalidates L1 copies served through a replica.
func (s *System) dropReplicaL1Sharers(addr cache.LineAddr, cl *Cluster, e cache.Entry) {
	for c := range s.CPUs {
		if e.Sharers&(1<<uint(c)) == 0 {
			continue
		}
		s.M.BackInvals.Inc()
		s.send(cl.center, &Msg{Kind: msgInval, CPU: c, Cluster: cl.id, Addr: addr})
	}
}

// cleanReplicaMask removes empty mask entries to keep the map compact.
func (s *System) cleanReplicaMask(addr cache.LineAddr) {
	if s.replicas[addr] == 0 {
		delete(s.replicas, addr)
	}
}
