package core

import (
	"math/rand"
	"sort"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Warm installs the steady state the paper reaches with its 500M-cycle
// cache warm-up (plus billions of fast-forward cycles), compressed into a
// direct fill so measurement windows start representative:
//
//   - each core's hot set sits in its L1 (Modified) and its local cluster;
//   - the shared region sits at its home clusters (contended lines have no
//     stable owner to migrate toward);
//   - for migrating schemes, a benchmark-dependent fraction of each core's
//     private lines has been pulled into the core's vicinity (Profile
//     .LocalizedFrac): the local cluster, then the nearest processor-free
//     clusters. On a 3D chip the vicinity holds twice the capacity (Figure
//     8's cylinder) and migration paths are half as long, so the
//     un-localized fraction squares. Lines whose home layer differs from
//     the core's stay on their own layer near the core's pillar, exactly
//     where the inter-layer migration policy (Section 4.2.3) would leave
//     them;
//   - for the static scheme every line sits at its home cluster.
//
// Warm never evicts: lines that find no free way stay uncached and fault in
// on demand. The fill is deterministic in the seed.
func (s *System) Warm(seed uint64) {
	if len(s.profs) == 0 {
		return // stream-driven system: use WarmAddresses instead
	}
	rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 1))

	// homeChains[h] is the placement order for a line whose home is cluster
	// h: the home itself, then same-layer clusters by distance (processor
	// clusters last) — the spill pattern insert-time evictions produce.
	// A static NUCA can only ever look at the home cluster, so for
	// non-migrating schemes the chain is the home alone: lines that do not
	// fit stay uncached and contend at the home sets on demand, exactly as
	// the real scheme would behave.
	homeChains := make([][]int, s.Top.NumClusters())
	for h := range homeChains {
		if s.Cfg.Scheme.Migrates() {
			homeChains[h] = s.spillChain(h)
		} else {
			homeChains[h] = []int{h}
		}
	}
	// vicinity chains depend only on (cpu, layer); memoize across the
	// millions of per-line placements.
	vicinity := make(map[[2]int][]int)
	chainFor := func(cpu, layer int) []int {
		key := [2]int{cpu, layer}
		if c, ok := vicinity[key]; ok {
			return c
		}
		c := s.vicinityChain(cpu, layer)
		vicinity[key] = c
		return c
	}

	// Shared data and code regions at home clusters, once per distinct
	// program instance (a multiprogrammed mix has several).
	seen := map[int]bool{}
	for _, p := range s.profs {
		if seen[p.Instance] {
			continue
		}
		seen[p.Instance] = true
		code := p.CodeRegion()
		for i := 0; i < code.Len(); i++ {
			addr := code.Line(i)
			home := s.Cfg.L2.PlaceOf(addr).HomeCluster
			s.warmPlace(addr, homeChains[home], 0, false, -1, 0)
		}
		shared := p.SharedRegion()
		for i := 0; i < shared.Len(); i++ {
			addr := shared.Line(i)
			home := s.Cfg.L2.PlaceOf(addr).HomeCluster
			s.warmPlace(addr, homeChains[home], 0, false, -1, 0)
		}
	}

	// localizedFor converts a profile's 2D localization fraction to the
	// scheme's steady state.
	localizedFor := func(p trace.Profile) float64 {
		localized := p.LocalizedFrac
		switch {
		case !s.Cfg.Scheme.Migrates():
			return 0
		case s.Cfg.Scheme.Is3D():
			// Double vicinity capacity (Figure 8's cylinder), half-length
			// migration paths, and proportionally less
			// eviction-before-arrival churn: each factor multiplies a
			// remote line's chance of staying remote, cubing the
			// un-localized fraction.
			rem := 1 - localized
			return 1 - rem*rem*rem
		case s.Cfg.Scheme.PerfectSearch():
			// Edge-placed baseline: half-disc vicinity and longer
			// migration paths across the full 2D grid localize a quarter
			// as much.
			return localized * 0.25
		}
		return localized
	}

	l1iLines := s.Cfg.L1Sets * s.Cfg.L1Ways * 3 / 4
	for id, c := range s.CPUs {
		p := s.profs[id]

		// Instruction cache preload: the hot code footprint only — the
		// cold tail must stay L1I-absent so the calibrated cold-fetch
		// traffic (IFetchShare) reaches the L2 from the first cycle.
		code := p.CodeRegion()
		for i := 0; i < p.CodeLines && i < l1iLines; i++ {
			c.l1i.install(code.Line(i), false)
		}

		// Hot set: L1 Modified plus the L2 copy in the core's vicinity
		// (home cluster for the static scheme, which cannot move lines).
		hot := p.HotRegion(id)
		for i := 0; i < hot.Len(); i++ {
			addr := hot.Line(i)
			c.l1.install(addr, true)
			chain := []int{s.Cfg.L2.PlaceOf(addr).HomeCluster}
			if s.Cfg.Scheme.Migrates() {
				chain = chainFor(id, c.pos.Layer)
			}
			s.warmPlace(addr, chain, 1<<uint(id), true, int8(id), 0)
		}

		// Private streaming region. Un-localized lines are mid-migration in
		// steady state: their counters sit one hit below the threshold, so
		// the next touch takes a migration step, reproducing the continuous
		// migration activity Figure 14 measures.
		pending := uint8(0)
		if s.Cfg.Scheme.Migrates() && s.Cfg.MigrationThreshold > 0 {
			pending = uint8(s.Cfg.MigrationThreshold - 1)
		}
		localized := localizedFor(p)
		for i := 0; i < p.PrivateLines; i++ {
			addr := p.StreamLine(id, i)
			home := s.Cfg.L2.PlaceOf(addr).HomeCluster
			chain := homeChains[home]
			hits := pending
			if rng.Float64() < localized {
				chain = chainFor(id, s.Top.ClusterLayer(home))
				hits = 0 // settled lines are not mid-migration
			}
			s.warmPlace(addr, chain, 0, false, int8(id), hits)
		}
	}
}

// WarmAddresses installs the given lines at their home clusters (with the
// scheme's spill behavior) — the warm-up path for stream-driven systems,
// whose footprints come from the trace rather than a profile.
func (s *System) WarmAddresses(addrs []cache.LineAddr) {
	homeChains := make([][]int, s.Top.NumClusters())
	for h := range homeChains {
		if s.Cfg.Scheme.Migrates() {
			homeChains[h] = s.spillChain(h)
		} else {
			homeChains[h] = []int{h}
		}
	}
	for _, addr := range addrs {
		home := s.Cfg.L2.PlaceOf(addr).HomeCluster
		s.warmPlace(addr, homeChains[home], 0, false, -1, 0)
	}
}

// spillChain orders the clusters of a home cluster's layer for placing
// un-migrated lines: the home first, then by distance from it, preferring
// processor-free clusters — the distribution that insert-time eviction
// pressure produces around a hot home cluster.
func (s *System) spillChain(home int) []int {
	t := s.Top
	layer := t.ClusterLayer(home)
	per := t.ClustersPerLayer()
	center := t.ClusterCenter(home)
	type entry struct {
		id, dist int
		hasCPU   bool
	}
	entries := make([]entry, 0, per)
	for i := 0; i < per; i++ {
		id := layer*per + i
		entries = append(entries, entry{
			id:     id,
			dist:   center.ManhattanXY(t.ClusterCenter(id)),
			hasCPU: s.clusterCPU[id] >= 0,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.id == home != (b.id == home) {
			return a.id == home
		}
		if a.hasCPU != b.hasCPU {
			return !a.hasCPU
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		return a.id < b.id
	})
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// warmPlace installs a line into the first cluster in the preference chain
// with a free way, without evicting. Already-placed lines are left alone.
func (s *System) warmPlace(addr cache.LineAddr, chain []int, sharers uint16, dirty bool, lastCPU int8, hits uint8) {
	if _, ok := s.lineLoc[addr]; ok {
		return
	}
	p := s.Cfg.L2.PlaceOf(addr)
	for _, cl := range chain {
		set := s.Clusters[cl].set(p)
		if way, ok := set.InsertFree(p.Tag); ok {
			e := set.Way(way)
			e.Sharers = sharers
			e.Dirty = dirty
			e.LastCPU = lastCPU
			e.Hits = hits
			s.lineLoc[addr] = cl
			return
		}
	}
}

// vicinityChain ranks the clusters of one layer by effective hop distance
// from a CPU (through the CPU's pillar when the layer differs), excluding
// clusters that host other processors — the same exclusion the migration
// policy applies. If every cluster on the layer hosts a processor, the
// exclusion is dropped.
func (s *System) vicinityChain(cpu, layer int) []int {
	t := s.Top
	pos := t.CPUs[cpu]
	pillar := t.PillarOf(pos)
	type entry struct{ id, dist int }
	var all, free []entry
	per := t.ClustersPerLayer()
	for i := 0; i < per; i++ {
		id := layer*per + i
		center := t.ClusterCenter(id)
		var d int
		if layer == pos.Layer {
			d = pos.ManhattanXY(center)
		} else {
			d = pos.HopsVia(center, pillar)
		}
		e := entry{id, d}
		all = append(all, e)
		if owner := s.clusterCPU[id]; owner < 0 || owner == cpu {
			free = append(free, e)
		}
	}
	chain := free
	if len(chain) == 0 {
		chain = all
	}
	sort.Slice(chain, func(i, j int) bool {
		if chain[i].dist != chain[j].dist {
			return chain[i].dist < chain[j].dist
		}
		return chain[i].id < chain[j].id
	})
	out := make([]int, len(chain))
	for i, e := range chain {
		out[i] = e.id
	}
	return out
}
