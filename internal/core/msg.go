package core

import (
	"repro/internal/cache"
	"repro/internal/noc"
	"repro/internal/obs"
)

// msgKind enumerates the protocol messages that ride the network.
type msgKind uint8

const (
	// msgProbeRead asks a cluster's tag array for a line; a hit returns the
	// data, a miss returns a nack.
	msgProbeRead msgKind = iota
	// msgProbeExcl is a read-for-ownership: on a hit the directory
	// invalidates every other sharer before returning the data.
	msgProbeExcl
	// msgNack reports a tag-array miss back to the requesting CPU.
	msgNack
	// msgData carries a cache line to the requesting CPU (4 flits).
	msgData
	// msgInval tells a CPU's L1 to drop a line (directory invalidation or
	// L2 back-invalidation on eviction).
	msgInval
	// msgInvalAck acknowledges an invalidation to the directory cluster.
	msgInvalAck
	// msgMigData carries a migrating line to its new cluster (4 flits).
	msgMigData
	// msgMigInval retires the old copy after a lazy migration completes.
	msgMigInval
	// msgMemReq carries an off-chip fetch request to a memory controller
	// at the chip edge; the DRAM access latency is paid there.
	msgMemReq
	// msgReplData carries a read-only replica of a line toward the
	// requester's local cluster (victim-replication extension, 4 flits).
	msgReplData
	// msgReplInval drops a replica when the line is written or refetched.
	msgReplInval
)

// String names the message kind.
func (k msgKind) String() string {
	switch k {
	case msgProbeRead:
		return "ProbeRead"
	case msgProbeExcl:
		return "ProbeExcl"
	case msgNack:
		return "Nack"
	case msgData:
		return "Data"
	case msgInval:
		return "Inval"
	case msgInvalAck:
		return "InvalAck"
	case msgMigData:
		return "MigData"
	case msgMigInval:
		return "MigInval"
	case msgMemReq:
		return "MemReq"
	case msgReplData:
		return "ReplData"
	case msgReplInval:
		return "ReplInval"
	}
	return "Unknown"
}

// flits returns the packet length for the message kind: data-bearing
// messages carry a full 64-byte line (4 flits, Table 4); control messages
// are a single flit.
func (k msgKind) flits() int {
	if k == msgData || k == msgMigData || k == msgReplData {
		return noc.DataPacketFlits
	}
	return noc.ControlPacketFlits
}

// Msg is the network payload of every protocol packet.
type Msg struct {
	Kind msgKind
	// Txn identifies the transaction a probe/nack/data belongs to.
	Txn uint64
	// CPU is the requesting CPU for probes, or the target CPU for
	// CPU-addressed messages.
	CPU int
	// Cluster is the target cluster for cluster-addressed messages and the
	// responding cluster in replies.
	Cluster int
	// Origin is the cluster a migrating line departs from (MigData only).
	Origin int
	// Addr is the cache line concerned.
	Addr cache.LineAddr
	// ToCluster selects the receiver side the dispatcher hands this to.
	ToCluster bool
	// ToMem routes the message to a memory controller; MemCtrl selects it.
	ToMem   bool
	MemCtrl int
	// FromMemory marks data served by an off-chip fetch (an L2 miss).
	FromMemory bool
	// Sharers and Dirty carry directory state alongside a migrating line.
	Sharers uint16
	Dirty   bool

	// chain, when span tracing is attached, is the ledger of the
	// request/serve/reply attempt this message belongs to. Probes carry it
	// out, the in-place data-reply mutation carries it home, and the
	// winning attempt is folded into the transaction's span on completion.
	// Nil on every message when tracing is off.
	chain *obs.ChainSpan
}
