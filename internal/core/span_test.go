package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runSpans runs one warm + measure window with span tracing attached for
// the measurement phase and returns the recorder and results.
func runSpans(t *testing.T, cfg config.Config, skip bool) (*obs.SpanRecorder, Results) {
	t.Helper()
	prof, ok := trace.ProfileByName("mgrid", cfg.NumCPUs)
	if !ok {
		t.Fatal("profile missing")
	}
	s, err := NewSystem(cfg, prof, 11)
	if err != nil {
		t.Fatal(err)
	}
	s.Engine.SetIdleSkip(skip)
	// Attach before warmup so transactions in flight across the stats reset
	// carry spans; ResetStats resets the recorder too, so the traced set is
	// exactly the set the measured means cover.
	rec := s.AttachSpans()
	s.Warm(11)
	s.Start()
	s.Run(5_000)
	s.ResetStats()
	s.Run(30_000)
	return rec, s.Results()
}

// TestSpanConservation is the breakdown's core guarantee: for every traced
// transaction — hits, misses, and NACK/retry paths alike, in all four
// schemes plus the victim-replication and broadcast-search variants — the
// component spans are mutually exclusive and collectively exhaustive, so
// their sum equals the end-to-end latency the system measures. The recorder
// checks each transaction as it finishes; here we assert zero violations
// and that the aggregate means re-add to the measured means.
func TestSpanConservation(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() config.Config
	}{
		{"CMP-DNUCA", func() config.Config { return config.Default(config.CMPDNUCA) }},
		{"CMP-DNUCA-2D", func() config.Config { return config.Default(config.CMPDNUCA2D) }},
		{"CMP-SNUCA-3D", func() config.Config { return config.Default(config.CMPSNUCA3D) }},
		{"CMP-DNUCA-3D", func() config.Config { return config.Default(config.CMPDNUCA3D) }},
		{"CMP-SNUCA-3D+VR", func() config.Config {
			c := config.Default(config.CMPSNUCA3D)
			c.VictimReplication = true
			return c
		}},
		{"CMP-DNUCA-3D+broadcast", func() config.Config {
			c := config.Default(config.CMPDNUCA3D)
			c.BroadcastSearch = true
			return c
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec, r := runSpans(t, tc.cfg(), true)
			if n, first := rec.Mismatches(); n != 0 {
				t.Fatalf("%d conservation violations; first: %s", n, first)
			}
			if rec.Finished() == 0 {
				t.Fatal("no transactions traced")
			}
			bd := r.Breakdown
			if bd == nil {
				t.Fatal("Results.Breakdown not populated")
			}
			if bd.Hits.Transactions == 0 || bd.Misses.Transactions == 0 {
				t.Fatalf("want both hits and misses traced, got %d hits %d misses",
					bd.Hits.Transactions, bd.Misses.Transactions)
			}
			// The per-class component means must re-add to the measured
			// end-to-end means (the aggregate face of per-txn conservation).
			check := func(class string, cb obs.ClassBreakdown, measured float64) {
				var sum float64
				for _, c := range cb.Components {
					if c.Name == "l1" {
						continue // pre-issue, excluded by design
					}
					sum += c.Mean
				}
				if math.Abs(sum-cb.MeanTotal) > 1e-6 {
					t.Errorf("%s: component means sum to %.6f, class mean %.6f",
						class, sum, cb.MeanTotal)
				}
				if math.Abs(cb.MeanTotal-measured) > 1e-6 {
					t.Errorf("%s: breakdown mean %.6f != measured mean %.6f",
						class, cb.MeanTotal, measured)
				}
			}
			check("hits", bd.Hits, r.AvgL2HitLatency)
			check("misses", bd.Misses, r.AvgL2MissLatency)
		})
	}
}

// TestSpanRetryPathsCovered pins that the conservation suite actually
// exercises the NACK/retry machinery it claims to cover: under migration
// the baseline's location-map retries and the dynamic schemes' phase-2
// searches must occur in the measurement window.
func TestSpanRetryPathsCovered(t *testing.T) {
	rec, r := runSpans(t, config.Default(config.CMPDNUCA3D), true)
	if n, first := rec.Mismatches(); n != 0 {
		t.Fatalf("%d conservation violations; first: %s", n, first)
	}
	if r.Step2Searches == 0 {
		t.Error("no phase-2 searches in window; retry coverage not exercised")
	}
	comp := func(cb obs.ClassBreakdown, name string) float64 {
		for _, c := range cb.Components {
			if c.Name == name {
				return c.Mean
			}
		}
		t.Fatalf("component %q missing", name)
		return 0
	}
	if comp(r.Breakdown.Hits, "search1") == 0 && comp(r.Breakdown.Misses, "search1") == 0 {
		t.Error("search1 component empty despite two-step searching")
	}
	if comp(r.Breakdown.Misses, "dram") == 0 {
		t.Error("dram component empty for misses")
	}
}

// TestSpanSkipEquivalence proves span tracing preserves the idle-skip
// contract: a traced run with fast-forwarding produces the identical
// breakdown (and identical results) to one stepping every cycle, and the
// fabric still reports idle with a recorder attached.
func TestSpanSkipEquivalence(t *testing.T) {
	cfg := config.Default(config.CMPDNUCA3D)
	_, skipped := runSpans(t, cfg, true)
	_, stepped := runSpans(t, cfg, false)
	if !reflect.DeepEqual(skipped.Breakdown, stepped.Breakdown) {
		t.Errorf("idle skipping changed the breakdown:\n skip: %+v\n step: %+v",
			skipped.Breakdown, stepped.Breakdown)
	}
	skipped.Breakdown, stepped.Breakdown = nil, nil
	if skipped != stepped {
		t.Errorf("idle skipping changed results:\n skip: %+v\n step: %+v", skipped, stepped)
	}

	// A quiescent fabric must stay idle-skippable with spans attached.
	prof, _ := trace.ProfileByName("mgrid", cfg.NumCPUs)
	s, err := NewSystem(cfg, prof, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Fab.Idle() {
		t.Fatal("fresh fabric not idle")
	}
	s.AttachSpans()
	if !s.Fab.Idle() {
		t.Error("attaching spans disabled idle-cycle skipping")
	}
}
