package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/digest"
	"repro/internal/dtm"
	"repro/internal/fabric"
	"repro/internal/geom"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Metrics aggregates the simulator's measurements. HitLatency is the
// paper's headline metric: request issue to data arrival for L2 hits.
type Metrics struct {
	L2Accesses    stats.Counter
	L2Hits        stats.Counter
	L2Misses      stats.Counter
	Migrations    stats.Counter
	Invalidations stats.Counter
	InvalAcks     stats.Counter
	BackInvals    stats.Counter
	Evictions     stats.Counter
	MemReads      stats.Counter
	MemWrites     stats.Counter
	ProbesSent    stats.Counter
	Step2Searches stats.Counter
	Replications  stats.Counter
	ReplicaHits   stats.Counter
	ReplicaInvals stats.Counter

	HitLatency  stats.Latency
	MissLatency stats.Latency

	// Per-address-class hit latencies: the private working sets, the
	// shared data region, and instruction (code) lines. Filled only for
	// profile-driven runs (streams carry no region information).
	PrivateHitLatency stats.Latency
	SharedHitLatency  stats.Latency
	CodeHitLatency    stats.Latency

	// HitHist buckets L2 hit latencies (4-cycle buckets up to 256 cycles)
	// for tail-latency reporting.
	HitHist *stats.Histogram
}

// Reset zeroes every metric (used to discard warm-up).
func (m *Metrics) Reset() {
	*m = Metrics{HitHist: stats.NewHistogram(64, 4)}
}

// txn is one outstanding L2 transaction: a blocking load or a background
// exclusive (store/upgrade) request.
type txn struct {
	id       uint64
	cpu      *CPU
	addr     cache.LineAddr
	excl     bool
	issued   uint64
	step     int
	pending  int
	probed   uint64 // bitmask of clusters already probed
	retries  int
	afterMem bool
	ifetch   bool // instruction fetch: fills the L1I instead of the L1D
	memCtrl  int  // controller serving the off-chip fetch; -1 before one is chosen

	// span is the transaction's component ledger when span tracing is
	// attached (nil otherwise); chain parks the memory-request attempt's
	// ledger between the controller delivery and the data reply.
	span  *obs.TxnSpan
	chain *obs.ChainSpan
}

// System is the complete simulated machine: cores, L1s, the clustered NUCA
// L2, the 3D fabric, and the off-chip memory model.
type System struct {
	Cfg    config.Config
	Top    *config.Topology
	Engine *sim.Engine
	Fab    *fabric.Fabric

	CPUs     []*CPU
	Clusters []*Cluster
	M        Metrics

	Benchmark string
	// profs holds the per-core workload profiles (all identical for a
	// parallel run, distinct for multiprogrammed mixes, empty when the
	// cores replay external trace streams).
	profs []trace.Profile

	// lineLoc is the global line-location map. The paper's CMP-DNUCA
	// baseline uses it directly ("perfect search"); the other schemes use
	// it only to preserve the single-copy invariant on the memory path.
	lineLoc map[cache.LineAddr]int

	txns       map[uint64]*txn
	nextTxn    uint64
	clusterCPU []int

	// memCtrls are the chip-edge memory controller positions (layer 0).
	memCtrls []geom.Coord

	// replicas maps a line to the bitmask of clusters holding read-only
	// replicas of it (victim-replication extension).
	replicas map[cache.LineAddr]uint16

	// probe, when non-nil, receives migration, MSI coherence, and cache
	// SRAM events (the network layers hold their own copy via
	// Fab.SetProbe). Nil by default; see AttachProbe. When both a tracer
	// and the thermal pipeline are attached, the probe tees into both
	// sinks (traceSink and thermalT compose through refreshProbe).
	obsProbe  *obs.Probe
	traceSink obs.Sink
	thermalT  *obs.ThermalTracker

	// dtm, when non-nil, is the attached dynamic-thermal-management
	// controller (see AttachDTM): the migration, bank-access, CPU-issue,
	// and pillar-selection paths consult it, each behind a single nil
	// check so an unmanaged run pays nothing.
	dtm *dtm.Controller

	// spans, when non-nil, records per-transaction latency spans; see
	// AttachSpans. Unlike obsProbe it is not a fabric probe and registers
	// no tickers, so idle-cycle skipping stays engaged.
	spans *obs.SpanRecorder

	// statsReg is the lazily built counter registry over the live Metrics
	// fields and fabric traffic counters; see StatsRegistry.
	statsReg *stats.Set

	// shardsWanted is the shard count requested via SetShards; the count
	// actually in force also depends on the attachments that require a
	// global cycle order (see applySharding).
	shardsWanted int

	// digestRec, when non-nil, is the attached state-digest recorder
	// (see AttachDigest): a periodic ticker folding every subsystem into
	// per-subsystem hash chains. A pure observer — it reads simulator
	// state and writes only its own arrays — so Results (minus the
	// Digests field itself) are bit-identical with it attached.
	digestRec *digest.Recorder

	// hostProf, when non-nil, is the host-side phase profiler (see
	// AttachProfile): wall-clock attribution across the loop's phases,
	// shard barrier telemetry, and throughput windows. Host-side only —
	// it never influences simulation state, so Results (minus the
	// Profile field itself) are bit-identical with it attached.
	hostProf *prof.Recorder

	baseCycle, baseInstr, baseFlitHops, baseBusFlits uint64
}

// NewSystem builds a machine for one configuration running one benchmark
// profile on every core. The seed makes the whole run deterministic.
func NewSystem(cfg config.Config, prof trace.Profile, seed uint64) (*System, error) {
	profs := make([]trace.Profile, cfg.NumCPUs)
	for i := range profs {
		profs[i] = prof
	}
	return NewSystemMixed(cfg, profs, seed)
}

// NewSystemMixed builds a multiprogrammed machine: core i runs profs[i].
// Each distinct profile name receives its own region namespace, so
// different programs' shared-data and code regions do not alias; cores
// running the same program share them.
func NewSystemMixed(cfg config.Config, profs []trace.Profile, seed uint64) (*System, error) {
	if len(profs) != cfg.NumCPUs {
		return nil, fmt.Errorf("core: %d profiles for %d CPUs", len(profs), cfg.NumCPUs)
	}
	instances := map[string]int{}
	names := map[string]bool{}
	var label []string
	for i := range profs {
		inst, ok := instances[profs[i].Name]
		if !ok {
			inst = len(instances)
			instances[profs[i].Name] = inst
		}
		profs[i].Instance = inst
		if !names[profs[i].Name] {
			names[profs[i].Name] = true
			label = append(label, profs[i].Name)
		}
	}
	s, err := newSystem(cfg, strings.Join(label, "+"))
	if err != nil {
		return nil, err
	}
	s.profs = profs
	for i := range s.CPUs {
		s.CPUs[i] = newCPU(s, i, trace.NewGenerator(profs[i], i, seed))
	}
	return s, nil
}

// NewSystemStreams builds a machine whose cores replay external reference
// streams (e.g. parsed trace files). Warm-up for streams goes through
// WarmAddresses, since no workload profile describes the footprint.
func NewSystemStreams(cfg config.Config, streams []trace.Stream, label string) (*System, error) {
	if len(streams) != cfg.NumCPUs {
		return nil, fmt.Errorf("core: %d streams for %d CPUs", len(streams), cfg.NumCPUs)
	}
	s, err := newSystem(cfg, label)
	if err != nil {
		return nil, err
	}
	for i := range s.CPUs {
		s.CPUs[i] = newCPU(s, i, streams[i])
	}
	return s, nil
}

// newSystem builds the machine skeleton: topology, network, clusters,
// memory controllers, and sinks. Cores are attached by the callers.
func newSystem(cfg config.Config, label string) (*System, error) {
	top, err := config.NewTopology(cfg)
	if err != nil {
		return nil, err
	}
	if top.NumClusters() > 64 {
		return nil, fmt.Errorf("core: %d clusters exceed the 64-cluster search limit", top.NumClusters())
	}
	mode := fabric.VerticalBus
	if cfg.VerticalNoC {
		mode = fabric.VerticalRouter
	}
	s := &System{
		Cfg:       cfg,
		Top:       top,
		Engine:    sim.NewEngine(),
		Fab:       fabric.NewWithVertical(top.Dim, top.Pillars, mode),
		Benchmark: label,
		lineLoc:   make(map[cache.LineAddr]int),
		txns:      make(map[uint64]*txn),
		replicas:  make(map[cache.LineAddr]uint16),
	}
	s.M.Reset()
	s.Fab.SetRouterPipeline(cfg.RouterPipeline)
	s.Engine.Register(s.Fab)
	s.clusterCPU = top.ClustersWithCPUs()
	s.memCtrls = placement.Edge(top.Dim, cfg.MemControllers)

	s.Clusters = make([]*Cluster, top.NumClusters())
	for i := range s.Clusters {
		s.Clusters[i] = newCluster(i, s)
	}
	s.CPUs = make([]*CPU, cfg.NumCPUs)
	for i := 0; i < top.Dim.Nodes(); i++ {
		s.Fab.SetSink(top.Dim.CoordOf(i), s.deliver)
	}
	return s, nil
}

// Start begins execution on every core.
func (s *System) Start() {
	for _, c := range s.CPUs {
		c.start()
	}
}

// Run advances the machine by the given number of cycles.
func (s *System) Run(cycles uint64) { s.Engine.Run(cycles) }

// SetShards requests spatial domain decomposition of the network phase
// across n shards — one shard per contiguous block of device layers,
// ticked on its own goroutine with the dTDMA pillar crossings as the only
// inter-shard edges — and returns the shard count actually in force.
//
// The determinism contract: a sharded run is bit-identical to a serial
// run — the same Results, the same probe event sequence, the same
// config.CanonicalHash-keyed cache entry — for every scheme, with
// thermal, DTM, and sampling attached. Sharding is therefore purely a
// wall-clock knob. The contract is pinned by TestShardedDeterminism.
//
// n is clamped to the layer count. The system falls back to serial
// execution (returning 1) when n <= 1, on single-layer chips, in the
// VerticalNoC ablation (inter-layer router links break layer isolation),
// and while a tracer is attached (AttachTracer) — an attached tracer
// wants the global cycle order observable, and detaching it re-enables
// sharding. A system that ever sharded should be released with Close.
func (s *System) SetShards(n int) int {
	if n < 1 {
		n = 1
	}
	s.shardsWanted = n
	return s.applySharding()
}

// Shards returns the shard count currently in force (1 when serial).
func (s *System) Shards() int { return s.Fab.Shards() }

// Close releases the shard worker goroutines. Safe on a never-sharded
// system; idempotent.
func (s *System) Close() { s.Fab.Close() }

// applySharding reconciles the requested shard count with the
// attachments that force serial execution; refreshProbe re-runs it on
// every tracer change.
func (s *System) applySharding() int {
	want := s.shardsWanted
	if want > 1 && (s.traceSink != nil || s.Cfg.VerticalNoC) {
		want = 1
	}
	return s.Fab.SetShards(want)
}

// ResetStats discards everything measured so far (warm-up) while keeping
// all architectural state.
func (s *System) ResetStats() {
	s.M.Reset()
	s.baseCycle = s.Engine.Now()
	s.baseInstr = s.totalInstrs()
	s.baseFlitHops = s.Fab.FlitHops.Value()
	s.baseBusFlits = s.Fab.BusFlits()
	if s.spans != nil {
		s.spans.Reset()
	}
}

func (s *System) totalInstrs() uint64 {
	var n uint64
	for _, c := range s.CPUs {
		n += c.instrs
	}
	return n
}

// deliver is the single network sink: it dispatches by the message's
// addressing, so a node hosting both a CPU and a cluster controller (a CPU
// placed mid-cluster) demultiplexes correctly.
//
// Sharding invariant (load-bearing — see fabric.replayStaged): every
// synchronous send performed beneath deliver originates at the delivering
// node itself. Cluster and memory-controller handlers only schedule
// engine events; the CPU handler's immediate responses (probe reissue,
// second search step, memory fetch) all send from t.cpu.pos — the node
// that was just delivered to. A delivery therefore never mutates another
// router's same-cycle state, which is what lets the sharded fabric park
// ejections during the parallel router phase and replay them at the
// horizon barrier bit-identically. Any new synchronous send below this
// point must preserve that property (or schedule an event instead);
// TestShardedDeterminism is the tripwire.
func (s *System) deliver(p *noc.Packet, cycle uint64) {
	m := p.Payload.(*Msg)
	switch {
	case m.ToMem:
		s.memRequestArrived(m, cycle)
	case m.ToCluster:
		s.Clusters[m.Cluster].handle(m)
	default:
		s.CPUs[m.CPU].handle(m, cycle)
	}
}

// send routes a protocol message into the fabric. The destination node is
// derived from the message addressing: cluster messages go to the cluster's
// controller node, CPU messages to the CPU's node.
func (s *System) send(from geom.Coord, m *Msg) {
	var dst geom.Coord
	switch {
	case m.ToMem:
		dst = s.memCtrls[m.MemCtrl]
	case m.ToCluster:
		dst = s.Top.ClusterCenter(m.Cluster)
	default:
		dst = s.CPUs[m.CPU].pos
	}
	p := s.Fab.NewPacket()
	p.Src, p.Dst, p.Size, p.Payload = from, dst, m.Kind.flits(), m
	if m.chain != nil {
		if m.Kind == msgData {
			p.Span = &m.chain.Rep
		} else {
			p.Span = &m.chain.Req
		}
	}
	s.Fab.Send(p)
	if p.Span != nil {
		// The fabric stamps InjectedAt from its own clock, which lags the
		// engine by one cycle while events (bank completions, protocol
		// steps) are firing. The span ledger tiles engine-cycle windows, so
		// restamp with the true send cycle; non-traced packets keep the
		// fabric's stamp, leaving untraced runs bit-identical.
		p.InjectedAt = s.Engine.Now()
	}
}

// startIfetch opens an instruction-fetch transaction: a read whose
// completion fills the L1 instruction cache.
func (s *System) startIfetch(c *CPU, code cache.LineAddr) {
	s.startTxn(c, code, false)
	s.txns[s.nextTxn].ifetch = true
}

// startTxn opens an L2 transaction for a core and launches the scheme's
// location strategy: perfect search for the CMP-DNUCA baseline, the static
// home-cluster lookup for CMP-SNUCA-3D, or the two-step search of Section
// 4.2.1 for the paper's dynamic schemes.
func (s *System) startTxn(c *CPU, addr cache.LineAddr, excl bool) {
	s.nextTxn++
	t := &txn{id: s.nextTxn, cpu: c, addr: addr, excl: excl, issued: s.Engine.Now(), step: 1, memCtrl: -1}
	s.txns[t.id] = t
	s.M.L2Accesses.Inc()
	if s.spans != nil {
		t.span = s.spans.Begin(t.id, c.id, t.issued)
		if !excl {
			// Loads and instruction fetches paid the L1 lookup before the
			// transaction issued (stores pay nothing up front).
			s.spans.ChargeL1(t.span, uint64(s.Cfg.L1HitCycles))
		}
	}
	switch {
	case s.Cfg.Scheme.PerfectSearch():
		if loc, ok := s.lineLoc[addr]; ok {
			s.probe(t, loc)
		} else {
			s.memFetch(t)
		}
	case s.Cfg.Scheme == config.CMPSNUCA3D:
		home := s.Cfg.L2.PlaceOf(addr).HomeCluster
		if s.Cfg.VictimReplication && !excl && home != c.cluster {
			// SNUCA+VR reads probe the local cluster (replica check) and
			// the home cluster in parallel; a local replica answers first
			// and the duplicate home reply is dropped by the transaction
			// table.
			s.probe(t, c.cluster)
		}
		// Static NUCA: the authoritative copy is at the home cluster.
		s.probe(t, home)
	case s.Cfg.BroadcastSearch:
		// Search-policy ablation: probe every cluster at once. Finds
		// remote lines in one step at the cost of 16x probe traffic.
		for cl := 0; cl < s.Top.NumClusters(); cl++ {
			s.probe(t, cl)
		}
	default:
		s.searchStep1(t)
	}
}

// probe sends one tag probe. The requester's own cluster is reached through
// the direct CPU-to-tag-array connection (no network); all others receive a
// single-flit probe packet at their controller node.
func (s *System) probe(t *txn, cl int) {
	t.pending++
	t.probed |= 1 << uint(cl)
	s.M.ProbesSent.Inc()
	kind := msgProbeRead
	if t.excl {
		kind = msgProbeExcl
	}
	m := &Msg{Kind: kind, Txn: t.id, CPU: t.cpu.id, Cluster: cl, Addr: t.addr, ToCluster: true}
	if t.span != nil {
		// Every probe departs at the transaction span's current mark (the
		// issue cycle or a just-marked transition), so a winning chain folds
		// seamlessly onto the ledger.
		m.chain = s.spans.GetChain(s.Engine.Now())
	}
	if cl == t.cpu.cluster {
		s.Clusters[cl].serveDirect(m)
	} else {
		s.send(t.cpu.pos, m)
	}
}

// searchStep1 issues the first search step: the local cluster's tag array
// (direct), the in-layer neighboring clusters, and — through the pillar
// broadcast — the vertically neighboring clusters on other layers.
func (s *System) searchStep1(t *txn) {
	local := t.cpu.cluster
	s.probe(t, local)
	for _, nb := range s.Top.InLayerNeighbors(local) {
		s.probe(t, nb)
	}
	for _, vn := range s.Top.VerticalNeighbors(t.cpu.pos) {
		if t.probed&(1<<uint(vn)) == 0 {
			s.probe(t, vn)
		}
	}
}

// searchStep2 multicasts probes to every cluster not yet searched.
func (s *System) searchStep2(t *txn) {
	if t.span != nil {
		// The window since issue was the failed first search round.
		s.spans.Mark(t.span, obs.CompSearch1, s.Engine.Now())
	}
	t.step = 2
	s.M.Step2Searches.Inc()
	sent := false
	for cl := 0; cl < s.Top.NumClusters(); cl++ {
		if t.probed&(1<<uint(cl)) == 0 {
			s.probe(t, cl)
			sent = true
		}
	}
	if !sent {
		s.memFetch(t)
	}
}

// nack processes a tag-miss response. When the last outstanding probe of a
// step has missed, the transaction advances: step one to step two, step two
// to an off-chip fetch; the baseline retries through the location map.
func (s *System) nack(id uint64) {
	t, ok := s.txns[id]
	if !ok {
		return // transaction already completed by another copy
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	switch {
	case t.afterMem:
		// The post-fetch forward chased a line that moved again.
		if t.span != nil {
			s.spans.Mark(t.span, obs.CompRetry, s.Engine.Now())
		}
		s.memArrive(t)
	case s.Cfg.Scheme.PerfectSearch():
		if loc, ok := s.lineLoc[t.addr]; ok && t.retries < 4 {
			// The line migrated while the probe was in flight; the perfect
			// locator re-points us.
			t.retries++
			if t.span != nil {
				s.spans.Mark(t.span, obs.CompRetry, s.Engine.Now())
			}
			s.probe(t, loc)
		} else {
			s.memFetch(t)
		}
	case s.Cfg.Scheme == config.CMPSNUCA3D:
		home := s.Cfg.L2.PlaceOf(t.addr).HomeCluster
		if s.Cfg.VictimReplication && !t.excl && t.probed&(1<<uint(home)) == 0 {
			// The local replica check missed; try the home cluster.
			if t.span != nil {
				s.spans.Mark(t.span, obs.CompRetry, s.Engine.Now())
			}
			s.probe(t, home)
			return
		}
		s.memFetch(t)
	case t.step == 1:
		s.searchStep2(t)
	default:
		s.memFetch(t)
	}
}

// data completes a transaction when its line arrives at the core.
func (s *System) data(m *Msg, cycle uint64) {
	t, ok := s.txns[m.Txn]
	if !ok {
		// Duplicate reply from a lazily-migrated copy (or a replica racing
		// its home cluster); the losing attempt's ledger is discarded.
		if m.chain != nil {
			s.spans.PutChain(m.chain)
			m.chain = nil
		}
		return
	}
	delete(s.txns, m.Txn)
	lat := cycle - t.issued
	if t.span != nil {
		if m.chain != nil {
			// Fold the winning attempt; its reply leg ends right here.
			s.spans.FoldChain(t.span, m.chain, cycle)
			s.spans.PutChain(m.chain)
			m.chain = nil
		}
		if t.chain != nil {
			// A memory-request ledger superseded by a post-fetch forward.
			s.spans.PutChain(t.chain)
			t.chain = nil
		}
		s.spans.FinishTxn(t.span, lat, m.FromMemory)
		t.span = nil
	}
	if m.FromMemory {
		s.M.L2Misses.Inc()
		s.M.MissLatency.Observe(lat)
	} else {
		s.M.L2Hits.Inc()
		s.M.HitLatency.Observe(lat)
		s.M.HitHist.Observe(lat)
		s.classifyHit(t, lat)
	}
	switch {
	case t.ifetch:
		t.cpu.ifetchDone(t.addr)
	case t.excl:
		t.cpu.storeDone(t.addr)
	default:
		t.cpu.loadDone(t.addr)
	}
}

// classifyHit attributes a hit latency to the address class it served:
// shared data, code, or a private working set.
func (s *System) classifyHit(t *txn, lat uint64) {
	if len(s.profs) == 0 {
		return
	}
	p := s.profs[t.cpu.id]
	switch {
	case t.ifetch || p.CodeRegion().Contains(t.addr):
		s.M.CodeHitLatency.Observe(lat)
	case p.SharedRegion().Contains(t.addr):
		s.M.SharedHitLatency.Observe(lat)
	default:
		s.M.PrivateHitLatency.Observe(lat)
	}
}

// memFetch starts an off-chip access: a request packet travels to the
// nearest chip-edge memory controller, which pays the DRAM latency
// (Table 4: 260 cycles) and returns the line over the network.
func (s *System) memFetch(t *txn) {
	s.M.MemReads.Inc()
	t.memCtrl = s.nearestMemCtrl(t.cpu.pos)
	m := &Msg{
		Kind: msgMemReq, Txn: t.id, CPU: t.cpu.id, Addr: t.addr,
		ToMem: true, MemCtrl: t.memCtrl,
	}
	if t.span != nil {
		// Attribute the failed window that led here: a phase-2 round that
		// came up empty, a NACKed retry, or the first (and only) search
		// round. The perfect-search baseline has no search phases — its
		// failed probes are retries by definition.
		c := obs.CompSearch1
		switch {
		case t.step == 2:
			c = obs.CompSearch2
		case t.retries > 0 || s.Cfg.Scheme.PerfectSearch():
			c = obs.CompRetry
		}
		now := s.Engine.Now()
		s.spans.Mark(t.span, c, now)
		m.chain = s.spans.GetChain(now)
	}
	s.send(t.cpu.pos, m)
}

// nearestMemCtrl picks the controller with the fewest network hops from a
// node, using the node's pillar for cross-layer distance.
func (s *System) nearestMemCtrl(from geom.Coord) int {
	pillar := s.Top.PillarOf(from)
	best, bestD := 0, 1<<30
	for i, c := range s.memCtrls {
		if d := from.HopsVia(c, pillar); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// memRequestArrived runs at the controller: pay the DRAM latency, then
// complete the fetch.
func (s *System) memRequestArrived(m *Msg, cycle uint64) {
	t, ok := s.txns[m.Txn]
	if !ok {
		if m.chain != nil {
			s.spans.PutChain(m.chain)
			m.chain = nil
		}
		return // transaction completed while the request was in flight
	}
	if t.span != nil && m.chain != nil {
		// The request leg ends at the controller; park the ledger on the
		// transaction so the data reply can reuse its reply leg.
		s.spans.FoldNet(t.span, &m.chain.Req, cycle)
		m.chain.Req = obs.PacketSpan{}
		t.chain = m.chain
		m.chain = nil
	}
	s.Engine.AfterEvent(uint64(s.Cfg.MemoryCycles), s, evMemArrive, t)
}

// memArrive completes an off-chip fetch. If the line appeared in the L2
// while the fetch was in flight (a racing fill or an in-flight search that
// lost to a migration), the fill is dropped and the request forwarded to
// the resident copy — preserving the single-copy invariant. Otherwise the
// line installs at its home cluster (the placement policy: low-order tag
// bits) and the data travels from the home bank to the core.
func (s *System) memArrive(t *txn) {
	if _, live := s.txns[t.id]; !live {
		return // completed while the fetch was in flight
	}
	if loc, ok := s.lineLoc[t.addr]; ok {
		if t.chain != nil {
			// The fill is dropped, so the memory attempt's ledger is done;
			// the forwarded probe opens its own.
			s.spans.PutChain(t.chain)
			t.chain = nil
		}
		t.afterMem = true
		s.probe(t, loc)
		return
	}
	t.afterMem = false
	home := s.Cfg.L2.PlaceOf(t.addr).HomeCluster
	cl := s.Clusters[home]
	if s.obsProbe != nil {
		c := cl.center
		s.obsProbe.Emit(obs.Event{
			Cycle: s.Engine.Now(), Kind: obs.EvCohFill,
			X: c.X, Y: c.Y, Layer: c.Layer,
			ID: uint64(t.addr), A: uint64(home),
		})
	}
	// Any surviving replicas are stale relative to the fresh fill.
	s.invalidateReplicas(t.addr, s.memCtrls[maxInt(t.memCtrl, 0)], -1)
	cl.install(t.addr, 1<<uint(t.cpu.id), t.excl)
	// The line enters the home bank while a copy travels from the serving
	// memory controller to the requesting core (evMemData recomputes the
	// serving controller and home cluster from the transaction).
	s.Engine.AfterEvent(uint64(s.Cfg.L2BankCycles), s, evMemData, t)
}

// Results summarizes a measurement window (since the last ResetStats).
type Results struct {
	Scheme    string
	Benchmark string

	Cycles       uint64
	Instructions uint64
	IPC          float64

	L2Accesses       uint64
	L2Hits           uint64
	L2Misses         uint64
	AvgL2HitLatency  float64
	AvgL2MissLatency float64
	// Per-class mean hit latencies (0 when the class saw no hits or the
	// run is stream-driven).
	AvgPrivateHitLatency float64
	AvgSharedHitLatency  float64
	AvgCodeHitLatency    float64
	P50L2HitLatency      uint64
	P95L2HitLatency      uint64
	P99L2HitLatency      uint64

	Migrations    uint64
	Invalidations uint64
	BackInvals    uint64
	Evictions     uint64
	MemReads      uint64
	MemWrites     uint64
	ProbesSent    uint64
	Step2Searches uint64
	Replications  uint64
	ReplicaHits   uint64
	ReplicaInvals uint64
	FlitHops      uint64
	BusFlits      uint64

	// Breakdown is the per-component latency decomposition, filled only
	// when span tracing was attached (see AttachSpans); nil otherwise.
	Breakdown *obs.BreakdownReport `json:",omitempty"`

	// Thermal is the run-level activity-driven thermal report, filled
	// only when the thermal pipeline was attached (see AttachThermal);
	// nil otherwise.
	Thermal *obs.ThermalReport `json:",omitempty"`

	// DTM is the dynamic-thermal-management summary — trip engagements,
	// per-actuator counts, and their latency cost — filled only when a
	// DTM controller was attached (see AttachDTM); nil otherwise.
	DTM *dtm.Report `json:",omitempty"`

	// Profile is the host-side flight-recorder readout — per-phase
	// wall-clock shares, shard barrier-wait, throughput windows — filled
	// only when the profiler was attached (see AttachProfile); nil
	// otherwise. Unlike every other field it describes the simulator,
	// not the simulated chip, and is therefore host- and load-dependent:
	// comparisons must strip it first (TestProfileDoesNotPerturb does).
	Profile *prof.Report `json:",omitempty"`

	// Digests is the state-digest summary — the final run-attesting
	// digest plus per-subsystem chain values — filled only when a digest
	// recorder was attached (see AttachDigest); nil otherwise. The
	// digests describe simulator state exactly, so they are themselves
	// deterministic, but a detached run has none: bit-identity
	// comparisons against detached runs must strip the field first
	// (TestDigestDoesNotPerturb does, like Profile).
	Digests *digest.Report `json:",omitempty"`
}

// Results reads out the current measurement window.
func (s *System) Results() Results {
	cycles := s.Engine.Now() - s.baseCycle
	instrs := s.totalInstrs() - s.baseInstr
	r := Results{
		Scheme:               s.Cfg.Scheme.String(),
		Benchmark:            s.Benchmark,
		Cycles:               cycles,
		Instructions:         instrs,
		L2Accesses:           s.M.L2Accesses.Value(),
		L2Hits:               s.M.L2Hits.Value(),
		L2Misses:             s.M.L2Misses.Value(),
		AvgL2HitLatency:      s.M.HitLatency.Mean(),
		AvgL2MissLatency:     s.M.MissLatency.Mean(),
		AvgPrivateHitLatency: s.M.PrivateHitLatency.Mean(),
		AvgSharedHitLatency:  s.M.SharedHitLatency.Mean(),
		AvgCodeHitLatency:    s.M.CodeHitLatency.Mean(),
		P50L2HitLatency:      s.M.HitHist.Percentile(50),
		P95L2HitLatency:      s.M.HitHist.Percentile(95),
		P99L2HitLatency:      s.M.HitHist.Percentile(99),
		Migrations:           s.M.Migrations.Value(),
		Invalidations:        s.M.Invalidations.Value(),
		BackInvals:           s.M.BackInvals.Value(),
		Evictions:            s.M.Evictions.Value(),
		MemReads:             s.M.MemReads.Value(),
		MemWrites:            s.M.MemWrites.Value(),
		ProbesSent:           s.M.ProbesSent.Value(),
		Step2Searches:        s.M.Step2Searches.Value(),
		Replications:         s.M.Replications.Value(),
		ReplicaHits:          s.M.ReplicaHits.Value(),
		ReplicaInvals:        s.M.ReplicaInvals.Value(),
		FlitHops:             s.Fab.FlitHops.Value() - s.baseFlitHops,
		BusFlits:             s.Fab.BusFlits() - s.baseBusFlits,
	}
	if cycles > 0 {
		r.IPC = float64(instrs) / float64(cycles*uint64(s.Cfg.NumCPUs))
	}
	if s.spans != nil {
		r.Breakdown = s.spans.Report()
	}
	if s.thermalT != nil {
		r.Thermal = s.thermalT.Report()
	}
	if s.dtm != nil {
		r.DTM = s.dtm.Report()
	}
	if s.hostProf != nil {
		r.Profile = s.hostProf.Report()
	}
	if s.digestRec != nil {
		r.Digests = s.digestRec.Report()
	}
	return r
}

// CheckReplicaConsistency verifies that the replica mask matches reality:
// every masked (addr, cluster) pair has a resident Replica entry or an
// in-flight msgReplData, and every resident Replica entry is masked. Run
// on a quiescent system (tests) — in-flight replicas show as masked but
// not yet resident, so the check tolerates missing entries only when the
// network still holds traffic.
func (s *System) CheckReplicaConsistency() error {
	quiescent := s.Fab.Quiescent() && s.Engine.Pending() == 0
	for addr, mask := range s.replicas {
		if mask == 0 {
			return fmt.Errorf("core: empty replica mask retained for %#x", uint64(addr))
		}
		p := s.Cfg.L2.PlaceOf(addr)
		for cl := 0; cl < s.Top.NumClusters(); cl++ {
			if mask&(1<<uint(cl)) == 0 {
				continue
			}
			set := s.Clusters[cl].set(p)
			way, ok := set.Lookup(p.Tag)
			if !ok {
				if quiescent {
					return fmt.Errorf("core: masked replica %#x missing from cluster %d", uint64(addr), cl)
				}
				continue
			}
			if !set.Way(way).Replica {
				// The primary may legitimately live where a replica was
				// masked (migration merge); the mask must not claim it.
				return fmt.Errorf("core: mask claims primary of %#x in cluster %d", uint64(addr), cl)
			}
		}
	}
	for _, cl := range s.Clusters {
		for b, bank := range cl.banks {
			for si := 0; si < bank.NumSets(); si++ {
				set := bank.Set(si)
				for w := 0; w < set.Ways(); w++ {
					e := set.Way(w)
					if !e.Valid || !e.Replica {
						continue
					}
					addr := s.Cfg.L2.LineOf(cache.Place{Bank: b, Set: si, Tag: e.Tag})
					if s.replicas[addr]&(1<<uint(cl.id)) == 0 {
						return fmt.Errorf("core: unmasked replica %#x in cluster %d", uint64(addr), cl.id)
					}
				}
			}
		}
	}
	return nil
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CheckSingleCopy verifies the L2-wide invariant that every authoritative
// line resides in at most one cluster, modulo in-flight lazy migrations
// (entries marked Migrating are the old copies and may coexist with the
// new one) and read-only replicas. It returns an error naming the first
// violating line.
func (s *System) CheckSingleCopy() error {
	seen := make(map[cache.LineAddr]int)
	for _, cl := range s.Clusters {
		for b, bank := range cl.banks {
			for si := 0; si < bank.NumSets(); si++ {
				set := bank.Set(si)
				for w := 0; w < set.Ways(); w++ {
					e := set.Way(w)
					if !e.Valid || e.Migrating || e.Replica {
						continue
					}
					addr := s.Cfg.L2.LineOf(cache.Place{Bank: b, Set: si, Tag: e.Tag})
					if prev, dup := seen[addr]; dup {
						return fmt.Errorf("core: line %#x in clusters %d and %d", uint64(addr), prev, cl.id)
					}
					seen[addr] = cl.id
				}
			}
		}
	}
	return nil
}
