package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/trace"
)

// shardedRun builds the machine for one scheme, warms it, and measures a
// window with the full attachment surface the determinism contract
// covers: thermal, DTM with every actuator enabled (trip lowered so the
// controller actually engages inside the window), and an interval
// sampler whose odd period makes samples straddle horizon barriers.
// shards <= 1 runs the historical serial path. Returns the Results, the
// sampler's CSV time series, and the number of fabric ticks that fanned
// out to shard workers.
func shardedRun(t *testing.T, scheme config.Scheme, shards int) (Results, []byte, uint64) {
	t.Helper()
	cfg := config.Default(scheme)
	if scheme.Is3D() {
		// The stacked four-layer machine: the config the -shards flag is
		// for, and the hottest placement, so DTM actuators fire.
		cfg.Layers = 4
		cfg.StackCPUs = true
	}
	cfg.DTMPolicy = "all"
	cfg.TripTempC = 70
	prof, ok := trace.ProfileByName("mgrid", cfg.NumCPUs)
	if !ok {
		t.Fatal("profile missing")
	}
	s, err := NewSystem(cfg, prof, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if shards > 1 {
		s.SetShards(shards)
	}
	s.Warm(11)
	s.Start()
	s.Run(5_000)
	s.ResetStats()
	if _, err := s.AttachDTM(1_000); err != nil {
		t.Fatal(err)
	}
	sm := s.AttachSampler(777)
	s.Run(30_000)
	res := s.Results()
	var series bytes.Buffer
	if err := sm.Series().WriteCSV(&series); err != nil {
		t.Fatal(err)
	}
	return res, series.Bytes(), s.Fab.ShardedCycles()
}

// TestShardedDeterminism pins the sharding contract: a sharded run is
// byte-identical to the serial run — same marshaled Results, same sampler
// time series — for every scheme, with thermal, DTM, and sampling
// attached. For the 3D schemes it also proves the parallel path actually
// engaged (the 2D schemes have one layer and must fall back cleanly).
// Run under -race at several -cpu widths in CI.
func TestShardedDeterminism(t *testing.T) {
	schemes := []config.Scheme{
		config.CMPDNUCA, config.CMPDNUCA2D, config.CMPSNUCA3D, config.CMPDNUCA3D,
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			serialRes, serialSeries, fanned := shardedRun(t, scheme, 1)
			if fanned != 0 {
				t.Fatalf("serial run fanned out %d cycles", fanned)
			}
			serialJSON, err := json.Marshal(serialRes)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				res, series, fanned := shardedRun(t, scheme, shards)
				gotJSON, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serialJSON, gotJSON) {
					t.Fatalf("shards=%d diverged from serial:\nserial  %s\nsharded %s",
						shards, serialJSON, gotJSON)
				}
				if !bytes.Equal(serialSeries, series) {
					t.Fatalf("shards=%d sampler series diverged from serial:\nserial:\n%s\nsharded:\n%s",
						shards, serialSeries, series)
				}
				if scheme.Is3D() && fanned == 0 {
					t.Fatalf("shards=%d never fanned out: the parallel path was not exercised", shards)
				}
			}
		})
	}
}

// TestShardedFallbacks pins the automatic serial fallbacks: a tracer
// forces the serial path while attached (global cycle order) and
// detaching it restores the requested shard count; the VerticalRouter
// ablation and single-layer chips never shard at all.
func TestShardedFallbacks(t *testing.T) {
	prof, ok := trace.ProfileByName("mgrid", 8)
	if !ok {
		t.Fatal("profile missing")
	}

	cfg := config.Default(config.CMPDNUCA3D)
	cfg.Layers = 4
	s, err := NewSystem(cfg, prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.SetShards(4); got != 4 {
		t.Fatalf("SetShards(4) = %d on a 4-layer chip", got)
	}
	if got := s.SetShards(8); got != 4 {
		t.Fatalf("SetShards(8) = %d, want clamp to 4 layers", got)
	}
	ring := obs.NewRingSink(64)
	s.AttachTracer(ring)
	if got := s.Shards(); got != 1 {
		t.Fatalf("Shards() = %d with a tracer attached, want serial fallback", got)
	}
	s.AttachTracer(nil)
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after tracer detach, want 4 restored", got)
	}

	vcfg := config.Default(config.CMPDNUCA3D)
	vcfg.Layers = 4
	vcfg.VerticalNoC = true
	vs, err := NewSystem(vcfg, prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	if got := vs.SetShards(4); got != 1 {
		t.Fatalf("SetShards(4) = %d in the VerticalNoC ablation, want 1", got)
	}

	flat, err := NewSystem(config.Default(config.CMPDNUCA2D), prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if got := flat.SetShards(4); got != 1 {
		t.Fatalf("SetShards(4) = %d on a single-layer chip, want 1", got)
	}
}
