package core

import (
	"repro/internal/digest"
	"repro/internal/stats"
	"repro/internal/trace"
)

// digestFolder is satisfied by trace sources that expose their internal
// cursor state for digesting (trace.Generator, trace.FileStream).
// External Stream implementations without it simply contribute nothing
// to the RNG lane — their replay position is implied by the CPU
// counters anyway.
type digestFolder interface{ DigestFold(*digest.Recorder) }

// AttachDigest registers a periodic state-digest recorder with the
// engine: every interval cycles it folds every stateful subsystem into
// per-subsystem hash chains and appends one cumulative snapshot (see
// package digest). Attach right after ResetStats so the stream covers
// exactly the measurement window, and before AttachSampler if the
// sampler should carry the digest columns. Results gains the Digests
// report. Idempotent: subsequent calls return the same recorder.
//
// The recorder is a pure observer — the walker reads simulator state
// and writes only recorder-owned arrays — so an attached run is
// bit-identical to a detached one (TestDigestDoesNotPerturb), and
// sharding is unaffected: the walker runs from an engine ticker, after
// the network phase's shard barrier, where serial and sharded state
// coincide by the bit-identical contract (TestDigestShardInvariance).
func (s *System) AttachDigest(interval uint64) *digest.Recorder {
	if s.digestRec != nil {
		return s.digestRec
	}
	rec := digest.NewRecorder(interval)
	rec.SetWalker(s.digestWalk)
	s.digestRec = rec
	s.Engine.Register(rec)
	return rec
}

// digestWalk folds the whole machine, one lane per subsystem, in lane
// order. Map-backed state (line locations, transaction table, replica
// masks) folds order-independently: each entry hashes through its own
// Mix chain and the per-entry hashes XOR together, so Go's randomized
// map iteration cannot perturb the digest.
func (s *System) digestWalk(r *digest.Recorder) {
	r.BeginLane(digest.LaneCPU)
	for _, c := range s.CPUs {
		r.Fold(c.instrs)
		r.Fold(c.loads)
		r.Fold(c.stores)
		r.Fold(c.ifetches)
		r.Fold(c.ifetchMisses)
		r.FoldInt(c.storeCredits)
		foldRef(r, &c.blockedStore)
		r.FoldBool(c.hasBlocked)
		foldRef(r, &c.stalledRef)
		r.FoldBool(c.hasStalled)
		foldRef(r, &c.pendingRef)
		r.FoldBool(c.running)
		r.Fold(c.l1.Hits)
		r.Fold(c.l1.Misses)
		c.l1.bank.DigestFold(r)
		r.Fold(c.l1i.Hits)
		r.Fold(c.l1i.Misses)
		c.l1i.bank.DigestFold(r)
	}

	r.BeginLane(digest.LaneCache)
	for _, cl := range s.Clusters {
		for _, b := range cl.banks {
			b.DigestFold(r)
		}
		for _, p := range cl.portFree {
			r.Fold(p)
		}
		r.Fold(cl.TagLookups)
		r.Fold(cl.TagPortWait)
	}
	s.foldMetrics(r)
	s.foldDirectory(r)

	r.BeginLane(digest.LaneNoC)
	s.Fab.DigestFold(r)

	r.BeginLane(digest.LaneDTDMA)
	for _, b := range s.Fab.Buses() {
		b.DigestFold(r)
	}

	r.BeginLane(digest.LaneEngine)
	s.Engine.DigestFold(r)

	r.BeginLane(digest.LaneThermal)
	if s.thermalT != nil {
		s.thermalT.Grid().DigestFold(r)
	}

	r.BeginLane(digest.LaneDTM)
	if s.dtm != nil {
		s.dtm.DigestFold(r)
	}

	r.BeginLane(digest.LaneRNG)
	for _, c := range s.CPUs {
		if df, ok := c.gen.(digestFolder); ok {
			df.DigestFold(r)
		}
	}
}

// foldMetrics folds the measurement counters. They are observational,
// but they feed Results — folding them makes the cache lane catch a
// divergence even when it first manifests as a miscounted event rather
// than corrupted architectural state.
func (s *System) foldMetrics(r *digest.Recorder) {
	m := &s.M
	for _, c := range []*stats.Counter{
		&m.L2Accesses, &m.L2Hits, &m.L2Misses, &m.Migrations,
		&m.Invalidations, &m.InvalAcks, &m.BackInvals, &m.Evictions,
		&m.MemReads, &m.MemWrites, &m.ProbesSent, &m.Step2Searches,
		&m.Replications, &m.ReplicaHits, &m.ReplicaInvals,
	} {
		r.Fold(c.Value())
	}
	for _, l := range []*stats.Latency{
		&m.HitLatency, &m.MissLatency,
		&m.PrivateHitLatency, &m.SharedHitLatency, &m.CodeHitLatency,
	} {
		r.Fold(l.Count())
		r.Fold(l.Sum())
		r.Fold(l.Min())
		r.Fold(l.Max())
	}
	h := m.HitHist
	r.Fold(h.Total())
	r.Fold(h.Max())
	for i := 0; i < h.NumBuckets(); i++ {
		r.Fold(h.Bucket(i))
	}
}

// foldDirectory folds the MSI directory's map-backed state: the line
// location map, the in-flight transaction table, and the replica masks.
func (s *System) foldDirectory(r *digest.Recorder) {
	var x uint64
	for addr, loc := range s.lineLoc {
		h := digest.Mix(uint64(addr))
		x ^= digest.Mixed(h, uint64(loc))
	}
	r.Fold(x)
	r.FoldInt(len(s.lineLoc))

	x = 0
	for id, t := range s.txns {
		h := digest.Mix(id)
		h = digest.Mixed(h, uint64(t.cpu.id))
		h = digest.Mixed(h, uint64(t.addr))
		h = digest.Mixed(h, b2u(t.excl))
		h = digest.Mixed(h, t.issued)
		h = digest.Mixed(h, uint64(t.step))
		h = digest.Mixed(h, uint64(t.pending))
		h = digest.Mixed(h, t.probed)
		h = digest.Mixed(h, uint64(t.retries))
		h = digest.Mixed(h, b2u(t.afterMem))
		h = digest.Mixed(h, b2u(t.ifetch))
		x ^= digest.Mixed(h, uint64(t.memCtrl))
	}
	r.Fold(x)
	r.FoldInt(len(s.txns))
	r.Fold(s.nextTxn)

	x = 0
	for addr, mask := range s.replicas {
		h := digest.Mix(uint64(addr))
		x ^= digest.Mixed(h, uint64(mask))
	}
	r.Fold(x)
	r.FoldInt(len(s.replicas))
}

func foldRef(r *digest.Recorder, ref *trace.Ref) {
	r.Fold(uint64(ref.Addr))
	r.FoldBool(ref.Write)
	r.FoldInt(ref.Gap)
	r.FoldBool(ref.HasCode)
	r.Fold(uint64(ref.Code))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
