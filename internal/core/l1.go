package core

import "repro/internal/cache"

// l1 is one core's private L1 data cache: 64 KB, 2-way, 64-byte lines,
// write-through (Table 4). Entries track an MSI-style state: present lines
// are Shared or Modified (the Entry.Dirty flag doubles as the M bit).
// Write-through keeps L2 data current, so L1 evictions are always silent.
type l1 struct {
	bank *cache.Bank
	sets int

	Hits, Misses uint64
}

func newL1(sets, ways int) *l1 {
	return &l1{bank: cache.NewBank(sets, ways), sets: sets}
}

func (c *l1) place(a cache.LineAddr) (set int, tag uint64) {
	return int(uint64(a) % uint64(c.sets)), uint64(a) / uint64(c.sets)
}

// lookup probes the L1. modified reports M state on a hit. Replacement
// state is updated on hits.
func (c *l1) lookup(a cache.LineAddr) (hit, modified bool) {
	set, tag := c.place(a)
	s := c.bank.Set(set)
	way, ok := s.Lookup(tag)
	if !ok {
		c.Misses++
		return false, false
	}
	c.Hits++
	s.Touch(way)
	return true, s.Way(way).Dirty
}

// install fills a line in the given state, silently dropping the victim
// (write-through L1s hold no dirty-only data).
func (c *l1) install(a cache.LineAddr, modified bool) {
	set, tag := c.place(a)
	s := c.bank.Set(set)
	if way, ok := s.Lookup(tag); ok {
		e := s.Way(way)
		e.Dirty = e.Dirty || modified
		s.Touch(way)
		return
	}
	way, _, _ := s.Insert(tag)
	s.Way(way).Dirty = modified
}

// invalidate drops a line if present, reporting whether it was there.
func (c *l1) invalidate(a cache.LineAddr) bool {
	set, tag := c.place(a)
	return c.bank.Set(set).Invalidate(tag)
}

// upgrade promotes a present line to M, reporting whether it was present.
func (c *l1) upgrade(a cache.LineAddr) bool {
	set, tag := c.place(a)
	s := c.bank.Set(set)
	if way, ok := s.Lookup(tag); ok {
		s.Way(way).Dirty = true
		return true
	}
	return false
}
