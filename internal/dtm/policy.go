package dtm

import (
	"fmt"
	"strconv"
	"strings"
)

// Policy is a bitmask of enabled DTM actuators. Policies compose freely;
// the zero value enables nothing.
type Policy uint8

const (
	// PolicyMigrationVeto blocks cache-line migration steps whose target
	// cluster sits on a hot cell.
	PolicyMigrationVeto Policy = 1 << iota
	// PolicyDrowsy puts banks on hot cells into a drowsy retention state:
	// leakage drops to Options.DrowsyLeakFrac of nominal, and accesses pay
	// Options.WakeupCycles extra latency.
	PolicyDrowsy
	// PolicyDutyCycle throttles a core whose cell is hot to issuing on
	// DutyOn of every DutyPeriod front-end slots.
	PolicyDutyCycle
	// PolicyReroute penalizes hot pillar columns during pillar selection,
	// biasing cross-layer traffic away from hotspots.
	PolicyReroute

	// PolicyAll enables every actuator.
	PolicyAll = PolicyMigrationVeto | PolicyDrowsy | PolicyDutyCycle | PolicyReroute
)

// policyNames maps the canonical flag spellings to their bits, in
// presentation order.
var policyNames = []struct {
	name string
	bit  Policy
}{
	{"veto", PolicyMigrationVeto},
	{"drowsy", PolicyDrowsy},
	{"duty", PolicyDutyCycle},
	{"reroute", PolicyReroute},
}

// ParsePolicy parses a policy specification: "" or "none" (no actuators),
// "all", or a comma-separated subset of veto, drowsy, duty, reroute.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "off":
		return 0, nil
	case "all":
		return PolicyAll, nil
	}
	var p Policy
	for _, part := range strings.Split(s, ",") {
		part = strings.ToLower(strings.TrimSpace(part))
		found := false
		for _, pn := range policyNames {
			if part == pn.name {
				p |= pn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("dtm: unknown policy %q (want none, all, or a comma list of veto, drowsy, duty, reroute)", part)
		}
	}
	return p, nil
}

// Has reports whether every bit of q is enabled in p.
func (p Policy) Has(q Policy) bool { return p&q == q }

// String returns the canonical spelling ParsePolicy accepts.
func (p Policy) String() string {
	if p == 0 {
		return "none"
	}
	if p == PolicyAll {
		return "all"
	}
	var parts []string
	for _, pn := range policyNames {
		if p.Has(pn.bit) {
			parts = append(parts, pn.name)
		}
	}
	return strings.Join(parts, ",")
}

// ParseDuty parses a duty-cycle specification "N/M": a throttled core
// issues on N of every M front-end slots. "" selects the 1/4 default.
func ParseDuty(s string) (on, period int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 1, 4, nil
	}
	num, den, ok := strings.Cut(s, "/")
	if ok {
		on, err = strconv.Atoi(strings.TrimSpace(num))
		if err == nil {
			period, err = strconv.Atoi(strings.TrimSpace(den))
		}
	}
	if !ok || err != nil || on < 1 || period < 2 || on >= period {
		return 0, 0, fmt.Errorf("dtm: invalid duty cycle %q (want N/M with 1 <= N < M, e.g. 1/4)", s)
	}
	return on, period, nil
}
