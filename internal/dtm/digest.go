package dtm

import "repro/internal/digest"

// DigestFold folds the controller's hysteresis masks (per-cell,
// per-column, per-CPU), the duty-cycle slot counters, the primed latch,
// and the report counters the actuators advance. These masks are the
// control-loop state: a one-cycle difference in when a cell trips
// changes them before it changes anything architectural.
func (c *Controller) DigestFold(r *digest.Recorder) {
	for _, h := range c.hot {
		r.FoldBool(h)
	}
	for _, h := range c.colHot {
		r.FoldBool(h)
	}
	for _, h := range c.cpuHot {
		r.FoldBool(h)
	}
	for _, s := range c.cpuSlot {
		r.Fold(uint64(s))
	}
	r.FoldBool(c.primed)
	st := &c.stats
	r.Fold(st.Steps)
	r.Fold(st.TripEngagements)
	r.Fold(st.FirstTripCycle)
	r.Fold(st.HotCells)
	r.Fold(st.HotCellSteps)
	r.FoldFloat(st.PeakC)
	r.FoldFloat(st.PeakOverTripC)
	r.Fold(st.MigrationVetoes)
	r.Fold(st.BankWakeups)
	r.Fold(st.BankWakeupCycles)
	r.Fold(st.ThrottleStalls)
	r.Fold(st.PillarDiversions)
	r.FoldFloat(st.DrowsyLeakSavedPJ)
}
