package dtm

import (
	"repro/internal/geom"
	"repro/internal/thermal"
)

// DefaultTripC is the trip temperature when Options.TripC is zero — the
// conventional 85 C junction throttling point.
const DefaultTripC = 85.0

// DefaultHysteresisC is the release margin when Options.HysteresisC is
// zero: a tripped cell stays managed until it cools this far below the
// trip point, so cells oscillating across the threshold do not make the
// actuators flap every thermal step.
const DefaultHysteresisC = 2.0

// PillarPenaltyHops is how many extra in-plane hops a hot pillar column
// appears to cost during pillar selection under PolicyReroute. The value
// diverts traffic whenever a cool pillar is at most this much farther,
// while still using a hot pillar when every detour costs more — a bias,
// not a prohibition, so pathological placements cannot starve traffic of
// the only usable column.
const PillarPenaltyHops = 4

// Options carries the Controller's calibration. Zero values select the
// documented defaults. The leakage, wakeup, and clock numbers are passed
// in by the caller (internal/power is the single calibration point; see
// power.DrowsyLeakageFraction) to keep this package free of model
// dependencies.
type Options struct {
	// TripC is the trip temperature in C (0 selects DefaultTripC).
	TripC float64
	// HysteresisC is the release margin below the trip point
	// (0 selects DefaultHysteresisC).
	HysteresisC float64
	// DutyOn/DutyPeriod is the throttled issue pattern: a hot core issues
	// on DutyOn of every DutyPeriod front-end slots (0/0 selects 1/4).
	DutyOn, DutyPeriod int
	// CellLeakW is the per-cell background (leakage) power the thermal
	// grid charges, the quantity drowsy mode scales down.
	CellLeakW float64
	// DrowsyLeakFrac is the fraction of CellLeakW a drowsy bank retains.
	DrowsyLeakFrac float64
	// WakeupCycles is the extra latency of an access to a drowsy bank.
	WakeupCycles uint64
	// ClockHz converts cycle spans to seconds for the leakage-saved
	// energy accounting.
	ClockHz float64
}

// Controller is the DTM policy engine: it tracks the per-cell hot mask
// derived from the thermal grid at every step boundary and answers the
// actuators' queries. It implements obs.ThermalActor, so the thermal
// tracker both informs it (GridStepped) and lets it feed the drowsy
// leakage cut back into the next RC step (AdjustPower). One Controller
// manages one System; it is not safe for concurrent use (the simulator
// is single-threaded per run).
type Controller struct {
	dim    geom.Dim
	policy Policy

	tripC    float64
	releaseC float64

	dutyOn, dutyPeriod int

	cellLeakW      float64
	drowsyLeakFrac float64
	wakeupCycles   uint64
	clockHz        float64

	// hot is the per-cell managed state (trip/release hysteresis); colHot
	// marks in-plane columns with at least one hot cell on any layer (the
	// pillar-selection mask).
	hot    []bool
	colHot []bool

	// cpus holds the registered cores' cell indices in core order;
	// cpuHot/cpuSlot are the duty-cycling state per core.
	cpus    []int
	cpuHot  []bool
	cpuSlot []uint32

	stats  Report
	primed bool
}

// NewController builds a controller for a chip of the given dimensions.
// Register the core positions with AddCPU before the first thermal step.
func NewController(dim geom.Dim, policy Policy, opt Options) *Controller {
	if opt.TripC == 0 {
		opt.TripC = DefaultTripC
	}
	if opt.HysteresisC == 0 {
		opt.HysteresisC = DefaultHysteresisC
	}
	if opt.DutyOn == 0 && opt.DutyPeriod == 0 {
		opt.DutyOn, opt.DutyPeriod = 1, 4
	}
	return &Controller{
		dim:            dim,
		policy:         policy,
		tripC:          opt.TripC,
		releaseC:       opt.TripC - opt.HysteresisC,
		dutyOn:         opt.DutyOn,
		dutyPeriod:     opt.DutyPeriod,
		cellLeakW:      opt.CellLeakW,
		drowsyLeakFrac: opt.DrowsyLeakFrac,
		wakeupCycles:   opt.WakeupCycles,
		clockHz:        opt.ClockHz,
		hot:            make([]bool, dim.Nodes()),
		colHot:         make([]bool, dim.NodesPerLayer()),
	}
}

// AddCPU registers one core's cell, in core order; DutyStall indexes
// cores by this registration order.
func (c *Controller) AddCPU(pos geom.Coord) {
	c.cpus = append(c.cpus, c.dim.Index(pos))
	c.cpuHot = append(c.cpuHot, false)
	c.cpuSlot = append(c.cpuSlot, 0)
}

// Policy returns the enabled actuator set.
func (c *Controller) Policy() Policy { return c.policy }

// TripC returns the trip temperature.
func (c *Controller) TripC() float64 { return c.tripC }

// Engaged reports whether any cell is currently managed (hot).
func (c *Controller) Engaged() bool { return c.stats.HotCells > 0 }

// GridStepped implements obs.ThermalActor: after every RC step it
// re-derives the hot mask from the freshly stepped, cycle-stamped grid
// temperatures. All actuator decisions until the next step are pure
// functions of this mask, which keeps managed runs deterministic.
func (c *Controller) GridStepped(cycle uint64, g *thermal.Grid) {
	temps := g.Temps()
	hotCells := uint64(0)
	for i, t := range temps {
		switch {
		case !c.hot[i] && t >= c.tripC:
			c.hot[i] = true
			c.stats.TripEngagements++
			if c.stats.FirstTripCycle == 0 {
				c.stats.FirstTripCycle = cycle
			}
		case c.hot[i] && t < c.releaseC:
			c.hot[i] = false
		}
		if c.hot[i] {
			hotCells++
		}
		if !c.primed || t > c.stats.PeakC {
			c.stats.PeakC = t
		}
	}
	c.primed = true
	c.stats.HotCells = hotCells
	c.stats.HotCellSteps += hotCells
	c.stats.Steps++

	per := c.dim.NodesPerLayer()
	for i := range c.colHot {
		c.colHot[i] = false
	}
	for l := 0; l < c.dim.Layers; l++ {
		base := l * per
		for i := 0; i < per; i++ {
			if c.hot[base+i] {
				c.colHot[i] = true
			}
		}
	}
	for k, cell := range c.cpus {
		c.cpuHot[k] = c.hot[cell]
	}
}

// AdjustPower implements obs.ThermalActor: before every RC step it cuts
// the drowsy banks' leakage from the window's power map (cycles is the
// window's span). A bank is drowsy exactly while its cell is hot — the
// emergency response — so the cut is a pure function of the same mask
// BankWakeup charges wakeups from. Every mesh cell hosts a bank (cores
// are co-located with their cluster's banks), so the cut applies to all
// hot cells; on a core's cell the CellLeakW background it scales is
// dwarfed by the core's dynamic power, so the approximation of treating
// the whole cell background as bank leakage costs nothing.
func (c *Controller) AdjustPower(cycles uint64, powerW []float64) {
	if !c.policy.Has(PolicyDrowsy) {
		return
	}
	cut := (1 - c.drowsyLeakFrac) * c.cellLeakW
	if cut <= 0 {
		return
	}
	drowsy := 0
	for i, h := range c.hot {
		if h {
			powerW[i] -= cut
			drowsy++
		}
	}
	if drowsy > 0 && c.clockHz > 0 {
		c.stats.DrowsyLeakSavedPJ += float64(drowsy) * cut * float64(cycles) / c.clockHz * 1e12
	}
}

// VetoMigration reports whether a migration step toward the cluster
// anchored at target must be blocked, counting the engagement.
func (c *Controller) VetoMigration(target geom.Coord) bool {
	if !c.policy.Has(PolicyMigrationVeto) || !c.hot[c.dim.Index(target)] {
		return false
	}
	c.stats.MigrationVetoes++
	return true
}

// BankWakeup returns the extra cycles an access to the bank at the given
// cell must pay (its drowsy wakeup), counting the wakeup. Zero when the
// drowsy policy is off or the bank's cell is cool.
func (c *Controller) BankWakeup(bank geom.Coord) uint64 {
	if !c.policy.Has(PolicyDrowsy) || !c.hot[c.dim.Index(bank)] {
		return 0
	}
	c.stats.BankWakeups++
	c.stats.BankWakeupCycles += c.wakeupCycles
	return c.wakeupCycles
}

// DutyStall reports whether core cpu (AddCPU registration order) must
// stall its front end this slot: a hot core issues on only DutyOn of
// every DutyPeriod slots. Each true return is one stalled cycle.
func (c *Controller) DutyStall(cpu int) bool {
	if !c.policy.Has(PolicyDutyCycle) || !c.cpuHot[cpu] {
		return false
	}
	c.cpuSlot[cpu]++
	if int(c.cpuSlot[cpu]%uint32(c.dutyPeriod)) < c.dutyOn {
		return false
	}
	c.stats.ThrottleStalls++
	return true
}

// PillarPenalty returns the pillar-selection penalty (in hops) for the
// pillar column at in-plane position (x, y): PillarPenaltyHops when any
// cell of the column is hot, zero otherwise. Install it with the
// fabric's SetPillarPenalty only when PolicyReroute is enabled, so a
// detached fabric keeps its zero-overhead selection path.
func (c *Controller) PillarPenalty(x, y int) int {
	if c.colHot[y*c.dim.Width+x] {
		return PillarPenaltyHops
	}
	return 0
}

// NotePillarDiversion counts one cross-layer packet whose pillar choice
// the penalty changed; the fabric invokes it from pillar selection.
func (c *Controller) NotePillarDiversion() {
	c.stats.PillarDiversions++
}

// Report is the run-level DTM summary (core Results.DTM).
type Report struct {
	// Policy, TripC, ReleaseC, DutyOn and DutyPeriod echo the active
	// configuration.
	Policy     string
	TripC      float64
	ReleaseC   float64
	DutyOn     int
	DutyPeriod int

	// Steps counts thermal-step boundaries seen; TripEngagements counts
	// cell cold->hot transitions; FirstTripCycle is the cycle of the
	// first engagement (0 when nothing ever tripped); HotCells is the
	// currently managed cell count and HotCellSteps its integral over
	// steps (cell-steps spent under management).
	Steps           uint64
	TripEngagements uint64
	FirstTripCycle  uint64
	HotCells        uint64
	HotCellSteps    uint64

	// PeakC is the hottest cell temperature the controller observed;
	// PeakOverTripC is its signed excess over the trip point — how far
	// the managed run still overshot (negative: stayed below trip).
	PeakC         float64
	PeakOverTripC float64

	// Per-actuator engagement counts and their direct latency cost:
	// migration steps vetoed, drowsy-bank wakeups and the cycles they
	// added, core front-end cycles stalled by duty-cycling, and
	// cross-layer packets diverted to a cooler pillar.
	MigrationVetoes  uint64
	BankWakeups      uint64
	BankWakeupCycles uint64
	ThrottleStalls   uint64
	PillarDiversions uint64

	// DrowsyLeakSavedPJ approximates the leakage energy drowsy mode cut
	// (summed per managed cell per thermal step).
	DrowsyLeakSavedPJ float64
}

// Report summarizes the run so far.
func (c *Controller) Report() *Report {
	r := c.stats
	r.Policy = c.policy.String()
	r.TripC = c.tripC
	r.ReleaseC = c.releaseC
	r.DutyOn = c.dutyOn
	r.DutyPeriod = c.dutyPeriod
	if r.Steps > 0 {
		r.PeakOverTripC = r.PeakC - c.tripC
	}
	return &r
}
