// Package dtm implements runtime dynamic thermal management for the 3D
// Network-in-Memory simulator: the policy layer that closes the loop
// between the transient thermal grid (internal/thermal, stepped by the
// activity-driven telemetry pipeline in internal/obs) and the simulated
// machine's actuators.
//
// The Controller subscribes to the thermal tracker's step boundary. After
// every RC step it re-derives a per-cell hot mask from the cycle-stamped
// grid temperatures — a cell trips at Options.TripC and releases at
// TripC - HysteresisC — and the actuators consult that mask on their own
// fast paths:
//
//   - Migration veto (PolicyMigrationVeto): cache-line migration steps
//     whose target cluster sits on a hot cell are blocked, so the
//     migration policy stops concentrating load into hotspots.
//   - Drowsy banks (PolicyDrowsy): banks on hot cells drop to a drowsy
//     retention state, cutting their leakage contribution to the next
//     thermal window; an access to a drowsy bank first pays a wakeup
//     latency.
//   - CPU duty-cycling (PolicyDutyCycle): a core whose cell is hot issues
//     on only N of every M front-end slots (Options.DutyOn/DutyPeriod),
//     cutting its instruction rate and so its dominant 8 W/core heat
//     source — the big lever, as in MemPool-3D-style 3D throttling.
//   - Reroute bias (PolicyReroute): pillar selection for cross-layer
//     packets sees hot pillar columns as PillarPenaltyHops farther,
//     diverting vertical traffic (and its flit energy) away from
//     hotspots unless the detour is even more expensive.
//
// Determinism contract: every policy decision is a pure function of the
// hot mask, which itself is a pure function of the grid state at the last
// thermal step boundary (a cycle-stamped, seed-deterministic quantity).
// The controller keeps no wall-clock or sampled state, so a managed run
// is exactly reproducible, and a run with a Controller attached but no
// policy bits enabled is bit-identical to an unmanaged run.
package dtm
