package dtm

import "testing"

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"", 0, false},
		{"none", 0, false},
		{"off", 0, false},
		{" None ", 0, false},
		{"all", PolicyAll, false},
		{"ALL", PolicyAll, false},
		{"veto", PolicyMigrationVeto, false},
		{"drowsy", PolicyDrowsy, false},
		{"duty", PolicyDutyCycle, false},
		{"reroute", PolicyReroute, false},
		{"veto,duty", PolicyMigrationVeto | PolicyDutyCycle, false},
		{"veto, drowsy ,reroute", PolicyMigrationVeto | PolicyDrowsy | PolicyReroute, false},
		{"veto,drowsy,duty,reroute", PolicyAll, false},
		{"bogus", 0, true},
		{"veto,bogus", 0, true},
		{"veto,,duty", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePolicy(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for p := Policy(0); p <= PolicyAll; p++ {
		back, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q) = %v", p.String(), err)
		}
		if back != p {
			t.Errorf("round trip %v -> %q -> %v", p, p.String(), back)
		}
	}
}

func TestParseDuty(t *testing.T) {
	cases := []struct {
		in         string
		on, period int
		wantErr    bool
	}{
		{"", 1, 4, false},
		{"1/4", 1, 4, false},
		{"3/8", 3, 8, false},
		{" 1 / 2 ", 1, 2, false},
		{"4/4", 0, 0, true},  // on must be < period
		{"0/4", 0, 0, true},  // on must be >= 1
		{"5/4", 0, 0, true},  // on must be < period
		{"1/1", 0, 0, true},  // period must be >= 2
		{"1", 0, 0, true},    // missing separator
		{"a/b", 0, 0, true},  // not numeric
		{"-1/4", 0, 0, true}, // negative
	}
	for _, c := range cases {
		on, period, err := ParseDuty(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseDuty(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (on != c.on || period != c.period) {
			t.Errorf("ParseDuty(%q) = %d/%d, want %d/%d", c.in, on, period, c.on, c.period)
		}
	}
}
