package noc

import "testing"

func TestPacketPoolRecycles(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	p.ID, p.Size, p.Hops = 42, 4, 7
	p.MarkVertical()
	pp.Put(p)
	q := pp.Get()
	if q != p {
		t.Fatal("pool did not reuse the recycled packet")
	}
	if q.ID != 0 || q.Size != 0 || q.Hops != 0 || q.Vertical() {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
}

func TestPacketPoolIgnoresForeignPackets(t *testing.T) {
	var pp PacketPool
	ext := &Packet{ID: 7, Payload: "keep"}
	pp.Put(ext)
	if got := pp.Get(); got == ext {
		t.Fatal("caller-constructed packet must not enter the pool")
	}
	if ext.ID != 7 || ext.Payload != "keep" {
		t.Fatalf("caller-constructed packet mutated by Put: %+v", ext)
	}
	pp.Put(nil) // must not panic
}

func TestSourceQueueOrderPreserved(t *testing.T) {
	// Head-index draining must keep strict FIFO injection order.
	routers, _ := line(2)
	var order []uint64
	routers[1].SetSink(func(p *Packet, cycle uint64) { order = append(order, p.ID) })
	const n = 30
	for i := 1; i <= n; i++ {
		routers[0].Inject(&Packet{ID: uint64(i), Src: routers[0].Pos, Dst: routers[1].Pos, Size: 4})
	}
	tickAll(routers, 500)
	if len(order) != n {
		t.Fatalf("delivered %d of %d", len(order), n)
	}
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("delivery order %v", order)
		}
	}
}

func TestSourceQueueReleasesDrainedPackets(t *testing.T) {
	// Drained slots must be nil so delivered packets are not pinned by the
	// queue's backing array (the old slice-reslice drain kept them live).
	routers, _ := line(2)
	r := routers[0]
	for i := 0; i < 8; i++ {
		r.Inject(&Packet{Src: r.Pos, Dst: routers[1].Pos, Size: 1})
	}
	tickAll(routers, 200)
	if !r.Idle() {
		t.Fatal("queue did not drain")
	}
	for i, p := range r.srcQ[:cap(r.srcQ)] {
		if p != nil {
			t.Fatalf("drained slot %d still references a packet", i)
		}
	}
}

func TestSourceQueueCapacityBounded(t *testing.T) {
	// Sustained traffic at bounded occupancy must keep the backing array at
	// its high-water size instead of growing with total packets sent.
	routers, got := line(2)
	r := routers[0]
	cycle := 0
	tick := func(n int) {
		for i := 0; i < n; i++ {
			for _, rr := range routers {
				rr.Tick(uint64(cycle))
			}
			cycle++
		}
	}
	const total = 2000
	for k := 0; k < total; k++ {
		r.Inject(&Packet{Src: r.Pos, Dst: routers[1].Pos, Size: 1})
		if k%4 == 3 {
			tick(12) // drain the burst of 4
		}
	}
	tick(200)
	if len(*got) != total {
		t.Fatalf("delivered %d of %d", len(*got), total)
	}
	if c := cap(r.srcQ); c > 64 {
		t.Fatalf("source queue capacity grew to %d under bounded occupancy", c)
	}
}
