// Package noc implements the cycle-accurate on-chip network from the paper:
// a wormhole-switched 2D mesh per device layer with dimension-order routing,
// 128-bit flits, 4-flit data packets, three virtual channels per physical
// channel (each one message deep), and single-stage (1-cycle) routers.
//
// Vertical traversal is NOT a 7-port 3D router; pillar routers gain exactly
// one extra physical channel that connects to a dTDMA bus (package dtdma).
// Packets that change layers travel in two phases: phase 0 routes in-plane
// to the chosen pillar on virtual channels {0,1}; the single-hop bus ride
// promotes the packet to phase 1, which drains to the destination on the
// reserved virtual channel {2}. The phase split keeps the channel dependency
// graph acyclic, so the wormhole network is deadlock-free.
package noc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Network constants from Table 4 and Section 3.2 of the paper.
const (
	// FlitBits is the link width: 128-bit flits.
	FlitBits = 128
	// DataPacketFlits is the length of a cache-line packet:
	// 4 flits x 128 bits = 512 bits = one 64-byte line.
	DataPacketFlits = 4
	// ControlPacketFlits is the length of request/ack packets.
	ControlPacketFlits = 1
	// NumVCs is the number of virtual channels per physical channel.
	NumVCs = 3
	// VCDepth is the virtual-channel buffer depth: one message (4 flits).
	VCDepth = 4
)

// FlitType distinguishes the flits of a wormhole packet.
type FlitType uint8

// Flit kinds. A single-flit packet uses HeadTail.
const (
	Head FlitType = iota
	Body
	Tail
	HeadTail
)

// String names the flit type.
func (t FlitType) String() string {
	switch t {
	case Head:
		return "Head"
	case Body:
		return "Body"
	case Tail:
		return "Tail"
	case HeadTail:
		return "HeadTail"
	}
	return fmt.Sprintf("FlitType(%d)", uint8(t))
}

// Flit is the unit of flow control. Flits of one packet always travel in
// order within an allocated virtual channel.
type Flit struct {
	Type FlitType
	Pkt  *Packet
	Seq  int // 0-based index within the packet
	// arrived is the cycle this flit entered its current buffer; a flit may
	// not be forwarded again in the same cycle (single-stage router model).
	arrived uint64
}

// Arrived returns the cycle the flit entered its current buffer.
func (f *Flit) Arrived() uint64 { return f.arrived }

// SetArrived stamps the buffer-entry cycle. Endpoints outside this package
// (the dTDMA bus transmitter) call it from their Accept implementations.
func (f *Flit) SetArrived(c uint64) { f.arrived = c }

// Packet is a network message. The payload is opaque to the network; the
// memory system attaches its protocol messages there.
type Packet struct {
	ID   uint64
	Src  geom.Coord
	Dst  geom.Coord
	Size int // length in flits

	// Via is the pillar (in-plane position) this packet uses to change
	// layers. Only meaningful when Src and Dst are on different layers.
	Via    geom.Coord
	HasVia bool

	Payload any

	// InjectedAt is the cycle the packet entered the source queue.
	InjectedAt uint64

	// Span, when non-nil, receives the packet's queue/link/bus-wait/
	// bus-transfer time split as the head flit moves (see obs.PacketSpan).
	// Nil by default: every charge site is guarded by one pointer check.
	Span *obs.PacketSpan

	// vertical marks phase 1: the packet has completed its bus ride and now
	// routes in-plane on the reserved escape VC.
	vertical bool

	// pooled marks a packet drawn from a PacketPool; only pooled packets
	// are recycled on ejection, so caller-constructed packets keep their
	// contents after delivery.
	pooled bool

	// Hops counts router-to-router and bus traversals, for energy
	// accounting. It is int32 so the sharded fabric can bump it atomically:
	// with the flits of one cross-layer packet split between a source-layer
	// router and a destination-layer router, two shards may increment it in
	// the same cycle (the only packet field written concurrently — the
	// increment commutes, so order does not matter). See Router.SetAtomicHops.
	Hops int32
}

// PacketPool is a free list of Packets for allocation-free steady-state
// injection: the fabric draws every protocol packet from the pool and
// returns it when the tail flit ejects at its destination. The pool is not
// safe for concurrent use; each simulated machine owns one.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a recycled one when available.
func (pp *PacketPool) Get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// Put recycles a packet for reuse. Packets not drawn from a pool are left
// untouched, so callers that construct packets directly may retain them
// after delivery. The caller must not hold a reference past Put.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	*p = Packet{pooled: true}
	pp.free = append(pp.free, p)
}

// CrossesLayers reports whether the packet must ride a pillar bus.
func (p *Packet) CrossesLayers() bool { return p.Src.Layer != p.Dst.Layer }

// Vertical reports whether the packet has completed its vertical hop.
func (p *Packet) Vertical() bool { return p.vertical }

// MarkVertical promotes the packet to phase 1. The dTDMA bus calls this as
// it delivers the head flit to the destination layer.
func (p *Packet) MarkVertical() { p.vertical = true }

// vcRange returns the inclusive virtual-channel class [lo, hi] the packet may
// allocate in its current phase. See the package comment for the rationale.
func (p *Packet) vcRange() (lo, hi int) {
	if p.CrossesLayers() {
		if p.vertical {
			return NumVCs - 1, NumVCs - 1 // phase 1: escape VC only
		}
		return 0, NumVCs - 2 // phase 0: pre-vertical VCs
	}
	return 0, NumVCs - 1 // same-layer traffic may use any VC
}

// flitTypeFor returns the flit type for sequence number seq of a packet of
// the given size.
func flitTypeFor(seq, size int) FlitType {
	switch {
	case size == 1:
		return HeadTail
	case seq == 0:
		return Head
	case seq == size-1:
		return Tail
	default:
		return Body
	}
}

// String renders a short packet summary.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %v->%v size=%d", p.ID, p.Src, p.Dst, p.Size)
}
