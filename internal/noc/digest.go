package noc

import (
	"repro/internal/digest"
	"repro/internal/geom"
)

// DigestFold folds the packet's identity and routing state. Payload and
// the tracing span are deliberately excluded: Payload points back into
// protocol state digested by the owning subsystem, and spans are
// observer-only. The pooled flag is host bookkeeping.
func (p *Packet) DigestFold(r *digest.Recorder) {
	r.Fold(p.ID)
	foldCoord(r, p.Src)
	foldCoord(r, p.Dst)
	r.FoldInt(p.Size)
	foldCoord(r, p.Via)
	r.FoldBool(p.HasVia)
	r.Fold(p.InjectedAt)
	r.FoldBool(p.vertical)
	r.Fold(uint64(uint32(p.Hops)))
}

// DigestFold folds one in-flight flit: its type, sequence position,
// arrival stamp, and owning packet ID (the packet body is folded where
// it is queued, not per flit).
func (f *Flit) DigestFold(r *digest.Recorder) {
	r.Fold(uint64(f.Type))
	r.FoldInt(f.Seq)
	r.Fold(f.arrived)
	if f.Pkt != nil {
		r.Fold(f.Pkt.ID)
	} else {
		r.Fold(0)
	}
}

// DigestFold folds the router's queues and arbitration state: the
// un-injected tail of the source queue (with full packet bodies — these
// packets exist nowhere else yet), per-VC buffers in FIFO order, and
// the occupancy/rotation counters. The probe, work closure, and routing
// function are host-side wiring; pipeline depth is configuration.
func (rt *Router) DigestFold(r *digest.Recorder) {
	for i := rt.srcHead; i < len(rt.srcQ); i++ {
		rt.srcQ[i].DigestFold(r)
	}
	r.FoldInt(rt.srcSeq)
	r.FoldInt(rt.srcVC)
	r.FoldInt(rt.buffered)
	r.Fold(uint64(rt.occ))
	r.Fold(uint64(rt.rot))
	r.Fold(rt.ForwardedFlits)
	for d := geom.Direction(0); d < geom.NumDirections; d++ {
		p := rt.in[d]
		if p == nil {
			r.Fold(0)
			continue
		}
		r.Fold(1)
		for v := range p.vcs {
			p.vcs[v].digestFold(r)
		}
	}
}

// digestFold folds one virtual channel: buffered flits in FIFO order
// (ring position is representation, FIFO content is state), the owning
// packet, and the routing decision latched for it.
func (v *vc) digestFold(r *digest.Recorder) {
	r.FoldInt(v.n)
	for i := 0; i < v.n; i++ {
		v.buf[(v.head+i)%VCDepth].DigestFold(r)
	}
	r.FoldBool(v.owner != nil)
	if v.owner != nil {
		r.Fold(v.owner.ID)
	}
	r.FoldBool(v.routed)
	r.FoldInt(int(v.route))
	r.FoldInt(v.outVC)
}

func foldCoord(r *digest.Recorder, c geom.Coord) {
	r.FoldInt(c.X)
	r.FoldInt(c.Y)
	r.FoldInt(c.Layer)
}
