package noc

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Endpoint is anything a router output port can push flits into: a
// neighboring router's input port, a dTDMA bus transmitter, or the local
// ejection sink. Flow control is credit-based: the sender allocates a
// virtual channel for each packet (AllocVC), then checks buffer space
// (CanAccept) before each flit.
type Endpoint interface {
	// AllocVC reserves a virtual channel for the packet and returns its
	// index, or -1 if no VC in the packet's class is free.
	AllocVC(p *Packet) int
	// CanAccept reports whether VC v has buffer space for one more flit.
	CanAccept(v int) bool
	// Accept stores the flit into VC v. cycle is the current clock; the
	// flit may not be forwarded again until a later cycle.
	Accept(f Flit, v int, cycle uint64)
}

// RouteFunc computes the output direction for a packet at a router. The
// fabric supplies an implementation that knows the pillar positions.
type RouteFunc func(pos geom.Coord, p *Packet) geom.Direction

// SinkFunc is invoked when a packet's tail flit ejects at its destination.
type SinkFunc func(p *Packet, cycle uint64)

// InPort is a router input port: NumVCs virtual channels of VCDepth flits.
type InPort struct {
	r   *Router
	dir geom.Direction
	vcs [NumVCs]vc
}

// AllocVC claims a free VC in the packet's class, or returns -1.
func (p *InPort) AllocVC(pkt *Packet) int {
	lo, hi := pkt.vcRange()
	for i := lo; i <= hi; i++ {
		if p.vcs[i].free() {
			p.vcs[i].claim(pkt)
			return i
		}
	}
	return -1
}

// CanAccept reports whether VC v has space for one flit.
func (p *InPort) CanAccept(v int) bool { return !p.vcs[v].full() }

// Accept buffers the flit into VC v.
func (p *InPort) Accept(f Flit, v int, cycle uint64) {
	if p.r.work != nil && p.r.Idle() {
		p.r.work()
	}
	f.arrived = cycle
	p.vcs[v].push(f)
	p.r.buffered++
	p.r.occ |= 1 << (uint(p.dir)*NumVCs + uint(v))
}

// sinkEndpoint adapts a SinkFunc to the Endpoint interface. Ejection always
// has capacity; the callback fires when a packet's tail flit arrives.
type sinkEndpoint struct {
	fn SinkFunc
}

func (s *sinkEndpoint) AllocVC(p *Packet) int { return 0 }
func (s *sinkEndpoint) CanAccept(v int) bool  { return true }
func (s *sinkEndpoint) Accept(f Flit, v int, cycle uint64) {
	if f.Type == Tail || f.Type == HeadTail {
		if s.fn != nil {
			s.fn(f.Pkt, cycle)
		}
	}
}

// Router is a single-stage wormhole router. Route computation, VC
// allocation, switch allocation, and crossbar traversal are folded into one
// cycle (the paper's speculative/look-ahead single-stage router), so a flit
// advances one hop per cycle when it wins arbitration.
type Router struct {
	Pos   geom.Coord
	route RouteFunc

	// pipeline is the router traversal depth in cycles: 1 models the
	// paper's single-stage speculative router; 4 models the basic
	// RT/VA/SA/XBAR pipeline it improves upon (Section 3.2).
	pipeline uint64

	in  [geom.NumDirections]*InPort
	out [geom.NumDirections]Endpoint

	// Source (injection) queue: unbounded, so protocol layers above the
	// network can never deadlock on injection back-pressure. Source-queue
	// wait time is part of measured latency. The queue is a head-indexed
	// ring over one slice: draining advances srcHead (nil-ing the slot so
	// delivered packets are not pinned) and the slice compacts once the
	// drained prefix dominates, keeping capacity bounded by the high-water
	// occupancy instead of growing with total traffic.
	srcQ     []*Packet
	srcHead  int
	srcSeq   int
	srcVC    int
	buffered int // flits currently held in input VCs
	// occ is the occupancy bitmask over (input port, VC) slots; arbitration
	// visits only occupied slots, so router work scales with buffered
	// flits rather than port count.
	occ uint32
	// work, when set, is invoked on the idle-to-busy transition so the
	// fabric can keep an active-router list instead of ticking every
	// router every cycle.
	work func()
	// rot rotates the arbitration starting slot each cycle for fairness.
	rot uint

	// ForwardedFlits counts flits sent through this router's crossbar,
	// for utilization and energy accounting.
	ForwardedFlits uint64

	// probe, when non-nil, receives packet-lifecycle events (per-hop
	// routing, VC-allocation stalls). Nil by default: every emission site
	// is guarded by one pointer comparison.
	probe *obs.Probe

	// atomicHops, when set, makes the per-flit Packet.Hops increment
	// atomic. The sharded fabric sets it on every router: a cross-layer
	// packet's flits can sit in routers on two layers at once, so two
	// shards may bump the counter in the same cycle. The increment
	// commutes, so the final value is order-independent; everything that
	// reads Hops (ejection stats, probe events) runs in the serial merge
	// phase after the barrier.
	atomicHops bool
}

// NewRouter creates a router at pos with the standard five physical
// channels (N/S/E/W/Local). Call AttachVertical to add the pillar port.
func NewRouter(pos geom.Coord, route RouteFunc) *Router {
	r := &Router{Pos: pos, route: route, srcVC: -1, pipeline: 1}
	for _, d := range []geom.Direction{geom.North, geom.South, geom.East, geom.West, geom.Local} {
		r.in[d] = &InPort{r: r, dir: d}
	}
	return r
}

// SetPipeline sets the router traversal latency in cycles (>= 1). The
// default single-stage router (1) folds route computation, VC allocation,
// switch allocation and crossbar traversal into one cycle; 4 models the
// basic four-stage router the paper contrasts against.
func (r *Router) SetPipeline(cycles int) {
	if cycles < 1 {
		cycles = 1
	}
	r.pipeline = uint64(cycles)
}

// In returns the input port facing the given direction, or nil if absent.
func (r *Router) In(d geom.Direction) *InPort { return r.in[d] }

// Connect wires the output port in direction d to an endpoint.
func (r *Router) Connect(d geom.Direction, ep Endpoint) { r.out[d] = ep }

// AttachVertical adds the pillar physical channel: an input port fed by the
// dTDMA bus and an output port into the bus transmitter.
func (r *Router) AttachVertical(tx Endpoint) {
	r.in[geom.Vertical] = &InPort{r: r, dir: geom.Vertical}
	r.out[geom.Vertical] = tx
}

// EnsureIn creates the input port facing direction d if absent. The fabric
// uses it to give 7-port 3D routers (the paper's rejected alternative to
// the dTDMA pillar, Section 3.1) their Up/Down physical channels.
func (r *Router) EnsureIn(d geom.Direction) *InPort {
	if r.in[d] == nil {
		r.in[d] = &InPort{r: r, dir: d}
	}
	return r.in[d]
}

// HasVertical reports whether this is a pillar (gateway) router.
func (r *Router) HasVertical() bool { return r.in[geom.Vertical] != nil }

// SetSink installs the local ejection callback.
func (r *Router) SetSink(fn SinkFunc) {
	r.out[geom.Local] = &sinkEndpoint{fn: fn}
}

// Inject queues a packet for injection at this router's local port.
func (r *Router) Inject(p *Packet) {
	if r.work != nil && r.Idle() {
		r.work()
	}
	r.srcQ = append(r.srcQ, p)
}

// SetWorkHook installs the idle-to-busy notification callback.
func (r *Router) SetWorkHook(fn func()) { r.work = fn }

// SetProbe attaches (or, with nil, detaches) the observability probe.
func (r *Router) SetProbe(p *obs.Probe) { r.probe = p }

// SetAtomicHops selects atomic Packet.Hops increments; see the field.
func (r *Router) SetAtomicHops(on bool) { r.atomicHops = on }

// QueuedPackets returns the number of packets waiting in the source queue.
func (r *Router) QueuedPackets() int { return len(r.srcQ) - r.srcHead }

// Idle reports whether the router holds no flits and has nothing to inject.
func (r *Router) Idle() bool { return r.buffered == 0 && r.srcHead == len(r.srcQ) }

// inject moves at most one flit per cycle from the source queue into the
// local input port, claiming a VC per packet like any upstream link would.
func (r *Router) inject(cycle uint64) {
	if r.srcHead == len(r.srcQ) {
		return
	}
	p := r.srcQ[r.srcHead]
	port := r.in[geom.Local]
	if r.srcVC < 0 {
		r.srcVC = port.AllocVC(p)
		if r.srcVC < 0 {
			return
		}
	}
	if !port.CanAccept(r.srcVC) {
		return
	}
	if r.srcSeq == 0 && p.Span != nil {
		p.Span.AddSourceWait(cycle - p.InjectedAt)
	}
	port.Accept(Flit{Type: flitTypeFor(r.srcSeq, p.Size), Pkt: p, Seq: r.srcSeq}, r.srcVC, cycle)
	r.srcSeq++
	if r.srcSeq == p.Size {
		r.srcQ[r.srcHead] = nil
		r.srcHead++
		r.srcSeq = 0
		r.srcVC = -1
		switch {
		case r.srcHead == len(r.srcQ):
			r.srcQ = r.srcQ[:0]
			r.srcHead = 0
		case r.srcHead > len(r.srcQ)/2:
			n := copy(r.srcQ, r.srcQ[r.srcHead:])
			clear(r.srcQ[n:])
			r.srcQ = r.srcQ[:n]
			r.srcHead = 0
		}
	}
}

// Tick advances the router one cycle: injection, then one arbitration pass
// over the occupied virtual channels. Each input port and each output port
// moves at most one flit per cycle (one crossbar input and output each);
// the starting slot rotates every cycle so competing flows share links
// fairly. Visiting only occupied slots keeps the per-cycle cost
// proportional to the flits actually buffered.
func (r *Router) Tick(cycle uint64) {
	if r.Idle() {
		return
	}
	r.inject(cycle)

	const slots = uint(geom.NumDirections) * NumVCs
	var usedIn, usedOut [geom.NumDirections]bool
	r.rot = (r.rot + 1) % slots
	// Rotate the occupancy view so arbitration starts at a different slot
	// each cycle.
	occ := r.occ>>r.rot | r.occ<<(slots-r.rot)
	mask := uint32(1)<<slots - 1
	occ &= mask
	for occ != 0 {
		bit := uint(bits.TrailingZeros32(occ))
		occ &^= 1 << bit
		idx := (bit + r.rot) % slots
		inDir := geom.Direction(idx / NumVCs)
		if usedIn[inDir] {
			continue
		}
		port := r.in[inDir]
		v := &port.vcs[idx%NumVCs]
		if v.empty() {
			continue
		}
		f := v.front()
		if f.arrived+r.pipeline > cycle {
			continue // still inside the router pipeline
		}
		if !v.routed {
			v.route = r.route(r.Pos, f.Pkt)
			v.routed = true
		}
		if usedOut[v.route] {
			continue
		}
		ep := r.out[v.route]
		if ep == nil {
			continue
		}
		if v.outVC < 0 {
			v.outVC = ep.AllocVC(f.Pkt)
			if v.outVC < 0 {
				if r.probe != nil {
					r.probe.Emit(obs.Event{
						Cycle: cycle, Kind: obs.EvVCStall,
						X: r.Pos.X, Y: r.Pos.Y, Layer: r.Pos.Layer,
						ID: f.Pkt.ID, A: uint64(v.route),
					})
				}
				continue // VC allocation stall
			}
		}
		if !ep.CanAccept(v.outVC) {
			continue // credit stall
		}
		fl := v.pop()
		r.buffered--
		if v.empty() {
			r.occ &^= 1 << idx
		}
		if r.atomicHops {
			atomic.AddInt32(&fl.Pkt.Hops, 1)
		} else {
			fl.Pkt.Hops++
		}
		r.ForwardedFlits++
		if sp := fl.Pkt.Span; sp != nil && (fl.Type == Head || fl.Type == HeadTail) {
			sp.AddHop(cycle-fl.arrived, r.pipeline)
		}
		if r.probe != nil && (fl.Type == Head || fl.Type == HeadTail) {
			r.probe.Emit(obs.Event{
				Cycle: cycle, Kind: obs.EvHop,
				X: r.Pos.X, Y: r.Pos.Y, Layer: r.Pos.Layer,
				ID: fl.Pkt.ID, A: uint64(v.route), B: uint64(fl.Pkt.Size),
			})
		}
		ep.Accept(fl, v.outVC, cycle)
		usedIn[inDir] = true
		usedOut[v.route] = true
		if fl.Type == Tail || fl.Type == HeadTail {
			v.release()
		}
	}
}
