package noc

import (
	"testing"

	"repro/internal/geom"
)

// straightRoute routes toward Dst with plain in-plane DOR.
func straightRoute(pos geom.Coord, p *Packet) geom.Direction {
	return geom.DOR(pos, p.Dst)
}

// line builds a 1xN chain of routers connected east-west, with a delivery
// recorder on the last router.
func line(n int) (routers []*Router, delivered *[]*Packet) {
	var got []*Packet
	routers = make([]*Router, n)
	for i := range routers {
		routers[i] = NewRouter(geom.Coord{X: i}, straightRoute)
	}
	for i := 0; i < n-1; i++ {
		routers[i].Connect(geom.East, routers[i+1].In(geom.West))
		routers[i+1].Connect(geom.West, routers[i].In(geom.East))
	}
	for _, r := range routers {
		r.SetSink(func(p *Packet, cycle uint64) { got = append(got, p) })
	}
	return routers, &got
}

func tickAll(routers []*Router, cycles int) {
	for c := 0; c < cycles; c++ {
		for _, r := range routers {
			r.Tick(uint64(c))
		}
	}
}

func TestFlitTypeFor(t *testing.T) {
	if flitTypeFor(0, 1) != HeadTail {
		t.Error("single-flit packet must be HeadTail")
	}
	if flitTypeFor(0, 4) != Head || flitTypeFor(1, 4) != Body ||
		flitTypeFor(2, 4) != Body || flitTypeFor(3, 4) != Tail {
		t.Error("wrong flit sequence for 4-flit packet")
	}
}

func TestVCRangePhases(t *testing.T) {
	same := &Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: geom.Coord{X: 1, Y: 1, Layer: 0}}
	lo, hi := same.vcRange()
	if lo != 0 || hi != NumVCs-1 {
		t.Errorf("same-layer range [%d,%d]", lo, hi)
	}
	cross := &Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: geom.Coord{X: 1, Y: 1, Layer: 1}}
	lo, hi = cross.vcRange()
	if lo != 0 || hi != NumVCs-2 {
		t.Errorf("phase-0 range [%d,%d]", lo, hi)
	}
	cross.MarkVertical()
	lo, hi = cross.vcRange()
	if lo != NumVCs-1 || hi != NumVCs-1 {
		t.Errorf("phase-1 range [%d,%d]", lo, hi)
	}
}

func TestSimpleForwarding(t *testing.T) {
	routers, got := line(3)
	routers[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 2}, Size: 1})
	tickAll(routers, 10)
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets", len(*got))
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	// Two 4-flit packets from the same source to the same destination must
	// not interleave flits within one VC; both must arrive complete.
	routers, got := line(4)
	for i := 0; i < 2; i++ {
		routers[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 3}, Size: 4})
	}
	tickAll(routers, 50)
	if len(*got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(*got))
	}
}

func TestInjectionBackpressure(t *testing.T) {
	// With the destination far away and many packets queued, the source
	// queue drains gradually; nothing is lost.
	routers, got := line(2)
	const n = 20
	for i := 0; i < n; i++ {
		routers[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 1}, Size: 4})
	}
	if routers[0].QueuedPackets() != n {
		t.Fatalf("queued = %d", routers[0].QueuedPackets())
	}
	tickAll(routers, 400)
	if len(*got) != n {
		t.Fatalf("delivered %d of %d", len(*got), n)
	}
	if !routers[0].Idle() || !routers[1].Idle() {
		t.Error("routers should be idle when done")
	}
}

func TestMergingTrafficFairness(t *testing.T) {
	// Two flows merging into one output must both make progress
	// (round-robin switch allocation).
	//
	//   r0 --E--> r2 <--W-- (injection at r2 itself goes to r3)
	// Build: r0 -> r1 -> r3 and r2 -> r1 -> r3 style merge via a cross.
	mid := NewRouter(geom.Coord{X: 1}, straightRoute)
	left := NewRouter(geom.Coord{X: 0}, straightRoute)
	right := NewRouter(geom.Coord{X: 2}, straightRoute) // routes West to mid? no: dst at X=1
	sinkCount := map[uint64]bool{}
	mid.SetSink(func(p *Packet, cycle uint64) { sinkCount[p.ID] = true })
	left.Connect(geom.East, mid.In(geom.West))
	right.Connect(geom.West, mid.In(geom.East))
	var id uint64
	for i := 0; i < 10; i++ {
		id++
		p := &Packet{ID: id, Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 1}, Size: 4}
		left.Inject(p)
		id++
		q := &Packet{ID: id, Src: geom.Coord{X: 2}, Dst: geom.Coord{X: 1}, Size: 4}
		right.Inject(q)
	}
	all := []*Router{left, right, mid}
	tickAll(all, 300)
	if len(sinkCount) != 20 {
		t.Fatalf("delivered %d of 20 merged packets", len(sinkCount))
	}
}

func TestVCAllocationExhaustion(t *testing.T) {
	r := NewRouter(geom.Coord{}, straightRoute)
	port := r.In(geom.West)
	p1 := &Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 3}, Size: 4}
	var claimed []int
	for i := 0; i < NumVCs; i++ {
		v := port.AllocVC(p1)
		if v < 0 {
			t.Fatalf("VC %d allocation failed", i)
		}
		claimed = append(claimed, v)
	}
	if v := port.AllocVC(p1); v != -1 {
		t.Fatalf("expected exhaustion, got VC %d", v)
	}
	// All claimed VCs distinct.
	seen := map[int]bool{}
	for _, v := range claimed {
		if seen[v] {
			t.Fatalf("VC %d claimed twice", v)
		}
		seen[v] = true
	}
}

func TestPhase0CannotTakeEscapeVC(t *testing.T) {
	r := NewRouter(geom.Coord{}, straightRoute)
	port := r.In(geom.West)
	cross := &Packet{Src: geom.Coord{Layer: 0}, Dst: geom.Coord{Layer: 1}}
	n := 0
	for port.AllocVC(cross) >= 0 {
		n++
	}
	if n != NumVCs-1 {
		t.Fatalf("phase-0 packet claimed %d VCs, want %d", n, NumVCs-1)
	}
	// The escape VC must still be free for a phase-1 packet.
	p1 := &Packet{Src: geom.Coord{Layer: 0}, Dst: geom.Coord{Layer: 1}}
	p1.MarkVertical()
	if v := port.AllocVC(p1); v != NumVCs-1 {
		t.Fatalf("phase-1 packet got VC %d, want %d", v, NumVCs-1)
	}
}

func TestCanAcceptRespectsDepth(t *testing.T) {
	r := NewRouter(geom.Coord{}, straightRoute)
	port := r.In(geom.West)
	p := &Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 3}, Size: VCDepth + 1}
	v := port.AllocVC(p)
	for i := 0; i < VCDepth; i++ {
		if !port.CanAccept(v) {
			t.Fatalf("CanAccept false at flit %d", i)
		}
		port.Accept(Flit{Type: flitTypeFor(i, p.Size), Pkt: p, Seq: i}, v, 0)
	}
	if port.CanAccept(v) {
		t.Error("CanAccept true on a full VC")
	}
}

func TestIdleRouterCheap(t *testing.T) {
	r := NewRouter(geom.Coord{}, straightRoute)
	if !r.Idle() {
		t.Fatal("fresh router must be idle")
	}
	r.Tick(0) // must not panic with no connections
	r.Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 0}, Size: 1})
	if r.Idle() {
		t.Fatal("router with queued packet is not idle")
	}
}

func TestSelfDelivery(t *testing.T) {
	// A packet whose source equals destination ejects locally.
	r := NewRouter(geom.Coord{X: 0}, straightRoute)
	var got *Packet
	r.SetSink(func(p *Packet, cycle uint64) { got = p })
	r.Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 0}, Size: 1})
	for c := 0; c < 5; c++ {
		r.Tick(uint64(c))
	}
	if got == nil {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestForwardedFlitsCounter(t *testing.T) {
	routers, got := line(2)
	routers[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 1}, Size: 4})
	tickAll(routers, 20)
	if len(*got) != 1 {
		t.Fatal("packet not delivered")
	}
	// Source router forwards 4 flits east; sink router forwards 4 to local.
	if routers[0].ForwardedFlits != 4 || routers[1].ForwardedFlits != 4 {
		t.Errorf("forwarded = %d,%d; want 4,4",
			routers[0].ForwardedFlits, routers[1].ForwardedFlits)
	}
}
