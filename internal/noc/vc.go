package noc

import "repro/internal/geom"

// vc is one virtual channel: a FIFO flit buffer one message deep, owned by
// at most one packet at a time (wormhole switching). Ownership is taken when
// the upstream router allocates the VC for a head flit and released when the
// tail flit leaves the buffer.
type vc struct {
	buf  [VCDepth]Flit
	head int
	n    int

	owner *Packet // packet currently holding this VC; nil when free
	// routed reports whether route/outVC below are valid for the owner.
	routed bool
	route  geom.Direction // output direction chosen for the owner
	outVC  int            // allocated VC index at the downstream endpoint, -1 if none
}

func (v *vc) empty() bool { return v.n == 0 }
func (v *vc) full() bool  { return v.n == VCDepth }

// free reports whether a new packet may claim this VC.
func (v *vc) free() bool { return v.owner == nil }

// claim assigns the VC to a packet and resets routing state.
func (v *vc) claim(p *Packet) {
	v.owner = p
	v.routed = false
	v.outVC = -1
}

// release frees the VC after its packet's tail flit has departed.
func (v *vc) release() {
	v.owner = nil
	v.routed = false
	v.outVC = -1
}

// push appends a flit. The caller must have checked full().
func (v *vc) push(f Flit) {
	v.buf[(v.head+v.n)%VCDepth] = f
	v.n++
}

// front returns the flit at the head of the FIFO. The caller must have
// checked empty().
func (v *vc) front() *Flit {
	return &v.buf[v.head]
}

// pop removes and returns the head flit.
func (v *vc) pop() Flit {
	f := v.buf[v.head]
	v.head = (v.head + 1) % VCDepth
	v.n--
	return f
}
