package noc

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// occConsistent verifies the router's occupancy bitmask matches the actual
// VC buffer states — the invariant the fast arbitration path depends on.
func occConsistent(r *Router) bool {
	for d := geom.Direction(0); d < geom.NumDirections; d++ {
		port := r.in[d]
		if port == nil {
			continue
		}
		for v := 0; v < NumVCs; v++ {
			bit := r.occ&(1<<(uint(d)*NumVCs+uint(v))) != 0
			if bit != !port.vcs[v].empty() {
				return false
			}
		}
	}
	return true
}

func TestOccupancyInvariantUnderRandomTraffic(t *testing.T) {
	// Drive a small chain with random packet sizes and checks the
	// occupancy bitmask against buffer state every cycle.
	routers, got := line(4)
	rng := rand.New(rand.NewSource(11))
	sent := 0
	for c := 0; c < 3000; c++ {
		if rng.Intn(4) == 0 {
			size := 1 + rng.Intn(VCDepth)
			routers[rng.Intn(3)].Inject(&Packet{
				Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 3}, Size: size,
			})
			sent++
		}
		for _, r := range routers {
			r.Tick(uint64(c))
		}
		for i, r := range routers {
			if !occConsistent(r) {
				t.Fatalf("cycle %d: router %d occupancy bitmask inconsistent", c, i)
			}
		}
	}
	for c := 3000; c < 4000 && len(*got) < sent; c++ {
		for _, r := range routers {
			r.Tick(uint64(c))
		}
	}
	if len(*got) != sent {
		t.Fatalf("delivered %d of %d", len(*got), sent)
	}
}

func TestPipelineDelaysForwarding(t *testing.T) {
	routers, got := line(2)
	for _, r := range routers {
		r.SetPipeline(4)
	}
	routers[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 1}, Size: 1})
	// Injection lands the flit at cycle 0; with a 4-cycle pipeline it may
	// not leave router 0 before cycle 4, so delivery happens at >= cycle 8
	// (two routers).
	deliveredAt := -1
	for c := 0; c < 30 && deliveredAt < 0; c++ {
		for _, r := range routers {
			r.Tick(uint64(c))
		}
		if len(*got) == 1 {
			deliveredAt = c
		}
	}
	if deliveredAt < 8 {
		t.Errorf("4-stage pipeline delivered at cycle %d, want >= 8", deliveredAt)
	}
	// Single-stage routers deliver the same trip in 2 cycles.
	fast, fgot := line(2)
	fast[0].Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 1}, Size: 1})
	fastAt := -1
	for c := 0; c < 30 && fastAt < 0; c++ {
		for _, r := range fast {
			r.Tick(uint64(c))
		}
		if len(*fgot) == 1 {
			fastAt = c
		}
	}
	if fastAt >= deliveredAt {
		t.Errorf("single-stage (%d) not faster than 4-stage (%d)", fastAt, deliveredAt)
	}
}

func TestSetPipelineClampsToOne(t *testing.T) {
	r := NewRouter(geom.Coord{}, straightRoute)
	r.SetPipeline(0)
	if r.pipeline != 1 {
		t.Errorf("pipeline = %d, want clamp to 1", r.pipeline)
	}
	r.SetPipeline(-3)
	if r.pipeline != 1 {
		t.Errorf("pipeline = %d, want clamp to 1", r.pipeline)
	}
}

func TestWorkHookFiresOnIdleTransitions(t *testing.T) {
	r := NewRouter(geom.Coord{X: 0}, straightRoute)
	r.SetSink(func(p *Packet, cycle uint64) {})
	fires := 0
	r.SetWorkHook(func() { fires++ })
	r.Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 0}, Size: 1})
	if fires != 1 {
		t.Fatalf("hook fired %d times on first injection, want 1", fires)
	}
	// A second injection while busy must not re-fire.
	r.Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 0}, Size: 1})
	if fires != 1 {
		t.Fatalf("hook fired %d times while busy, want 1", fires)
	}
	// Drain, then a new injection fires again.
	for c := 0; c < 20; c++ {
		r.Tick(uint64(c))
	}
	if !r.Idle() {
		t.Fatal("router did not drain")
	}
	r.Inject(&Packet{Src: geom.Coord{X: 0}, Dst: geom.Coord{X: 0}, Size: 1})
	if fires != 2 {
		t.Fatalf("hook fired %d times after drain, want 2", fires)
	}
}
