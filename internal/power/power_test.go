package power

import (
	"math"
	"testing"
)

func TestTable1Values(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(rows))
	}
	// The paper's exact numbers.
	want := []Component{
		{"Generic NoC Router (5-port)", 119.55, 0.3748},
		{"dTDMA Bus Rx/Tx (2 per client)", 0.09739, 0.00036207},
		{"dTDMA Bus Arbiter (1 per bus)", 0.20498, 0.00065480},
	}
	for i, w := range want {
		if rows[i].Name != w.Name {
			t.Errorf("row %d name %q", i, rows[i].Name)
		}
		if math.Abs(rows[i].PowerMW-w.PowerMW) > 1e-9 || math.Abs(rows[i].AreaMM2-w.AreaMM2) > 1e-9 {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

func TestDTDMAComponentsOrdersOfMagnitudeSmaller(t *testing.T) {
	// The paper's argument: both the transceiver and arbiter are orders of
	// magnitude below the router in area and power.
	if RouterPowerMW/TransceiverPowerMW < 100 {
		t.Error("transceiver power not orders of magnitude below the router")
	}
	if RouterPowerMW/ArbiterPowerMW < 100 {
		t.Error("arbiter power not orders of magnitude below the router")
	}
	if RouterAreaMM2/TransceiverAreaMM2 < 100 || RouterAreaMM2/ArbiterAreaMM2 < 100 {
		t.Error("dTDMA areas not orders of magnitude below the router")
	}
}

func TestPillarWires(t *testing.T) {
	// 4-layer chip: 128 data + 3 x 14 control = 170 wires (Table 2).
	if got := PillarWires(4); got != 170 {
		t.Errorf("PillarWires(4) = %d, want 170", got)
	}
}

func TestTable2Areas(t *testing.T) {
	// The paper's Table 2 row: 62500 / 15625 / 625 / 25 um^2.
	want := map[float64]float64{10: 62500, 5: 15625, 1: 625, 0.2: 25}
	for _, pitch := range Table2Pitches {
		got := PillarAreaUM2(pitch)
		if math.Abs(got-want[pitch]) > 1e-6 {
			t.Errorf("pitch %.1f: area %.2f, want %.2f", pitch, got, want[pitch])
		}
	}
}

func TestPillarOverheadAt5um(t *testing.T) {
	// "Even at a pitch of 5 um, a pillar induces an area overhead of around
	// 4% to the generic 5-port NoC router."
	got := PillarAreaOverheadVsRouter(5)
	if got < 0.03 || got > 0.05 {
		t.Errorf("5 um overhead = %.4f, want ~0.04", got)
	}
	// At 0.2 um the overhead is negligible (well below 0.1%).
	if PillarAreaOverheadVsRouter(0.2) > 0.001 {
		t.Error("0.2 um overhead not negligible")
	}
}

func TestEnergyEstimate(t *testing.T) {
	e := Estimate(1000, 100, 50, 20, 400, 3)
	if e.NetworkPJ != 1000*EnergyPerFlitHopPJ {
		t.Errorf("NetworkPJ = %f", e.NetworkPJ)
	}
	if e.BusPJ != 100*EnergyPerBusFlitPJ {
		t.Errorf("BusPJ = %f", e.BusPJ)
	}
	wantBanks := 50*EnergyPerBankReadPJ + 20*EnergyPerBankWritePJ
	if math.Abs(e.BanksPJ-wantBanks) > 1e-9 {
		t.Errorf("BanksPJ = %f, want %f", e.BanksPJ, wantBanks)
	}
	if e.TagsPJ != 400*EnergyPerTagprobePJ {
		t.Errorf("TagsPJ = %f", e.TagsPJ)
	}
	total := e.NetworkPJ + e.BusPJ + e.BanksPJ + e.TagsPJ + e.MigrationPJ
	if math.Abs(e.TotalPJ()-total) > 1e-9 {
		t.Error("TotalPJ does not sum components")
	}
	// Zero events, zero energy.
	if z := Estimate(0, 0, 0, 0, 0, 0); z.TotalPJ() != 0 {
		t.Error("zero events must give zero energy")
	}
}

func TestTelemetryModelMatchesEstimateConstants(t *testing.T) {
	// The per-event telemetry calibration and the aggregate Estimate must
	// charge from the same Table 1 numbers, or the thermal pipeline's
	// energy breakdown would silently diverge from the printed estimate.
	m := TelemetryModel()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"ClockHz", m.ClockHz, ClockHz},
		{"FlitHopPJ", m.FlitHopPJ, EnergyPerFlitHopPJ},
		{"VCStallPJ", m.VCStallPJ, EnergyPerVCStallPJ},
		{"BusFlitPJ", m.BusFlitPJ, EnergyPerBusFlitPJ},
		{"TagProbePJ", m.TagProbePJ, EnergyPerTagprobePJ},
		{"BankReadPJ", m.BankReadPJ, EnergyPerBankReadPJ},
		{"BankWritePJ", m.BankWritePJ, EnergyPerBankWritePJ},
		{"MigrationPJ", m.MigrationPJ, EnergyPerBankReadPJ},
		{"InstrPJ", m.InstrPJ, EnergyPerInstrPJ},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("TelemetryModel.%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	// 8 W at 500 MHz is 16 nJ per cycle-instruction.
	if math.Abs(EnergyPerInstrPJ-16000) > 1e-9 {
		t.Errorf("EnergyPerInstrPJ = %v, want 16000 (8 W / 500 MHz)", EnergyPerInstrPJ)
	}
	if ClockHz != 500e6 {
		t.Errorf("ClockHz = %v, want 500 MHz", ClockHz)
	}
}

func TestMigrationEnergyMonotonic(t *testing.T) {
	// More migrations strictly cost more energy: the basis of the paper's
	// claim that 3D's reduced migration count saves L2 power.
	a := Estimate(0, 0, 0, 0, 0, 10)
	b := Estimate(0, 0, 0, 0, 0, 100)
	if b.MigrationPJ <= a.MigrationPJ {
		t.Error("migration energy not monotonic")
	}
}
