// Package power models the area and power of the Network-in-Memory
// components. It reproduces the paper's static characterizations — Table 1
// (90 nm synthesis results for the NoC router and the dTDMA bus transceiver
// and arbiter) and Table 2 (inter-wafer pillar wiring area versus via
// pitch) — and provides the dynamic-energy accounting used to compare
// schemes (network flit-hops, bank accesses, and migrations).
package power

import (
	"repro/internal/dtdma"
	"repro/internal/obs"
)

// Table 1: area and power of the dTDMA bus components next to a generic
// 5-port NoC router, synthesized in 90 nm TSMC libraries.
const (
	// RouterPowerMW is the generic 5-port NoC router power in milliwatts.
	RouterPowerMW = 119.55
	// RouterAreaMM2 is the router area in square millimeters.
	RouterAreaMM2 = 0.3748

	// TransceiverPowerMW is one dTDMA Rx/Tx pair's power in milliwatts
	// (97.39 uW); two are required per client.
	TransceiverPowerMW = 0.09739
	// TransceiverAreaMM2 is one Rx/Tx pair's area (0.00036207 mm^2).
	TransceiverAreaMM2 = 0.00036207

	// ArbiterPowerMW is the dTDMA bus arbiter power (204.98 uW); one per bus.
	ArbiterPowerMW = 0.20498
	// ArbiterAreaMM2 is the arbiter area (0.00065480 mm^2).
	ArbiterAreaMM2 = 0.00065480
)

// Component is one row of Table 1.
type Component struct {
	Name    string
	PowerMW float64
	AreaMM2 float64
}

// Table1 returns the paper's component characterization rows.
func Table1() []Component {
	return []Component{
		{Name: "Generic NoC Router (5-port)", PowerMW: RouterPowerMW, AreaMM2: RouterAreaMM2},
		{Name: "dTDMA Bus Rx/Tx (2 per client)", PowerMW: TransceiverPowerMW, AreaMM2: TransceiverAreaMM2},
		{Name: "dTDMA Bus Arbiter (1 per bus)", PowerMW: ArbiterPowerMW, AreaMM2: ArbiterAreaMM2},
	}
}

// BusDataBits is the pillar data width (128-bit bus).
const BusDataBits = 128

// PillarWires returns the total wire count of a pillar in an n-layer chip:
// the 128 data bits plus three control-wire groups of (3n + log2 n) wires
// each (Section 3.1; 170 wires for the paper's 4-layer example).
func PillarWires(layers int) int {
	return BusDataBits + 3*dtdma.ControlWires(layers)
}

// viaSitesPerPillar is the number of via sites a pillar occupies, including
// the keep-out spacing between vias and their landing pads. The paper's
// Table 2 areas correspond to a 25 x 25 site grid for the 170-wire 4-layer
// pillar (62,500 um^2 at a 10 um pitch down to 25 um^2 at 0.2 um).
const viaSitesPerPillar = 625

// PillarAreaUM2 returns the inter-wafer wiring area of one pillar in square
// micrometers for a given via pitch in micrometers (Table 2).
func PillarAreaUM2(viaPitchUM float64) float64 {
	return viaSitesPerPillar * viaPitchUM * viaPitchUM
}

// Table2Pitches lists the via pitches (um) evaluated in Table 2.
var Table2Pitches = []float64{10, 5, 1, 0.2}

// PillarAreaOverheadVsRouter returns the pillar wiring area as a fraction
// of the 5-port NoC router area — the paper's argument that at a 5 um
// pitch the overhead is around 4% and at 0.2 um it is negligible.
func PillarAreaOverheadVsRouter(viaPitchUM float64) float64 {
	routerAreaUM2 := RouterAreaMM2 * 1e6
	return PillarAreaUM2(viaPitchUM) / routerAreaUM2
}

// ClockHz is the nominal 90 nm operating frequency the Table 1 power
// numbers are characterized at (500 MHz); it converts per-event energies
// into window power for the telemetry pipeline.
const ClockHz = 500e6

// Per-event energies for the dynamic-energy comparison between schemes, in
// picojoules. Derived from the Table 1 power numbers at the nominal 90 nm
// clock (500 MHz): energy/cycle = power/frequency, attributed per flit-hop
// for the router and per bus transfer for the pillar; the bank and tag
// energies follow Cacti 3.2's 64 KB SRAM characterization.
const (
	EnergyPerFlitHopPJ   = 239.1 // router traversal of one 128-bit flit
	EnergyPerBusFlitPJ   = 0.97  // dTDMA pillar transfer (transceiver pair)
	EnergyPerBankReadPJ  = 430.0 // 64 KB bank read
	EnergyPerBankWritePJ = 470.0 // 64 KB bank write
	EnergyPerTagprobePJ  = 52.0  // 24 KB cluster tag array lookup

	// EnergyPerVCStallPJ charges a failed virtual-channel allocation: the
	// VA stage re-arbitrates while the flit stays buffered, a few percent
	// of a full router traversal.
	EnergyPerVCStallPJ = 12.0
	// EnergyPerInstrPJ is the per-instruction CPU energy implied by the
	// paper's Niagara-derived 8 W-per-core budget at the nominal clock:
	// a core at IPC 1 dissipates its full budget, an idle core only the
	// background (leakage folds into thermal.Params.CellPowerW).
	EnergyPerInstrPJ = CPUMaxPowerW / ClockHz * 1e12
	// CPUMaxPowerW is the Section 3.3 per-core power budget.
	CPUMaxPowerW = 8.0
)

// Drowsy/shutdown bank model, the DTM leakage actuator (internal/dtm):
// while its cell is above the trip point a bank drops to a drowsy
// retention state — supply lowered to the data-retention voltage, as in
// drowsy caches — and an access must first restore full voltage.
const (
	// DrowsyLeakageFraction is the share of a cell's background
	// (leakage) power a drowsy bank still draws. The SRAM array's
	// leakage collapses by roughly an order of magnitude at the
	// retention voltage; the cell's router share and periphery stay
	// powered, leaving about a quarter of the background draw.
	DrowsyLeakageFraction = 0.25
	// DrowsyWakeupCycles is the extra latency of an access that finds
	// its bank drowsy: the wordline supply must slew back to Vdd before
	// the 64 KB bank's sense amps are usable (a few cycles at 500 MHz).
	DrowsyWakeupCycles = 3
)

// DynamicEnergy summarizes the dynamic energy of a measurement window.
type DynamicEnergy struct {
	NetworkPJ   float64
	BusPJ       float64
	BanksPJ     float64
	TagsPJ      float64
	MigrationPJ float64
}

// TotalPJ returns the sum of all components.
func (d DynamicEnergy) TotalPJ() float64 {
	return d.NetworkPJ + d.BusPJ + d.BanksPJ + d.TagsPJ + d.MigrationPJ
}

// TelemetryModel returns the Table-1-calibrated per-event charging costs
// for the activity-driven telemetry pipeline (obs.EnergyAccountant). The
// constants live here so power stays the single calibration point; obs
// cannot import power (power imports dtdma, which imports obs), so the
// model is passed in by value. Migration steps charge the origin bank's
// read; the target's install charges its own write through the bank-write
// probe, so unlike Estimate the migration component here is read-only.
func TelemetryModel() obs.EnergyModel {
	return obs.EnergyModel{
		ClockHz:     ClockHz,
		FlitHopPJ:   EnergyPerFlitHopPJ,
		VCStallPJ:   EnergyPerVCStallPJ,
		BusFlitPJ:   EnergyPerBusFlitPJ,
		TagProbePJ:  EnergyPerTagprobePJ,
		BankReadPJ:  EnergyPerBankReadPJ,
		BankWritePJ: EnergyPerBankWritePJ,
		MigrationPJ: EnergyPerBankReadPJ,
		InstrPJ:     EnergyPerInstrPJ,
	}
}

// Estimate computes the window's dynamic energy from raw event counts.
// Migrations are charged their data movement explicitly (one bank read,
// one bank write, and the flit-hops are already inside flitHops).
func Estimate(flitHops, busFlits, bankReads, bankWrites, tagProbes, migrations uint64) DynamicEnergy {
	return DynamicEnergy{
		NetworkPJ:   float64(flitHops) * EnergyPerFlitHopPJ,
		BusPJ:       float64(busFlits) * EnergyPerBusFlitPJ,
		BanksPJ:     float64(bankReads)*EnergyPerBankReadPJ + float64(bankWrites)*EnergyPerBankWritePJ,
		TagsPJ:      float64(tagProbes) * EnergyPerTagprobePJ,
		MigrationPJ: float64(migrations) * (EnergyPerBankReadPJ + EnergyPerBankWritePJ),
	}
}
