// Package dtdma implements the dynamic Time-Division Multiple Access bus
// that the paper uses as the vertical "Communication Pillar" between device
// layers (Section 3.1). The bus spans all layers and provides single-hop
// communication between any pair of layers: one flit crosses the entire
// stack per bus cycle regardless of how many layers it skips, because the
// inter-wafer distance (tens of microns) is negligible next to in-plane
// router-to-router wiring.
//
// The dTDMA arbiter eliminates the transactional character of a classic
// bus: instead of request/grant transactions it maintains a timeslot wheel
// that dynamically grows and shrinks to match the number of *active*
// clients, which makes the bus nearly 100% bandwidth efficient. With k
// layers holding pending flits, each receives every k-th slot; idle layers
// consume no slots at all. This package models that allocation exactly as a
// round-robin rotation over the currently active transmitters.
package dtdma

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/noc"
	"repro/internal/obs"
)

// txBufDepth is the pillar transmitter buffer depth in flits: one message,
// matching the router VC depth (Figure 7's output buffer).
const txBufDepth = noc.VCDepth

// tx is the per-layer transmitter: the buffer between a pillar router's
// vertical output port and the shared bus wires. Like a router VC it is
// held by one packet at a time (wormhole).
type tx struct {
	buf    [txBufDepth]noc.Flit
	head   int
	n      int
	owner  *noc.Packet
	landVC int // allocated VC at the destination layer's vertical input
}

func (t *tx) empty() bool { return t.n == 0 }
func (t *tx) full() bool  { return t.n == txBufDepth }

func (t *tx) push(f noc.Flit) {
	t.buf[(t.head+t.n)%txBufDepth] = f
	t.n++
}

func (t *tx) front() *noc.Flit { return &t.buf[t.head] }

func (t *tx) pop() noc.Flit {
	f := t.buf[t.head]
	t.head = (t.head + 1) % txBufDepth
	t.n--
	return f
}

// TxPort is the noc.Endpoint a pillar router's vertical output connects to:
// the transmitter for one layer of one bus.
type TxPort struct {
	b     *Bus
	layer int
}

// AllocVC claims the transmitter for a packet, or returns -1 if occupied.
func (p *TxPort) AllocVC(pkt *noc.Packet) int {
	t := &p.b.txs[p.layer]
	if t.owner != nil {
		return -1
	}
	t.owner = pkt
	t.landVC = -1
	return 0
}

// CanAccept reports whether the transmitter buffer has space.
func (p *TxPort) CanAccept(v int) bool { return !p.b.txs[p.layer].full() }

// Accept buffers a flit for transmission.
func (p *TxPort) Accept(f noc.Flit, v int, cycle uint64) {
	f.SetArrived(cycle)
	p.b.txs[p.layer].push(f)
	if p.b.deferPending {
		// Parallel router phase of a sharded fabric: each transmitter
		// buffer is written only by its own layer's router, but pending and
		// the busy hook are bus-global state shared by every layer —
		// EndDeferredPending reconciles them at the horizon barrier.
		return
	}
	if p.b.pending == 0 && p.b.onBusy != nil {
		p.b.onBusy()
	}
	p.b.pending++
}

// Bus is one communication pillar: a b-bit dTDMA bus spanning every layer
// at a fixed in-plane position, with one transceiver per layer and a single
// centralized arbiter.
type Bus struct {
	id     int
	pos    geom.Coord // in-plane position; Layer is ignored
	layers int

	txs []tx
	// rx[i] is the vertical input port of the pillar router on layer i.
	rx []noc.Endpoint

	next    int // dTDMA rotation pointer over layers
	pending int // flits buffered across all transmitters

	// BusyCycles counts cycles in which a flit crossed the bus; TotalFlits
	// counts flits transferred. Used for utilization and energy reports.
	BusyCycles uint64
	TotalFlits uint64

	// probe, when non-nil, receives dTDMA arbitration events: slot-wheel
	// grow/shrink and per-flit bus grants. lastClients is the active-client
	// count as of the previous probed tick, for edge detection.
	probe       *obs.Probe
	lastClients int

	// onBusy/onIdle fire on the pending 0->1 and 1->0 edges, letting the
	// fabric keep a busy-bus count instead of scanning every bus.
	onBusy, onIdle func()

	// deferPending, when set, makes Accept skip the pending counter and
	// the busy hook so routers on different layers may push into their
	// transmitters concurrently; see BeginDeferredPending.
	deferPending bool
}

// NewBus creates a pillar bus with the given in-plane position spanning the
// given number of layers. Receivers must be attached per layer before use.
func NewBus(id int, pos geom.Coord, layers int) *Bus {
	if layers < 1 {
		panic("dtdma: bus needs at least one layer")
	}
	return &Bus{
		id:     id,
		pos:    geom.Coord{X: pos.X, Y: pos.Y},
		layers: layers,
		txs:    make([]tx, layers),
		rx:     make([]noc.Endpoint, layers),
	}
}

// ID returns the pillar's identifier.
func (b *Bus) ID() int { return b.id }

// Pos returns the pillar's in-plane position (Layer field is 0).
func (b *Bus) Pos() geom.Coord { return b.pos }

// Layers returns the number of layers the pillar spans.
func (b *Bus) Layers() int { return b.layers }

// Tx returns the transmitter endpoint for the given layer, to be wired as
// the pillar router's vertical output.
func (b *Bus) Tx(layer int) *TxPort {
	if layer < 0 || layer >= b.layers {
		panic(fmt.Sprintf("dtdma: layer %d out of range [0,%d)", layer, b.layers))
	}
	return &TxPort{b: b, layer: layer}
}

// AttachRx wires the receiver for a layer: the vertical input port of that
// layer's pillar router.
func (b *Bus) AttachRx(layer int, ep noc.Endpoint) {
	if layer < 0 || layer >= b.layers {
		panic(fmt.Sprintf("dtdma: layer %d out of range [0,%d)", layer, b.layers))
	}
	b.rx[layer] = ep
}

// SetProbe attaches (or, with nil, detaches) the observability probe. The
// bus emits EvSlotGrow/EvSlotShrink on slot-wheel resizing and one
// EvBusGrant per transferred flit carrying the transceiver pair (A = the
// transmitting layer, B = the destination layer) — the energy accountant
// charges half the flit's transfer energy at each end.
func (b *Bus) SetProbe(p *obs.Probe) { b.probe = p }

// SetBusyHooks installs the edge callbacks invoked when the bus transitions
// between empty and holding pending flits.
func (b *Bus) SetBusyHooks(onBusy, onIdle func()) {
	b.onBusy, b.onIdle = onBusy, onIdle
}

// Idle reports whether no transmitter holds flits.
func (b *Bus) Idle() bool { return b.pending == 0 }

// BeginDeferredPending opens a window in which Accept leaves the
// bus-global pending counter and busy hook untouched, so per-layer
// transmitters can be filled concurrently. The sharded fabric brackets
// its parallel router phase with Begin/EndDeferredPending; the bus must
// not Tick inside the window.
func (b *Bus) BeginDeferredPending() { b.deferPending = true }

// EndDeferredPending closes the deferred window: it recounts pending from
// the transmitter buffers and fires the busy hook on the empty-to-busy
// edge. Flits are only ever added during the window (the bus ticks
// outside it), so the recount can only grow pending and at most one busy
// edge can have occurred — the hook fires exactly as often as it would
// have under serial Accepts.
func (b *Bus) EndDeferredPending() {
	b.deferPending = false
	n := 0
	for i := range b.txs {
		n += b.txs[i].n
	}
	if b.pending == 0 && n > 0 && b.onBusy != nil {
		b.onBusy()
	}
	b.pending = n
}

// ActiveClients returns the number of layers with pending flits — the
// number of timeslots the dTDMA arbiter currently allocates.
func (b *Bus) ActiveClients() int {
	n := 0
	for i := range b.txs {
		if !b.txs[i].empty() {
			n++
		}
	}
	return n
}

// Tick advances the bus one cycle. The arbiter's dynamic slot wheel is
// modeled by rotating over active transmitters: the first active layer at
// or after the rotation pointer whose head flit can land transfers exactly
// one flit across the stack (single hop, any layer distance). The bus ticks
// after the routers each cycle and may forward a flit in the cycle it
// entered the transmitter: the pillar interface is pipelined with the
// crossing, reflecting the negligible inter-wafer distance that motivates
// the single-hop design.
func (b *Bus) Tick(cycle uint64) {
	if b.probe != nil {
		// The slot wheel resizes whenever the set of layers holding
		// pending flits changed since the last tick (Section 3.1's dynamic
		// timeslot allocation).
		if n := b.ActiveClients(); n != b.lastClients {
			kind := obs.EvSlotGrow
			if n < b.lastClients {
				kind = obs.EvSlotShrink
			}
			b.probe.Emit(obs.Event{
				Cycle: cycle, Kind: kind, X: b.pos.X, Y: b.pos.Y,
				ID: uint64(b.id), A: uint64(n), B: uint64(b.lastClients),
			})
			b.lastClients = n
		}
	}
	if b.pending == 0 {
		return
	}
	for i := 0; i < b.layers; i++ {
		layer := (b.next + i) % b.layers
		t := &b.txs[layer]
		if t.empty() {
			continue
		}
		f := t.front()
		if f.Arrived() > cycle {
			continue
		}
		pkt := f.Pkt
		dstLayer := pkt.Dst.Layer
		ep := b.rx[dstLayer]
		if ep == nil {
			panic(fmt.Sprintf("dtdma: bus %d has no receiver on layer %d", b.id, dstLayer))
		}
		if t.landVC < 0 {
			// The packet completes its vertical traversal this transfer;
			// promote it to phase 1 so it lands on the escape VC class.
			pkt.MarkVertical()
			t.landVC = ep.AllocVC(pkt)
			if t.landVC < 0 {
				continue // no landing VC free; try another client
			}
		}
		if !ep.CanAccept(t.landVC) {
			continue
		}
		fl := t.pop()
		b.pending--
		if b.pending == 0 && b.onIdle != nil {
			b.onIdle()
		}
		fl.Pkt.Hops++
		if sp := fl.Pkt.Span; sp != nil && (fl.Type == noc.Head || fl.Type == noc.HeadTail) {
			sp.AddBus(cycle - fl.Arrived())
		}
		if b.probe != nil {
			b.probe.Emit(obs.Event{
				Cycle: cycle, Kind: obs.EvBusGrant, X: b.pos.X, Y: b.pos.Y,
				Layer: layer, ID: uint64(b.id), A: uint64(layer), B: uint64(dstLayer),
			})
		}
		ep.Accept(fl, t.landVC, cycle)
		b.BusyCycles++
		b.TotalFlits++
		if fl.Type == noc.Tail || fl.Type == noc.HeadTail {
			t.owner = nil
			t.landVC = -1
		}
		b.next = (layer + 1) % b.layers
		return // one flit per bus per cycle
	}
}

// ControlWires returns the number of arbiter control wires for n layers:
// 3n + ceil(log2(n)), per Section 3.1.
func ControlWires(n int) int {
	if n < 1 {
		return 0
	}
	log := 0
	for v := n - 1; v > 0; v >>= 1 {
		log++
	}
	return 3*n + log
}
