package dtdma

import "repro/internal/digest"

// DigestFold folds the bus's dTDMA slot state: the arbitration wheel
// position, pending-flit counter, utilization counters, and every
// per-layer transmit buffer in FIFO order with its owning packet and
// latched landing VC. The probe and busy/idle hooks are host-side
// observers; deferPending is always false by the time tickers run.
func (b *Bus) DigestFold(r *digest.Recorder) {
	r.FoldInt(b.next)
	r.FoldInt(b.pending)
	r.Fold(b.BusyCycles)
	r.Fold(b.TotalFlits)
	for i := range b.txs {
		t := &b.txs[i]
		r.FoldInt(t.n)
		for j := 0; j < t.n; j++ {
			t.buf[(t.head+j)%txBufDepth].DigestFold(r)
		}
		r.FoldBool(t.owner != nil)
		if t.owner != nil {
			r.Fold(t.owner.ID)
		}
		r.FoldInt(t.landVC)
	}
}
