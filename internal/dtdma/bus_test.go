package dtdma

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/noc"
)

// collector is a test receiver that accepts every flit and records packet
// tails per layer.
type collector struct {
	flits   int
	packets []*noc.Packet
}

func (c *collector) AllocVC(p *noc.Packet) int { return 0 }
func (c *collector) CanAccept(v int) bool      { return true }
func (c *collector) Accept(f noc.Flit, v int, cycle uint64) {
	c.flits++
	if f.Type == noc.Tail || f.Type == noc.HeadTail {
		c.packets = append(c.packets, f.Pkt)
	}
}

// blockedRx refuses everything, to exercise back-pressure.
type blockedRx struct{}

func (blockedRx) AllocVC(p *noc.Packet) int          { return -1 }
func (blockedRx) CanAccept(v int) bool               { return false }
func (blockedRx) Accept(f noc.Flit, v int, c uint64) { panic("must not accept") }

func newPacket(srcL, dstL, size int) *noc.Packet {
	return &noc.Packet{
		Src:  geom.Coord{X: 1, Y: 1, Layer: srcL},
		Dst:  geom.Coord{X: 1, Y: 1, Layer: dstL},
		Size: size,
	}
}

// load pushes all flits of p into the bus transmitter for layer l,
// returning false if the transmitter was occupied.
func load(b *Bus, l int, p *noc.Packet, cycle uint64) bool {
	tx := b.Tx(l)
	if tx.AllocVC(p) < 0 {
		return false
	}
	for i := 0; i < p.Size; i++ {
		typ := noc.Head
		switch {
		case p.Size == 1:
			typ = noc.HeadTail
		case i == p.Size-1:
			typ = noc.Tail
		case i > 0:
			typ = noc.Body
		}
		tx.Accept(noc.Flit{Type: typ, Pkt: p, Seq: i}, 0, cycle)
	}
	return true
}

func TestSingleHopAnyLayerDistance(t *testing.T) {
	// A flit from layer 0 to layer 3 crosses in one bus cycle, same as to
	// layer 1: the defining property of the pillar.
	for _, dst := range []int{1, 3} {
		b := NewBus(0, geom.Coord{X: 1, Y: 1}, 4)
		rx := make([]*collector, 4)
		for l := 0; l < 4; l++ {
			rx[l] = &collector{}
			b.AttachRx(l, rx[l])
		}
		p := newPacket(0, dst, 1)
		load(b, 0, p, 0)
		b.Tick(1)
		if len(rx[dst].packets) != 1 {
			t.Fatalf("dst layer %d: packet not delivered in one cycle", dst)
		}
		if !p.Vertical() {
			t.Error("bus must mark the packet vertical")
		}
	}
}

func TestOneFlitPerCycle(t *testing.T) {
	b := NewBus(0, geom.Coord{}, 2)
	rx := &collector{}
	b.AttachRx(0, &collector{})
	b.AttachRx(1, rx)
	p := newPacket(0, 1, 4)
	load(b, 0, p, 0)
	for c := uint64(1); c <= 4; c++ {
		b.Tick(c)
		if rx.flits != int(c) {
			t.Fatalf("cycle %d: %d flits crossed, want %d", c, rx.flits, c)
		}
	}
	if b.TotalFlits != 4 || b.BusyCycles != 4 {
		t.Errorf("TotalFlits=%d BusyCycles=%d", b.TotalFlits, b.BusyCycles)
	}
}

func TestDynamicTDMAFairness(t *testing.T) {
	// Three active clients share the bus; after 3n cycles each has sent n
	// flits (dynamic slots shrink to the active set).
	const layers = 4
	b := NewBus(0, geom.Coord{}, layers)
	rx := &collector{}
	b.AttachRx(3, rx)
	for l := 0; l < 3; l++ {
		b.AttachRx(l, &collector{})
	}
	pkts := make([]*noc.Packet, 3)
	for l := 0; l < 3; l++ {
		pkts[l] = newPacket(l, 3, 4)
		load(b, l, pkts[l], 0)
	}
	if b.ActiveClients() != 3 {
		t.Fatalf("ActiveClients = %d, want 3", b.ActiveClients())
	}
	// 3 packets x 4 flits = 12 flits = 12 cycles on a fully loaded bus.
	for c := uint64(1); c <= 12; c++ {
		b.Tick(c)
	}
	if rx.flits != 12 {
		t.Fatalf("crossed %d flits, want 12", rx.flits)
	}
	if len(rx.packets) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(rx.packets))
	}
	if b.ActiveClients() != 0 {
		t.Errorf("ActiveClients = %d after drain", b.ActiveClients())
	}
}

func TestIdleClientsConsumeNoSlots(t *testing.T) {
	// With one active client, it gets every cycle (nearly 100% bandwidth
	// efficiency): 4 flits cross in exactly 4 cycles even on an 8-layer bus.
	b := NewBus(0, geom.Coord{}, 8)
	rx := &collector{}
	for l := 0; l < 8; l++ {
		if l == 7 {
			b.AttachRx(l, rx)
		} else {
			b.AttachRx(l, &collector{})
		}
	}
	load(b, 2, newPacket(2, 7, 4), 0)
	for c := uint64(1); c <= 4; c++ {
		b.Tick(c)
	}
	if rx.flits != 4 {
		t.Fatalf("crossed %d flits in 4 cycles, want 4", rx.flits)
	}
}

func TestTransmitterWormholeOwnership(t *testing.T) {
	b := NewBus(0, geom.Coord{}, 2)
	b.AttachRx(0, &collector{})
	b.AttachRx(1, &collector{})
	p1 := newPacket(0, 1, 4)
	if !load(b, 0, p1, 0) {
		t.Fatal("first packet must claim the transmitter")
	}
	p2 := newPacket(0, 1, 4)
	if b.Tx(0).AllocVC(p2) >= 0 {
		t.Fatal("second packet must not co-own the transmitter")
	}
	// Drain p1, then p2 can claim.
	for c := uint64(1); c <= 4; c++ {
		b.Tick(c)
	}
	if b.Tx(0).AllocVC(p2) < 0 {
		t.Fatal("transmitter must be free after the tail departs")
	}
}

func TestBackpressureFromBlockedReceiver(t *testing.T) {
	b := NewBus(0, geom.Coord{}, 2)
	b.AttachRx(0, &collector{})
	b.AttachRx(1, blockedRx{})
	p := newPacket(0, 1, 1)
	load(b, 0, p, 0)
	for c := uint64(1); c <= 10; c++ {
		b.Tick(c)
	}
	if b.TotalFlits != 0 {
		t.Fatal("flit crossed into a blocked receiver")
	}
	if b.Idle() {
		t.Fatal("bus must still hold the pending flit")
	}
}

func TestFlitCrossesSameCycleItArrived(t *testing.T) {
	// The pillar interface is pipelined with the crossing: a flit entering
	// the transmitter may cross in the same cycle (the bus ticks after the
	// routers), so the vertical hop costs a single cycle end to end.
	b := NewBus(0, geom.Coord{}, 2)
	rx := &collector{}
	b.AttachRx(0, &collector{})
	b.AttachRx(1, rx)
	load(b, 0, newPacket(0, 1, 1), 5)
	b.Tick(5)
	if rx.flits != 1 {
		t.Fatal("flit did not cross in its arrival cycle")
	}
}

func TestControlWires(t *testing.T) {
	cases := map[int]int{
		1: 3,  // 3*1 + 0
		2: 7,  // 6 + 1
		4: 14, // 12 + 2; the paper's 4-layer example (3x14 = 42 in Table 2)
		8: 27, // 24 + 3
	}
	for n, want := range cases {
		if got := ControlWires(n); got != want {
			t.Errorf("ControlWires(%d) = %d, want %d", n, got, want)
		}
	}
	if ControlWires(0) != 0 {
		t.Error("ControlWires(0) must be 0")
	}
}

func TestBusAccessors(t *testing.T) {
	b := NewBus(3, geom.Coord{X: 2, Y: 5, Layer: 9}, 4)
	if b.ID() != 3 || b.Layers() != 4 {
		t.Errorf("ID=%d Layers=%d", b.ID(), b.Layers())
	}
	if p := b.Pos(); p.X != 2 || p.Y != 5 || p.Layer != 0 {
		t.Errorf("Pos = %v, want (2,5,L0)", p)
	}
	if !b.Idle() {
		t.Error("fresh bus must be idle")
	}
}

func TestTxLayerRangePanics(t *testing.T) {
	b := NewBus(0, geom.Coord{}, 2)
	defer func() {
		if recover() == nil {
			t.Error("Tx out of range must panic")
		}
	}()
	b.Tx(2)
}
