// Package prof is the simulator's host-side phase profiler — a flight
// recorder for the simulation loop itself. Where package obs observes the
// *simulated* chip (probe events, spans, energy, thermal), prof observes
// the *simulator*: how the host's wall-clock time divides across the
// loop's phases (CPU pipeline events, protocol/cluster events, the network
// tick serial vs sharded, thermal stepping, sampling), how the shard
// workers split their rounds between useful work and barrier waits, what
// the process allocates, and how many simulated cycles per host second the
// whole thing sustains.
//
// The measurement discipline is strictly one-way: phase boundaries take
// monotonic clock readings (time.Now's monotonic component) and fold the
// deltas into value-typed accumulators; nothing measured ever feeds back
// into simulation state, so an attached profiler is provably
// non-perturbing — attached runs produce bit-identical Results to detached
// runs (TestProfileDoesNotPerturb), and the record path allocates nothing
// (TestRecordPathAllocs).
package prof

import (
	"math"
	"math/bits"
	"runtime"
	"time"
)

// Phase identifies one slice of the simulation loop's wall-clock budget.
// The phases tile an Engine.Run: every nanosecond of a profiled run lands
// in exactly one phase, with PhaseEngine absorbing the residual (wheel
// bookkeeping, idle-cycle scans, loop overhead) so the per-phase shares
// sum to 100% of loop time by construction.
type Phase uint8

const (
	// PhaseCPU is the core pipeline: fetch-execute resumption and L1/L2
	// access initiation events (core's evCPU* kinds).
	PhaseCPU Phase = iota
	// PhaseProtocol is the cluster/coherence machinery: tag serves,
	// migrations, replicas, data replies, and memory-path events — the
	// event-engine drain minus the CPU kinds.
	PhaseProtocol
	// PhaseNet is the fabric tick on the serial path (routers, then
	// pillar buses, then active-list pruning).
	PhaseNet
	// PhaseNetSharded is the fabric tick when the router phase fanned out
	// across the layer shards (fabric.SetShards) — fork, barrier, staged
	// replay, and the serial bus phase together.
	PhaseNetSharded
	// PhaseThermal is the thermal tracker's tick: energy-window flushes,
	// RC grid steps, and the DTM controller's actuation when attached.
	PhaseThermal
	// PhaseSampler is the interval metrics sampler's tick.
	PhaseSampler
	// PhaseOther is any registered ticker the classifier does not know.
	PhaseOther
	// PhaseEngine is the engine's own bookkeeping, attributed by
	// subtraction at report time: wheel migration, idle-cycle scans, and
	// run-loop overhead not inside any timed section.
	PhaseEngine

	phaseCount
)

// NumPhases is the number of distinct phases (the size of per-phase
// accumulator arrays).
const NumPhases = int(phaseCount)

// PhaseSelf is the sentinel classification for tickers that time
// themselves into the recorder (the fabric splits its tick into
// PhaseNet/PhaseNetSharded); the engine takes no clock readings for them.
const PhaseSelf Phase = 0xFF

var phaseNames = [NumPhases]string{
	"cpu", "protocol", "net-serial", "net-sharded",
	"thermal", "sampler", "other", "engine",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "self"
}

// histBuckets sizes the per-phase latency histogram: quarter-octave
// log2 buckets (4 per power of two) covering 1ns to ~2^40ns, giving P95
// estimates within ~12% without per-sample storage.
const histBuckets = 160

// bucketOf maps a duration to its histogram bucket.
func bucketOf(ns int64) int {
	v := uint64(ns)
	if v == 0 {
		v = 1
	}
	o := bits.Len64(v) - 1
	var sub uint64
	if o >= 2 {
		sub = (v >> uint(o-2)) & 3
	}
	idx := o*4 + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest duration mapping to bucket idx.
func bucketUpper(idx int) int64 {
	o := idx / 4
	sub := int64(idx % 4)
	if o < 2 {
		return int64(1)<<uint(o+1) - 1
	}
	base := int64(1) << uint(o)
	return base + (sub+1)<<uint(o-2) - 1
}

// phaseAcc accumulates one phase's samples: plain value-typed counters
// plus a log-bucketed histogram, so recording is a handful of integer
// stores — no allocation, no locks (the recorder is single-writer by
// construction: every Record call happens on the simulation goroutine).
type phaseAcc struct {
	count uint64
	ns    int64
	max   int64
	hist  [histBuckets]uint64
}

// percentile returns the p-th percentile sample duration, clamped to the
// observed maximum (the histogram's bucket bound can overshoot it).
func (a *phaseAcc) percentile(p float64) int64 {
	if a.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(a.count) * p / 100))
	var cum uint64
	for i := range a.hist {
		cum += a.hist[i]
		if cum >= target {
			if ub := bucketUpper(i); ub < a.max {
				return ub
			}
			return a.max
		}
	}
	return a.max
}

// maxWindows bounds the rolling throughput series: one window per
// Engine.Run call, oldest dropped first. 512 comfortably covers a
// chunked runner job (warm + measure at 64 chunks each).
const maxWindows = 512

// window is one Engine.Run's worth of throughput: host-relative start,
// duration, cycles advanced, and the per-phase time accrued inside it.
type window struct {
	startNs int64
	durNs   int64
	cycles  uint64
	phaseNs [NumPhases]int64
}

// Recorder is the flight recorder: phase accumulators, shard telemetry,
// the rolling run-window ring, and allocation baselines. Create one with
// NewRecorder, hand it to the engine/fabric via their SetProfiler hooks
// (core.System.AttachProfile does all the wiring), and read it out with
// Report or Snap between engine runs.
type Recorder struct {
	t0     time.Time
	phases [NumPhases]phaseAcc
	steps  uint64

	runNs  int64
	runs   uint64
	cycles uint64

	windows     []window
	lastPhaseNs [NumPhases]int64

	shard *ShardSet

	m0   runtime.MemStats
	host HostInfo
}

// NewRecorder returns a recorder stamped with the host's shape and the
// process's current allocation counters as the delta baseline.
func NewRecorder() *Recorder {
	r := &Recorder{
		t0:      time.Now(),
		windows: make([]window, 0, maxWindows),
		host: HostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	runtime.ReadMemStats(&r.m0)
	return r
}

// Record folds one phase sample into the accumulators. It is the hot
// path — a few integer stores, zero allocations (pinned by
// TestRecordPathAllocs) — and must only be called from the simulation
// goroutine.
func (r *Recorder) Record(p Phase, ns int64) {
	a := &r.phases[p]
	a.count++
	a.ns += ns
	if ns > a.max {
		a.max = ns
	}
	a.hist[bucketOf(ns)]++
}

// StepDone counts one executed engine step (idle-skipped cycles never
// step, so steps ≤ cycles).
func (r *Recorder) StepDone() { r.steps++ }

// RunStart marks the beginning of an Engine.Run window and returns its
// host-relative start time for the matching RunEnd.
func (r *Recorder) RunStart() int64 { return time.Since(r.t0).Nanoseconds() }

// RunEnd closes a run window: it accumulates the run's wall time and
// cycle count and appends one entry to the rolling throughput series
// (per-phase deltas since the previous window). Oldest windows drop
// first; the append never allocates once the ring is at capacity.
func (r *Recorder) RunEnd(startNs int64, cycles uint64) {
	endNs := time.Since(r.t0).Nanoseconds()
	w := window{startNs: startNs, durNs: endNs - startNs, cycles: cycles}
	r.runs++
	r.runNs += w.durNs
	r.cycles += cycles
	for i := range r.phases {
		cur := r.phases[i].ns
		w.phaseNs[i] = cur - r.lastPhaseNs[i]
		r.lastPhaseNs[i] = cur
	}
	if len(r.windows) == cap(r.windows) {
		copy(r.windows, r.windows[1:])
		r.windows = r.windows[:len(r.windows)-1]
	}
	r.windows = append(r.windows, w)
}

// ShardSet is the per-shard telemetry block behind sim.ShardGroup's
// profiling hooks: each worker accumulates busy time into its own
// cache-line-padded slot, and the cycling goroutine accumulates whole
// round (fork-to-barrier) wall time. Barrier wait falls out by
// subtraction: a shard's wait is the round time its slot was not busy.
type ShardSet struct {
	labels  []string
	slots   []shardSlot
	rounds  uint64
	roundNs int64
}

// shardSlot pads each worker's accumulator to its own cache line so
// concurrent busy-time writes do not false-share.
type shardSlot struct {
	busyNs int64
	_      [56]byte
}

// ConfigureShards installs (or replaces) the shard telemetry block for
// the given shard labels and returns it. Reconfiguring — the fabric
// re-sharding to a different count — restarts the shard accumulators;
// the phase accumulators are untouched.
func (r *Recorder) ConfigureShards(labels []string) *ShardSet {
	s := &ShardSet{labels: append([]string(nil), labels...), slots: make([]shardSlot, len(labels))}
	r.shard = s
	return s
}

// AddBusy folds ns of useful work into shard i's slot. Called by shard
// worker i only, so slots are single-writer.
func (s *ShardSet) AddBusy(i int, ns int64) { s.slots[i].busyNs += ns }

// RoundDone accounts one completed fork-to-barrier round. Called by the
// cycling goroutine after the barrier, so it happens-after every
// worker's AddBusy for the round.
func (s *ShardSet) RoundDone(ns int64) {
	s.rounds++
	s.roundNs += ns
}
