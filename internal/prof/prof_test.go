package prof

import (
	"strings"
	"testing"
)

// TestBucketRoundTrip pins the histogram bucketing: every bucket's upper
// bound maps back into that bucket, and bucket assignment is monotonic in
// the sample value.
func TestBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		if idx < 8 && idx != 0 && idx != 4 {
			continue // octaves 0-1 have no sub-buckets; indices unreachable
		}
		ub := bucketUpper(idx)
		if got := bucketOf(ub); got != idx {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", idx, ub, got)
		}
	}
	last := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 100, 1000, 123456, 1 << 30, 1 << 45} {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, b, last)
		}
		last = b
	}
}

// TestPercentile checks the log-bucketed P95 lands within one bucket of
// the exact answer and never exceeds the observed max.
func TestPercentile(t *testing.T) {
	r := NewRecorder()
	for i := int64(1); i <= 100; i++ {
		r.Record(PhaseCPU, i*100) // 100ns .. 10µs uniform
	}
	a := &r.phases[PhaseCPU]
	p95 := a.percentile(95)
	if p95 < 9500 || p95 > a.max {
		t.Fatalf("p95 = %d, want in [9500, %d]", p95, a.max)
	}
	if got := a.percentile(100); got != a.max {
		t.Fatalf("p100 = %d, want max %d", got, a.max)
	}
}

// TestReportShares drives the accumulators directly and checks the
// report's invariant: shares sum to 1 with the engine phase absorbing
// exactly the unattributed residual.
func TestReportShares(t *testing.T) {
	r := NewRecorder()
	r.Record(PhaseCPU, 300)
	r.Record(PhaseProtocol, 200)
	r.Record(PhaseNet, 400)
	r.steps = 7
	r.runNs = 1000 // 100ns residual -> engine
	r.cycles = 50
	r.runs = 1
	rep := r.Report()

	var sum float64
	var engine *PhaseStat
	for i := range rep.Phases {
		sum += rep.Phases[i].Share
		if rep.Phases[i].Phase == "engine" {
			engine = &rep.Phases[i]
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	if engine == nil || engine.Seconds < 99e-9 || engine.Seconds > 101e-9 {
		t.Fatalf("engine residual = %+v, want 100ns", engine)
	}
	if engine.Count != 7 {
		t.Fatalf("engine count = %d, want steps (7)", engine.Count)
	}
	if rep.CyclesPerSec != 50e9/1000 {
		t.Fatalf("cycles/sec = %v", rep.CyclesPerSec)
	}
}

// TestShardReport checks the barrier-wait arithmetic: wait is round time
// minus busy, summed across shards.
func TestShardReport(t *testing.T) {
	r := NewRecorder()
	s := r.ConfigureShards([]string{"layer-0", "layer-1"})
	s.AddBusy(0, 600)
	s.AddBusy(1, 200)
	s.RoundDone(1000)
	r.runNs = 1000
	r.runs = 1
	rep := r.Report()
	if rep.Shards == nil {
		t.Fatal("no shard report")
	}
	// total wait = (1000-600)+(1000-200) = 1200 over span 2000
	if got := rep.Shards.BarrierWaitFrac; got < 0.599 || got > 0.601 {
		t.Fatalf("barrier-wait = %v, want 0.6", got)
	}
	if u := rep.Shards.Shards[0].Utilization; u < 0.599 || u > 0.601 {
		t.Fatalf("shard 0 utilization = %v, want 0.6", u)
	}
}

// TestWindowRing checks the rolling series stays bounded and drops
// oldest-first.
func TestWindowRing(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < maxWindows+10; i++ {
		r.RunEnd(int64(i), uint64(i))
	}
	if len(r.windows) != maxWindows {
		t.Fatalf("ring holds %d windows, want %d", len(r.windows), maxWindows)
	}
	if r.windows[0].cycles != 10 {
		t.Fatalf("oldest window = %d, want 10 (drop-oldest)", r.windows[0].cycles)
	}
}

// TestRecordPathAllocs pins the profiler's hot paths at zero allocations:
// the per-phase record, the shard busy/round accounting, and the window
// append once the ring is at capacity. This is the satellite AllocsPerRun
// pin from ISSUE 9 — the record path runs once per event per cycle, so a
// single allocation there would dwarf the simulator's ~1.4 allocs/cycle.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRecorder()
	s := r.ConfigureShards([]string{"layer-0"})
	var ns int64
	if got := testing.AllocsPerRun(1000, func() {
		r.Record(PhaseProtocol, ns)
		ns += 37
	}); got != 0 {
		t.Fatalf("Record allocates %v/op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		s.AddBusy(0, 11)
		s.RoundDone(13)
	}); got != 0 {
		t.Fatalf("shard accounting allocates %v/op, want 0", got)
	}
	for i := 0; i < maxWindows; i++ {
		r.RunEnd(0, 1)
	}
	if got := testing.AllocsPerRun(1000, func() {
		r.RunEnd(0, 1)
	}); got != 0 {
		t.Fatalf("RunEnd at capacity allocates %v/op, want 0", got)
	}
}

// TestWriteTimeline smoke-tests the Perfetto export: valid JSON with the
// run slices and counter tracks present.
func TestWriteTimeline(t *testing.T) {
	r := NewRecorder()
	r.Record(PhaseNet, 500)
	r.RunEnd(r.RunStart(), 1000)
	var b strings.Builder
	if err := r.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, `"run"`, `"cycles/sec"`, `"phase share %"`, `"nimsim host profiler"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %s in %s", want, out)
		}
	}
}

// TestWriteTable smoke-tests the text rendering nimsim -profile prints.
func TestWriteTable(t *testing.T) {
	r := NewRecorder()
	r.Record(PhaseCPU, 300)
	r.steps, r.runNs, r.cycles, r.runs = 3, 1000, 42, 1
	s := r.ConfigureShards([]string{"layer-0"})
	s.AddBusy(0, 100)
	s.RoundDone(400)
	var b strings.Builder
	r.Report().WriteTable(&b)
	out := b.String()
	for _, want := range []string{"host profile:", "cpu", "engine", "barrier-wait", "layer-0", "mem:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q in:\n%s", want, out)
		}
	}
}
