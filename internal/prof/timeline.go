package prof

import (
	"encoding/json"
	"io"
)

// Perfetto export of the host timeline. The existing Chrome-trace export
// (obs.WriteChromeTrace) plots *simulated* time — cycles on the x axis;
// this one plots *host* time: one "run" slice per Engine.Run window plus
// counter tracks for throughput and the per-phase share, so a stall or a
// throughput cliff in a long run is visible at a glance in
// ui.perfetto.dev, on the same time base as a Go CPU profile taken
// alongside.

// tlEvent is one Chrome-trace event; field tags follow the Trace Event
// Format (the same subset obs.WriteChromeTrace emits).
type tlEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type tlFile struct {
	TraceEvents []tlEvent      `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// hostPID is the synthetic process id for the host timeline, distinct
// from the sim-time exporter's span/counter pids so a merged trace keeps
// the two time bases in separate lanes.
const hostPID = 1 << 12

// WriteTimeline writes the recorder's rolling run-window series as a
// Chrome-trace/Perfetto JSON host timeline: a slice per run window and
// counters for cycles/sec and each phase's within-window share.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	f := tlFile{
		OtherData: map[string]any{
			"source":     "nimsim host profiler",
			"goos":       r.host.GOOS,
			"goarch":     r.host.GOARCH,
			"go":         r.host.GoVersion,
			"numCPU":     r.host.NumCPU,
			"gomaxprocs": r.host.GOMAXPROCS,
		},
	}
	f.TraceEvents = append(f.TraceEvents,
		tlEvent{Name: "process_name", Ph: "M", PID: hostPID,
			Args: map[string]any{"name": "nimsim host profiler"}},
		tlEvent{Name: "thread_name", Ph: "M", PID: hostPID, TID: 1,
			Args: map[string]any{"name": "engine runs"}},
	)
	for _, win := range r.windows {
		ts := float64(win.startNs) / 1e3
		cps := 0.0
		if win.durNs > 0 {
			cps = float64(win.cycles) / (float64(win.durNs) / 1e9)
		}
		f.TraceEvents = append(f.TraceEvents, tlEvent{
			Name: "run", Ph: "X", TS: ts, Dur: float64(win.durNs) / 1e3,
			PID: hostPID, TID: 1,
			Args: map[string]any{"cycles": win.cycles, "cycles_per_sec": cps},
		})
		f.TraceEvents = append(f.TraceEvents, tlEvent{
			Name: "cycles/sec", Ph: "C", TS: ts, PID: hostPID,
			Args: map[string]any{"cycles/sec": cps},
		})
		shares := map[string]any{}
		for p := 0; p < NumPhases; p++ {
			if win.durNs > 0 {
				shares[Phase(p).String()] = float64(win.phaseNs[p]) / float64(win.durNs) * 100
			}
		}
		f.TraceEvents = append(f.TraceEvents, tlEvent{
			Name: "phase share %", Ph: "C", TS: ts, PID: hostPID, Args: shares,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
