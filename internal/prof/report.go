package prof

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// HostInfo is the provenance of a measurement: the host shape that
// produced it. Throughput numbers are meaningless without it — the
// BENCH_6 lesson: a shards-4 "slowdown" measured on a 1-CPU container
// says nothing about sharding on real hardware.
type HostInfo struct {
	GOOS       string
	GOARCH     string
	GoVersion  string
	NumCPU     int
	GOMAXPROCS int
}

// PhaseStat is one phase's aggregate in a Report.
type PhaseStat struct {
	Phase   string
	Count   uint64
	Seconds float64
	// Share is this phase's fraction of the total profiled loop time
	// (all shares sum to 1, PhaseEngine absorbing the residual).
	Share  float64
	MeanNs float64
	P95Ns  int64
	MaxNs  int64
}

// ShardStat is one shard worker's busy/wait split across all rounds.
type ShardStat struct {
	Label       string
	BusySeconds float64
	WaitSeconds float64
	// Utilization is busy time over round time: the fraction of the
	// lockstep rounds this shard spent doing work rather than waiting
	// at the barrier.
	Utilization float64
}

// ShardReport aggregates the shard telemetry: per-shard utilization and
// the overall barrier-wait fraction — the number that explains why
// lockstep fan-out loses on few-core hosts (on 1 CPU every round is
// serialized, so all but one shard's share of each round is wait).
type ShardReport struct {
	Shards       []ShardStat
	Rounds       uint64
	RoundSeconds float64
	// BarrierWaitFrac is total wait over total shard-time
	// (rounds × shards × round time): 0 means perfect overlap, and
	// (n-1)/n is the fully-serialized floor on a 1-CPU host.
	BarrierWaitFrac float64
}

// WindowStat is one Engine.Run's throughput sample in the rolling series.
type WindowStat struct {
	StartSeconds float64
	Seconds      float64
	Cycles       uint64
	CyclesPerSec float64
}

// MemDelta is the process allocation delta across the profiled span
// (recorder creation to Report), from runtime.MemStats. It is
// process-wide — concurrent jobs in a serving daemon share it — but in
// the single-run CLI it bounds the simulation's own allocation rate.
type MemDelta struct {
	AllocBytes   uint64
	Mallocs      uint64
	NumGC        uint32
	PauseTotalNs uint64
	HeapAllocB   uint64
}

// Report is the full flight-recorder readout, attached to Results as
// Results.Profile. All figures are host-side wall-clock; nothing here
// describes the simulated chip.
type Report struct {
	Host HostInfo

	// WallSeconds is total profiled loop time (the sum of all
	// Engine.Run windows); Cycles the simulated cycles they advanced.
	WallSeconds  float64
	Cycles       uint64
	Steps        uint64
	Runs         uint64
	CyclesPerSec float64

	Phases  []PhaseStat
	Shards  *ShardReport `json:",omitempty"`
	Windows []WindowStat `json:",omitempty"`
	Mem     MemDelta
}

// Report reads out the recorder. Call between engine runs on the
// simulation goroutine (the same discipline as stats.Set.Snapshot).
func (r *Recorder) Report() *Report {
	rep := &Report{
		Host:        r.host,
		WallSeconds: float64(r.runNs) / 1e9,
		Cycles:      r.cycles,
		Steps:       r.steps,
		Runs:        r.runs,
	}
	if r.runNs > 0 {
		rep.CyclesPerSec = float64(r.cycles) / rep.WallSeconds
	}

	var attributed int64
	for p := 0; p < NumPhases; p++ {
		attributed += r.phases[p].ns
	}
	residual := r.runNs - attributed
	if residual < 0 {
		// Clock-granularity jitter can push the timed sections past the
		// enclosing window by a hair; clamp rather than report a
		// negative engine share.
		residual = 0
	}
	total := attributed + residual
	for p := 0; p < NumPhases; p++ {
		a := &r.phases[p]
		ns, count := a.ns, a.count
		var p95, max int64
		var mean float64
		if Phase(p) == PhaseEngine {
			// Attributed by subtraction: everything inside the run
			// windows that no timed section claimed. Count is the
			// executed step count; no per-sample distribution exists.
			ns += residual
			count += r.steps
		}
		if count > 0 {
			mean = float64(ns) / float64(count)
			p95 = a.percentile(95)
			max = a.max
		}
		if count == 0 && ns == 0 {
			continue
		}
		st := PhaseStat{
			Phase:   Phase(p).String(),
			Count:   count,
			Seconds: float64(ns) / 1e9,
			MeanNs:  mean,
			P95Ns:   p95,
			MaxNs:   max,
		}
		if total > 0 {
			st.Share = float64(ns) / float64(total)
		}
		rep.Phases = append(rep.Phases, st)
	}

	if s := r.shard; s != nil && s.rounds > 0 {
		sr := &ShardReport{Rounds: s.rounds, RoundSeconds: float64(s.roundNs) / 1e9}
		var totalWait, totalSpan int64
		for i := range s.slots {
			busy := s.slots[i].busyNs
			wait := s.roundNs - busy
			if wait < 0 {
				wait = 0
			}
			totalWait += wait
			totalSpan += s.roundNs
			st := ShardStat{
				Label:       s.labels[i],
				BusySeconds: float64(busy) / 1e9,
				WaitSeconds: float64(wait) / 1e9,
			}
			if s.roundNs > 0 {
				st.Utilization = float64(busy) / float64(s.roundNs)
				if st.Utilization > 1 {
					st.Utilization = 1
				}
			}
			sr.Shards = append(sr.Shards, st)
		}
		if totalSpan > 0 {
			sr.BarrierWaitFrac = float64(totalWait) / float64(totalSpan)
		}
		rep.Shards = sr
	}

	for _, w := range r.windows {
		ws := WindowStat{
			StartSeconds: float64(w.startNs) / 1e9,
			Seconds:      float64(w.durNs) / 1e9,
			Cycles:       w.cycles,
		}
		if w.durNs > 0 {
			ws.CyclesPerSec = float64(w.cycles) / ws.Seconds
		}
		rep.Windows = append(rep.Windows, ws)
	}

	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rep.Mem = MemDelta{
		AllocBytes:   m.TotalAlloc - r.m0.TotalAlloc,
		Mallocs:      m.Mallocs - r.m0.Mallocs,
		NumGC:        m.NumGC - r.m0.NumGC,
		PauseTotalNs: m.PauseTotalNs - r.m0.PauseTotalNs,
		HeapAllocB:   m.HeapAlloc,
	}
	return rep
}

// Snapshot is the cheap live readout for serving-tier gauges: no
// MemStats read, no histogram walks, no window copies.
type Snapshot struct {
	WallSeconds     float64
	Cycles          uint64
	CyclesPerSec    float64
	PhaseSeconds    [NumPhases]float64
	BarrierWaitFrac float64
}

// Snap returns the live snapshot. Same calling discipline as Report.
func (r *Recorder) Snap() Snapshot {
	s := Snapshot{WallSeconds: float64(r.runNs) / 1e9, Cycles: r.cycles}
	if r.runNs > 0 {
		s.CyclesPerSec = float64(r.cycles) / s.WallSeconds
	}
	var attributed int64
	for p := 0; p < NumPhases; p++ {
		attributed += r.phases[p].ns
		s.PhaseSeconds[p] = float64(r.phases[p].ns) / 1e9
	}
	if residual := r.runNs - attributed; residual > 0 {
		s.PhaseSeconds[PhaseEngine] += float64(residual) / 1e9
	}
	if sh := r.shard; sh != nil && sh.roundNs > 0 {
		var wait, span int64
		for i := range sh.slots {
			w := sh.roundNs - sh.slots[i].busyNs
			if w < 0 {
				w = 0
			}
			wait += w
			span += sh.roundNs
		}
		s.BarrierWaitFrac = float64(wait) / float64(span)
	}
	return s
}

// fmtDur renders a nanosecond count with three significant figures and
// an adaptive unit, kept narrow for table alignment.
func fmtDur(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtCount renders a sample count compactly (2.1M, 30.5k).
func fmtCount(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// WriteTable renders the report as the aligned text block behind
// `nimsim -profile`: provenance line, throughput line, the per-phase
// share table, shard utilization when the run sharded, and the
// allocation delta.
func (rep *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "host profile: %s/%s %s, %d CPUs (GOMAXPROCS %d)\n",
		rep.Host.GOOS, rep.Host.GOARCH, rep.Host.GoVersion,
		rep.Host.NumCPU, rep.Host.GOMAXPROCS)
	fmt.Fprintf(w, "  loop: %s wall, %d cycles in %d steps over %d runs = %.0f cycles/sec\n",
		fmtDur(rep.WallSeconds*1e9), rep.Cycles, rep.Steps, rep.Runs, rep.CyclesPerSec)
	fmt.Fprintf(w, "  %-12s %7s %10s %9s %10s %10s %10s\n",
		"phase", "share", "time", "count", "mean", "p95", "max")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  %-12s %6.1f%% %10s %9s %10s %10s %10s\n",
			p.Phase, p.Share*100, fmtDur(p.Seconds*1e9), fmtCount(p.Count),
			fmtDur(p.MeanNs), fmtDur(float64(p.P95Ns)), fmtDur(float64(p.MaxNs)))
	}
	if s := rep.Shards; s != nil {
		fmt.Fprintf(w, "  shards: %d workers, %s rounds, %s round time, barrier-wait %.1f%%\n",
			len(s.Shards), fmtCount(s.Rounds), fmtDur(s.RoundSeconds*1e9),
			s.BarrierWaitFrac*100)
		for _, sh := range s.Shards {
			fmt.Fprintf(w, "    %-14s busy %10s (%5.1f%%)  wait %10s\n",
				sh.Label, fmtDur(sh.BusySeconds*1e9), sh.Utilization*100,
				fmtDur(sh.WaitSeconds*1e9))
		}
	}
	fmt.Fprintf(w, "  mem: +%s allocated (%s mallocs), %d GCs (%s pause), heap %s\n",
		fmtBytes(rep.Mem.AllocBytes), fmtCount(rep.Mem.Mallocs),
		rep.Mem.NumGC, fmtDur(float64(rep.Mem.PauseTotalNs)),
		fmtBytes(rep.Mem.HeapAllocB))
}

// fmtBytes renders a byte count with an adaptive binary unit.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
