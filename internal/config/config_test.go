package config

import (
	"testing"

	"repro/internal/geom"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s                       Scheme
		name                    string
		migrates, is3D, perfect bool
	}{
		{CMPDNUCA, "CMP-DNUCA", true, false, true},
		{CMPDNUCA2D, "CMP-DNUCA-2D", true, false, false},
		{CMPSNUCA3D, "CMP-SNUCA-3D", false, true, false},
		{CMPDNUCA3D, "CMP-DNUCA-3D", true, true, false},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String = %q, want %q", c.s.String(), c.name)
		}
		if c.s.Migrates() != c.migrates || c.s.Is3D() != c.is3D || c.s.PerfectSearch() != c.perfect {
			t.Errorf("%v: migrates=%v is3D=%v perfect=%v", c.s, c.s.Migrates(), c.s.Is3D(), c.s.PerfectSearch())
		}
	}
}

func TestDefaultValid(t *testing.T) {
	for _, s := range []Scheme{CMPDNUCA, CMPDNUCA2D, CMPSNUCA3D, CMPDNUCA3D} {
		c := Default(s)
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
		if s.Is3D() && c.Layers != 2 {
			t.Errorf("%v: layers = %d", s, c.Layers)
		}
		if !s.Is3D() && c.Layers != 1 {
			t.Errorf("%v: layers = %d", s, c.Layers)
		}
	}
}

func TestDefaultMatchesTable4(t *testing.T) {
	c := Default(CMPDNUCA3D)
	if c.NumCPUs != 8 || c.NumPillars != 8 {
		t.Errorf("CPUs=%d pillars=%d", c.NumCPUs, c.NumPillars)
	}
	if c.L1HitCycles != 3 || c.L2BankCycles != 5 || c.TagCycles != 4 || c.MemoryCycles != 260 {
		t.Errorf("latencies %d/%d/%d/%d", c.L1HitCycles, c.L2BankCycles, c.TagCycles, c.MemoryCycles)
	}
	if c.L2.TotalBytes() != 16<<20 {
		t.Errorf("L2 = %d bytes", c.L2.TotalBytes())
	}
	if c.L1Sets*c.L1Ways*64 != 64<<10 {
		t.Errorf("L1 = %d bytes", c.L1Sets*c.L1Ways*64)
	}
}

func TestValidateRejects(t *testing.T) {
	c := Default(CMPDNUCA3D)
	c.Layers = 3 // 16 clusters not divisible
	if c.Validate() == nil {
		t.Error("3 layers with 16 clusters must fail")
	}
	c = Default(CMPDNUCA2D)
	c.Layers = 2
	if c.Validate() == nil {
		t.Error("2D scheme with 2 layers must fail")
	}
	c = Default(CMPDNUCA3D)
	c.NumCPUs = 0
	if c.Validate() == nil {
		t.Error("0 CPUs must fail")
	}
	c = Default(CMPDNUCA3D)
	c.MigrationThreshold = 0
	if c.Validate() == nil {
		t.Error("threshold 0 must fail")
	}
}

func TestTopologyDefault3D(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	if top.Dim != (geom.Dim{Width: 16, Height: 8, Layers: 2}) {
		t.Errorf("Dim = %+v, want 16x8x2", top.Dim)
	}
	if top.TileW != 4 || top.TileH != 4 {
		t.Errorf("tile %dx%d, want 4x4", top.TileW, top.TileH)
	}
	if top.ClusterW != 4 || top.ClusterH != 2 {
		t.Errorf("cluster grid %dx%d, want 4x2", top.ClusterW, top.ClusterH)
	}
	if len(top.Pillars) != 8 || len(top.CPUs) != 8 {
		t.Errorf("pillars=%d cpus=%d", len(top.Pillars), len(top.CPUs))
	}
	if top.NumClusters() != 16 || top.ClustersPerLayer() != 8 {
		t.Errorf("clusters=%d perLayer=%d", top.NumClusters(), top.ClustersPerLayer())
	}
}

func TestTopologyDefault2D(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA2D))
	if err != nil {
		t.Fatal(err)
	}
	if top.Dim != (geom.Dim{Width: 16, Height: 16, Layers: 1}) {
		t.Errorf("Dim = %+v, want 16x16x1", top.Dim)
	}
	// Our 2D scheme surrounds CPUs with banks: no CPU on an edge.
	for i, c := range top.CPUs {
		if c.X == 0 || c.X == 15 || c.Y == 0 || c.Y == 15 {
			t.Errorf("CPU %d at %v is on the edge", i, c)
		}
	}
}

func TestTopologyBaselineEdges(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range top.CPUs {
		if c.Y != 0 && c.Y != top.Dim.Height-1 {
			t.Errorf("baseline CPU %d at %v not on an edge", i, c)
		}
	}
}

func TestTopologyFourLayers(t *testing.T) {
	c := Default(CMPSNUCA3D)
	c.Layers = 4
	top, err := NewTopology(c)
	if err != nil {
		t.Fatal(err)
	}
	if top.Dim != (geom.Dim{Width: 8, Height: 8, Layers: 4}) {
		t.Errorf("Dim = %+v, want 8x8x4", top.Dim)
	}
	if top.ClustersPerLayer() != 4 {
		t.Errorf("ClustersPerLayer = %d", top.ClustersPerLayer())
	}
}

func TestTopologySharedPillars(t *testing.T) {
	c := Default(CMPDNUCA3D)
	c.NumPillars = 2 // 8 CPUs over 2 pillars x 2 layers: c = 2 per slot
	top, err := NewTopology(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.CPUs) != 8 {
		t.Fatalf("CPUs = %d", len(top.CPUs))
	}
	// Every CPU must be within 2*k hops of some pillar.
	for i, cpu := range top.CPUs {
		p := top.PillarOf(cpu)
		if d := cpu.ManhattanXY(geom.Coord{X: p.X, Y: p.Y, Layer: cpu.Layer}); d > 2*c.OffsetK {
			t.Errorf("CPU %d at %v is %d hops from nearest pillar", i, cpu, d)
		}
	}
}

func TestTopologyStacked(t *testing.T) {
	c := Default(CMPDNUCA3D)
	c.StackCPUs = true
	top, err := NewTopology(c)
	if err != nil {
		t.Fatal(err)
	}
	stacked := map[[2]int]int{}
	for _, cpu := range top.CPUs {
		stacked[[2]int{cpu.X, cpu.Y}]++
	}
	found := false
	for _, n := range stacked {
		if n > 1 {
			found = true
		}
	}
	if !found {
		t.Error("StackCPUs placement has no vertical stacking")
	}
}

func TestClusterMapping(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	// Every node maps to a cluster whose tile contains it.
	counts := make([]int, top.NumClusters())
	for i := 0; i < top.Dim.Nodes(); i++ {
		n := top.Dim.CoordOf(i)
		id := top.ClusterOf(n)
		if id < 0 || id >= top.NumClusters() {
			t.Fatalf("node %v -> cluster %d", n, id)
		}
		counts[id]++
		if top.ClusterLayer(id) != n.Layer {
			t.Fatalf("node %v mapped to cluster on layer %d", n, top.ClusterLayer(id))
		}
	}
	for id, n := range counts {
		if n != top.TileW*top.TileH {
			t.Errorf("cluster %d holds %d nodes, want %d", id, n, top.TileW*top.TileH)
		}
	}
}

func TestClusterCenterAndBanks(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < top.NumClusters(); id++ {
		center := top.ClusterCenter(id)
		if top.ClusterOf(center) != id {
			t.Errorf("center of cluster %d maps to cluster %d", id, top.ClusterOf(center))
		}
		seen := map[geom.Coord]bool{}
		for b := 0; b < top.Cfg.L2.BanksPerCluster; b++ {
			bc := top.BankCoord(id, b)
			if top.ClusterOf(bc) != id {
				t.Errorf("bank %d of cluster %d at %v is outside its tile", b, id, bc)
			}
			if seen[bc] {
				t.Errorf("bank %d of cluster %d duplicates node %v", b, id, bc)
			}
			seen[bc] = true
		}
	}
}

func TestInLayerNeighbors(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	// 4x2 cluster grid: corner cluster has 2 neighbors, middle has 3.
	corner := 0
	if n := top.InLayerNeighbors(corner); len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	// Cluster 1 (top row, second column) has left, right, below = 3.
	if n := top.InLayerNeighbors(1); len(n) != 3 {
		t.Errorf("cluster 1 neighbors = %v", n)
	}
	// Neighbors stay within the same layer.
	for id := 0; id < top.NumClusters(); id++ {
		for _, nb := range top.InLayerNeighbors(id) {
			if top.ClusterLayer(nb) != top.ClusterLayer(id) {
				t.Errorf("cluster %d neighbor %d crosses layers", id, nb)
			}
		}
	}
}

func TestVerticalNeighbors(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	cpu := top.CPUs[0]
	vn := top.VerticalNeighbors(cpu)
	if len(vn) != 1 { // 2 layers: one other layer
		t.Fatalf("vertical neighbors = %v", vn)
	}
	if top.ClusterLayer(vn[0]) == cpu.Layer {
		t.Error("vertical neighbor on same layer")
	}

	// 2D: no vertical neighbors.
	top2d, _ := NewTopology(Default(CMPDNUCA2D))
	if vn := top2d.VerticalNeighbors(top2d.CPUs[0]); vn != nil {
		t.Errorf("2D vertical neighbors = %v", vn)
	}
}

func TestWithL2Size(t *testing.T) {
	base := Default(CMPDNUCA3D)
	for _, mb := range []int{16, 32, 64} {
		c, err := base.WithL2Size(mb)
		if err != nil {
			t.Fatal(err)
		}
		if c.L2.TotalBytes() != mb<<20 {
			t.Errorf("%dMB: got %d bytes", mb, c.L2.TotalBytes())
		}
		if _, err := NewTopology(c); err != nil {
			t.Errorf("%dMB topology: %v", mb, err)
		}
	}
	if _, err := base.WithL2Size(48); err == nil {
		t.Error("48MB must be rejected")
	}
}

func TestLargerCachesGrowMeshSlowerIn3D(t *testing.T) {
	// The structural basis of Figure 16: network diameter grows slower with
	// capacity in 3D than in 2D.
	diam := func(s Scheme, mb int) int {
		c, err := Default(s).WithL2Size(mb)
		if err != nil {
			t.Fatal(err)
		}
		top, err := NewTopology(c)
		if err != nil {
			t.Fatal(err)
		}
		return top.Dim.Width + top.Dim.Height - 2
	}
	grow2D := diam(CMPDNUCA2D, 64) - diam(CMPDNUCA2D, 16)
	grow3D := diam(CMPDNUCA3D, 64) - diam(CMPDNUCA3D, 16)
	if grow3D >= grow2D {
		t.Errorf("3D diameter growth %d not below 2D growth %d", grow3D, grow2D)
	}
}

func TestClustersWithCPUs(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	owners := top.ClustersWithCPUs()
	if len(owners) != top.NumClusters() {
		t.Fatalf("len = %d", len(owners))
	}
	cpuClusters := 0
	for _, o := range owners {
		if o >= 0 {
			cpuClusters++
		}
	}
	if cpuClusters != 8 {
		t.Errorf("%d clusters host CPUs, want 8 (one per cluster)", cpuClusters)
	}
	for i := range top.CPUs {
		if owners[top.CPUCluster(i)] < 0 {
			t.Errorf("CPU %d's cluster not marked", i)
		}
	}
}

func TestPillarOfDeterministic(t *testing.T) {
	top, err := NewTopology(Default(CMPDNUCA3D))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < top.Dim.Nodes(); i++ {
		n := top.Dim.CoordOf(i)
		p := top.PillarOf(n)
		// Must actually be a pillar and at minimal distance.
		minD := 1 << 30
		for _, q := range top.Pillars {
			if d := n.ManhattanXY(geom.Coord{X: q.X, Y: q.Y, Layer: n.Layer}); d < minD {
				minD = d
			}
		}
		if d := n.ManhattanXY(geom.Coord{X: p.X, Y: p.Y, Layer: n.Layer}); d != minD {
			t.Fatalf("PillarOf(%v) = %v at distance %d, min is %d", n, p, d, minD)
		}
	}
}
