package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalHash returns a stable content hash of the configuration: two
// configs hash equal exactly when every field is equal. The hash is the
// identity of a deterministic simulation's machine description, which is
// what makes finished results cacheable forever — the serving tier keys
// its result cache and in-flight job coalescing on it.
//
// The canonical form is the JSON encoding of the struct. Go encodes
// struct fields in declaration order with a fixed number format, so the
// encoding — and therefore the hash — is reproducible across processes
// and architectures, and survives a JSON round-trip of the Config itself
// (the round-trip property the tests pin). Every field of Config and its
// embedded cache.Geometry is exported, so none escapes the encoding.
func CanonicalHash(c Config) string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is plain data (ints, bools, strings, one flat struct);
		// Marshal cannot fail on it.
		panic(fmt.Sprintf("config: canonical encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
