// Package config defines the simulated system configuration (the paper's
// Table 4), the four evaluated schemes, and the derivation of the concrete
// 3D topology: mesh dimensions, cluster tiling, pillar positions, and CPU
// placement.
package config

import (
	"fmt"

	"repro/internal/cache"
)

// Scheme selects one of the four L2 organizations compared in Section 5.2.
type Scheme int

const (
	// CMPDNUCA is the prior 2D approach of Beckmann & Wood with perfect
	// search: CPUs on the chip edges, dynamic migration, one layer.
	CMPDNUCA Scheme = iota
	// CMPDNUCA2D is the paper's 2D scheme: CPUs surrounded by cache banks
	// mid-cluster, dynamic migration, one layer.
	CMPDNUCA2D
	// CMPSNUCA3D is the paper's static 3D scheme: multiple layers with
	// pillar buses but no cache-line migration.
	CMPSNUCA3D
	// CMPDNUCA3D is the paper's full 3D scheme with migration.
	CMPDNUCA3D
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case CMPDNUCA:
		return "CMP-DNUCA"
	case CMPDNUCA2D:
		return "CMP-DNUCA-2D"
	case CMPSNUCA3D:
		return "CMP-SNUCA-3D"
	case CMPDNUCA3D:
		return "CMP-DNUCA-3D"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Migrates reports whether the scheme performs dynamic cache-line migration.
func (s Scheme) Migrates() bool { return s != CMPSNUCA3D }

// Is3D reports whether the scheme stacks multiple device layers.
func (s Scheme) Is3D() bool { return s == CMPSNUCA3D || s == CMPDNUCA3D }

// PerfectSearch reports whether the scheme locates lines without probe
// traffic (the CMP-DNUCA baseline is simulated with perfect search, as in
// the paper).
func (s Scheme) PerfectSearch() bool { return s == CMPDNUCA }

// Config carries every simulation parameter. Zero values are invalid; start
// from Default and modify.
type Config struct {
	Scheme Scheme

	// Layers is the number of device layers. Forced to 1 by 2D schemes.
	Layers int
	// NumCPUs is the processor count (Table 4: 8, in-order, single issue).
	NumCPUs int
	// NumPillars is the number of dTDMA bus pillars (Table 4: 8).
	NumPillars int

	// L2 is the cache geometry (Table 4: 16 MB as 256 x 64 KB banks).
	L2 cache.Geometry

	// L1 parameters: 64 KB split I/D, 2-way, 64 B lines, write-through.
	L1Sets, L1Ways int

	// Latencies in cycles (Table 4).
	L1HitCycles  int // 3
	L2BankCycles int // 5 for 64 KB banks
	TagCycles    int // 4 per cluster tag array
	MemoryCycles int // 260

	// MigrationThreshold is the number of consecutive remote hits by one
	// CPU before a line takes a migration step.
	MigrationThreshold int
	// SkipCPUClusters makes intra-layer migration hop over clusters that
	// contain other processors (Section 4.2.3). Disable only for ablation.
	SkipCPUClusters bool
	// OffsetK is Algorithm 1's offset distance from a shared pillar.
	OffsetK int
	// StackCPUs forces vertical CPU stacking (congestion/thermal baseline).
	StackCPUs bool
	// VerticalNoC replaces the dTDMA bus pillars with 7-port 3D routers —
	// the design alternative the paper considered and eliminated (Section
	// 3.1). Exists for the vertical-interconnect ablation.
	VerticalNoC bool
	// RouterPipeline is the per-router traversal latency in cycles. The
	// paper uses single-stage routers (1, Table 4); 4 models the basic
	// four-stage pipeline of Section 3.2 for the router-depth ablation.
	RouterPipeline int
	// BroadcastSearch replaces the two-step search with a single-step
	// multicast to every cluster (ablation of the search policy).
	BroadcastSearch bool
	// VictimReplication enables the replication-based management
	// alternative the paper discusses in Section 2.1 (Zhang & Asanovic's
	// victim replication): remote read hits leave a read-only replica in
	// the requester's local cluster; writes invalidate every replica.
	// Replicas may only displace invalid ways or other replicas.
	VictimReplication bool
	// TagPorts bounds concurrent lookups in each cluster's tag array
	// (0 = unlimited, the idealized default). With P ports, the P+1-th
	// simultaneous probe waits for a port — the contention a real
	// single- or dual-ported tag SRAM would show at hot home clusters.
	TagPorts int
	// MemControllers is the number of memory controllers at the chip edge
	// (layer 0). Off-chip requests travel the network to the nearest
	// controller; the 260-cycle Table 4 latency is the DRAM access itself.
	MemControllers int

	// DTMPolicy selects the runtime dynamic-thermal-management actuators
	// (internal/dtm): "" or "none" disables DTM entirely (the default —
	// zero-valued configs are unmanaged), "all" enables everything, and a
	// comma list picks a subset of veto, drowsy, duty, reroute. The
	// string is parsed by dtm.ParsePolicy when the controller attaches;
	// an unknown name fails the attach, not Validate (config cannot
	// import dtm: dtm reads the thermal model, which reads this package).
	DTMPolicy string
	// TripTempC is the DTM trip temperature in C; 0 selects the
	// conventional 85 C junction throttling point.
	TripTempC float64
	// DutyCycle is the throttled issue pattern "N/M" (a hot core issues
	// on N of every M front-end slots); "" selects 1/4.
	DutyCycle string
}

// DTMActive reports whether the config names any DTM policy, i.e.
// whether a runner should attach the dtm.Controller for this machine.
func (c Config) DTMActive() bool {
	return c.DTMPolicy != "" && c.DTMPolicy != "none"
}

// Default returns the paper's Table 4 configuration for the given scheme.
func Default(s Scheme) Config {
	c := Config{
		Scheme:             s,
		Layers:             2,
		NumCPUs:            8,
		NumPillars:         8,
		L2:                 cache.DefaultGeometry(),
		L1Sets:             512, // 64 KB / (64 B x 2 ways)
		L1Ways:             2,
		L1HitCycles:        3,
		L2BankCycles:       5,
		TagCycles:          4,
		MemoryCycles:       260,
		MigrationThreshold: 2,
		SkipCPUClusters:    true,
		OffsetK:            1,
		RouterPipeline:     1,
		MemControllers:     4,
	}
	if !s.Is3D() {
		c.Layers = 1
	}
	return c
}

// WithL2Size scales the L2 to the given total size in megabytes by growing
// each cluster (more banks per cluster, 16-way associativity maintained),
// the scaling used for Figure 16. Valid sizes are 16, 32 and 64.
func (c Config) WithL2Size(megabytes int) (Config, error) {
	switch megabytes {
	case 16:
		c.L2.BanksPerCluster = 16
	case 32:
		c.L2.BanksPerCluster = 32
	case 64:
		c.L2.BanksPerCluster = 64
	default:
		return c, fmt.Errorf("config: unsupported L2 size %d MB (want 16, 32 or 64)", megabytes)
	}
	return c, nil
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.Layers < 1 {
		return fmt.Errorf("config: Layers = %d", c.Layers)
	}
	if !c.Scheme.Is3D() && c.Layers != 1 {
		return fmt.Errorf("config: 2D scheme %v with %d layers", c.Scheme, c.Layers)
	}
	if c.NumCPUs < 1 || c.NumCPUs > 16 {
		return fmt.Errorf("config: NumCPUs = %d (supported range 1..16)", c.NumCPUs)
	}
	if c.NumPillars < 1 {
		return fmt.Errorf("config: NumPillars = %d", c.NumPillars)
	}
	if c.L2.Clusters%c.Layers != 0 {
		return fmt.Errorf("config: %d clusters not divisible by %d layers", c.L2.Clusters, c.Layers)
	}
	if c.L1Sets < 1 || c.L1Ways < 1 {
		return fmt.Errorf("config: invalid L1 %dx%d", c.L1Sets, c.L1Ways)
	}
	for name, v := range map[string]int{
		"L1HitCycles": c.L1HitCycles, "L2BankCycles": c.L2BankCycles,
		"TagCycles": c.TagCycles, "MemoryCycles": c.MemoryCycles,
		"MigrationThreshold": c.MigrationThreshold, "OffsetK": c.OffsetK,
		"RouterPipeline": c.RouterPipeline, "MemControllers": c.MemControllers,
	} {
		if v < 1 {
			return fmt.Errorf("config: %s = %d must be >= 1", name, v)
		}
	}
	if c.TripTempC < 0 {
		return fmt.Errorf("config: TripTempC = %g must be >= 0 (0 selects the 85 C default)", c.TripTempC)
	}
	return nil
}

// factorNearSquare factors n into (w, h) with w*h = n, choosing the pair
// whose scaled sides (w*unitW vs h*unitH) are closest; ties prefer wider.
func factorNearSquare(n, unitW, unitH int) (w, h int) {
	bestW, bestScore := 1, 1<<30
	for cand := 1; cand <= n; cand++ {
		if n%cand != 0 {
			continue
		}
		cw, ch := cand*unitW, (n/cand)*unitH
		score := cw - ch
		if score < 0 {
			score = -score
		}
		if score < bestScore || (score == bestScore && cand > bestW) {
			bestW, bestScore = cand, score
		}
	}
	return bestW, n / bestW
}
