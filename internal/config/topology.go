package config

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/placement"
)

// Topology is the concrete physical layout derived from a Config: the mesh
// dimensions, the cluster tiling of each layer, pillar positions, and CPU
// placement. It provides the coordinate arithmetic the L2 controller and
// policies need (cluster of a node, controller node of a cluster, bank
// positions, neighbor clusters).
type Topology struct {
	Cfg Config
	Dim geom.Dim

	// TileW x TileH is the bank tile of one cluster; ClusterW x ClusterH is
	// the cluster grid of one layer.
	TileW, TileH       int
	ClusterW, ClusterH int

	// Pillars holds the in-plane pillar positions; PillarGridW is the
	// pillar grid width (for 3D offset placement).
	Pillars     []geom.Coord
	PillarGridW int

	// CPUs[i] is the mesh node of CPU i.
	CPUs []geom.Coord
}

// NewTopology derives the topology for a configuration.
func NewTopology(c Config) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Cfg: c}
	t.TileW, t.TileH = factorNearSquare(c.L2.BanksPerCluster, 1, 1)
	clustersPerLayer := c.L2.Clusters / c.Layers
	t.ClusterW, t.ClusterH = factorNearSquare(clustersPerLayer, t.TileW, t.TileH)
	t.Dim = geom.Dim{
		Width:  t.ClusterW * t.TileW,
		Height: t.ClusterH * t.TileH,
		Layers: c.Layers,
	}
	t.Pillars, t.PillarGridW = placement.PillarGrid(t.Dim, c.NumPillars)
	if len(t.Pillars) != c.NumPillars {
		return nil, fmt.Errorf("config: cannot fit %d pillars on a %dx%d layer",
			c.NumPillars, t.Dim.Width, t.Dim.Height)
	}
	cpus, err := t.placeCPUs()
	if err != nil {
		return nil, err
	}
	t.CPUs = cpus
	if err := placement.Validate(t.CPUs, t.Dim); err != nil {
		return nil, err
	}
	return t, nil
}

// placeCPUs chooses the CPU placement strategy for the configured scheme:
// edge placement for the CMP-DNUCA baseline; optimal 3D offsetting when
// every CPU has its own pillar; Algorithm 1 when pillars are shared; or
// vertical stacking when explicitly requested as a baseline.
func (t *Topology) placeCPUs() ([]geom.Coord, error) {
	c := t.Cfg
	if c.Scheme == CMPDNUCA {
		return placement.Edge(t.Dim, c.NumCPUs), nil
	}
	if c.StackCPUs {
		return placement.Stacked(t.Pillars, c.Layers, c.NumCPUs), nil
	}
	if c.NumPillars >= c.NumCPUs {
		cpus := placement.Optimal(t.Pillars, t.PillarGridW, c.Layers)
		return cpus[:c.NumCPUs], nil
	}
	// Pillars are shared: CPUs per pillar per layer, rounded up.
	slots := c.NumPillars * c.Layers
	cpp := (c.NumCPUs + slots - 1) / slots
	if cpp == 3 {
		cpp = 4
	}
	cpus, err := placement.Algorithm1(t.Pillars, t.Dim, c.Layers, cpp, c.OffsetK)
	if err != nil {
		return nil, err
	}
	if len(cpus) < c.NumCPUs {
		return nil, fmt.Errorf("config: placement yielded %d slots for %d CPUs", len(cpus), c.NumCPUs)
	}
	return cpus[:c.NumCPUs], nil
}

// NumClusters returns the total cluster count.
func (t *Topology) NumClusters() int { return t.Cfg.L2.Clusters }

// ClustersPerLayer returns the cluster count of one layer.
func (t *Topology) ClustersPerLayer() int { return t.ClusterW * t.ClusterH }

// ClusterOf returns the cluster id containing a mesh node. Ids are
// layer-major, row-major within the layer.
func (t *Topology) ClusterOf(c geom.Coord) int {
	cx := c.X / t.TileW
	cy := c.Y / t.TileH
	return c.Layer*t.ClustersPerLayer() + cy*t.ClusterW + cx
}

// ClusterLayer returns the device layer a cluster occupies.
func (t *Topology) ClusterLayer(id int) int { return id / t.ClustersPerLayer() }

// ClusterOrigin returns the north-west corner node of a cluster's tile.
func (t *Topology) ClusterOrigin(id int) geom.Coord {
	within := id % t.ClustersPerLayer()
	cx := within % t.ClusterW
	cy := within / t.ClusterW
	return geom.Coord{X: cx * t.TileW, Y: cy * t.TileH, Layer: t.ClusterLayer(id)}
}

// ClusterCenter returns the node hosting the cluster's tag array and
// controller logic (the paper's per-cluster tag array with its attached
// logic block): the central node of the tile.
func (t *Topology) ClusterCenter(id int) geom.Coord {
	o := t.ClusterOrigin(id)
	return geom.Coord{X: o.X + t.TileW/2, Y: o.Y + t.TileH/2, Layer: o.Layer}
}

// BankCoord returns the mesh node of bank b within cluster id (banks are
// tiled row-major across the cluster's tile).
func (t *Topology) BankCoord(id, b int) geom.Coord {
	o := t.ClusterOrigin(id)
	return geom.Coord{X: o.X + b%t.TileW, Y: o.Y + b/t.TileW, Layer: o.Layer}
}

// InLayerNeighbors returns the cluster ids adjacent (N/S/E/W) to cluster id
// within its layer — the clusters probed in search step one alongside the
// local cluster.
func (t *Topology) InLayerNeighbors(id int) []int {
	within := id % t.ClustersPerLayer()
	base := id - within
	cx := within % t.ClusterW
	cy := within / t.ClusterW
	var out []int
	if cx > 0 {
		out = append(out, base+cy*t.ClusterW+cx-1)
	}
	if cx < t.ClusterW-1 {
		out = append(out, base+cy*t.ClusterW+cx+1)
	}
	if cy > 0 {
		out = append(out, base+(cy-1)*t.ClusterW+cx)
	}
	if cy < t.ClusterH-1 {
		out = append(out, base+(cy+1)*t.ClusterW+cx)
	}
	return out
}

// PillarOf returns the pillar position nearest to a node (each CPU's
// dedicated or shared pillar). Ties break toward the lowest pillar index.
func (t *Topology) PillarOf(c geom.Coord) geom.Coord {
	best := t.Pillars[0]
	bestD := c.ManhattanXY(geom.Coord{X: best.X, Y: best.Y, Layer: c.Layer})
	for _, p := range t.Pillars[1:] {
		if d := c.ManhattanXY(geom.Coord{X: p.X, Y: p.Y, Layer: c.Layer}); d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// VerticalNeighbors returns, for every other layer, the cluster containing
// the given node's pillar position on that layer: the clusters whose tag
// arrays receive the pillar broadcast in search step one.
func (t *Topology) VerticalNeighbors(c geom.Coord) []int {
	if t.Dim.Layers == 1 {
		return nil
	}
	p := t.PillarOf(c)
	var out []int
	for l := 0; l < t.Dim.Layers; l++ {
		if l == c.Layer {
			continue
		}
		out = append(out, t.ClusterOf(geom.Coord{X: p.X, Y: p.Y, Layer: l}))
	}
	return out
}

// CPUCluster returns the cluster containing CPU i.
func (t *Topology) CPUCluster(i int) int { return t.ClusterOf(t.CPUs[i]) }

// ClustersWithCPUs returns, per cluster id, which CPU (if any) it hosts;
// -1 for clusters without a processor. When several CPUs share a cluster
// the lowest-numbered one is recorded, and HasCPU remains true.
func (t *Topology) ClustersWithCPUs() []int {
	out := make([]int, t.NumClusters())
	for i := range out {
		out[i] = -1
	}
	for i, c := range t.CPUs {
		id := t.ClusterOf(c)
		if out[id] == -1 {
			out[id] = i
		}
	}
	return out
}
