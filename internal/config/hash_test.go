package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCanonicalHashRoundTrip pins the property the serving tier's cache
// depends on: a Config that travels through its JSON encoding (the wire
// format of a job submission) hashes identically to the original.
func TestCanonicalHashRoundTrip(t *testing.T) {
	for _, s := range []Scheme{CMPDNUCA, CMPDNUCA2D, CMPSNUCA3D, CMPDNUCA3D} {
		c := Default(s)
		c.DTMPolicy = "duty,veto"
		c.TripTempC = 80
		c.DutyCycle = "1/2"
		before := CanonicalHash(c)

		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%v: marshal: %v", s, err)
		}
		var back Config
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", s, err)
		}
		if after := CanonicalHash(back); after != before {
			t.Errorf("%v: hash changed across JSON round-trip: %s != %s", s, before, after)
		}
		if !reflect.DeepEqual(c, back) {
			t.Errorf("%v: config changed across JSON round-trip", s)
		}
	}
}

// TestCanonicalHashStable pins determinism: hashing the same value twice
// gives the same string, and two independently built Defaults agree.
func TestCanonicalHashStable(t *testing.T) {
	a := CanonicalHash(Default(CMPDNUCA3D))
	b := CanonicalHash(Default(CMPDNUCA3D))
	if a != b {
		t.Fatalf("hash not deterministic: %s != %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a))
	}
}

// TestCanonicalHashSensitivity perturbs every exported field of Config
// (and, transitively, the cache geometry) and requires the hash to move —
// the guard against a field silently falling out of the canonical
// encoding, which would make the result cache return wrong answers for
// configs differing only in that field.
func TestCanonicalHashSensitivity(t *testing.T) {
	base := Default(CMPDNUCA3D)
	baseHash := CanonicalHash(base)

	perturb(t, "", reflect.ValueOf(&base).Elem(), func(field string) {
		if got := CanonicalHash(base); got == baseHash {
			t.Errorf("perturbing %s did not change the hash", field)
		}
	})
}

// perturb visits every exported field of v (recursing into structs),
// mutates it, calls check, and restores the original value.
func perturb(t *testing.T, prefix string, v reflect.Value, check func(field string)) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := prefix + v.Type().Field(i).Name
		if !f.CanSet() {
			t.Fatalf("field %s is unexported; CanonicalHash would miss it", name)
		}
		switch f.Kind() {
		case reflect.Struct:
			perturb(t, name+".", f, check)
			continue
		case reflect.Int:
			old := f.Int()
			f.SetInt(old + 1)
			check(name)
			f.SetInt(old)
		case reflect.Bool:
			old := f.Bool()
			f.SetBool(!old)
			check(name)
			f.SetBool(old)
		case reflect.String:
			old := f.String()
			f.SetString(old + "x")
			check(name)
			f.SetString(old)
		case reflect.Float64:
			old := f.Float()
			f.SetFloat(old + 1)
			check(name)
			f.SetFloat(old)
		default:
			t.Fatalf("field %s has unhandled kind %v; extend the test", name, f.Kind())
		}
	}
}
