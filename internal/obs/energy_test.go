package obs

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/thermal"
)

// testModel is a calibration with distinct, easily-summed costs so each
// charging rule's arithmetic is visible in the assertions.
func testModel() EnergyModel {
	return EnergyModel{
		ClockHz:     500e6,
		FlitHopPJ:   100,
		VCStallPJ:   10,
		BusFlitPJ:   8,
		TagProbePJ:  50,
		BankReadPJ:  400,
		BankWritePJ: 450,
		MigrationPJ: 400,
		InstrPJ:     1000,
	}
}

func testDim() geom.Dim { return geom.Dim{Width: 4, Height: 4, Layers: 2} }

func TestEnergyAccountantChargingRules(t *testing.T) {
	dim := testDim()
	a := NewEnergyAccountant(dim, testModel())

	// A 3-flit packet's head hop charges Size x FlitHopPJ at the router.
	a.Record(Event{Kind: EvHop, X: 1, Y: 2, Layer: 0, B: 3})
	// A bus grant splits its cost across the transceiver pair's layers.
	a.Record(Event{Kind: EvBusGrant, X: 2, Y: 2, A: 0, B: 1})
	// Cache SRAM events charge at their own cell.
	a.Record(Event{Kind: EvTagProbe, X: 0, Y: 0, Layer: 1})
	a.Record(Event{Kind: EvBankRead, X: 3, Y: 3, Layer: 1})
	a.Record(Event{Kind: EvBankWrite, X: 3, Y: 3, Layer: 1})
	a.Record(Event{Kind: EvMigStep, X: 1, Y: 1, Layer: 0})
	// Events without energy semantics are free.
	a.Record(Event{Kind: EvInject, X: 0, Y: 0, Layer: 0})
	a.Record(Event{Kind: EvEject, X: 0, Y: 0, Layer: 0})
	a.Record(Event{Kind: EvSlotGrow, X: 0, Y: 0, Layer: 0})
	a.Record(Event{Kind: EvCohUpgrade, X: 0, Y: 0, Layer: 0})
	// Malformed coordinates must not corrupt the map.
	a.Record(Event{Kind: EvHop, X: 99, Y: 0, Layer: 0, B: 1})

	dst := make([]float64, dim.Nodes())
	cycles := uint64(1000)
	comp := a.FlushWindow(cycles, dst)

	// watts = pJ * 1e-12 * ClockHz / cycles = pJ * 5e-7 at 500 MHz / 1k cycles.
	scale := 1e-12 * 500e6 / float64(cycles)
	wants := map[PowerComponent]float64{
		PowNetwork:   300 * scale,
		PowBus:       8 * scale,
		PowTags:      50 * scale,
		PowBanks:     850 * scale,
		PowMigration: 400 * scale,
		PowCPU:       0,
	}
	for c, want := range wants {
		if got := comp[c]; math.Abs(got-want) > 1e-15 {
			t.Errorf("%s window power = %v W, want %v", c, got, want)
		}
	}

	cell := func(x, y, l int) float64 { return dst[dim.Index(geom.Coord{X: x, Y: y, Layer: l})] }
	if got := cell(1, 2, 0); math.Abs(got-300*scale) > 1e-15 {
		t.Errorf("hop cell power = %v, want %v", got, 300*scale)
	}
	if got, want := cell(2, 2, 0), 4*scale; math.Abs(got-want) > 1e-15 {
		t.Errorf("bus tx-layer cell = %v, want %v", got, want)
	}
	if got, want := cell(2, 2, 1), 4*scale; math.Abs(got-want) > 1e-15 {
		t.Errorf("bus dst-layer cell = %v, want %v", got, want)
	}
	if got, want := cell(3, 3, 1), 850*scale; math.Abs(got-want) > 1e-15 {
		t.Errorf("bank cell = %v, want %v", got, want)
	}

	// The flush zeroed the window and folded it into the totals.
	var second [NumPowerComponents]float64 = a.FlushWindow(cycles, make([]float64, dim.Nodes()))
	for c, v := range second {
		if v != 0 {
			t.Errorf("%s power non-zero (%v) after empty window", PowerComponent(c), v)
		}
	}
	tot := a.TotalPJ()
	if got := tot[PowNetwork]; got != 300 {
		t.Errorf("cumulative network energy = %v pJ, want 300", got)
	}
	if got := tot[PowBanks]; got != 850 {
		t.Errorf("cumulative bank energy = %v pJ, want 850", got)
	}
}

func TestEnergyAccountantRecordAllocFree(t *testing.T) {
	a := NewEnergyAccountant(testDim(), testModel())
	e := Event{Kind: EvHop, X: 1, Y: 1, Layer: 0, B: 3}
	if n := testing.AllocsPerRun(200, func() { a.Record(e) }); n != 0 {
		t.Fatalf("Record allocates %v per event, want 0", n)
	}
}

func TestThermalTrackerStepsAndReport(t *testing.T) {
	dim := testDim()
	model := testModel()
	tt := NewThermalTracker(dim, thermal.DefaultParams(), model, 100)

	var instrs uint64
	tt.AddCPU(geom.Coord{X: 1, Y: 1, Layer: 0}, func() uint64 { return instrs })

	// The warm-started grid sits at the static steady state.
	_, base := tt.Grid().PeakCell()

	sink := tt.Sink()
	tt.Tick(0) // primes baselines, no step

	// Two windows of activity: events via the sink, instructions via the
	// CPU feed.
	for w := 1; w <= 2; w++ {
		for c := uint64(0); c < 100; c++ {
			sink.Record(Event{Kind: EvHop, X: 1, Y: 1, Layer: 0, B: 4})
			instrs += 2
		}
		tt.Tick(uint64(w * 100))
	}

	r := tt.Report()
	if r.Steps != 2 || r.Cycles != 200 {
		t.Fatalf("steps=%d cycles=%d, want 2/200", r.Steps, r.Cycles)
	}
	if r.IntervalCycles != 100 {
		t.Fatalf("interval = %d, want 100", r.IntervalCycles)
	}
	_, now := tt.Grid().PeakCell()
	if now <= base {
		t.Fatalf("activity did not heat the grid: %v C -> %v C", base, now)
	}
	if r.PeakC < now-1e-9 {
		t.Fatalf("running peak %v below current peak %v", r.PeakC, now)
	}
	wantNet := 2 * 100 * 4 * model.FlitHopPJ
	if math.Abs(r.Energy.NetworkPJ-wantNet) > 1e-9 {
		t.Fatalf("network energy = %v pJ, want %v", r.Energy.NetworkPJ, wantNet)
	}
	wantCPU := 2 * 100 * 2 * model.InstrPJ
	if math.Abs(r.Energy.CPUPJ-wantCPU) > 1e-9 {
		t.Fatalf("cpu energy = %v pJ, want %v", r.Energy.CPUPJ, wantCPU)
	}
	if r.Energy.TotalPJ <= 0 || r.AvgPowerW <= 0 {
		t.Fatal("empty totals after two active windows")
	}
	if len(r.Layers) != dim.Layers {
		t.Fatalf("%d layer summaries, want %d", len(r.Layers), dim.Layers)
	}

	// Re-ticking the same cycle must not double-step.
	tt.Tick(200)
	if r2 := tt.Report(); r2.Steps != 2 {
		t.Fatalf("duplicate tick advanced steps to %d", r2.Steps)
	}
}

func TestThermalTrackerThreshold(t *testing.T) {
	tt := NewThermalTracker(testDim(), thermal.DefaultParams(), testModel(), 10)
	tt.SetThreshold(0) // everything is "hot"
	tt.Tick(0)
	tt.Tick(10)
	if r := tt.Report(); r.CyclesAboveThreshold != 10 {
		t.Fatalf("cycles above a 0 C threshold = %d, want 10", r.CyclesAboveThreshold)
	}
}

func TestThermalTrackerTickAllocFree(t *testing.T) {
	tt := NewThermalTracker(testDim(), thermal.DefaultParams(), testModel(), 10)
	tt.AddCPU(geom.Coord{X: 0, Y: 0, Layer: 0}, func() uint64 { return 0 })
	tt.Tick(0)
	sink := tt.Sink()
	var cycle uint64
	n := testing.AllocsPerRun(100, func() {
		cycle += 10
		sink.Record(Event{Kind: EvHop, X: 1, Y: 1, Layer: 0, B: 2})
		tt.Tick(cycle)
	})
	if n != 0 {
		t.Fatalf("steady-state thermal tick allocates %v, want 0", n)
	}
}

func TestTeeComposition(t *testing.T) {
	var a, b countSink
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should elide to nil")
	}
	if got := Tee(&a, nil); got != &a {
		t.Fatal("Tee(a, nil) should return a unchanged")
	}
	if got := Tee(nil, &b); got != &b {
		t.Fatal("Tee(nil, b) should return b unchanged")
	}
	both := Tee(&a, &b)
	both.Record(Event{Kind: EvHop})
	both.Record(Event{Kind: EvEject})
	if a != 2 || b != 2 {
		t.Fatalf("tee delivered %d/%d events, want 2/2", a, b)
	}
}

type countSink int

func (c *countSink) Record(Event) { *c++ }
