package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Instant events ("ph":"i") carry the cycle in ts; complete events
// ("ph":"X") additionally carry a duration; metadata events ("ph":"M")
// name the processes (device layers) and threads (routers).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form, which both
// chrome://tracing and Perfetto accept. OtherData carries export-level
// metadata (for example the ring-buffer drop count); Perfetto shows it in
// the trace-info view.
type chromeTrace struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// TraceMeta is export-level metadata embedded in the written trace.
type TraceMeta struct {
	// DroppedEvents is how many events the capture buffer discarded before
	// export (RingSink.Dropped()): non-zero means the trace is partial,
	// covering only the most recent window.
	DroppedEvents uint64
}

// spanPID is the synthetic Perfetto "process" holding the per-CPU
// transaction-span tracks. Device layers use their layer index as pid;
// chips have far fewer layers than this, so it cannot collide.
const spanPID = 1 << 10

// counterPID is the synthetic Perfetto "process" holding the sampled
// counter tracks (WriteCounterTrace).
const counterPID = 1 << 11

// tidOf packs an in-plane position into a stable thread id. Chip widths
// are far below 4096, so the packing cannot collide.
func tidOf(x, y int) int { return x<<12 | y }

// WriteChromeTrace exports events as Chrome trace-event JSON; it is
// WriteChromeTraceMeta without metadata.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteChromeTraceMeta(w, events, TraceMeta{})
}

// WriteChromeTraceMeta exports events as Chrome trace-event JSON. Each
// device layer becomes a "process" and each emitting node a "thread"
// within it, so Perfetto groups activity spatially; the simulation cycle
// is mapped onto the microsecond timestamp axis (1 cycle = 1 us of trace
// time). EvSpan events render differently: each becomes a complete slice
// ("ph":"X", named after its latency component, lasting its duration) on a
// per-CPU track under a synthetic "transactions" process, so a
// transaction's lifetime reads as a Perfetto span chain rather than a
// point. Events must be what a Sink received in order; the exporter sorts
// by cycle to tolerate ring-buffer wrap seams. meta is embedded in the
// trace's otherData section.
func WriteChromeTraceMeta(w io.Writer, events []Event, meta TraceMeta) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	type nodeKey struct{ layer, tid int }
	layers := map[int]bool{}
	nodes := map[nodeKey][2]int{}
	spanCPUs := map[int]bool{}
	out := make([]traceEvent, 0, len(sorted)+16)
	for _, e := range sorted {
		if e.Kind == EvSpan {
			spanCPUs[e.X] = true
			out = append(out, traceEvent{
				Name:  Component(e.A).String(),
				Cat:   CatSpan.String(),
				Phase: "X",
				TS:    e.Cycle,
				Dur:   e.B,
				PID:   spanPID,
				TID:   e.X,
				Args:  map[string]any{"txn": e.ID},
			})
			continue
		}
		tid := tidOf(e.X, e.Y)
		layers[e.Layer] = true
		nodes[nodeKey{e.Layer, tid}] = [2]int{e.X, e.Y}
		out = append(out, traceEvent{
			Name:  e.Kind.String(),
			Cat:   e.Kind.Category().String(),
			Phase: "i",
			Scope: "t",
			TS:    e.Cycle,
			PID:   e.Layer,
			TID:   tid,
			Args: map[string]any{
				"id": e.ID,
				"a":  e.A,
				"b":  e.B,
			},
		})
	}

	meta2 := make([]traceEvent, 0, len(layers)+len(nodes)+len(spanCPUs)+1)
	for l := range layers {
		meta2 = append(meta2, traceEvent{
			Name: "process_name", Phase: "M", PID: l,
			Args: map[string]any{"name": fmt.Sprintf("layer %d", l)},
		})
	}
	for k, xy := range nodes {
		meta2 = append(meta2, traceEvent{
			Name: "thread_name", Phase: "M", PID: k.layer, TID: k.tid,
			Args: map[string]any{"name": fmt.Sprintf("node (%d,%d)", xy[0], xy[1])},
		})
	}
	if len(spanCPUs) > 0 {
		meta2 = append(meta2, traceEvent{
			Name: "process_name", Phase: "M", PID: spanPID,
			Args: map[string]any{"name": "transactions"},
		})
		for c := range spanCPUs {
			meta2 = append(meta2, traceEvent{
				Name: "thread_name", Phase: "M", PID: spanPID, TID: c,
				Args: map[string]any{"name": fmt.Sprintf("cpu %d", c)},
			})
		}
	}
	sort.Slice(meta2, func(i, j int) bool {
		if meta2[i].PID != meta2[j].PID {
			return meta2[i].PID < meta2[j].PID
		}
		return meta2[i].TID < meta2[j].TID
	})

	tr := chromeTrace{
		TraceEvents:     append(meta2, out...),
		DisplayTimeUnit: "ms",
	}
	if meta.DroppedEvents > 0 {
		tr.OtherData = map[string]any{"dropped_events": meta.DroppedEvents}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteCounterTrace exports a sampled TimeSeries as Perfetto counter
// tracks: each column (beyond the leading cycle) becomes one "ph":"C"
// counter whose value steps at every sampling instant, under a synthetic
// "interval metrics" process. Open alongside an event trace to scrub
// power, temperature, and rate metrics against individual events. The
// series' drop count (if any) lands in otherData like the event export's.
func WriteCounterTrace(w io.Writer, ts *TimeSeries) error {
	out := make([]traceEvent, 0, len(ts.Rows)*maxInt(len(ts.Header)-1, 0)+1)
	out = append(out, traceEvent{
		Name: "process_name", Phase: "M", PID: counterPID,
		Args: map[string]any{"name": "interval metrics"},
	})
	for _, row := range ts.Rows {
		cycle := uint64(row[0])
		for i := 1; i < len(row) && i < len(ts.Header); i++ {
			out = append(out, traceEvent{
				Name:  ts.Header[i],
				Cat:   "metrics",
				Phase: "C",
				TS:    cycle,
				PID:   counterPID,
				Args:  map[string]any{"value": row[i]},
			})
		}
	}
	tr := chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"}
	if ts.DroppedEvents > 0 {
		tr.OtherData = map[string]any{"dropped_events": ts.DroppedEvents}
	}
	return json.NewEncoder(w).Encode(tr)
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
