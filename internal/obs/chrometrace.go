package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Instant events ("ph":"i") carry the cycle in ts; metadata events
// ("ph":"M") name the processes (device layers) and threads (routers).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form, which both
// chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tidOf packs an in-plane position into a stable thread id. Chip widths
// are far below 4096, so the packing cannot collide.
func tidOf(x, y int) int { return x<<12 | y }

// WriteChromeTrace exports events as Chrome trace-event JSON. Each device
// layer becomes a "process" and each emitting node a "thread" within it,
// so Perfetto groups activity spatially; the simulation cycle is mapped
// onto the microsecond timestamp axis (1 cycle = 1 us of trace time).
// Events must be what a Sink received in order; the exporter sorts by
// cycle to tolerate ring-buffer wrap seams.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	type nodeKey struct{ layer, tid int }
	layers := map[int]bool{}
	nodes := map[nodeKey][2]int{}
	out := make([]traceEvent, 0, len(sorted)+16)
	for _, e := range sorted {
		tid := tidOf(e.X, e.Y)
		layers[e.Layer] = true
		nodes[nodeKey{e.Layer, tid}] = [2]int{e.X, e.Y}
		out = append(out, traceEvent{
			Name:  e.Kind.String(),
			Cat:   e.Kind.Category().String(),
			Phase: "i",
			Scope: "t",
			TS:    e.Cycle,
			PID:   e.Layer,
			TID:   tid,
			Args: map[string]any{
				"id": e.ID,
				"a":  e.A,
				"b":  e.B,
			},
		})
	}

	meta := make([]traceEvent, 0, len(layers)+len(nodes))
	for l := range layers {
		meta = append(meta, traceEvent{
			Name: "process_name", Phase: "M", PID: l,
			Args: map[string]any{"name": fmt.Sprintf("layer %d", l)},
		})
	}
	for k, xy := range nodes {
		meta = append(meta, traceEvent{
			Name: "thread_name", Phase: "M", PID: k.layer, TID: k.tid,
			Args: map[string]any{"name": fmt.Sprintf("node (%d,%d)", xy[0], xy[1])},
		})
	}
	sort.Slice(meta, func(i, j int) bool {
		if meta[i].PID != meta[j].PID {
			return meta[i].PID < meta[j].PID
		}
		return meta[i].TID < meta[j].TID
	})

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}
