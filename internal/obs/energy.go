package obs

import "repro/internal/geom"

// EnergyModel is the per-event charging calibration of the energy
// accountant, in picojoules, plus the clock that converts window energy
// into power. It is populated by power.TelemetryModel (obs cannot import
// power — power imports dtdma, which imports obs — so the calibration is
// passed in by value).
type EnergyModel struct {
	// ClockHz converts a window's accumulated picojoules into watts:
	// W = pJ * 1e-12 * ClockHz / cycles.
	ClockHz float64

	FlitHopPJ   float64 // per flit crossing a router (charged Size x per head hop)
	VCStallPJ   float64 // per failed VC allocation
	BusFlitPJ   float64 // per dTDMA pillar flit (split across the transceiver pair)
	TagProbePJ  float64 // per tag-array activation
	BankReadPJ  float64 // per data-bank read
	BankWritePJ float64 // per data-bank write
	MigrationPJ float64 // per migration step (origin bank read; the target install charges its own write)
	InstrPJ     float64 // per committed instruction (fed per window, not per event)
}

// PowerComponent indexes the energy accountant's per-component breakdown.
type PowerComponent uint8

// The charged components.
const (
	PowNetwork   PowerComponent = iota // router traversals and VC stalls
	PowBus                             // dTDMA pillar transceivers
	PowTags                            // cluster tag arrays
	PowBanks                           // L2 data banks
	PowMigration                       // migration data movement (origin reads)
	PowCPU                             // per-instruction core energy
	NumPowerComponents
)

// String names the component.
func (p PowerComponent) String() string {
	switch p {
	case PowNetwork:
		return "network"
	case PowBus:
		return "bus"
	case PowTags:
		return "tags"
	case PowBanks:
		return "banks"
	case PowMigration:
		return "migration"
	case PowCPU:
		return "cpu"
	}
	return "?"
}

// EnergyAccountant is a Sink that converts probe events into per-cell
// energy: each event deposits its model cost at the emitting cell,
// accumulating a windowed power map the thermal tracker flushes every
// sampling interval. Recording is allocation-free (two slice indexings),
// so it can ride the same probe as a trace ring via Tee.
type EnergyAccountant struct {
	dim   geom.Dim
	model EnergyModel

	// windowPJ is the current window's per-cell energy (pJ), indexed like
	// geom.Dim.Index; windowCompPJ and totalCompPJ break the same energy
	// down by component, for the window and the whole attachment.
	windowPJ     []float64
	windowCompPJ [NumPowerComponents]float64
	totalCompPJ  [NumPowerComponents]float64
}

// NewEnergyAccountant builds an accountant for a chip of the given
// dimensions charging with the given model.
func NewEnergyAccountant(dim geom.Dim, model EnergyModel) *EnergyAccountant {
	return &EnergyAccountant{
		dim:      dim,
		model:    model,
		windowPJ: make([]float64, dim.Nodes()),
	}
}

// Record implements Sink: it charges the event's energy cost to the
// emitting cell. Events that carry no energy semantics (inject/eject,
// slot resizing, coherence bookkeeping, spans) are free.
func (a *EnergyAccountant) Record(e Event) {
	switch e.Kind {
	case EvHop:
		// A head-flit hop stands for the whole packet crossing this
		// router: B carries the packet size in flits.
		a.charge(e.X, e.Y, e.Layer, a.model.FlitHopPJ*float64(e.B), PowNetwork)
	case EvVCStall:
		a.charge(e.X, e.Y, e.Layer, a.model.VCStallPJ, PowNetwork)
	case EvBusGrant:
		// One flit crossed the pillar: half the transfer energy at the
		// transmitting layer's transceiver (A), half at the destination's (B).
		half := 0.5 * a.model.BusFlitPJ
		a.charge(e.X, e.Y, int(e.A), half, PowBus)
		a.charge(e.X, e.Y, int(e.B), half, PowBus)
	case EvTagProbe:
		a.charge(e.X, e.Y, e.Layer, a.model.TagProbePJ, PowTags)
	case EvBankRead:
		a.charge(e.X, e.Y, e.Layer, a.model.BankReadPJ, PowBanks)
	case EvBankWrite:
		a.charge(e.X, e.Y, e.Layer, a.model.BankWritePJ, PowBanks)
	case EvMigStep, EvMigPillar:
		// The origin bank's read; the install at the target charges its
		// own EvBankWrite.
		a.charge(e.X, e.Y, e.Layer, a.model.MigrationPJ, PowMigration)
	}
}

// charge deposits pj at a cell, silently dropping coordinates outside the
// chip (defensive: a malformed event must not corrupt the map).
func (a *EnergyAccountant) charge(x, y, layer int, pj float64, comp PowerComponent) {
	c := geom.Coord{X: x, Y: y, Layer: layer}
	if !a.dim.Contains(c) {
		return
	}
	a.windowPJ[a.dim.Index(c)] += pj
	a.windowCompPJ[comp] += pj
}

// AddCellEnergy deposits energy directly (the CPU activity feed: the
// thermal tracker charges each core's per-window instruction delta here).
func (a *EnergyAccountant) AddCellEnergy(c geom.Coord, pj float64, comp PowerComponent) {
	a.charge(c.X, c.Y, c.Layer, pj, comp)
}

// FlushWindow converts the window's accumulated energy into average power
// over the given cycle span, adding watts into dst (indexed like the cell
// map; dst must have Dim().Nodes() entries and is NOT zeroed first, so
// static background power can be pre-filled). It returns the window's
// per-component power in watts, folds the window into the cumulative
// totals, and zeroes the window.
func (a *EnergyAccountant) FlushWindow(cycles uint64, dst []float64) [NumPowerComponents]float64 {
	var comp [NumPowerComponents]float64
	if cycles == 0 {
		return comp
	}
	// watts = pJ * 1e-12 / seconds, seconds = cycles / ClockHz.
	scale := 1e-12 * a.model.ClockHz / float64(cycles)
	for i, pj := range a.windowPJ {
		if pj != 0 {
			dst[i] += pj * scale
			a.windowPJ[i] = 0
		}
	}
	for i := range a.windowCompPJ {
		comp[i] = a.windowCompPJ[i] * scale
		a.totalCompPJ[i] += a.windowCompPJ[i]
		a.windowCompPJ[i] = 0
	}
	return comp
}

// TotalPJ returns the cumulative per-component energy charged since
// attachment (flushed windows only).
func (a *EnergyAccountant) TotalPJ() [NumPowerComponents]float64 { return a.totalCompPJ }
