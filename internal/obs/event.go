// Package obs is the simulator's observability layer: structured,
// cycle-stamped event tracing and periodic interval metrics, designed to
// cost nothing when disabled. Instrumented components (routers, pillar
// buses, the cluster protocol engine) carry a nil-checked *Probe field;
// with no probe attached every instrumentation site is a single pointer
// comparison, so a production run pays no allocation, no formatting, and
// no indirect call (BenchmarkTracingOverhead pins this at <= 2%).
//
// With a probe attached, events flow into a Sink — normally the bounded
// RingSink — and can be exported as Chrome trace-event JSON
// (WriteChromeTrace) for visual scrubbing in Perfetto or chrome://tracing.
// The interval side is Sampler: a sim.Ticker that snapshots counter
// registries and gauge closures every N cycles into a TimeSeries with
// CSV/JSON export.
package obs

import "fmt"

// Category groups events into the instrumented subsystems. It maps to
// the "cat" field of the Chrome trace-event format, so a viewer can toggle
// whole subsystems at once.
type Category uint8

// The event categories.
const (
	// CatPacket is the packet lifecycle: injection, per-hop routing,
	// VC-allocation stalls, ejection.
	CatPacket Category = iota
	// CatDTDMA is pillar-bus arbitration: slot-wheel grow/shrink and
	// per-flit bus grants.
	CatDTDMA
	// CatMigration is cache-line migration: intra-layer steps and
	// toward-pillar steps for lines accessed from another layer.
	CatMigration
	// CatCoherence is MSI protocol activity: exclusive upgrades, sharer
	// invalidations, back-invalidations, fills, and writebacks.
	CatCoherence
	// CatCache is SRAM array activity at the clusters: tag-array lookups
	// and per-bank data reads and writes — the charging points of the
	// energy accountant's bank and tag components.
	CatCache
	// CatSpan is transaction span tracing: one closed interval of an L2
	// transaction's lifetime attributed to a latency component.
	CatSpan
	numCategories
)

// String names the category (the Chrome trace "cat" value).
func (c Category) String() string {
	switch c {
	case CatPacket:
		return "packet"
	case CatDTDMA:
		return "dtdma"
	case CatMigration:
		return "migration"
	case CatCoherence:
		return "coherence"
	case CatCache:
		return "cache"
	case CatSpan:
		return "span"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Kind identifies one event type within its category.
type Kind uint8

// The event kinds. Comments give the meaning of the Event numeric fields
// for that kind (unused fields are zero).
const (
	// EvInject: packet entered its source router's injection queue.
	// ID=packet, A=size in flits.
	EvInject Kind = iota
	// EvHop: a head flit won arbitration and crossed a router's crossbar.
	// ID=packet, A=output direction (geom.Direction), B=packet size in
	// flits (the head-only event stands for the whole packet, so energy
	// accounting charges all B flit traversals at once).
	EvHop
	// EvVCStall: a buffered head flit failed downstream VC allocation this
	// cycle. ID=packet, A=requested direction.
	EvVCStall
	// EvEject: packet's tail flit left the network at its destination.
	// ID=packet, A=end-to-end latency in cycles, B=hops.
	EvEject

	// EvSlotGrow: the dTDMA slot wheel widened. ID=pillar, A=active
	// clients now, B=active clients before.
	EvSlotGrow
	// EvSlotShrink: the dTDMA slot wheel narrowed. ID=pillar, A=active
	// clients now, B=active clients before.
	EvSlotShrink
	// EvBusGrant: the arbiter granted the bus and one flit crossed the
	// stack. ID=pillar, A=transmitting layer, B=destination layer.
	EvBusGrant

	// EvMigStep: one intra-layer migration step toward the accessor's
	// local cluster. ID=line address, A=origin cluster, B=target cluster.
	EvMigStep
	// EvMigPillar: a migration step toward the accessor's pillar, for a
	// line on a different layer than its accessor. ID=line address,
	// A=origin cluster, B=target cluster.
	EvMigPillar

	// EvCohUpgrade: a line transitioned to Modified for a new exclusive
	// owner. ID=line address, A=new owner CPU.
	EvCohUpgrade
	// EvCohInval: the directory invalidated one L1 sharer. ID=line
	// address, A=sharer CPU.
	EvCohInval
	// EvCohBackInval: an L2 eviction back-invalidated one L1 sharer.
	// ID=line address, A=sharer CPU.
	EvCohBackInval
	// EvCohFill: a line installed into the L2 from memory. ID=line
	// address, A=home cluster.
	EvCohFill
	// EvCohWriteback: a dirty line left the L2 for memory. ID=line
	// address, A=evicting cluster.
	EvCohWriteback

	// EvTagProbe: one cluster tag-array activation, at the cluster's
	// controller node. ID=line address, A=cluster.
	EvTagProbe
	// EvBankRead: one L2 data-bank read, at the bank's node. ID=line
	// address, A=cluster, B=bank.
	EvBankRead
	// EvBankWrite: one L2 data-bank write (exclusive grant or line
	// install), at the bank's node. ID=line address, A=cluster, B=bank.
	EvBankWrite

	// EvSpan: one component interval of a traced L2 transaction, emitted by
	// the SpanRecorder when a sink is attached. Cycle=interval start,
	// X=issuing CPU, ID=transaction, A=Component, B=duration in cycles.
	EvSpan
	numKinds
)

// kindInfo is the static per-kind metadata table.
var kindInfo = [numKinds]struct {
	cat  Category
	name string
}{
	EvInject:       {CatPacket, "inject"},
	EvHop:          {CatPacket, "hop"},
	EvVCStall:      {CatPacket, "vc-stall"},
	EvEject:        {CatPacket, "eject"},
	EvSlotGrow:     {CatDTDMA, "slot-grow"},
	EvSlotShrink:   {CatDTDMA, "slot-shrink"},
	EvBusGrant:     {CatDTDMA, "bus-grant"},
	EvMigStep:      {CatMigration, "mig-step"},
	EvMigPillar:    {CatMigration, "mig-pillar"},
	EvCohUpgrade:   {CatCoherence, "upgrade"},
	EvCohInval:     {CatCoherence, "inval"},
	EvCohBackInval: {CatCoherence, "back-inval"},
	EvCohFill:      {CatCoherence, "fill"},
	EvCohWriteback: {CatCoherence, "writeback"},
	EvTagProbe:     {CatCache, "tag-probe"},
	EvBankRead:     {CatCache, "bank-read"},
	EvBankWrite:    {CatCache, "bank-write"},
	EvSpan:         {CatSpan, "span"},
}

// Category returns the subsystem the kind belongs to.
func (k Kind) Category() Category {
	if int(k) < len(kindInfo) {
		return kindInfo[k].cat
	}
	return numCategories
}

// String names the kind (the Chrome trace "name" value).
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one cycle-stamped observation. It is a small value type —
// recording one costs a struct copy into the sink, never an allocation.
// X/Y/Layer locate the emitting component on the chip; ID, A, and B are
// kind-specific (see the Kind constants).
type Event struct {
	Cycle       uint64
	Kind        Kind
	X, Y, Layer int
	ID          uint64
	A, B        uint64
}

// String renders a compact human-readable form, mainly for tests and logs.
func (e Event) String() string {
	return fmt.Sprintf("@%d %s/%s (%d,%d,%d) id=%#x a=%d b=%d",
		e.Cycle, e.Kind.Category(), e.Kind, e.X, e.Y, e.Layer, e.ID, e.A, e.B)
}

// Sink receives recorded events. Implementations must be cheap: Record is
// called from the simulator's inner loops.
type Sink interface {
	Record(e Event)
}

// Probe is the handle instrumented components hold. A nil *Probe is valid
// and records nothing, so components store it as a plain field and guard
// hot emission sites with a single `p != nil` check (the check, not a
// method call, is the disabled-path cost).
type Probe struct {
	sink Sink
}

// NewProbe wraps a sink in a probe. A nil sink yields a nil probe, which
// keeps every instrumentation site disabled.
func NewProbe(s Sink) *Probe {
	if s == nil {
		return nil
	}
	return &Probe{sink: s}
}

// Emit records one event. Safe on a nil receiver (no-op), so cold call
// sites may skip the explicit nil check.
func (p *Probe) Emit(e Event) {
	if p == nil {
		return
	}
	p.sink.Record(e)
}

// Tee composes two sinks: every recorded event is forwarded to both. A nil
// operand is elided, so Tee(a, nil) is just a — which lets a probe carry a
// trace ring and an energy accountant simultaneously without either paying
// for the other when detached.
func Tee(a, b Sink) Sink {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return teeSink{a, b}
}

type teeSink struct{ a, b Sink }

func (t teeSink) Record(e Event) {
	t.a.Record(e)
	t.b.Record(e)
}
