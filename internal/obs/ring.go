package obs

// RingSink is a bounded in-memory event sink: a circular buffer that keeps
// the most recent Capacity events and counts the rest as dropped. It makes
// tracing safe on arbitrarily long runs — memory is fixed at attach time —
// while still capturing a full window of recent behaviour for export.
type RingSink struct {
	buf     []Event
	next    int
	n       int
	dropped uint64
}

// NewRingSink creates a ring buffer holding up to capacity events.
// Capacity must be at least 1.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		panic("obs: ring sink needs capacity >= 1")
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Record stores the event, overwriting the oldest when full.
func (r *RingSink) Record(e Event) {
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Len returns the number of events currently held.
func (r *RingSink) Len() int { return r.n }

// Dropped returns how many events were overwritten by newer ones.
func (r *RingSink) Dropped() uint64 { return r.dropped }

// Events returns the retained events oldest-first. The slice is freshly
// allocated; the ring keeps recording.
func (r *RingSink) Events() []Event {
	out := make([]Event, r.n)
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Reset discards all retained events and the drop count.
func (r *RingSink) Reset() {
	r.next, r.n, r.dropped = 0, 0, 0
}
