package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stats"
)

// TimeSeries is a sampled metrics table: one row per sampling instant,
// first column always "cycle", strictly increasing down the rows.
type TimeSeries struct {
	Header []string
	Rows   [][]float64

	// DroppedEvents mirrors the trace ring's drop count when the series
	// was captured alongside an event trace (parity with the Chrome-trace
	// otherData metadata): non-zero marks the companion trace as partial.
	// It rides the exports — an otherData section in JSON, a trailing
	// comment line in CSV — only when non-zero.
	DroppedEvents uint64
}

// WriteCSV writes the series as an RFC-4180 CSV with a header row.
// Integral values print without a decimal point. A non-zero drop count
// appends a "# dropped_events=N" comment line after the data.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	for i, h := range ts.Header {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range ts.Rows {
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, formatSample(v)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if ts.DroppedEvents > 0 {
		if _, err := fmt.Fprintf(w, "# dropped_events=%d\n", ts.DroppedEvents); err != nil {
			return err
		}
	}
	return nil
}

// formatSample renders a sample compactly: integers without a fraction,
// everything else with four significant decimals.
func formatSample(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// WriteJSON writes the series as a JSON object {"header":[...],"rows":[...]},
// plus an otherData section carrying the drop count when non-zero (the
// same shape the Chrome-trace export uses).
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	var other map[string]any
	if ts.DroppedEvents > 0 {
		other = map[string]any{"dropped_events": ts.DroppedEvents}
	}
	return json.NewEncoder(w).Encode(struct {
		Header    []string       `json:"header"`
		Rows      [][]float64    `json:"rows"`
		OtherData map[string]any `json:"otherData,omitempty"`
	}{ts.Header, ts.Rows, other})
}

// column is one sampled metric: a name and a closure producing the value
// for the current row.
type column struct {
	name   string
	sample func(cycle uint64) float64
}

// Sampler takes periodic metric snapshots: every Interval cycles it
// evaluates each registered column and appends one row to its TimeSeries.
// It implements sim.Ticker; register it with the engine to drive it. An
// unattached simulation never constructs one, so sampling costs nothing
// by default.
type Sampler struct {
	interval uint64
	cols     []column
	series   TimeSeries

	// primed reports whether the delta baselines have been established:
	// the first Tick evaluates every column once and discards the values,
	// so the first emitted row measures a real interval instead of
	// "everything since machine construction".
	primed bool

	// lastSet holds the previous cumulative value per counter-set column,
	// for per-interval deltas.
	lastSet map[string]uint64

	// rowSink, when non-nil, receives each sampled row as it is appended;
	// see SetRowSink.
	rowSink func(header []string, row []float64)
}

// NewSampler creates a sampler with the given period in cycles (>= 1).
func NewSampler(interval uint64) *Sampler {
	if interval < 1 {
		panic("obs: sampler interval must be >= 1")
	}
	return &Sampler{interval: interval, lastSet: make(map[string]uint64)}
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() uint64 { return s.interval }

// SetRowSink installs a streaming sink: fn is invoked once per sampled
// row, immediately after the row is appended to the series, with the
// series header (first element always "cycle") and the just-sampled row.
// Both slices are owned by the sampler and stay valid but must not be
// mutated; a sink that retains a row beyond the call must copy it. The
// sink runs on the goroutine stepping the simulation — it should hand the
// data off quickly (e.g. publish under a lock, send on a channel) rather
// than do I/O inline, or it will stall the simulated clock. A nil fn
// detaches the sink. This is how the serving tier tees a running job's
// interval metrics out live over SSE while Series() keeps accumulating
// the full table for the final result.
func (s *Sampler) SetRowSink(fn func(header []string, row []float64)) {
	s.rowSink = fn
}

// AddGauge registers an instantaneous column: fn is evaluated at each
// sampling instant and its value recorded as-is.
func (s *Sampler) AddGauge(name string, fn func(cycle uint64) float64) {
	s.cols = append(s.cols, column{name: name, sample: fn})
}

// AddCounterSet registers one per-interval-delta column for every counter
// currently in the set (stats.Set is the counter registry backing the
// sampler). Each row reports how much each counter grew since the previous
// row; a counter reset mid-run (ResetStats) restarts its delta from the
// new cumulative value instead of going negative.
func (s *Sampler) AddCounterSet(set *stats.Set) {
	for _, name := range set.Names() {
		name := name
		s.cols = append(s.cols, column{name: name, sample: func(uint64) float64 {
			cur := set.Value(name)
			last := s.lastSet[name]
			s.lastSet[name] = cur
			if cur < last { // counter was reset since the previous row
				last = 0
			}
			return float64(cur - last)
		}})
	}
}

// Tick samples one row whenever the cycle reaches an interval boundary.
// It is cheap on non-boundary cycles: one modulo and one branch. The very
// first Tick after attachment only primes the delta baselines (no row), so
// attaching mid-run — e.g. right after ResetStats — starts a fresh window
// instead of reporting cumulative totals as the first "interval".
func (s *Sampler) Tick(cycle uint64) {
	if !s.primed {
		s.primed = true
		for _, c := range s.cols {
			c.sample(cycle)
		}
		return
	}
	if cycle == 0 || cycle%s.interval != 0 {
		return
	}
	if s.series.Header == nil {
		s.series.Header = make([]string, 1, len(s.cols)+1)
		s.series.Header[0] = "cycle"
		for _, c := range s.cols {
			s.series.Header = append(s.series.Header, c.name)
		}
	}
	row := make([]float64, 0, len(s.cols)+1)
	row = append(row, float64(cycle))
	for _, c := range s.cols {
		row = append(row, c.sample(cycle))
	}
	s.series.Rows = append(s.series.Rows, row)
	if s.rowSink != nil {
		s.rowSink(s.series.Header, row)
	}
}

// Series returns the accumulated time series. The header materializes on
// the first sampled row; an empty run yields a header-only series.
func (s *Sampler) Series() *TimeSeries {
	if s.series.Header == nil {
		hdr := make([]string, 1, len(s.cols)+1)
		hdr[0] = "cycle"
		for _, c := range s.cols {
			hdr = append(hdr, c.name)
		}
		return &TimeSeries{Header: hdr}
	}
	return &s.series
}

// Check verifies internal consistency (row widths and cycle monotonicity);
// it is for tests.
func (s *Sampler) Check() error {
	ts := s.Series()
	var prev float64 = -1
	for i, row := range ts.Rows {
		if len(row) != len(ts.Header) {
			return fmt.Errorf("obs: row %d has %d fields, header has %d", i, len(row), len(ts.Header))
		}
		if row[0] <= prev {
			return fmt.Errorf("obs: row %d cycle %v not after %v", i, row[0], prev)
		}
		prev = row[0]
	}
	return nil
}
