package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func TestPacketSpanAccounting(t *testing.T) {
	var ps PacketSpan
	ps.AddSourceWait(3)                          // 3 queue
	ps.AddHop(1, 1)                              // uncontended hop: 1 link
	ps.AddHop(5, 1)                              // congested hop: 1 link + 4 queue
	ps.AddBus(1)                                 // same-cycle grant: 1 transfer
	ps.AddBus(4)                                 // 1 transfer + 3 arbitration wait
	ps.AddBus(0)                                 // free vertical forward: nothing
	want := PacketSpan{Queue: 7, Link: 2, BusWait: 3, BusXfer: 2}
	if ps != want {
		t.Fatalf("ledger %+v, want %+v", ps, want)
	}

	// Ejection at total latency 20 with a 4-flit packet: the 6 remaining
	// cycles split into 3 serialization (link) + 3 body-flit stall (queue).
	ps.Finish(20, 4)
	if ps.Total() != 20 {
		t.Fatalf("Finish did not close the ledger: total %d, want 20", ps.Total())
	}
	if ps.Link != 2+3 || ps.Queue != 7+3 {
		t.Fatalf("Finish split %+v, want link 5 queue 10", ps)
	}

	// A head flit arriving before the pipeline minimum clamps to residence.
	var clamp PacketSpan
	clamp.AddHop(0, 4)
	if clamp.Link != 0 || clamp.Queue != 0 {
		t.Fatalf("zero-residence hop charged %+v", clamp)
	}

	// A 1-flit packet whose remainder is pure queueing.
	one := PacketSpan{Link: 2}
	one.Finish(5, 1)
	if one.Link != 2 || one.Queue != 3 {
		t.Fatalf("1-flit remainder %+v, want link 2 queue 3", one)
	}
}

func TestSpanRecorderConservationCheck(t *testing.T) {
	r := NewSpanRecorder()
	ok := r.Begin(1, 0, 100)
	r.Mark(ok, CompSearch1, 110)
	r.Mark(ok, CompDram, 120)
	r.FinishTxn(ok, 20, true)

	bad := r.Begin(2, 3, 200)
	r.Mark(bad, CompTag, 204)
	r.FinishTxn(bad, 7, false) // components sum to 4

	n, first := r.Mismatches()
	if n != 1 {
		t.Fatalf("mismatches %d, want 1", n)
	}
	for _, frag := range []string{"txn 0x2", "cpu 3", "sum to 4", "measured 7"} {
		if !strings.Contains(first, frag) {
			t.Errorf("first mismatch %q missing %q", first, frag)
		}
	}
	if r.Finished() != 2 {
		t.Fatalf("finished %d, want 2", r.Finished())
	}

	r.Reset()
	if n, first := r.Mismatches(); n != 0 || first != "" || r.Finished() != 0 {
		t.Fatalf("Reset left state: %d %q %d", n, first, r.Finished())
	}
}

// TestSpanRecorderSteadyStateAllocs pins the pooled hot path at zero
// allocations: once the free lists are primed, a full transaction
// lifecycle — begin, an attempt chain, component marks, fold, finish —
// allocates nothing.
func TestSpanRecorderSteadyStateAllocs(t *testing.T) {
	r := NewSpanRecorder()
	cycle := func() {
		ts := r.Begin(7, 1, 1000)
		ch := r.GetChain(1000)
		ch.Req.AddHop(2, 1)
		ch.Tag, ch.Bank = 4, 5
		ch.Rep.AddHop(3, 1)
		r.Mark(ts, CompSearch1, 1002)
		r.FoldChain(ts, ch, 1016)
		r.PutChain(ch)
		r.FinishTxn(ts, 16, false)
	}
	cycle() // prime the pools
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("steady-state span recording allocates %.1f per txn, want 0", n)
	}
}

// TestSpanEmissionTiles checks the sink-facing view: the EvSpan intervals
// of one transaction tile [issue, completion] contiguously (excluding the
// pre-issue l1 interval), with no zero-duration noise.
func TestSpanEmissionTiles(t *testing.T) {
	r := NewSpanRecorder()
	sink := NewRingSink(64)
	r.SetSink(sink)

	ts := r.Begin(9, 2, 1000)
	r.ChargeL1(ts, 2) // pre-issue, emitted at 998
	ch := r.GetChain(1000)
	ch.Req.Queue, ch.Req.Link = 1, 3
	ch.Tag, ch.Bank = 4, 5
	ch.Rep.Link = 6
	r.Mark(ts, CompSearch1, 1005)
	r.FoldChain(ts, ch, 1024)
	r.FinishTxn(ts, 24, false)

	evs := sink.Events()
	for _, e := range evs {
		if e.Kind != EvSpan {
			t.Fatalf("non-span event %v", e.Kind)
		}
		if e.B == 0 {
			t.Fatalf("zero-duration interval emitted: %+v", e)
		}
		if e.ID != 9 || e.X != 2 {
			t.Fatalf("wrong identity on %+v", e)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	if Component(evs[0].A) != CompL1 || evs[0].Cycle != 998 {
		t.Fatalf("first interval %+v, want pre-issue l1 at 998", evs[0])
	}
	at := uint64(1000)
	var sum uint64
	for _, e := range evs[1:] {
		if e.Cycle != at {
			t.Fatalf("interval %s starts at %d, want %d (gap or overlap)",
				Component(e.A), e.Cycle, at)
		}
		at += e.B
		sum += e.B
	}
	if at != 1024 || sum != 24 {
		t.Fatalf("intervals cover [1000,%d) summing %d, want [1000,1024) summing 24", at, sum)
	}
}

func TestBreakdownReportSharesAndTable(t *testing.T) {
	r := NewSpanRecorder()
	for i := 0; i < 10; i++ {
		ts := r.Begin(uint64(i), 0, 0)
		r.Mark(ts, CompReqLink, 10)
		r.Mark(ts, CompTag, 14)
		r.Mark(ts, CompBank, 19)
		r.FinishTxn(ts, 19, i%2 == 0) // alternate hit/miss
	}
	bd := r.Report()
	if bd.Hits.Transactions != 5 || bd.Misses.Transactions != 5 {
		t.Fatalf("class counts %d/%d, want 5/5", bd.Hits.Transactions, bd.Misses.Transactions)
	}
	var shares float64
	for _, c := range bd.Hits.Components {
		if c.Name != CompL1.String() {
			shares += c.Share
		}
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("non-l1 shares sum to %f, want 1", shares)
	}
	// P95 reports the histogram bucket's upper edge: 19 falls in bucket
	// [16,24) of the 8-cycle-wide histogram.
	if bd.Hits.MeanTotal != 19 || bd.Hits.P95Total != 24 {
		t.Fatalf("totals %f/%d, want 19/24", bd.Hits.MeanTotal, bd.Hits.P95Total)
	}

	var buf bytes.Buffer
	if err := bd.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"req-link", "tag", "bank", "total", "5 hits, 5 misses"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "dram") {
		t.Errorf("table shows all-zero component:\n%s", out)
	}
}

// TestChromeTraceSpanTracks checks the exporter's span rendering: EvSpan
// events become Perfetto complete slices on per-CPU tracks under a
// synthetic "transactions" process, and the trace metadata carries the
// capture drop count.
func TestChromeTraceSpanTracks(t *testing.T) {
	events := []Event{
		{Cycle: 50, Kind: EvInject, X: 1, Y: 2, Layer: 0, ID: 77},
		{Cycle: 60, Kind: EvSpan, X: 3, ID: 42, A: uint64(CompRepLink), B: 9},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceMeta(&buf, events, TraceMeta{DroppedEvents: 5}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.OtherData["dropped_events"]; got != float64(5) {
		t.Fatalf("otherData dropped_events = %v, want 5", got)
	}
	var span, procName, threadName bool
	for _, e := range tr.TraceEvents {
		switch {
		case e.Phase == "X":
			span = true
			if e.Name != "rep-link" || e.TS != 60 || e.Dur != 9 || e.TID != 3 {
				t.Fatalf("span slice %+v", e)
			}
			if e.Args["txn"] != float64(42) {
				t.Fatalf("span args %v", e.Args)
			}
		case e.Phase == "M" && e.Name == "process_name" && e.Args["name"] == "transactions":
			procName = true
		case e.Phase == "M" && e.Name == "thread_name" && e.Args["name"] == "cpu 3":
			threadName = true
		}
	}
	if !span || !procName || !threadName {
		t.Fatalf("missing span rendering: slice %v process %v thread %v", span, procName, threadName)
	}

	// Without metadata the otherData section stays absent.
	buf.Reset()
	if err := WriteChromeTrace(&buf, events[:1]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "otherData") {
		t.Fatalf("zero meta emitted otherData: %s", buf.String())
	}
}
