package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestNilProbeIsNoOp(t *testing.T) {
	var p *Probe
	p.Emit(Event{Kind: EvInject}) // must not panic
	if NewProbe(nil) != nil {
		t.Fatal("NewProbe(nil) must return a nil probe")
	}
}

func TestKindMetadata(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.Category() >= numCategories {
			t.Errorf("kind %d has no category", k)
		}
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	cats := map[Category]bool{}
	for k := Kind(0); k < numKinds; k++ {
		cats[k.Category()] = true
	}
	if len(cats) != int(numCategories) {
		t.Fatalf("%d categories covered by kinds, want %d", len(cats), numCategories)
	}
}

func TestRingSinkWrap(t *testing.T) {
	r := NewRingSink(3)
	probe := NewProbe(r)
	for i := uint64(0); i < 5; i++ {
		probe.Emit(Event{Cycle: i, Kind: EvHop, ID: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].ID != want {
			t.Fatalf("Events()[%d].ID = %d, want %d (oldest-first)", i, evs[i].ID, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWriteChromeTraceRoundTrips(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: EvInject, X: 1, Y: 2, Layer: 0, ID: 7, A: 4},
		{Cycle: 12, Kind: EvBusGrant, X: 3, Y: 3, Layer: 0, ID: 0, A: 0, B: 1},
		{Cycle: 11, Kind: EvMigStep, X: 0, Y: 0, Layer: 1, ID: 0xbeef, A: 2, B: 3},
		{Cycle: 15, Kind: EvCohInval, X: 1, Y: 2, Layer: 1, ID: 0xbeef, A: 5},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	var lastTS uint64
	instants := 0
	for _, te := range parsed.TraceEvents {
		if te.Phase != "i" {
			continue
		}
		instants++
		cats[te.Cat] = true
		if te.TS < lastTS {
			t.Fatalf("instant events not cycle-sorted: %d after %d", te.TS, lastTS)
		}
		lastTS = te.TS
	}
	if instants != len(events) {
		t.Fatalf("%d instant events, want %d", instants, len(events))
	}
	for _, want := range []string{"packet", "dtdma", "migration", "coherence"} {
		if !cats[want] {
			t.Errorf("category %q missing from trace", want)
		}
	}
}

func TestSamplerIntervalsAndDeltas(t *testing.T) {
	set := stats.NewSet()
	set.Counter("hits") // registered before AddCounterSet so it gets a column
	s := NewSampler(10)
	s.AddCounterSet(set)
	s.AddGauge("util", func(cycle uint64) float64 { return float64(cycle) / 100 })

	for cycle := uint64(0); cycle <= 30; cycle++ {
		set.Counter("hits").Add(2)
		s.Tick(cycle)
	}
	ts := s.Series()
	wantHdr := []string{"cycle", "hits", "util"}
	if len(ts.Header) != len(wantHdr) {
		t.Fatalf("header %v, want %v", ts.Header, wantHdr)
	}
	for i := range wantHdr {
		if ts.Header[i] != wantHdr[i] {
			t.Fatalf("header %v, want %v", ts.Header, wantHdr)
		}
	}
	if len(ts.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (cycles 10, 20, 30)", len(ts.Rows))
	}
	// The tick at cycle 0 primes the baselines (cumulative 2 at that
	// point), so every emitted row is a pure 10-cycle delta of 20.
	if ts.Rows[0][0] != 10 || ts.Rows[0][1] != 20 {
		t.Fatalf("row 0 = %v, want cycle 10 delta 20", ts.Rows[0])
	}
	if ts.Rows[1][1] != 20 || ts.Rows[2][1] != 20 {
		t.Fatalf("delta rows = %v, %v, want 20 each", ts.Rows[1], ts.Rows[2])
	}
	if ts.Rows[1][2] != 0.2 {
		t.Fatalf("gauge = %v, want 0.2", ts.Rows[1][2])
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerCounterReset(t *testing.T) {
	set := stats.NewSet()
	c := set.Counter("n")
	s := NewSampler(5)
	s.AddCounterSet(set)
	c.Add(7)
	s.Tick(4) // primes the baseline at 7, emits nothing
	s.Tick(5)
	c.Reset() // e.g. ResetStats discarding warm-up
	c.Add(3)
	s.Tick(10)
	ts := s.Series()
	if len(ts.Rows) != 2 || ts.Rows[0][1] != 0 {
		t.Fatalf("rows = %v, want priming tick then a zero delta at cycle 5", ts.Rows)
	}
	if ts.Rows[1][1] != 3 {
		t.Fatalf("post-reset delta = %v, want 3 (not negative wraparound)", ts.Rows[1][1])
	}
}

func TestSamplerFirstTickPrimes(t *testing.T) {
	set := stats.NewSet()
	c := set.Counter("n")
	c.Add(1_000_000) // pre-attach history that must not leak into row 0
	s := NewSampler(10)
	s.AddCounterSet(set)
	s.Tick(10) // boundary cycle, but the first tick only primes
	if len(s.Series().Rows) != 0 {
		t.Fatal("first tick must prime, not emit a row")
	}
	c.Add(5)
	s.Tick(20)
	ts := s.Series()
	if len(ts.Rows) != 1 || ts.Rows[0][1] != 5 {
		t.Fatalf("rows = %v, want one row with delta 5 (history excluded)", ts.Rows)
	}
}

func TestSamplerRowSink(t *testing.T) {
	set := stats.NewSet()
	c := set.Counter("n")
	s := NewSampler(10)
	s.AddCounterSet(set)

	type streamed struct {
		header []string
		row    []float64
	}
	var got []streamed
	s.SetRowSink(func(header []string, row []float64) {
		// Copy, as the contract requires of sinks that retain rows.
		got = append(got, streamed{
			header: append([]string(nil), header...),
			row:    append([]float64(nil), row...),
		})
	})

	for cycle := uint64(0); cycle <= 30; cycle++ {
		c.Add(1)
		s.Tick(cycle)
	}
	ts := s.Series()
	if len(got) != len(ts.Rows) {
		t.Fatalf("sink saw %d rows, series has %d", len(got), len(ts.Rows))
	}
	for i, g := range got {
		if len(g.header) != len(ts.Header) || g.header[0] != "cycle" {
			t.Fatalf("sink row %d header = %v, want %v", i, g.header, ts.Header)
		}
		for j, v := range ts.Rows[i] {
			if g.row[j] != v {
				t.Fatalf("sink row %d = %v, series row = %v", i, g.row, ts.Rows[i])
			}
		}
	}

	// Detaching stops the stream but not the series.
	s.SetRowSink(nil)
	before := len(got)
	for cycle := uint64(31); cycle <= 50; cycle++ {
		s.Tick(cycle)
	}
	if len(got) != before {
		t.Fatal("detached sink still received rows")
	}
	if len(s.Series().Rows) <= before {
		t.Fatal("series stopped accumulating after sink detach")
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	ts := &TimeSeries{
		Header: []string{"cycle", "x"},
		Rows:   [][]float64{{10, 1}, {20, 2.5}},
	}
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "cycle,x\n10,1\n20,2.5000\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Header []string    `json:"header"`
		Rows   [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Rows) != 2 || parsed.Rows[1][1] != 2.5 {
		t.Fatalf("JSON round-trip = %+v", parsed)
	}
}

func TestEmptySamplerSeriesHasHeader(t *testing.T) {
	s := NewSampler(100)
	s.AddGauge("g", func(uint64) float64 { return 0 })
	ts := s.Series()
	if len(ts.Header) != 2 || ts.Header[0] != "cycle" || ts.Header[1] != "g" {
		t.Fatalf("empty series header = %v", ts.Header)
	}
	if len(ts.Rows) != 0 {
		t.Fatal("empty series must have no rows")
	}
}
