package obs

import (
	"repro/internal/geom"
	"repro/internal/thermal"
)

// DefaultThermalThresholdC is the junction temperature above which the
// tracker accumulates time-above-threshold — the conventional 85 C
// throttling point, overridable with ThermalTracker.SetThreshold.
const DefaultThermalThresholdC = 85.0

// ThermalActor closes the control loop on the thermal pipeline: a policy
// layer (internal/dtm) that both observes every freshly stepped grid and
// feeds effects back into the next step's power map. AdjustPower runs
// after the window's dynamic energy is flushed and before the RC step,
// with the window's span in cycles and the per-cell power map (static
// background plus dynamic) to modify in place; GridStepped runs after
// the step, with the cycle-stamped grid state the actor's decisions must
// be a pure function of (the determinism contract of DESIGN.md §13).
type ThermalActor interface {
	AdjustPower(cycles uint64, powerW []float64)
	GridStepped(cycle uint64, g *thermal.Grid)
}

// cpuFeed is one core's activity source: the tracker charges the
// per-window instruction delta at the core's cell.
type cpuFeed struct {
	pos  geom.Coord
	read func() uint64
	last uint64
}

// ThermalTracker is the activity→power→temperature pipeline head: a
// sim.Ticker that, every interval cycles, flushes the energy accountant's
// window into a per-cell power map (plus the grid's static background and
// each CPU's instruction-delta energy) and advances the transient RC
// thermal grid by the window's wall-clock duration. It keeps run-level
// accumulators (peak temperature and where/when it occurred, cycles above
// the threshold) and per-window outputs for the Sampler's thermal columns.
//
// The grid warm-starts at the static steady state (background power only),
// so the transient immediately shows activity-driven deltas instead of
// spending the window climbing from ambient. Steady-state recording
// allocates nothing.
type ThermalTracker struct {
	acct  *EnergyAccountant
	grid  *thermal.Grid
	model EnergyModel

	interval   uint64
	thresholdC float64
	cpus       []cpuFeed
	actor      ThermalActor

	// static is the background power map (thermal.Params.CellPowerW per
	// cell); scratch is static + the flushed window, passed to Step.
	static  []float64
	scratch []float64

	primed    bool
	lastFlush uint64

	// Run-level accumulators.
	steps         uint64
	trackedCycles uint64
	cyclesAbove   uint64
	peakC         float64
	peakCell      geom.Coord
	peakCycle     uint64

	// Last-window outputs, read by the Sampler's thermal gauges.
	lastCompW  [NumPowerComponents]float64
	lastLayers []thermal.Profile
	hotCell    geom.Coord
	hotC       float64
}

// NewThermalTracker builds the pipeline for a chip of the given
// dimensions: an energy accountant charging with model, and a transient
// grid warm-started at the static steady state. interval is the thermal
// step period in cycles (>= 1).
func NewThermalTracker(dim geom.Dim, prm thermal.Params, model EnergyModel, interval uint64) *ThermalTracker {
	if interval < 1 {
		panic("obs: thermal interval must be >= 1")
	}
	grid := thermal.NewGrid(dim, prm)
	grid.Solve(20000, 1e-7) // warm start: static background steady state
	t := &ThermalTracker{
		acct:       NewEnergyAccountant(dim, model),
		grid:       grid,
		model:      model,
		interval:   interval,
		thresholdC: DefaultThermalThresholdC,
		static:     make([]float64, dim.Nodes()),
		scratch:    make([]float64, dim.Nodes()),
		lastLayers: make([]thermal.Profile, dim.Layers),
	}
	for i := range t.static {
		t.static[i] = prm.CellPowerW
	}
	t.hotCell, t.hotC = grid.PeakCell()
	t.peakCell, t.peakC = t.hotCell, t.hotC
	for l := 0; l < dim.Layers; l++ {
		t.lastLayers[l] = grid.LayerProfile(l)
	}
	return t
}

// Sink returns the accountant as an event sink — compose it onto the
// simulation's probe (core wires this automatically via AttachThermal).
func (t *ThermalTracker) Sink() Sink { return t.acct }

// Grid exposes the transient grid (for end-of-window temperature maps).
func (t *ThermalTracker) Grid() *thermal.Grid { return t.grid }

// Interval returns the thermal step period in cycles.
func (t *ThermalTracker) Interval() uint64 { return t.interval }

// SetThreshold overrides the time-above-threshold temperature (C).
func (t *ThermalTracker) SetThreshold(c float64) { t.thresholdC = c }

// SetActor installs the control-loop hook invoked around every thermal
// step (nil detaches it). With no actor the step path is unchanged.
func (t *ThermalTracker) SetActor(a ThermalActor) { t.actor = a }

// AddCPU registers one core's activity feed: read must return the core's
// cumulative committed instruction count; the delta each window is charged
// as CPU energy at pos.
func (t *ThermalTracker) AddCPU(pos geom.Coord, read func() uint64) {
	t.cpus = append(t.cpus, cpuFeed{pos: pos, read: read})
}

// Tick implements sim.Ticker. The first call only primes the CPU activity
// baselines (no thermal step), so attaching mid-run — right after
// ResetStats — measures real windows. Non-boundary cycles cost one modulo
// and a branch.
func (t *ThermalTracker) Tick(cycle uint64) {
	if !t.primed {
		t.primed = true
		t.lastFlush = cycle
		for i := range t.cpus {
			t.cpus[i].last = t.cpus[i].read()
		}
		return
	}
	if cycle == 0 || cycle%t.interval != 0 || cycle == t.lastFlush {
		return
	}
	cycles := cycle - t.lastFlush
	t.lastFlush = cycle

	// Charge each core's instruction delta at its cell.
	for i := range t.cpus {
		cur := t.cpus[i].read()
		d := cur - t.cpus[i].last
		t.cpus[i].last = cur
		if d > 0 {
			t.acct.AddCellEnergy(t.cpus[i].pos, float64(d)*t.model.InstrPJ, PowCPU)
		}
	}

	// Static background + the window's dynamic power, then one RC step of
	// the window's wall-clock duration.
	copy(t.scratch, t.static)
	t.lastCompW = t.acct.FlushWindow(cycles, t.scratch)
	if t.actor != nil {
		t.actor.AdjustPower(cycles, t.scratch)
	}
	dt := float64(cycles) / t.model.ClockHz
	t.grid.Step(dt, t.scratch)

	t.steps++
	t.trackedCycles += cycles
	t.hotCell, t.hotC = t.grid.PeakCell()
	if t.hotC > t.peakC {
		t.peakC, t.peakCell, t.peakCycle = t.hotC, t.hotCell, cycle
	}
	if t.hotC > t.thresholdC {
		t.cyclesAbove += cycles
	}
	for l := range t.lastLayers {
		t.lastLayers[l] = t.grid.LayerProfile(l)
	}
	if t.actor != nil {
		t.actor.GridStepped(cycle, t.grid)
	}
}

// Hotspot returns the hottest cell and its temperature as of the last
// completed thermal step.
func (t *ThermalTracker) Hotspot() (geom.Coord, float64) { return t.hotCell, t.hotC }

// WindowPowerW returns the last window's per-component power in watts.
func (t *ThermalTracker) WindowPowerW() [NumPowerComponents]float64 { return t.lastCompW }

// LayerProfileNow returns a layer's temperature profile as of the last
// completed thermal step.
func (t *ThermalTracker) LayerProfileNow(layer int) thermal.Profile { return t.lastLayers[layer] }

// LayerThermal is one device layer's end-of-window temperature summary.
type LayerThermal struct {
	Layer int
	PeakC float64
	MeanC float64
}

// EnergyBreakdownPJ is the run's charged dynamic energy by component.
type EnergyBreakdownPJ struct {
	NetworkPJ   float64
	BusPJ       float64
	TagsPJ      float64
	BanksPJ     float64
	MigrationPJ float64
	CPUPJ       float64
	TotalPJ     float64
}

// ThermalReport is the run-level thermal summary (Results.Thermal).
type ThermalReport struct {
	// Steps is the number of thermal windows integrated; Cycles their
	// total span; IntervalCycles the configured window length.
	Steps          uint64
	Cycles         uint64
	IntervalCycles uint64

	// PeakC is the hottest cell temperature ever reached, at cell
	// (PeakX, PeakY, PeakLayer) on cycle PeakCycle.
	PeakC     float64
	PeakX     int
	PeakY     int
	PeakLayer int
	PeakCycle uint64

	// CyclesAboveThreshold counts cycles whose window ended with the
	// hotspot above ThresholdC.
	ThresholdC           float64
	CyclesAboveThreshold uint64

	// Final temperatures at window end: chip peak/mean, the per-layer
	// summaries, and the gradient (hottest minus coolest layer mean).
	FinalPeakC float64
	FinalMeanC float64
	GradientC  float64
	Layers     []LayerThermal

	// AvgPowerW is the charged dynamic power averaged over the tracked
	// cycles (background leakage excluded); Energy its breakdown.
	AvgPowerW float64
	Energy    EnergyBreakdownPJ
}

// Report summarizes the run so far.
func (t *ThermalTracker) Report() *ThermalReport {
	p := t.grid.Profile()
	r := &ThermalReport{
		Steps:                t.steps,
		Cycles:               t.trackedCycles,
		IntervalCycles:       t.interval,
		PeakC:                t.peakC,
		PeakX:                t.peakCell.X,
		PeakY:                t.peakCell.Y,
		PeakLayer:            t.peakCell.Layer,
		PeakCycle:            t.peakCycle,
		ThresholdC:           t.thresholdC,
		CyclesAboveThreshold: t.cyclesAbove,
		FinalPeakC:           p.PeakC,
		FinalMeanC:           p.AvgC,
		Layers:               make([]LayerThermal, t.grid.Dim().Layers),
	}
	hottest, coolest := 0.0, 0.0
	for l := range r.Layers {
		lp := t.grid.LayerProfile(l)
		r.Layers[l] = LayerThermal{Layer: l, PeakC: lp.PeakC, MeanC: lp.AvgC}
		if l == 0 || lp.AvgC > hottest {
			hottest = lp.AvgC
		}
		if l == 0 || lp.AvgC < coolest {
			coolest = lp.AvgC
		}
	}
	r.GradientC = hottest - coolest

	tot := t.acct.TotalPJ()
	r.Energy = EnergyBreakdownPJ{
		NetworkPJ:   tot[PowNetwork],
		BusPJ:       tot[PowBus],
		TagsPJ:      tot[PowTags],
		BanksPJ:     tot[PowBanks],
		MigrationPJ: tot[PowMigration],
		CPUPJ:       tot[PowCPU],
	}
	r.Energy.TotalPJ = r.Energy.NetworkPJ + r.Energy.BusPJ + r.Energy.TagsPJ +
		r.Energy.BanksPJ + r.Energy.MigrationPJ + r.Energy.CPUPJ
	if t.trackedCycles > 0 {
		r.AvgPowerW = r.Energy.TotalPJ * 1e-12 * t.model.ClockHz / float64(t.trackedCycles)
	}
	return r
}
