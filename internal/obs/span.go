package obs

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Transaction span tracing: a causal latency decomposition of every L2
// transaction, keyed by the protocol's transaction ID. Where the event
// tracer (Probe/Sink) records isolated points, the span layer tiles each
// transaction's whole lifetime [issue, data-return] with closed,
// non-overlapping component intervals, so "where did this transaction's 24
// cycles go?" has an exact answer.
//
// The accounting follows the winning causal chain. A transaction may have
// several request/reply attempts in flight at once (two-step search probes,
// a broadcast, a victim replica raced against its home cluster); each
// attempt carries its own ChainSpan, and only the chain whose data reply
// completes the transaction is folded into the transaction's ledger. The
// time spent in attempts that failed appears as the search/retry window
// components (CompSearch1, CompSearch2, CompRetry), measured at the
// transaction level between the issue (or previous drain) point and the
// moment the next attempt departs.
//
// Conservation invariant: for every finished transaction the component
// values, excluding the informational CompL1 (paid before the transaction
// issues), sum exactly to the end-to-end latency the system already
// measures. FinishTxn checks this per transaction and the recorder counts
// violations, which the test suite pins at zero for every scheme.

// Component is one slice of the latency taxonomy. Request-path and
// reply-path network time are attributed separately so the asymmetry
// between probe packets (1 flit) and data packets (4 flits) is visible.
type Component uint8

// The latency components, in report order.
const (
	// CompL1 is the L1 lookup that missed and triggered the transaction.
	// It is paid before the transaction issues (the system charges the L1
	// hit latency up front for loads and instruction fetches), so it is
	// reported for context but excluded from the conservation sum.
	CompL1 Component = iota
	// CompSearch1 is time lost to a failed first search round: the
	// two-step schemes' phase-1 probes of the local cluster column, the
	// static scheme's home-cluster probe on a miss, or a broadcast that
	// found nothing.
	CompSearch1
	// CompSearch2 is time lost to a failed two-step phase-2 probe round
	// (the remaining clusters), after which the line is fetched from
	// memory.
	CompSearch2
	// CompRetry is time lost to NACKed attempts that were retried: the
	// perfect-search baseline re-probing after racing a migration, a
	// victim-replica miss falling back to the home cluster, or a
	// post-memory-fetch probe chasing a line that arrived by other means.
	CompRetry
	// CompReqQueue is request-packet queueing: source-injection wait plus
	// per-router buffer residency beyond the pipeline minimum (VC
	// allocation and switch arbitration stalls).
	CompReqQueue
	// CompReqLink is request-packet traversal: the router pipeline and
	// link crossings a packet pays even on an empty mesh.
	CompReqLink
	// CompReqBusWait is request-packet dTDMA pillar arbitration wait: the
	// cycles a head flit sat at a bus transmitter beyond the transfer
	// itself.
	CompReqBusWait
	// CompReqBusXfer is request-packet dTDMA pillar transfer: one cycle
	// per vertical bus crossing.
	CompReqBusXfer
	// CompTag is the serving cluster's tag array access, including the tag
	// port wait under contention.
	CompTag
	// CompBank is the serving cluster's (or, after a fill, the home
	// cluster's) data bank access.
	CompBank
	// CompDram is the off-chip DRAM access on an L2 miss.
	CompDram
	// CompRepQueue, CompRepLink, CompRepBusWait, CompRepBusXfer mirror the
	// four request components for the data reply's return path.
	CompRepQueue
	CompRepLink
	CompRepBusWait
	CompRepBusXfer
	// NumComponents sizes per-component arrays.
	NumComponents
)

var componentNames = [NumComponents]string{
	CompL1:         "l1",
	CompSearch1:    "search1",
	CompSearch2:    "search2",
	CompRetry:      "retry",
	CompReqQueue:   "req-queue",
	CompReqLink:    "req-link",
	CompReqBusWait: "req-bus-wait",
	CompReqBusXfer: "req-bus-xfer",
	CompTag:        "tag",
	CompBank:       "bank",
	CompDram:       "dram",
	CompRepQueue:   "rep-queue",
	CompRepLink:    "rep-link",
	CompRepBusWait: "rep-bus-wait",
	CompRepBusXfer: "rep-bus-xfer",
}

// String names the component (stable; used in reports and trace output).
func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// PacketSpan splits one packet's in-network time into queueing, link
// traversal, bus arbitration wait, and bus transfer. The fabric charges it
// by following the head flit — source-queue wait at injection, buffer
// residency versus pipeline minimum at each router forward, transmitter
// residency at each pillar-bus crossing — and closes the ledger at
// ejection, where the tail's serialization cycles count as link time and
// any remaining gap (body flits stalling behind the head) as queueing. The
// four fields always sum to the packet's end-to-end network latency.
type PacketSpan struct {
	Queue   uint64
	Link    uint64
	BusWait uint64
	BusXfer uint64
}

// AddSourceWait charges cycles the head flit waited to enter the source
// router's injection queue.
func (ps *PacketSpan) AddSourceWait(w uint64) { ps.Queue += w }

// AddHop charges one router traversal: the head flit sat `residence`
// cycles in an input buffer of a router whose pipeline minimum is
// `pipeline`. The pipeline share is link time; the excess is queueing.
func (ps *PacketSpan) AddHop(residence, pipeline uint64) {
	if residence < pipeline {
		pipeline = residence
	}
	ps.Link += pipeline
	ps.Queue += residence - pipeline
}

// AddBus charges one dTDMA pillar crossing: the head flit sat `residence`
// cycles at the transmitter before the grant moved it. The crossing itself
// is one cycle of transfer (zero-residence forwards ride a same-cycle
// grant and cost nothing); the rest is arbitration wait.
func (ps *PacketSpan) AddBus(residence uint64) {
	if residence == 0 {
		return
	}
	ps.BusXfer++
	ps.BusWait += residence - 1
}

// Finish closes the ledger at ejection: total is the packet's end-to-end
// network latency, size its flit count. The head-flit accounting above
// covers the head's arrival; the tail trails it by at least size-1 cycles
// of serialization (link time), and anything beyond that is body flits
// stalling in buffers (queue time).
func (ps *PacketSpan) Finish(total uint64, size int) {
	used := ps.Queue + ps.Link + ps.BusWait + ps.BusXfer
	if total < used {
		return // inconsistent stamps; leave the partial ledger for the check
	}
	rem := total - used
	ser := uint64(size - 1)
	if ser > rem {
		ser = rem
	}
	ps.Link += ser
	ps.Queue += rem - ser
}

// Total returns the sum of the four fields.
func (ps *PacketSpan) Total() uint64 {
	return ps.Queue + ps.Link + ps.BusWait + ps.BusXfer
}

// ChainSpan is one request/serve/reply attempt of a transaction: a probe
// or memory request leaving the CPU (or memory controller), its service at
// the target, and the data reply if the attempt wins. Attempts accumulate
// independently — several may be in flight for one transaction — and only
// the winning chain is folded into the transaction's ledger.
type ChainSpan struct {
	// SentAt is the cycle the attempt departed (diagnostic; the fold works
	// on durations).
	SentAt uint64
	// Req and Rep are the network ledgers of the request and reply legs.
	Req, Rep PacketSpan
	// Tag and Bank are the serving cluster's array access times.
	Tag, Bank uint64
}

// TxnSpan is the per-transaction component ledger. lastMark is the cycle
// up to which the lifetime has been attributed; every Mark/fold advances
// it, so the components tile [Issued, completion] without gaps or overlap.
type TxnSpan struct {
	ID       uint64
	CPU      int
	Issued   uint64
	lastMark uint64
	Comp     [NumComponents]uint64
}

// Sum returns the conservation sum: every component except the pre-issue
// CompL1.
func (ts *TxnSpan) Sum() uint64 {
	var s uint64
	for c := CompSearch1; c < NumComponents; c++ {
		s += ts.Comp[c]
	}
	return s
}

// spanHistBuckets/spanHistWidth size the per-component histograms: 64
// buckets of 8 cycles cover 0..512, beyond which the open bucket reports
// the tracked maximum (the DRAM component sits at 260).
const (
	spanHistBuckets = 64
	spanHistWidth   = 8
)

// classAgg aggregates finished transactions of one class (hit or miss).
type classAgg struct {
	total stats.Dist
	comp  [NumComponents]stats.Dist
}

func newClassAgg() classAgg {
	a := classAgg{total: stats.NewDist(spanHistBuckets, spanHistWidth)}
	for i := range a.comp {
		a.comp[i] = stats.NewDist(spanHistBuckets, spanHistWidth)
	}
	return a
}

// SpanRecorder owns the span pools and aggregates. It is attached to a
// System cold (never on the default path): transactions then carry a
// TxnSpan and every attempt a ChainSpan, both drawn from free lists, so
// steady-state recording allocates nothing. The recorder is not an engine
// ticker and not a fabric probe, so attaching it leaves idle-cycle
// skipping engaged.
type SpanRecorder struct {
	sink Sink // optional: per-interval EvSpan emission

	txnFree   []*TxnSpan
	chainFree []*ChainSpan

	hits   classAgg
	misses classAgg

	mismatches    uint64
	firstMismatch string
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{hits: newClassAgg(), misses: newClassAgg()}
}

// SetSink attaches a sink that receives one EvSpan event per attributed
// component interval (Cycle=start, X=CPU, ID=transaction, A=Component,
// B=duration). Nil detaches.
func (r *SpanRecorder) SetSink(s Sink) { r.sink = s }

// Begin opens the span of a newly issued transaction.
func (r *SpanRecorder) Begin(id uint64, cpu int, now uint64) *TxnSpan {
	var ts *TxnSpan
	if n := len(r.txnFree); n > 0 {
		ts = r.txnFree[n-1]
		r.txnFree = r.txnFree[:n-1]
	} else {
		ts = &TxnSpan{}
	}
	*ts = TxnSpan{ID: id, CPU: cpu, Issued: now, lastMark: now}
	return ts
}

// GetChain opens the span of one request attempt departing at the given
// cycle.
func (r *SpanRecorder) GetChain(sentAt uint64) *ChainSpan {
	var ch *ChainSpan
	if n := len(r.chainFree); n > 0 {
		ch = r.chainFree[n-1]
		r.chainFree = r.chainFree[:n-1]
	} else {
		ch = &ChainSpan{}
	}
	*ch = ChainSpan{SentAt: sentAt}
	return ch
}

// PutChain returns an attempt's span to the pool (the attempt lost the
// race, was NACKed, or has been folded).
func (r *SpanRecorder) PutChain(ch *ChainSpan) {
	if ch == nil {
		return
	}
	r.chainFree = append(r.chainFree, ch)
}

// emit reports one attributed interval to the sink, if any. Zero-duration
// intervals are suppressed.
func (r *SpanRecorder) emit(ts *TxnSpan, c Component, start, dur uint64) {
	if r.sink == nil || dur == 0 {
		return
	}
	r.sink.Record(Event{
		Cycle: start, Kind: EvSpan, X: ts.CPU,
		ID: ts.ID, A: uint64(c), B: dur,
	})
}

// ChargeL1 records the pre-issue L1 lookup time (informational; excluded
// from the conservation sum, and lastMark does not advance).
func (r *SpanRecorder) ChargeL1(ts *TxnSpan, cycles uint64) {
	ts.Comp[CompL1] += cycles
	r.emit(ts, CompL1, ts.Issued-cycles, cycles)
}

// Mark attributes the window since the last mark to component c and
// advances the mark to now. Call it at every transaction-level transition:
// a failed search round draining, a retry departing, the DRAM access
// completing.
func (r *SpanRecorder) Mark(ts *TxnSpan, c Component, now uint64) {
	d := now - ts.lastMark
	ts.Comp[c] += d
	r.emit(ts, c, ts.lastMark, d)
	ts.lastMark = now
}

// foldPacket attributes one leg's network ledger starting at the current
// mark and advances the mark to now (the leg's arrival). If the ledger
// does not tile the window exactly the discrepancy surfaces in the
// conservation check — it is not silently absorbed.
func (r *SpanRecorder) foldPacket(ts *TxnSpan, ps *PacketSpan, base Component, now uint64) {
	at := ts.lastMark
	for i, d := range [4]uint64{ps.Queue, ps.Link, ps.BusWait, ps.BusXfer} {
		c := base + Component(i)
		ts.Comp[c] += d
		r.emit(ts, c, at, d)
		at += d
	}
	ts.lastMark = now
}

// FoldNet attributes a request leg's network time (probe or memory
// request) ending at now.
func (r *SpanRecorder) FoldNet(ts *TxnSpan, ps *PacketSpan, now uint64) {
	r.foldPacket(ts, ps, CompReqQueue, now)
}

// FoldChain folds a winning attempt into the transaction: request network
// time, tag and bank service, then the reply's network time ending at now
// (the data arrival that completes the transaction). For a memory-fill
// reply the request leg and tag are zero and only bank + reply apply.
func (r *SpanRecorder) FoldChain(ts *TxnSpan, ch *ChainSpan, now uint64) {
	r.foldPacket(ts, &ch.Req, CompReqQueue, ts.lastMark+ch.Req.Total())
	ts.Comp[CompTag] += ch.Tag
	r.emit(ts, CompTag, ts.lastMark, ch.Tag)
	ts.lastMark += ch.Tag
	ts.Comp[CompBank] += ch.Bank
	r.emit(ts, CompBank, ts.lastMark, ch.Bank)
	ts.lastMark += ch.Bank
	r.foldPacket(ts, &ch.Rep, CompRepQueue, now)
}

// FinishTxn closes a transaction's span: total is the measured end-to-end
// latency (completion - issue), miss whether the data came from memory.
// The conservation invariant — component sum equals total — is checked
// here; violations are counted and the first is kept for diagnostics. The
// span is aggregated and returned to the pool.
func (r *SpanRecorder) FinishTxn(ts *TxnSpan, total uint64, miss bool) {
	if sum := ts.Sum(); sum != total {
		r.mismatches++
		if r.firstMismatch == "" {
			r.firstMismatch = fmt.Sprintf(
				"txn %#x (cpu %d, issued @%d): components sum to %d, measured %d: %v",
				ts.ID, ts.CPU, ts.Issued, sum, total, ts.Comp)
		}
	}
	agg := &r.hits
	if miss {
		agg = &r.misses
	}
	agg.total.Observe(total)
	for c := Component(0); c < NumComponents; c++ {
		agg.comp[c].Observe(ts.Comp[c])
	}
	r.txnFree = append(r.txnFree, ts)
}

// Reset clears the aggregates and the mismatch diagnostics, starting a
// fresh recording window. Spans of in-flight transactions are untouched —
// their ledgers run from issue, exactly like the system's latency metrics,
// so a recorder attached before warmup and reset alongside the system's
// statistics aggregates precisely the transactions the measured means
// cover. The pools survive the reset.
func (r *SpanRecorder) Reset() {
	r.hits.reset()
	r.misses.reset()
	r.mismatches = 0
	r.firstMismatch = ""
}

func (a *classAgg) reset() {
	a.total.Reset()
	for i := range a.comp {
		a.comp[i].Reset()
	}
}

// Mismatches returns the number of finished transactions whose component
// sum failed the conservation check, with a description of the first.
func (r *SpanRecorder) Mismatches() (uint64, string) {
	return r.mismatches, r.firstMismatch
}

// Finished returns the number of transactions aggregated so far.
func (r *SpanRecorder) Finished() uint64 {
	return r.hits.total.Count() + r.misses.total.Count()
}

// ComponentStat summarizes one component over a transaction class.
type ComponentStat struct {
	// Name is the component's stable name.
	Name string
	// Mean is the average cycles per transaction (including transactions
	// that spent nothing in this component).
	Mean float64
	// P95 is the 95th-percentile cycles per transaction.
	P95 uint64
	// Share is Mean divided by the class's mean total latency. The shares
	// of every component except the pre-issue "l1" sum to 1.
	Share float64
}

// ClassBreakdown is the decomposition of one transaction class.
type ClassBreakdown struct {
	// Transactions is the number of transactions in the class.
	Transactions uint64
	// MeanTotal and P95Total summarize the measured end-to-end latency
	// (MeanTotal equals the sum of the non-l1 component means).
	MeanTotal float64
	P95Total  uint64
	// Components lists every component in taxonomy order.
	Components []ComponentStat
}

// BreakdownReport is the aggregate latency decomposition over the
// recording window, split by L2 hits and misses.
type BreakdownReport struct {
	Hits   ClassBreakdown
	Misses ClassBreakdown
}

func (a *classAgg) breakdown() ClassBreakdown {
	cb := ClassBreakdown{
		Transactions: a.total.Count(),
		MeanTotal:    a.total.Mean(),
		P95Total:     a.total.P95(),
		Components:   make([]ComponentStat, NumComponents),
	}
	for c := Component(0); c < NumComponents; c++ {
		st := ComponentStat{
			Name: c.String(),
			Mean: a.comp[c].Mean(),
			P95:  a.comp[c].P95(),
		}
		if cb.MeanTotal > 0 {
			st.Share = st.Mean / cb.MeanTotal
		}
		cb.Components[c] = st
	}
	return cb
}

// Report builds the aggregate breakdown. It allocates and is meant for
// end-of-run consumption, not the hot path.
func (r *SpanRecorder) Report() *BreakdownReport {
	return &BreakdownReport{
		Hits:   r.hits.breakdown(),
		Misses: r.misses.breakdown(),
	}
}

// WriteTable renders the decomposition as a fixed-width table: one row per
// component, hit and miss columns side by side, component shares against
// the class totals. The "l1" row is annotated because it is informational
// (paid before issue) and not part of the totals.
func (b *BreakdownReport) WriteTable(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%-14s %21s   %21s\n%-14s %9s %5s %5s   %9s %5s %5s\n",
		"", "L2 hits", "L2 misses",
		"component", "mean", "p95", "share", "mean", "p95", "share")
	if err != nil {
		return err
	}
	for c := Component(0); c < NumComponents; c++ {
		h, m := b.Hits.Components[c], b.Misses.Components[c]
		if h.Mean == 0 && m.Mean == 0 {
			continue
		}
		note := ""
		if c == CompL1 {
			note = "  (pre-issue, not in total)"
		}
		_, err = fmt.Fprintf(w, "%-14s %9.2f %5d %4.0f%%   %9.2f %5d %4.0f%%%s\n",
			h.Name, h.Mean, h.P95, 100*h.Share, m.Mean, m.P95, 100*m.Share, note)
		if err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "%-14s %9.2f %5d %5s   %9.2f %5d %5s\n",
		"total", b.Hits.MeanTotal, b.Hits.P95Total, "",
		b.Misses.MeanTotal, b.Misses.P95Total, "")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "(%d hits, %d misses traced)\n",
		b.Hits.Transactions, b.Misses.Transactions)
	return err
}
