package fabric

import (
	"repro/internal/digest"
	"repro/internal/stats"
)

// DigestFold folds the fabric's bookkeeping and every router (in index
// order — layout order, identical across runs). Router occupancy is
// digested via the routers themselves, so the active list — a scheduling
// acceleration whose ordering is representation, not state — is skipped.
// Buses are folded separately into the dTDMA lane by the system walker.
func (f *Fabric) DigestFold(r *digest.Recorder) {
	r.Fold(f.nextID)
	r.Fold(f.now)
	r.FoldInt(f.busyBuses)
	r.Fold(f.Delivered.Value())
	r.Fold(f.FlitHops.Value())
	foldLatency(r, &f.PktLatency)
	for _, rt := range f.routers {
		rt.DigestFold(r)
	}
}

func foldLatency(r *digest.Recorder, l *stats.Latency) {
	r.Fold(l.Count())
	r.Fold(l.Sum())
	r.Fold(l.Min())
	r.Fold(l.Max())
}
