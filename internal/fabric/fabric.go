// Package fabric assembles the complete 3D Network-in-Memory interconnect:
// one wormhole mesh per device layer (package noc), joined by dTDMA bus
// pillars (package dtdma) at designated in-plane positions. It owns packet
// injection, pillar selection, routing, and delivery callbacks, and is the
// single sim.Ticker for the whole network.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/dtdma"
	"repro/internal/geom"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stats"
)

// VerticalMode selects how packets cross device layers.
type VerticalMode int

const (
	// VerticalBus is the paper's design: a single-hop dTDMA bus pillar.
	VerticalBus VerticalMode = iota
	// VerticalRouter is the rejected alternative the paper evaluates in
	// Section 3.1: 7-port routers at the pillar positions connected
	// hop-by-hop through the stack. Crossing n layers costs n router
	// traversals and contends with in-plane traffic at every intermediate
	// router.
	VerticalRouter
)

// Fabric is the 3D interconnect: dim.Layers stacked meshes of
// dim.Width x dim.Height routers plus one dTDMA bus per pillar position
// (or 7-port router columns in the VerticalRouter ablation).
type Fabric struct {
	dim     geom.Dim
	mode    VerticalMode
	routers []*noc.Router
	pillars []geom.Coord // in-plane positions, Layer = 0
	buses   []*dtdma.Bus

	nextID uint64
	now    uint64

	// activeList/activeFlag track routers holding work, so Tick visits
	// only busy routers instead of the whole chip. busyBuses counts pillar
	// buses holding pending flits (maintained by bus edge hooks); together
	// they make Quiescent and Idle O(1).
	activeList []int
	activeFlag []bool
	busyBuses  int

	// pool recycles protocol packets: NewPacket draws from it and the
	// ejection sink returns pool-origin packets after the delivery callback,
	// so steady-state traffic allocates no Packet objects.
	pool noc.PacketPool

	// Delivered counts packets ejected at their destination; FlitHops
	// accumulates per-flit link traversals for energy accounting.
	Delivered stats.Counter
	FlitHops  stats.Counter
	// PktLatency accumulates end-to-end packet latencies (injection to
	// tail ejection) across all traffic.
	PktLatency stats.Latency

	// probe, when non-nil, receives packet inject/eject events; SetProbe
	// also fans it out to every router and pillar bus.
	probe *obs.Probe

	// pillarPenalty, when non-nil, biases pillar selection: BestPillar
	// adds its value (extra apparent hops for the column at the given
	// in-plane position) to each candidate's distance. pillarDiverted,
	// when non-nil, is invoked whenever the bias changes the chosen
	// pillar — the DTM reroute actuator's engagement count.
	pillarPenalty func(x, y int) int
	pillarDiverted func()

	// layerOf caches each router index's layer for the shard-assignment
	// hot paths; sinkFns holds the per-node delivery callbacks so staged
	// ejections can replay the full delivery at the horizon barrier.
	layerOf []int
	sinkFns []func(p *noc.Packet, cycle uint64)

	// shard, when non-nil, runs the router phase of each Tick in parallel
	// across layer shards; see SetShards and shard.go. shardedCycles
	// counts the ticks that actually fanned out.
	shard         *shardState
	shardedCycles uint64

	// profRec, when non-nil, receives the network phase's wall-clock
	// attribution: the fabric times its own Tick (so the engine's
	// classifier marks it prof.PhaseSelf) and records under PhaseNet or
	// PhaseNetSharded depending on which path the cycle took. The shard
	// group additionally gets the recorder's per-shard busy/wait slots.
	profRec *prof.Recorder
}

// New builds the fabric. pillars lists the in-plane pillar positions; each
// position receives one bus spanning all layers, and the router at that
// position on every layer becomes a 6-port gateway router. With a single
// layer, pillar positions are recorded (for placement symmetry) but no
// buses are created — the topology degenerates to the paper's 2D scheme.
func New(dim geom.Dim, pillars []geom.Coord) *Fabric {
	return NewWithVertical(dim, pillars, VerticalBus)
}

// NewWithVertical builds the fabric with an explicit vertical interconnect
// mode; see VerticalMode.
func NewWithVertical(dim geom.Dim, pillars []geom.Coord, mode VerticalMode) *Fabric {
	if dim.Width < 1 || dim.Height < 1 || dim.Layers < 1 {
		panic(fmt.Sprintf("fabric: invalid dimensions %+v", dim))
	}
	f := &Fabric{dim: dim, mode: mode}
	for _, p := range pillars {
		if p.X < 0 || p.X >= dim.Width || p.Y < 0 || p.Y >= dim.Height {
			panic(fmt.Sprintf("fabric: pillar %v outside %dx%d layer", p, dim.Width, dim.Height))
		}
		f.pillars = append(f.pillars, geom.Coord{X: p.X, Y: p.Y})
	}

	route := f.routeFunc()
	f.routers = make([]*noc.Router, dim.Nodes())
	f.activeFlag = make([]bool, dim.Nodes())
	f.layerOf = make([]int, dim.Nodes())
	f.sinkFns = make([]func(p *noc.Packet, cycle uint64), dim.Nodes())
	for i := range f.routers {
		f.routers[i] = noc.NewRouter(dim.CoordOf(i), route)
		f.layerOf[i] = dim.CoordOf(i).Layer
		i := i
		f.routers[i].SetWorkHook(func() { f.noteWork(i) })
	}
	// Wire mesh neighbors within each layer.
	for i, r := range f.routers {
		c := dim.CoordOf(i)
		for _, d := range []geom.Direction{geom.North, geom.South, geom.East, geom.West} {
			n := geom.Step(c, d)
			if dim.Contains(n) {
				r.Connect(d, f.Router(n).In(d.Opposite()))
			}
		}
	}
	// Create the vertical interconnect at each pillar position.
	if dim.Layers > 1 {
		switch mode {
		case VerticalBus:
			for id, p := range f.pillars {
				bus := dtdma.NewBus(id, p, dim.Layers)
				bus.SetBusyHooks(
					func() { f.busyBuses++ },
					func() { f.busyBuses-- },
				)
				for l := 0; l < dim.Layers; l++ {
					r := f.Router(geom.Coord{X: p.X, Y: p.Y, Layer: l})
					r.AttachVertical(bus.Tx(l))
					bus.AttachRx(l, r.In(geom.Vertical))
				}
				f.buses = append(f.buses, bus)
			}
		case VerticalRouter:
			for _, p := range f.pillars {
				for l := 0; l < dim.Layers; l++ {
					r := f.Router(geom.Coord{X: p.X, Y: p.Y, Layer: l})
					if l < dim.Layers-1 {
						above := f.Router(geom.Coord{X: p.X, Y: p.Y, Layer: l + 1})
						r.Connect(geom.Up, above.EnsureIn(geom.Down))
					}
					if l > 0 {
						below := f.Router(geom.Coord{X: p.X, Y: p.Y, Layer: l - 1})
						r.Connect(geom.Down, below.EnsureIn(geom.Up))
					}
				}
			}
		}
	}
	return f
}

// SetRouterPipeline sets every router's traversal latency (the paper's
// single-stage router is 1; the basic four-stage router is 4).
func (f *Fabric) SetRouterPipeline(cycles int) {
	for _, r := range f.routers {
		r.SetPipeline(cycles)
	}
}

// SetProbe attaches the observability probe to the whole interconnect:
// the fabric itself (packet inject/eject), every router (per-hop routing,
// VC stalls), and every pillar bus (dTDMA arbitration). A nil probe
// detaches everything, restoring the zero-overhead path. The same probe
// feeds both tracing and the energy accountant (core tees them), so these
// events are also the power model's activity source.
func (f *Fabric) SetProbe(p *obs.Probe) {
	f.probe = p
	f.refreshRouterProbes()
	for _, b := range f.buses {
		b.SetProbe(p)
	}
}

// Mode returns the fabric's vertical interconnect mode.
func (f *Fabric) Mode() VerticalMode { return f.mode }

// Dim returns the fabric dimensions.
func (f *Fabric) Dim() geom.Dim { return f.dim }

// Pillars returns the in-plane pillar positions.
func (f *Fabric) Pillars() []geom.Coord { return f.pillars }

// Buses returns the pillar buses (empty for a single-layer chip).
func (f *Fabric) Buses() []*dtdma.Bus { return f.buses }

// Router returns the router at coordinate c.
func (f *Fabric) Router(c geom.Coord) *noc.Router {
	return f.routers[f.dim.Index(c)]
}

// SetSink installs the delivery callback for packets destined to node c.
func (f *Fabric) SetSink(c geom.Coord, fn func(p *noc.Packet, cycle uint64)) {
	i := f.dim.Index(c)
	f.sinkFns[i] = fn
	f.Router(c).SetSink(func(p *noc.Packet, cycle uint64) {
		if lg := f.stagingLog(c.Layer); lg != nil {
			// Parallel router phase: park the ejection. The full delivery
			// epilogue — stats, probe event, protocol response, recycle —
			// replays in serial order at the horizon barrier.
			lg.ops = append(lg.ops, stagedOp{pos: lg.curPos, kind: opEject, idx: i, pkt: p})
			return
		}
		f.finishEject(i, p, cycle)
	})
}

// finishEject is the delivery epilogue for a packet whose tail flit
// reached node i: account it, emit the eject event, run the delivery
// callback, and recycle the packet. The serial path runs it inline from
// the router's ejection sink; the sharded path replays it at the barrier.
func (f *Fabric) finishEject(i int, p *noc.Packet, cycle uint64) {
	f.Delivered.Inc()
	f.FlitHops.Add(uint64(p.Hops))
	f.PktLatency.Observe(cycle - p.InjectedAt)
	if p.Span != nil {
		// Close the span ledger: tail serialization and body-flit
		// stalls make up whatever the head-flit accounting left over.
		p.Span.Finish(cycle-p.InjectedAt, p.Size)
	}
	if f.probe != nil {
		c := f.dim.CoordOf(i)
		f.probe.Emit(obs.Event{
			Cycle: cycle, Kind: obs.EvEject,
			X: c.X, Y: c.Y, Layer: c.Layer,
			ID: p.ID, A: cycle - p.InjectedAt, B: uint64(p.Hops),
		})
	}
	if fn := f.sinkFns[i]; fn != nil {
		fn(p, cycle)
	}
	// The packet is dead once the delivery callback returns; recycle
	// pool-origin packets (Put ignores caller-constructed ones).
	f.pool.Put(p)
}

// NewPacket returns a zeroed packet drawn from the fabric's free list. The
// caller fills it in and hands it to Send; the fabric recycles it when the
// tail flit ejects, so the reference must not be retained past delivery.
func (f *Fabric) NewPacket() *noc.Packet { return f.pool.Get() }

// SetPillarPenalty installs a per-pillar routing penalty for pillar
// selection: BestPillar sees the column at in-plane position (x, y) as
// penalty(x, y) hops farther than it is. diverted, when non-nil, is
// invoked once per packet whose pillar choice the penalty changed. This
// is the hook for the DTM reroute actuator — pillar selection is the
// network's only routing freedom, since deviating from in-plane
// dimension-order routing would forfeit its deadlock freedom. A nil
// penalty detaches the bias, restoring the unbiased selection path.
func (f *Fabric) SetPillarPenalty(penalty func(x, y int) int, diverted func()) {
	f.pillarPenalty = penalty
	f.pillarDiverted = diverted
}

// BestPillar returns the pillar position minimizing the total in-plane
// distance src->pillar plus pillar->dst (the vertical hop itself is a
// single bus cycle regardless of layer distance), plus any installed
// pillar penalty (SetPillarPenalty). Ties break toward the lowest pillar
// index, keeping routing deterministic — the penalty is a function of
// thermal-step-boundary state, so biased routing is deterministic too.
func (f *Fabric) BestPillar(src, dst geom.Coord) (geom.Coord, bool) {
	if len(f.pillars) == 0 {
		return geom.Coord{}, false
	}
	if f.pillarPenalty == nil {
		best := f.pillars[0]
		bestD := src.HopsVia(dst, best)
		for _, p := range f.pillars[1:] {
			if d := src.HopsVia(dst, p); d < bestD {
				best, bestD = p, d
			}
		}
		return best, true
	}
	// Biased selection: track the unbiased winner alongside, so the
	// diversion callback fires exactly when the penalty changed the
	// outcome.
	best, unbiased := f.pillars[0], f.pillars[0]
	d0 := src.HopsVia(dst, best)
	bestD, unbiasedD := d0+f.pillarPenalty(best.X, best.Y), d0
	for _, p := range f.pillars[1:] {
		d := src.HopsVia(dst, p)
		if b := d + f.pillarPenalty(p.X, p.Y); b < bestD {
			best, bestD = p, b
		}
		if d < unbiasedD {
			unbiased, unbiasedD = p, d
		}
	}
	if best != unbiased && f.pillarDiverted != nil {
		f.pillarDiverted()
	}
	return best, true
}

// Send injects a packet at its source router. The fabric assigns the packet
// ID, injection timestamp, and — for cross-layer packets — the pillar to
// ride. Injection queues are unbounded, so Send never fails; queueing delay
// is captured in the measured latency.
func (f *Fabric) Send(p *noc.Packet) {
	if !f.dim.Contains(p.Src) || !f.dim.Contains(p.Dst) {
		panic(fmt.Sprintf("fabric: %v outside fabric %+v", p, f.dim))
	}
	if p.Size < 1 {
		panic(fmt.Sprintf("fabric: %v has no flits", p))
	}
	f.nextID++
	p.ID = f.nextID
	p.InjectedAt = f.now
	if p.CrossesLayers() {
		via, ok := f.BestPillar(p.Src, p.Dst)
		if !ok {
			panic(fmt.Sprintf("fabric: %v crosses layers but chip has no pillars", p))
		}
		p.Via = via
		p.HasVia = true
	}
	if f.probe != nil {
		f.probe.Emit(obs.Event{
			Cycle: f.now, Kind: obs.EvInject,
			X: p.Src.X, Y: p.Src.Y, Layer: p.Src.Layer,
			ID: p.ID, A: uint64(p.Size),
		})
	}
	f.Router(p.Src).Inject(p)
}

// routeFunc builds the 3D routing function: packets needing a layer change
// first travel in-plane (dimension-order) to their pillar, take the bus,
// then travel in-plane to the destination. Same-layer packets use plain
// dimension-order routing.
func (f *Fabric) routeFunc() noc.RouteFunc {
	return func(pos geom.Coord, p *noc.Packet) geom.Direction {
		if p.CrossesLayers() && !p.Vertical() && pos.Layer == p.Dst.Layer {
			// A 7-port-router packet reaching its destination layer is
			// promoted to the escape VC class for its final in-plane leg
			// (the bus marks packets itself as they cross).
			p.MarkVertical()
		}
		if pos.Layer != p.Dst.Layer && !p.Vertical() {
			if pos.X == p.Via.X && pos.Y == p.Via.Y {
				if f.mode == VerticalRouter {
					if pos.Layer < p.Dst.Layer {
						return geom.Up
					}
					return geom.Down
				}
				return geom.Vertical
			}
			return geom.DOR(pos, geom.Coord{X: p.Via.X, Y: p.Via.Y, Layer: pos.Layer})
		}
		return geom.DOR(pos, p.Dst)
	}
}

// activate records a router's idle-to-busy transition.
func (f *Fabric) activate(i int) {
	if !f.activeFlag[i] {
		f.activeFlag[i] = true
		f.activeList = append(f.activeList, i)
	}
}

// SetProfiler attaches (nil detaches) the host-side phase recorder. The
// fabric self-times every Tick into PhaseNet or PhaseNetSharded — the
// split the engine cannot see — and wires the recorder's per-shard
// busy/wait telemetry into the shard group when one exists (SetShards
// re-wires on re-sharding). Purely host-side: a profiled fabric is
// bit-identical to an unprofiled one.
func (f *Fabric) SetProfiler(r *prof.Recorder) {
	f.profRec = r
	f.shareShardProfile()
}

// shareShardProfile points the shard group (when sharding is configured)
// at the recorder's shard telemetry slots, or detaches them.
func (f *Fabric) shareShardProfile() {
	if f.shard == nil {
		return
	}
	if f.profRec == nil {
		f.shard.group.SetProfile(nil)
		return
	}
	f.shard.group.SetProfile(f.profRec.ConfigureShards(f.shard.labels))
}

// Tick advances every busy router, then every pillar bus, by one cycle.
// Routers that became busy during this tick (flits handed to a neighbor)
// join the list for the next cycle; routers that drained leave it. With
// sharding enabled (SetShards) and enough routers active to amortize the
// barrier, the router phase fans out across the layer shards instead.
func (f *Fabric) Tick(cycle uint64) {
	if f.profRec != nil {
		t0 := time.Now()
		sharded := f.tick(cycle)
		ph := prof.PhaseNet
		if sharded {
			ph = prof.PhaseNetSharded
		}
		f.profRec.Record(ph, time.Since(t0).Nanoseconds())
		return
	}
	f.tick(cycle)
}

// tick is the tick body; it reports whether the cycle fanned out to the
// shard workers (the profiled wrapper splits the two phases).
func (f *Fabric) tick(cycle uint64) bool {
	f.now = cycle
	if f.probe == nil && len(f.activeList) == 0 && f.busyBuses == 0 {
		// Nothing in flight and no probe watching the dTDMA slot wheel:
		// the whole network tick is a no-op.
		return false
	}
	if f.shard != nil && len(f.activeList) >= shardMinActive {
		f.tickSharded(cycle)
		return true
	}
	snapshot := len(f.activeList)
	for k := 0; k < snapshot; k++ {
		f.routers[f.activeList[k]].Tick(cycle)
	}
	for _, b := range f.buses {
		b.Tick(cycle)
	}
	f.pruneActive()
	return false
}

// pruneActive drops routers that drained during this tick from the
// active list.
func (f *Fabric) pruneActive() {
	keep := f.activeList[:0]
	for _, i := range f.activeList {
		if f.routers[i].Idle() {
			f.activeFlag[i] = false
		} else {
			keep = append(keep, i)
		}
	}
	f.activeList = keep
}

// ForwardedFlits returns the total flits forwarded through every router's
// crossbar — the numerator of mesh utilization.
func (f *Fabric) ForwardedFlits() uint64 {
	var n uint64
	for _, r := range f.routers {
		n += r.ForwardedFlits
	}
	return n
}

// BusFlits returns the total flits transferred across all pillar buses.
func (f *Fabric) BusFlits() uint64 {
	var n uint64
	for _, b := range f.buses {
		n += b.TotalFlits
	}
	return n
}

// Quiescent reports whether the network holds no traffic at all. It is O(1):
// every non-idle router is on the active list (the work hooks fire on each
// idle-to-busy edge, and drained routers are pruned at the end of each Tick),
// and busyBuses counts buses with pending flits via the bus edge hooks.
func (f *Fabric) Quiescent() bool {
	return len(f.activeList) == 0 && f.busyBuses == 0
}

// quiescentScan is the brute-force quiescence check, retained as the oracle
// for tests cross-checking the O(1) fast path.
func (f *Fabric) quiescentScan() bool {
	for _, r := range f.routers {
		if !r.Idle() {
			return false
		}
	}
	for _, b := range f.buses {
		if !b.Idle() {
			return false
		}
	}
	return true
}

// Idle reports whether advancing the fabric one cycle would be a no-op, so
// the engine may skip ahead. A probed fabric is never idle: the dTDMA slot
// wheel emits grow/shrink edge events even on empty cycles.
func (f *Fabric) Idle() bool {
	return f.probe == nil && len(f.activeList) == 0 && f.busyBuses == 0
}
