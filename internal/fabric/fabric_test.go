package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/noc"
)

// run ticks the fabric until pred is true or the cycle budget is exhausted,
// returning the cycle count consumed.
func run(f *Fabric, pred func() bool, budget int) int {
	for c := 0; c < budget; c++ {
		if pred() {
			return c
		}
		f.Tick(uint64(c))
	}
	return budget
}

func TestSingleLayerDelivery(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 4, Layers: 1}, nil)
	src := geom.Coord{X: 0, Y: 0, Layer: 0}
	dst := geom.Coord{X: 3, Y: 3, Layer: 0}
	var got *noc.Packet
	var at uint64
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { got, at = p, cycle })

	f.Send(&noc.Packet{Src: src, Dst: dst, Size: 1, Payload: "hello"})
	run(f, func() bool { return got != nil }, 100)

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hello" {
		t.Fatalf("payload = %v", got.Payload)
	}
	// 6 mesh hops at one cycle each, plus one ejection cycle.
	if at != 7 {
		t.Errorf("delivery at cycle %d, want 7", at)
	}
}

func TestDataPacketSerialization(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 1, Layers: 1}, nil)
	dst := geom.Coord{X: 3, Y: 0, Layer: 0}
	var at uint64
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { at = cycle })
	f.Send(&noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: dst, Size: noc.DataPacketFlits})
	run(f, func() bool { return at != 0 }, 100)
	// Tail trails head by Size-1 cycles in an uncontended pipeline:
	// head ejects at 3 hops + 1, tail 3 cycles later.
	if at != 7 {
		t.Errorf("tail delivered at %d, want 7", at)
	}
}

func TestCrossLayerViaPillar(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 4, Layers: 2},
		[]geom.Coord{{X: 1, Y: 1}})
	src := geom.Coord{X: 0, Y: 0, Layer: 0}
	dst := geom.Coord{X: 3, Y: 3, Layer: 1}
	var got *noc.Packet
	var at uint64
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { got, at = p, cycle })
	f.Send(&noc.Packet{Src: src, Dst: dst, Size: 1})
	run(f, func() bool { return got != nil }, 200)
	if got == nil {
		t.Fatal("cross-layer packet not delivered")
	}
	if !got.Vertical() {
		t.Error("delivered packet must be marked vertical")
	}
	if !got.HasVia || got.Via.X != 1 || got.Via.Y != 1 {
		t.Errorf("via = %v", got.Via)
	}
	// src->pillar 2 hops, one cycle for the pipelined transmitter+bus
	// crossing, pillar->dst 4 hops, and the ejection cycle: 8 total.
	if at != 8 {
		t.Errorf("delivered at %d, want 8", at)
	}
}

func TestSingleLayerNoBuses(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 4, Layers: 1}, []geom.Coord{{X: 1, Y: 1}})
	if len(f.Buses()) != 0 {
		t.Fatal("single-layer fabric must not create buses")
	}
	if len(f.Pillars()) != 1 {
		t.Fatal("pillar positions must still be recorded")
	}
}

func TestBestPillar(t *testing.T) {
	f := New(geom.Dim{Width: 8, Height: 8, Layers: 2},
		[]geom.Coord{{X: 1, Y: 1}, {X: 6, Y: 6}})
	src := geom.Coord{X: 0, Y: 0, Layer: 0}
	dst := geom.Coord{X: 1, Y: 2, Layer: 1}
	p, ok := f.BestPillar(src, dst)
	if !ok || p.X != 1 || p.Y != 1 {
		t.Errorf("BestPillar = %v,%v; want (1,1)", p, ok)
	}
	src2 := geom.Coord{X: 7, Y: 7, Layer: 0}
	dst2 := geom.Coord{X: 7, Y: 5, Layer: 1}
	p2, _ := f.BestPillar(src2, dst2)
	if p2.X != 6 || p2.Y != 6 {
		t.Errorf("BestPillar = %v; want (6,6)", p2)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	dim := geom.Dim{Width: 3, Height: 3, Layers: 2}
	f := New(dim, []geom.Coord{{X: 1, Y: 1}})
	delivered := make(map[uint64]int)
	for i := 0; i < dim.Nodes(); i++ {
		c := dim.CoordOf(i)
		f.SetSink(c, func(p *noc.Packet, cycle uint64) { delivered[p.ID]++ })
	}
	sent := 0
	for i := 0; i < dim.Nodes(); i++ {
		for j := 0; j < dim.Nodes(); j++ {
			if i == j {
				continue
			}
			f.Send(&noc.Packet{Src: dim.CoordOf(i), Dst: dim.CoordOf(j), Size: 1})
			sent++
		}
	}
	run(f, func() bool { return len(delivered) == sent && f.Quiescent() }, 5000)
	if len(delivered) != sent {
		t.Fatalf("delivered %d of %d packets", len(delivered), sent)
	}
	for id, n := range delivered {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
	if f.Delivered.Value() != uint64(sent) {
		t.Fatalf("Delivered counter = %d, want %d", f.Delivered.Value(), sent)
	}
}

func TestRandomTrafficNoDeadlock(t *testing.T) {
	dim := geom.Dim{Width: 4, Height: 4, Layers: 4}
	f := New(dim, []geom.Coord{{X: 0, Y: 0}, {X: 3, Y: 3}})
	var delivered int
	for i := 0; i < dim.Nodes(); i++ {
		f.SetSink(dim.CoordOf(i), func(p *noc.Packet, cycle uint64) { delivered++ })
	}
	rng := rand.New(rand.NewSource(42))
	const total = 2000
	for k := 0; k < total; k++ {
		src := dim.CoordOf(rng.Intn(dim.Nodes()))
		dst := dim.CoordOf(rng.Intn(dim.Nodes()))
		if src == dst {
			dst = dim.CoordOf((dim.Index(dst) + 1) % dim.Nodes())
		}
		size := 1
		if rng.Intn(2) == 0 {
			size = noc.DataPacketFlits
		}
		f.Send(&noc.Packet{Src: src, Dst: dst, Size: size})
	}
	run(f, func() bool { return delivered == total }, 200000)
	if delivered != total {
		t.Fatalf("deadlock or loss: delivered %d of %d", delivered, total)
	}
	if !f.Quiescent() {
		t.Fatal("fabric should be quiescent after all deliveries")
	}
}

func TestHopAccounting(t *testing.T) {
	f := New(geom.Dim{Width: 5, Height: 1, Layers: 1}, nil)
	dst := geom.Coord{X: 4, Y: 0, Layer: 0}
	var got *noc.Packet
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { got = p })
	f.Send(&noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: dst, Size: 1})
	run(f, func() bool { return got != nil }, 100)
	// 4 link traversals plus the ejection into the sink.
	if got.Hops != 5 {
		t.Errorf("Hops = %d, want 5", got.Hops)
	}
	if f.FlitHops.Value() != 5 {
		t.Errorf("FlitHops = %d, want 5", f.FlitHops.Value())
	}
}

func TestLatencyStats(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 1, Layers: 1}, nil)
	dst := geom.Coord{X: 3, Y: 0, Layer: 0}
	done := 0
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { done++ })
	f.Send(&noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: dst, Size: 1})
	run(f, func() bool { return done == 1 }, 100)
	if f.PktLatency.Count() != 1 {
		t.Fatalf("latency samples = %d", f.PktLatency.Count())
	}
	if f.PktLatency.Mean() < 4 {
		t.Errorf("implausibly low latency %f", f.PktLatency.Mean())
	}
}

func TestSendPanicsOnBadPacket(t *testing.T) {
	f := New(geom.Dim{Width: 2, Height: 2, Layers: 1}, nil)
	cases := []*noc.Packet{
		{Src: geom.Coord{X: 5, Y: 0, Layer: 0}, Dst: geom.Coord{X: 0, Y: 0, Layer: 0}, Size: 1},
		{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: geom.Coord{X: 0, Y: 5, Layer: 0}, Size: 1},
		{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: geom.Coord{X: 1, Y: 1, Layer: 0}, Size: 0},
	}
	for i, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Send did not panic", i)
				}
			}()
			f.Send(p)
		}()
	}
}

func TestCrossLayerWithoutPillarsPanics(t *testing.T) {
	f := New(geom.Dim{Width: 2, Height: 2, Layers: 2}, nil)
	defer func() {
		if recover() == nil {
			t.Error("cross-layer send without pillars must panic")
		}
	}()
	f.Send(&noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: geom.Coord{X: 0, Y: 0, Layer: 1}, Size: 1})
}

func TestPillarRouterHasVertical(t *testing.T) {
	f := New(geom.Dim{Width: 3, Height: 3, Layers: 2}, []geom.Coord{{X: 1, Y: 1}})
	for l := 0; l < 2; l++ {
		if !f.Router(geom.Coord{X: 1, Y: 1, Layer: l}).HasVertical() {
			t.Errorf("pillar router on layer %d missing vertical port", l)
		}
	}
	if f.Router(geom.Coord{X: 0, Y: 0, Layer: 0}).HasVertical() {
		t.Error("non-pillar router must not have a vertical port")
	}
}

func TestVerticalRouterMode(t *testing.T) {
	dim := geom.Dim{Width: 4, Height: 4, Layers: 4}
	f := NewWithVertical(dim, []geom.Coord{{X: 1, Y: 1}}, VerticalRouter)
	if f.Mode() != VerticalRouter {
		t.Fatal("mode not recorded")
	}
	if len(f.Buses()) != 0 {
		t.Fatal("router mode must not create buses")
	}
	var got *noc.Packet
	var at uint64
	dst := geom.Coord{X: 3, Y: 3, Layer: 3}
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { got, at = p, cycle })
	f.Send(&noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: dst, Size: 1})
	run(f, func() bool { return got != nil }, 500)
	if got == nil {
		t.Fatal("packet not delivered in router mode")
	}
	if !got.Vertical() {
		t.Error("packet not promoted to phase 1 on arrival layer")
	}
	// src->pillar 2 hops, 3 vertical router hops, pillar->dst 4 hops,
	// + ejection = 10 cycles (no bus transmitter stage).
	if at != 10 {
		t.Errorf("delivered at %d, want 10", at)
	}
}

func TestVerticalRouterSlowerAcrossManyLayers(t *testing.T) {
	// The paper's argument for the bus: crossing n layers costs n router
	// hops but only one bus cycle. Compare delivery times on a 4-layer
	// chip for a packet crossing the full stack.
	mk := func(mode VerticalMode) uint64 {
		dim := geom.Dim{Width: 4, Height: 4, Layers: 4}
		f := NewWithVertical(dim, []geom.Coord{{X: 1, Y: 1}}, mode)
		var at uint64
		dst := geom.Coord{X: 1, Y: 1, Layer: 3}
		f.SetSink(dst, func(p *noc.Packet, cycle uint64) { at = cycle })
		f.Send(&noc.Packet{Src: geom.Coord{X: 1, Y: 1, Layer: 0}, Dst: dst, Size: 1})
		run(f, func() bool { return at != 0 }, 500)
		return at
	}
	bus, router := mk(VerticalBus), mk(VerticalRouter)
	if bus == 0 || router == 0 {
		t.Fatal("a packet was not delivered")
	}
	if bus >= router {
		t.Errorf("bus (%d cycles) not faster than router chain (%d cycles)", bus, router)
	}
}

func TestVerticalRouterNoDeadlock(t *testing.T) {
	dim := geom.Dim{Width: 4, Height: 4, Layers: 4}
	f := NewWithVertical(dim, []geom.Coord{{X: 0, Y: 0}, {X: 3, Y: 3}}, VerticalRouter)
	var delivered int
	for i := 0; i < dim.Nodes(); i++ {
		f.SetSink(dim.CoordOf(i), func(p *noc.Packet, cycle uint64) { delivered++ })
	}
	rng := rand.New(rand.NewSource(7))
	const total = 2000
	for k := 0; k < total; k++ {
		src := dim.CoordOf(rng.Intn(dim.Nodes()))
		dst := dim.CoordOf(rng.Intn(dim.Nodes()))
		if src == dst {
			dst = dim.CoordOf((dim.Index(dst) + 1) % dim.Nodes())
		}
		size := 1
		if rng.Intn(2) == 0 {
			size = noc.DataPacketFlits
		}
		f.Send(&noc.Packet{Src: src, Dst: dst, Size: size})
	}
	run(f, func() bool { return delivered == total }, 300000)
	if delivered != total {
		t.Fatalf("deadlock or loss in router mode: %d of %d", delivered, total)
	}
}

func TestQuiescentMatchesScan(t *testing.T) {
	// The O(1) quiescence check (active-router list + busy-bus counter) must
	// agree with a brute-force scan of every router and bus at every
	// between-tick observation point under random traffic.
	dim := geom.Dim{Width: 4, Height: 4, Layers: 2}
	f := New(dim, []geom.Coord{{X: 1, Y: 1}})
	for i := 0; i < dim.Nodes(); i++ {
		f.SetSink(dim.CoordOf(i), nil)
	}
	cycle := uint64(0)
	check := func() {
		t.Helper()
		if f.Quiescent() != f.quiescentScan() {
			t.Fatalf("cycle %d: Quiescent=%v scan=%v",
				cycle, f.Quiescent(), f.quiescentScan())
		}
	}
	check()
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 300; k++ {
		for i := rng.Intn(4); i > 0; i-- {
			src := dim.CoordOf(rng.Intn(dim.Nodes()))
			dst := dim.CoordOf(rng.Intn(dim.Nodes()))
			if src == dst {
				continue
			}
			size := 1
			if rng.Intn(2) == 0 {
				size = noc.DataPacketFlits
			}
			f.Send(&noc.Packet{Src: src, Dst: dst, Size: size})
			check()
		}
		for j := rng.Intn(8); j > 0; j-- {
			f.Tick(cycle)
			cycle++
			check()
		}
	}
	for i := 0; i < 5000 && !f.quiescentScan(); i++ {
		f.Tick(cycle)
		cycle++
		check()
	}
	if !f.Quiescent() {
		t.Fatal("fabric did not quiesce after the traffic drained")
	}
}

func TestPoolPacketsRecycledOnEjection(t *testing.T) {
	f := New(geom.Dim{Width: 4, Height: 1, Layers: 1}, nil)
	dst := geom.Coord{X: 3, Y: 0, Layer: 0}
	delivered := 0
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { delivered++ })
	first := f.NewPacket()
	first.Src, first.Dst, first.Size = geom.Coord{X: 0, Y: 0, Layer: 0}, dst, 1
	f.Send(first)
	run(f, func() bool { return delivered == 1 }, 100)
	if delivered != 1 {
		t.Fatal("packet not delivered")
	}
	second := f.NewPacket()
	if second != first {
		t.Fatal("ejected pool packet was not recycled")
	}
	if second.ID != 0 || second.Size != 0 || second.Hops != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", second)
	}
}

func TestCallerPacketsSurviveEjection(t *testing.T) {
	// Packets constructed directly (tests, ad-hoc traffic) must keep their
	// contents after delivery — only pool-origin packets are recycled.
	f := New(geom.Dim{Width: 4, Height: 1, Layers: 1}, nil)
	dst := geom.Coord{X: 3, Y: 0, Layer: 0}
	var got *noc.Packet
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { got = p })
	p := &noc.Packet{Src: geom.Coord{X: 0, Y: 0, Layer: 0}, Dst: dst, Size: 1, Payload: "payload"}
	f.Send(p)
	run(f, func() bool { return got != nil }, 100)
	if got != p || got.Payload != "payload" {
		t.Fatalf("caller-constructed packet mutated after delivery: %+v", got)
	}
}

func TestSendEjectSteadyStateAllocs(t *testing.T) {
	// A pool-drawn Send followed by delivery must not allocate once queues,
	// pool, and active lists have reached steady-state capacity.
	dim := geom.Dim{Width: 4, Height: 4, Layers: 2}
	f := New(dim, []geom.Coord{{X: 1, Y: 1}})
	src := geom.Coord{X: 0, Y: 0, Layer: 0}
	dst := geom.Coord{X: 3, Y: 3, Layer: 1}
	delivered := 0
	f.SetSink(dst, func(p *noc.Packet, cycle uint64) { delivered++ })
	cycle := uint64(0)
	roundTrip := func() {
		p := f.NewPacket()
		p.Src, p.Dst, p.Size = src, dst, noc.DataPacketFlits
		f.Send(p)
		for i := 0; i < 40; i++ {
			f.Tick(cycle)
			cycle++
		}
	}
	for i := 0; i < 4; i++ {
		roundTrip()
	}
	before := delivered
	avg := testing.AllocsPerRun(100, roundTrip)
	if delivered <= before {
		t.Fatal("no packets delivered during the measured runs")
	}
	if avg != 0 {
		t.Errorf("Send→eject round trip allocates %.1f objects/op, want 0", avg)
	}
}
