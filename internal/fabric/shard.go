package fabric

// Spatial domain decomposition of the fabric tick. The chip's natural
// seams are its device layers: each layer is a self-contained 2D mesh,
// and the only paths between layers are the dTDMA pillar buses. One shard
// owns a contiguous block of layers; the per-cycle router phase fans out
// to one goroutine per shard, and everything that crosses shards or needs
// a global order is *staged* into per-shard logs and replayed serially at
// the horizon barrier, in exactly the order the serial tick would have
// produced it. The bus phase (the inter-shard edges) always runs serially
// after the barrier. The lookahead L is one bus slot, so the barrier is
// per-cycle — see sim.ShardGroup for the derivation, and DESIGN.md §15
// for the full bit-identical-determinism argument.

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
)

// shardMinActive is the active-router count below which a sharded fabric
// ticks serially anyway: the barrier handshake costs more than ticking a
// handful of routers inline. Switching per cycle is safe because the two
// paths are observationally identical — that equivalence is the
// determinism contract itself.
const shardMinActive = 8

// opKind tags one entry of a shard's staged-effect log.
type opKind uint8

const (
	opEvent    opKind = iota // probe event emitted by a router
	opEject                  // packet ejection (delivery callback still to run)
	opActivate               // idle-to-busy router transition
)

// stagedOp is one globally-ordered side effect captured during the
// parallel router phase. pos is the emitting router's position in this
// cycle's active-list snapshot — the serial tick's execution order — so a
// k-way merge by pos replays effects exactly as the serial fabric
// interleaves them.
type stagedOp struct {
	pos  int
	kind opKind
	idx  int         // opEject/opActivate: router index
	ev   obs.Event   // opEvent
	pkt  *noc.Packet // opEject
}

// shardLog is one shard's staged-effect log plus its replay cursor. The
// trailing pad keeps concurrently-appending logs off one another's cache
// lines.
type shardLog struct {
	ops    []stagedOp
	curPos int // snapshot position of the router currently ticking
	next   int // replay cursor
	_      [64]byte
}

// shardState is the sharded-execution machinery: the layer-to-shard map,
// a persistent worker group, per-shard staged-effect logs, and per-shard
// staging probes that stand in for the real probe during the parallel
// phase.
type shardState struct {
	n        int
	shardOf  []int // layer -> shard (contiguous blocks)
	labels   []string
	logs     []shardLog
	probes   []*obs.Probe
	group    *sim.ShardGroup
	inPhase  bool
	cycle    uint64
	snapshot int
}

// stagingSink redirects a shard's router probe events into its staged log
// during the parallel phase. Outside the phase (the small-cycle serial
// path keeps the staging probes installed) events pass straight through
// to the real probe.
type stagingSink struct {
	f   *Fabric
	idx int
}

func (s *stagingSink) Record(e obs.Event) {
	if st := s.f.shard; st != nil && st.inPhase {
		lg := &st.logs[s.idx]
		lg.ops = append(lg.ops, stagedOp{pos: lg.curPos, kind: opEvent, ev: e})
		return
	}
	if s.f.probe != nil {
		s.f.probe.Emit(e)
	}
}

// SetShards configures parallel execution of the router phase across n
// layer shards and returns the effective count. n is clamped to the layer
// count; values below 2, the VerticalRouter ablation (whose inter-layer
// router links break layer isolation), and single-layer chips all fall
// back to the serial path (returning 1), leaving it untouched. A sharded
// run is bit-identical to a serial run — same Results, same event
// sequence under any probe — so this is purely a wall-clock knob; the
// contract is pinned by TestShardedDeterminism.
func (f *Fabric) SetShards(n int) int {
	if n > f.dim.Layers {
		n = f.dim.Layers
	}
	if n < 2 || f.mode != VerticalBus {
		f.closeShards()
		return 1
	}
	if f.shard != nil && f.shard.n == n {
		return n
	}
	f.closeShards()
	st := &shardState{
		n:       n,
		shardOf: make([]int, f.dim.Layers),
		logs:    make([]shardLog, n),
		probes:  make([]*obs.Probe, n),
	}
	for l := 0; l < f.dim.Layers; l++ {
		st.shardOf[l] = l * n / f.dim.Layers
	}
	labels := make([]string, n)
	tasks := make([]func(), n)
	for s := 0; s < n; s++ {
		st.probes[s] = obs.NewProbe(&stagingSink{f: f, idx: s})
		lo, hi := -1, -1
		for l := 0; l < f.dim.Layers; l++ {
			if st.shardOf[l] == s {
				if lo < 0 {
					lo = l
				}
				hi = l
			}
		}
		if lo == hi {
			labels[s] = fmt.Sprintf("layer-%d", lo)
		} else {
			labels[s] = fmt.Sprintf("layers-%d-%d", lo, hi)
		}
		s := s
		tasks[s] = func() { f.shardTick(s) }
	}
	f.shard = st
	st.labels = labels
	st.group = sim.NewShardGroup(labels, tasks)
	for _, r := range f.routers {
		r.SetAtomicHops(true)
	}
	f.refreshRouterProbes()
	f.shareShardProfile()
	return n
}

// Shards returns the effective shard count (1 when serial).
func (f *Fabric) Shards() int {
	if f.shard == nil {
		return 1
	}
	return f.shard.n
}

// ShardedCycles returns the number of ticks that actually fanned out to
// the shard workers (busy cycles; cycles under the shardMinActive
// threshold tick serially even with sharding enabled). Tests use it to
// prove the parallel path engaged rather than silently falling back.
func (f *Fabric) ShardedCycles() uint64 { return f.shardedCycles }

// Close releases the shard worker goroutines and reverts to serial
// ticking. No-op on a serial fabric; idempotent.
func (f *Fabric) Close() { f.closeShards() }

func (f *Fabric) closeShards() {
	if f.shard == nil {
		return
	}
	f.shard.group.Close()
	f.shard = nil
	for _, r := range f.routers {
		r.SetAtomicHops(false)
	}
	f.refreshRouterProbes()
}

// refreshRouterProbes points every router at the probe it should emit
// into: its shard's staging probe while sharding is enabled and a real
// probe is attached, the real probe otherwise. Buses always emit into the
// real probe — they tick in the serial phase.
func (f *Fabric) refreshRouterProbes() {
	for i, r := range f.routers {
		if st := f.shard; st != nil && f.probe != nil {
			r.SetProbe(st.probes[st.shardOf[f.layerOf[i]]])
		} else {
			r.SetProbe(f.probe)
		}
	}
}

// stagingLog returns the staged-effect log for the given layer while the
// parallel router phase is running, nil otherwise.
func (f *Fabric) stagingLog(layer int) *shardLog {
	st := f.shard
	if st == nil || !st.inPhase {
		return nil
	}
	return &st.logs[st.shardOf[layer]]
}

// noteWork handles a router's idle-to-busy transition: staged during the
// parallel phase (so the activation joins the global replay order),
// applied directly otherwise.
func (f *Fabric) noteWork(i int) {
	if lg := f.stagingLog(f.layerOf[i]); lg != nil {
		lg.ops = append(lg.ops, stagedOp{pos: lg.curPos, kind: opActivate, idx: i})
		return
	}
	f.activate(i)
}

// shardTick is shard s's slice of the parallel router phase: tick every
// active router belonging to the shard's layers, in snapshot order,
// stamping the snapshot position before each tick so staged effects carry
// their serial execution order.
func (f *Fabric) shardTick(s int) {
	st := f.shard
	lg := &st.logs[s]
	cycle := st.cycle
	for k := 0; k < st.snapshot; k++ {
		i := f.activeList[k]
		if st.shardOf[f.layerOf[i]] != s {
			continue
		}
		lg.curPos = k
		f.routers[i].Tick(cycle)
	}
}

// tickSharded is the parallel fabric tick: the router phase fans out to
// the shard workers with every globally-ordered side effect staged, the
// staged effects replay serially in snapshot order at the barrier, and
// the buses (the only inter-shard edges) tick serially after them,
// exactly as in the serial tick.
func (f *Fabric) tickSharded(cycle uint64) {
	st := f.shard
	f.shardedCycles++
	st.cycle = cycle
	st.snapshot = len(f.activeList)
	for i := range st.logs {
		lg := &st.logs[i]
		clear(lg.ops) // drop packet references from the previous cycle
		lg.ops = lg.ops[:0]
		lg.next = 0
	}
	for _, b := range f.buses {
		b.BeginDeferredPending()
	}
	st.inPhase = true
	st.group.Cycle()
	st.inPhase = false
	for _, b := range f.buses {
		b.EndDeferredPending()
	}
	f.replayStaged(cycle)
	for _, b := range f.buses {
		b.Tick(cycle)
	}
	f.pruneActive()
}

// replayStaged merges the shard logs by snapshot position and applies the
// staged effects in that order — the order the serial tick produces them.
// Each position belongs to exactly one shard (a router ticks once) and
// positions are strictly increasing within a log, so the merge is a
// deterministic k-way minimum scan. Ejection replay runs the full
// delivery epilogue, so the protocol's synchronous responses — packet-ID
// assignment, injections, engine event scheduling — also happen in serial
// order; deferring them past the barrier is sound because every
// synchronous send beneath a delivery re-injects at the delivering node's
// own router (see core.System.deliver), never touching another router's
// same-cycle state.
func (f *Fabric) replayStaged(cycle uint64) {
	st := f.shard
	for {
		best, bestPos := -1, int(^uint(0)>>1)
		for s := range st.logs {
			lg := &st.logs[s]
			if lg.next < len(lg.ops) && lg.ops[lg.next].pos < bestPos {
				best, bestPos = s, lg.ops[lg.next].pos
			}
		}
		if best < 0 {
			return
		}
		lg := &st.logs[best]
		for lg.next < len(lg.ops) && lg.ops[lg.next].pos == bestPos {
			op := &lg.ops[lg.next]
			lg.next++
			switch op.kind {
			case opEvent:
				if f.probe != nil {
					f.probe.Emit(op.ev)
				}
			case opEject:
				f.finishEject(op.idx, op.pkt, cycle)
			case opActivate:
				f.activate(op.idx)
			}
		}
	}
}
