// Package placement implements the CPU placement strategies of Section 3.3:
// optimal offsetting in all three dimensions (one CPU per pillar, Figure 9),
// the paper's Algorithm 1 for pillar-sharing configurations (2 or 4 CPUs per
// pillar per layer, offset k), vertical stacking (the thermally-bad baseline
// of Table 3), and the edge placement used by the CMP-DNUCA comparison
// scheme, which puts processors on the chip perimeter.
package placement

import (
	"fmt"

	"repro/internal/geom"
)

// clamp keeps a coordinate inside the layer bounds so an offset near a chip
// edge stays on-chip.
func clamp(c geom.Coord, d geom.Dim) geom.Coord {
	if c.X < 0 {
		c.X = 0
	}
	if c.X >= d.Width {
		c.X = d.Width - 1
	}
	if c.Y < 0 {
		c.Y = 0
	}
	if c.Y >= d.Height {
		c.Y = d.Height - 1
	}
	return c
}

// Optimal places one CPU directly on each pillar, offsetting CPUs in all
// three dimensions (Figure 9): pillar (row, col) in its pw-wide grid gets
// layer (row+col) mod layers, so no two vertically adjacent pillar
// positions carry CPUs on the same layer. It returns one coordinate per
// pillar; callers wanting fewer CPUs take a prefix.
func Optimal(pillars []geom.Coord, pw, layers int) []geom.Coord {
	if pw < 1 {
		pw = 1
	}
	cpus := make([]geom.Coord, len(pillars))
	for i, p := range pillars {
		row, col := i/pw, i%pw
		cpus[i] = geom.Coord{X: p.X, Y: p.Y, Layer: (row + col) % layers}
	}
	return cpus
}

// Algorithm1 is the paper's CPU placement algorithm for configurations
// where multiple CPUs share a pillar. c is the number of CPUs assigned to
// each pillar on each layer (the paper defines patterns for c = 2 and
// c = 4; c = 1 is the natural single-CPU extension that rotates the offset
// direction per layer). k is the offset distance from the pillar in network
// hops. The pattern cycles every four layers, exactly as in the paper.
//
// The returned slice is ordered pillar-major, then layer, then the c CPUs
// of that (pillar, layer) slot; positions are clamped to the chip bounds.
func Algorithm1(pillars []geom.Coord, dim geom.Dim, layers, c, k int) ([]geom.Coord, error) {
	if c != 1 && c != 2 && c != 4 {
		return nil, fmt.Errorf("placement: Algorithm 1 supports c in {1,2,4}, got %d", c)
	}
	if k < 1 {
		return nil, fmt.Errorf("placement: offset k must be >= 1, got %d", k)
	}
	var cpus []geom.Coord
	add := func(x, y, l int) {
		cpus = append(cpus, clamp(geom.Coord{X: x, Y: y, Layer: l}, dim))
	}
	for _, p := range pillars {
		for l := 0; l < layers; l++ {
			x, y := p.X, p.Y
			switch l % 4 {
			case 0:
				switch c {
				case 1:
					add(x+k, y, l)
				case 2:
					add(x+k, y, l)
					add(x-k, y, l)
				case 4:
					add(x+2*k, y, l)
					add(x-2*k, y, l)
					add(x, y+2*k, l)
					add(x, y-2*k, l)
				}
			case 1:
				switch c {
				case 1:
					add(x, y+k, l)
				case 2:
					add(x, y+k, l)
					add(x, y-k, l)
				case 4:
					add(x+k, y+k, l)
					add(x+k, y-k, l)
					add(x-k, y+k, l)
					add(x-k, y-k, l)
				}
			case 2:
				switch c {
				case 1:
					add(x-k, y, l)
				case 2:
					add(x+2*k, y, l)
					add(x-2*k, y, l)
				case 4:
					add(x+k, y, l)
					add(x-k, y, l)
					add(x, y+k, l)
					add(x, y-k, l)
				}
			case 3:
				switch c {
				case 1:
					add(x, y-k, l)
				case 2:
					add(x, y+2*k, l)
					add(x, y-2*k, l)
				case 4:
					add(x+2*k, y+2*k, l)
					add(x+2*k, y-2*k, l)
					add(x-2*k, y+2*k, l)
					add(x-2*k, y-2*k, l)
				}
			}
		}
	}
	return cpus, nil
}

// Stacked places CPUs directly on pillars with vertical stacking: CPUs fill
// each pillar position through all layers before moving to the next pillar.
// This is the placement Table 3 shows to create severe hotspots; it exists
// as the thermal and congestion baseline.
func Stacked(pillars []geom.Coord, layers, ncpu int) []geom.Coord {
	cpus := make([]geom.Coord, 0, ncpu)
	for _, p := range pillars {
		for l := 0; l < layers && len(cpus) < ncpu; l++ {
			cpus = append(cpus, geom.Coord{X: p.X, Y: p.Y, Layer: l})
		}
		if len(cpus) == ncpu {
			break
		}
	}
	return cpus
}

// Edge places CPUs on the chip perimeter of a single-layer chip, evenly
// spaced along the north and south edges — the CMP-DNUCA baseline, which
// surrounds processors with cache on one side only.
func Edge(dim geom.Dim, ncpu int) []geom.Coord {
	cpus := make([]geom.Coord, 0, ncpu)
	top := (ncpu + 1) / 2
	bottom := ncpu - top
	for i := 0; i < top; i++ {
		x := (2*i + 1) * dim.Width / (2 * top)
		cpus = append(cpus, geom.Coord{X: x, Y: 0, Layer: 0})
	}
	for i := 0; i < bottom; i++ {
		x := (2*i + 1) * dim.Width / (2 * bottom)
		cpus = append(cpus, geom.Coord{X: x, Y: dim.Height - 1, Layer: 0})
	}
	return cpus
}

// PillarGrid distributes n pillar positions over a WxH layer as a pw x ph
// grid chosen so the per-pillar service cells are as square as possible.
// Pillars sit at cell centers, never on chip edges (for layers taller and
// wider than 2), matching Section 3.3's guidance: far apart, but not on
// the edges. The grid width pw is returned for layer-offset computations.
func PillarGrid(dim geom.Dim, n int) (pillars []geom.Coord, pw int) {
	if n < 1 {
		return nil, 1
	}
	bestPW, bestScore := 1, 1<<30
	for w := 1; w <= n; w++ {
		if n%w != 0 {
			continue
		}
		h := n / w
		if w > dim.Width || h > dim.Height {
			continue
		}
		cw, ch := dim.Width/w, dim.Height/h
		score := cw - ch
		if score < 0 {
			score = -score
		}
		squarer := func(a int) int {
			d := a - n/a
			if d < 0 {
				return -d
			}
			return d
		}
		if score < bestScore || (score == bestScore && squarer(w) < squarer(bestPW)) {
			bestPW, bestScore = w, score
		}
	}
	pw = bestPW
	ph := n / pw
	for j := 0; j < ph; j++ {
		for i := 0; i < pw; i++ {
			x := (2*i + 1) * dim.Width / (2 * pw)
			y := (2*j + 1) * dim.Height / (2 * ph)
			pillars = append(pillars, geom.Coord{X: x, Y: y})
		}
	}
	return pillars, pw
}

// Validate checks a CPU placement: every position on-chip and no two CPUs
// on the same node. It returns a descriptive error for the first violation.
func Validate(cpus []geom.Coord, dim geom.Dim) error {
	seen := make(map[geom.Coord]int, len(cpus))
	for i, c := range cpus {
		if !dim.Contains(c) {
			return fmt.Errorf("placement: CPU %d at %v is outside %v", i, c, dim)
		}
		if j, dup := seen[c]; dup {
			return fmt.Errorf("placement: CPUs %d and %d share node %v", j, i, c)
		}
		seen[c] = i
	}
	return nil
}

// MaxStackedPerColumn returns the largest number of CPUs sharing one
// in-plane position across layers — the quantity thermal offsetting
// minimizes (1 means no vertical stacking anywhere).
func MaxStackedPerColumn(cpus []geom.Coord) int {
	col := make(map[[2]int]int)
	max := 0
	for _, c := range cpus {
		col[[2]int{c.X, c.Y}]++
		if col[[2]int{c.X, c.Y}] > max {
			max = col[[2]int{c.X, c.Y}]
		}
	}
	return max
}
