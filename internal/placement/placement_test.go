package placement

import (
	"testing"

	"repro/internal/geom"
)

var dim16x8x2 = geom.Dim{Width: 16, Height: 8, Layers: 2}

func TestPillarGridEight(t *testing.T) {
	pillars, pw := PillarGrid(dim16x8x2, 8)
	if len(pillars) != 8 {
		t.Fatalf("got %d pillars", len(pillars))
	}
	if pw != 4 {
		t.Errorf("grid width = %d, want 4", pw)
	}
	for _, p := range pillars {
		if p.X <= 0 || p.X >= dim16x8x2.Width-1 || p.Y <= 0 || p.Y >= dim16x8x2.Height-1 {
			t.Errorf("pillar %v on or beyond chip edge", p)
		}
		if p.Layer != 0 {
			t.Errorf("pillar %v carries a layer", p)
		}
	}
	// All positions distinct.
	seen := map[geom.Coord]bool{}
	for _, p := range pillars {
		if seen[p] {
			t.Fatalf("duplicate pillar %v", p)
		}
		seen[p] = true
	}
}

func TestPillarGridSpacing(t *testing.T) {
	// Pillars must be spread out: minimum pairwise distance at least the
	// cell size for an 8-pillar 16x8 grid (cells 4x4 -> distance >= 4).
	pillars, _ := PillarGrid(dim16x8x2, 8)
	for i := 0; i < len(pillars); i++ {
		for j := i + 1; j < len(pillars); j++ {
			if d := pillars[i].ManhattanXY(pillars[j]); d < 4 {
				t.Errorf("pillars %v and %v only %d apart", pillars[i], pillars[j], d)
			}
		}
	}
}

func TestPillarGridCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		pillars, _ := PillarGrid(dim16x8x2, n)
		if len(pillars) != n {
			t.Errorf("n=%d: got %d pillars", n, len(pillars))
		}
	}
	if p, _ := PillarGrid(dim16x8x2, 0); p != nil {
		t.Error("n=0 must yield nil")
	}
}

func TestOptimalOffsetsAllDimensions(t *testing.T) {
	pillars, pw := PillarGrid(dim16x8x2, 8)
	cpus := Optimal(pillars, pw, 2)
	if len(cpus) != 8 {
		t.Fatalf("got %d CPUs", len(cpus))
	}
	if err := Validate(cpus, dim16x8x2); err != nil {
		t.Fatal(err)
	}
	// Optimal offsetting: no two CPUs stacked in the same vertical column.
	if m := MaxStackedPerColumn(cpus); m != 1 {
		t.Errorf("MaxStackedPerColumn = %d, want 1", m)
	}
	// CPUs sit exactly on their pillars in-plane.
	for i, c := range cpus {
		if c.X != pillars[i].X || c.Y != pillars[i].Y {
			t.Errorf("CPU %d at %v not on pillar %v", i, c, pillars[i])
		}
	}
	// Layers are used evenly (4 per layer for 8 CPUs on 2 layers).
	perLayer := map[int]int{}
	for _, c := range cpus {
		perLayer[c.Layer]++
	}
	if perLayer[0] != 4 || perLayer[1] != 4 {
		t.Errorf("layer distribution %v, want 4/4", perLayer)
	}
}

func TestAlgorithm1TwoPerPillar(t *testing.T) {
	pillars := []geom.Coord{{X: 5, Y: 4}}
	dim := geom.Dim{Width: 12, Height: 12, Layers: 4}
	cpus, err := Algorithm1(pillars, dim, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpus) != 8 { // 1 pillar x 4 layers x 2 CPUs
		t.Fatalf("got %d CPUs", len(cpus))
	}
	want := []geom.Coord{
		{X: 6, Y: 4, Layer: 0}, {X: 4, Y: 4, Layer: 0}, // l%4==0: (x±k, y)
		{X: 5, Y: 5, Layer: 1}, {X: 5, Y: 3, Layer: 1}, // l%4==1: (x, y±k)
		{X: 7, Y: 4, Layer: 2}, {X: 3, Y: 4, Layer: 2}, // l%4==2: (x±2k, y)
		{X: 5, Y: 6, Layer: 3}, {X: 5, Y: 2, Layer: 3}, // l%4==3: (x, y±2k)
	}
	for i, w := range want {
		if cpus[i] != w {
			t.Errorf("cpu[%d] = %v, want %v", i, cpus[i], w)
		}
	}
	if err := Validate(cpus, dim); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1FourPerPillar(t *testing.T) {
	pillars := []geom.Coord{{X: 6, Y: 6}}
	dim := geom.Dim{Width: 13, Height: 13, Layers: 2}
	cpus, err := Algorithm1(pillars, dim, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpus) != 8 {
		t.Fatalf("got %d CPUs", len(cpus))
	}
	// Layer 0 (l%4==0): (x±2k, y), (x, y±2k); layer 1: (x±k, y±k).
	want0 := map[geom.Coord]bool{
		{X: 8, Y: 6, Layer: 0}: true, {X: 4, Y: 6, Layer: 0}: true,
		{X: 6, Y: 8, Layer: 0}: true, {X: 6, Y: 4, Layer: 0}: true,
	}
	want1 := map[geom.Coord]bool{
		{X: 7, Y: 7, Layer: 1}: true, {X: 7, Y: 5, Layer: 1}: true,
		{X: 5, Y: 7, Layer: 1}: true, {X: 5, Y: 5, Layer: 1}: true,
	}
	for _, c := range cpus[:4] {
		if !want0[c] {
			t.Errorf("unexpected layer-0 CPU %v", c)
		}
	}
	for _, c := range cpus[4:] {
		if !want1[c] {
			t.Errorf("unexpected layer-1 CPU %v", c)
		}
	}
	// No stacking between the two layers.
	if m := MaxStackedPerColumn(cpus); m != 1 {
		t.Errorf("MaxStackedPerColumn = %d, want 1", m)
	}
}

func TestAlgorithm1MaxTwoHopsFromPillar(t *testing.T) {
	// "Processors are placed at most two hops away from a pillar" for k=1.
	pillars := []geom.Coord{{X: 8, Y: 4}, {X: 3, Y: 3}}
	dim := geom.Dim{Width: 16, Height: 8, Layers: 4}
	for _, c := range []int{1, 2, 4} {
		cpus, err := Algorithm1(pillars, dim, 4, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		per := len(cpus) / len(pillars)
		for i, cpu := range cpus {
			p := pillars[i/per]
			if d := cpu.ManhattanXY(geom.Coord{X: p.X, Y: p.Y}); d > 2*2 {
				t.Errorf("c=%d: CPU %v is %d hops from pillar %v", c, cpu, d, p)
			}
		}
	}
}

func TestAlgorithm1Rejects(t *testing.T) {
	pillars := []geom.Coord{{X: 2, Y: 2}}
	dim := geom.Dim{Width: 8, Height: 8, Layers: 2}
	if _, err := Algorithm1(pillars, dim, 2, 3, 1); err == nil {
		t.Error("c=3 must be rejected")
	}
	if _, err := Algorithm1(pillars, dim, 2, 2, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
}

func TestAlgorithm1ClampsAtEdges(t *testing.T) {
	pillars := []geom.Coord{{X: 0, Y: 0}}
	dim := geom.Dim{Width: 4, Height: 4, Layers: 1}
	cpus, err := Algorithm1(pillars, dim, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cpus {
		if !dim.Contains(c) {
			t.Errorf("CPU %v escaped the chip", c)
		}
	}
}

func TestStacked(t *testing.T) {
	pillars := []geom.Coord{{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 2, Y: 6}, {X: 6, Y: 6}}
	cpus := Stacked(pillars, 2, 8)
	if len(cpus) != 8 {
		t.Fatalf("got %d CPUs", len(cpus))
	}
	// Fully stacked: every column carries 2 CPUs.
	if m := MaxStackedPerColumn(cpus); m != 2 {
		t.Errorf("MaxStackedPerColumn = %d, want 2", m)
	}
	// Truncation works.
	if got := Stacked(pillars, 2, 3); len(got) != 3 {
		t.Errorf("truncated Stacked returned %d", len(got))
	}
}

func TestEdge(t *testing.T) {
	dim := geom.Dim{Width: 16, Height: 16, Layers: 1}
	cpus := Edge(dim, 8)
	if len(cpus) != 8 {
		t.Fatalf("got %d CPUs", len(cpus))
	}
	if err := Validate(cpus, dim); err != nil {
		t.Fatal(err)
	}
	for _, c := range cpus {
		if c.Y != 0 && c.Y != dim.Height-1 {
			t.Errorf("CPU %v not on a chip edge", c)
		}
		if c.Layer != 0 {
			t.Errorf("edge CPU %v not on layer 0", c)
		}
	}
}

func TestEdgeOddCount(t *testing.T) {
	dim := geom.Dim{Width: 16, Height: 16, Layers: 1}
	cpus := Edge(dim, 5)
	if len(cpus) != 5 {
		t.Fatalf("got %d CPUs", len(cpus))
	}
	if err := Validate(cpus, dim); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	dim := geom.Dim{Width: 4, Height: 4, Layers: 1}
	dup := []geom.Coord{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if Validate(dup, dim) == nil {
		t.Error("duplicate CPUs must fail validation")
	}
	out := []geom.Coord{{X: 9, Y: 0}}
	if Validate(out, dim) == nil {
		t.Error("off-chip CPU must fail validation")
	}
	if Validate([]geom.Coord{{X: 1, Y: 2}}, dim) != nil {
		t.Error("valid placement rejected")
	}
}
