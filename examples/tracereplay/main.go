// Tracereplay drives the simulator from an external reference trace instead
// of the built-in SPEC OMP models — the integration point for users with
// their own Pin/DynamoRIO-style address traces.
//
// With no arguments it synthesizes a small demonstration trace (a blocked
// matrix sweep with a shared lookup table) for each core, writes it to a
// temporary file, and replays it through CMP-DNUCA-3D and CMP-SNUCA-3D.
// Pass file names (one per core, cycled) to replay your own traces:
//
//	go run ./examples/tracereplay trace0.txt trace1.txt ...
//
// Trace format: one reference per line, "R|W|F <hex line address> [gap]",
// where F marks an instruction fetch attaching to the next data reference
// and gap is the count of non-memory instructions preceding the reference.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	nim "repro"
)

func main() {
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)

	var streams []nim.Stream
	var footprint []nim.LineAddr
	if len(os.Args) > 1 {
		files := os.Args[1:]
		for i := 0; i < cfg.NumCPUs; i++ {
			f, err := os.Open(files[i%len(files)])
			if err != nil {
				log.Fatal(err)
			}
			fs, err := nim.ParseTrace(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			streams = append(streams, fs)
			footprint = append(footprint, fs.Footprint()...)
		}
	} else {
		fmt.Println("no trace files given; synthesizing a demonstration trace per core")
		for i := 0; i < cfg.NumCPUs; i++ {
			fs, err := nim.ParseTrace(strings.NewReader(demoTrace(i)))
			if err != nil {
				log.Fatal(err)
			}
			streams = append(streams, fs)
			footprint = append(footprint, fs.Footprint()...)
		}
	}

	for _, scheme := range []nim.Scheme{nim.CMPSNUCA3D, nim.CMPDNUCA3D} {
		c := nim.DefaultConfig(scheme)
		sim, err := nim.NewTraceSimulation(c, streams, "replayed-trace", 1)
		if err != nil {
			log.Fatal(err)
		}
		sim.WarmAddresses(footprint)
		sim.Start()
		sim.Run(30_000)
		sim.ResetStats()
		sim.Run(120_000)
		r := sim.Results()
		fmt.Printf("%-14s L2 hit latency %6.1f cy   IPC %.3f   hits %d   misses %d\n",
			r.Scheme, r.AvgL2HitLatency, r.IPC, r.L2Hits, r.L2Misses)

		// Streams are stateful; rebuild them for the next scheme.
		if len(os.Args) <= 1 {
			for i := range streams {
				streams[i], _ = nim.ParseTrace(strings.NewReader(demoTrace(i)))
			}
		} else {
			for i := range streams {
				f, err := os.Open(os.Args[1:][i%len(os.Args[1:])])
				if err != nil {
					log.Fatal(err)
				}
				streams[i], err = nim.ParseTrace(f)
				f.Close()
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	}
}

// demoTrace builds a toy per-core trace: a streaming sweep over a private
// 4096-line array (too large for the 1024-line L1, so the sweep reaches
// the L2 on every lap) interleaved with reads of a shared table and the
// occasional store.
func demoTrace(cpu int) string {
	var b strings.Builder
	privBase := 0x100000 + cpu*0x10000
	const sharedBase = 0x1000
	for i := 0; i < 8192; i++ {
		switch {
		case i%7 == 3:
			fmt.Fprintf(&b, "R %x 2\n", sharedBase+i%2048)
		case i%11 == 5:
			fmt.Fprintf(&b, "W %x 1\n", privBase+i%4096)
		default:
			fmt.Fprintf(&b, "R %x 3\n", privBase+i%4096)
		}
	}
	return b.String()
}
