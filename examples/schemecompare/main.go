// Schemecompare runs one scientific workload under all four L2
// organizations the paper evaluates and prints the comparison the paper's
// introduction motivates: does stacking the cache in 3D beat sophisticated
// 2D data migration?
//
//	go run ./examples/schemecompare [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	nim "repro"
)

func main() {
	bench := "swim"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	opt := nim.DefaultOptions()

	fmt.Printf("benchmark: %s\n\n", bench)
	fmt.Printf("%-14s %12s %10s %12s %12s\n",
		"scheme", "L2 hit lat", "IPC", "migrations", "flit-hops")

	results, err := nim.RunAllSchemes(bench, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range nim.Schemes() {
		r := results[s]
		fmt.Printf("%-14s %9.1f cy %10.3f %12d %12d\n",
			r.Scheme, r.AvgL2HitLatency, r.IPC, r.Migrations, r.FlitHops)
	}

	d2 := results[nim.CMPDNUCA2D]
	s3 := results[nim.CMPSNUCA3D]
	d3 := results[nim.CMPDNUCA3D]
	fmt.Printf("\nthe paper's central claim, on this run:\n")
	fmt.Printf("  3D without migration vs 2D with migration: %+.1f cycles\n",
		s3.AvgL2HitLatency-d2.AvgL2HitLatency)
	fmt.Printf("  adding migration to 3D:                    %+.1f cycles\n",
		d3.AvgL2HitLatency-s3.AvgL2HitLatency)
	fmt.Printf("  IPC improvement, DNUCA-3D over DNUCA-2D:   %+.1f%%\n",
		100*(d3.IPC-d2.IPC)/d2.IPC)
	fmt.Printf("  migration reduction in 3D:                 %.0f%%\n",
		100*(1-float64(d3.Migrations)/float64(d2.Migrations)))
}
