// Floorplanner is the designer workflow of Section 3.3: given a thermal
// budget for peak die temperature, explore CPU placements (optimal
// offsetting, Algorithm 1 with various k, stacking) across layer counts and
// report which configurations fit the budget and what L2 latency each
// achieves. It combines the thermal model (Table 3) with the performance
// simulator (Figures 13/17/18).
//
//	go run ./examples/floorplanner [-budget 140] [-bench mgrid]
package main

import (
	"flag"
	"fmt"
	"log"

	nim "repro"
	"repro/internal/config"
	"repro/internal/thermal"
)

func main() {
	budget := flag.Float64("budget", 140, "peak temperature budget in C")
	bench := flag.String("bench", "mgrid", "benchmark for the performance column")
	flag.Parse()

	type candidate struct {
		name string
		cfg  nim.Config
	}
	mk := func(layers, pillars, k int, stack bool) nim.Config {
		c := nim.DefaultConfig(nim.CMPDNUCA3D)
		c.Layers = layers
		c.NumPillars = pillars
		c.OffsetK = k
		c.StackCPUs = stack
		return c
	}
	candidates := []candidate{
		{"2D, maximal offset", nim.DefaultConfig(nim.CMPDNUCA2D)},
		{"2 layers, optimal offset", mk(2, 8, 1, false)},
		{"2 layers, shared pillars k=2", mk(2, 4, 2, false)},
		{"2 layers, shared pillars k=1", mk(2, 4, 1, false)},
		{"2 layers, stacked CPUs", mk(2, 8, 1, true)},
		{"4 layers, optimal offset", mk(4, 8, 1, false)},
		{"4 layers, stacked CPUs", mk(4, 8, 1, true)},
	}

	prm := thermal.DefaultParams()
	opt := nim.DefaultOptions()
	opt.MeasureCycles = 150_000

	fmt.Printf("peak temperature budget: %.0f C; benchmark: %s\n\n", *budget, *bench)
	fmt.Printf("%-30s %10s %8s %14s %8s\n", "configuration", "peak C", "fits", "L2 hit lat", "IPC")

	var bestName string
	var bestLat float64
	for _, cand := range candidates {
		top, err := config.NewTopology(cand.cfg)
		if err != nil {
			log.Fatal(err)
		}
		prof := thermal.Simulate(top.Dim, top.CPUs, prm)
		fits := prof.PeakC <= *budget
		mark := "no"
		if fits {
			mark = "yes"
		}

		benchProf, ok := nim.BenchmarkByName(*bench, cand.cfg.NumCPUs)
		if !ok {
			log.Fatalf("unknown benchmark %s", *bench)
		}
		sim, err := nim.NewSimulation(cand.cfg, benchProf, opt.Seed)
		if err != nil {
			log.Fatal(err)
		}
		sim.Warm()
		sim.Start()
		sim.Run(opt.WarmCycles)
		sim.ResetStats()
		sim.Run(opt.MeasureCycles)
		r := sim.Results()

		fmt.Printf("%-30s %10.1f %8s %11.1f cy %8.3f\n",
			cand.name, prof.PeakC, mark, r.AvgL2HitLatency, r.IPC)
		if fits && (bestName == "" || r.AvgL2HitLatency < bestLat) {
			bestName, bestLat = cand.name, r.AvgL2HitLatency
		}
	}

	if bestName == "" {
		fmt.Printf("\nno configuration fits the %.0f C budget\n", *budget)
		return
	}
	fmt.Printf("\nbest within budget: %s (%.1f-cycle L2 hit latency)\n", bestName, bestLat)
}
