// Quickstart: simulate the paper's flagship configuration — an 8-core CMP
// with a 16 MB Network-in-Memory L2 on two device layers — running the
// mgrid benchmark, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	nim "repro"
)

func main() {
	// The paper's Table 4 defaults for the full 3D scheme with migration.
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)

	// mgrid: the most L2-intensive SPEC OMP benchmark (Table 5).
	bench, ok := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	if !ok {
		log.Fatal("unknown benchmark")
	}

	sim, err := nim.NewSimulation(cfg, bench, 1)
	if err != nil {
		log.Fatal(err)
	}

	sim.Warm()       // install the post-warm-up cache steady state
	sim.Start()      // begin execution on all eight cores
	sim.Run(50_000)  // settle
	sim.ResetStats() // discard the settling window
	sim.Run(200_000) // measure

	r := sim.Results()
	fmt.Printf("%s on %s\n", r.Scheme, r.Benchmark)
	fmt.Printf("  IPC (per core):      %.3f\n", r.IPC)
	fmt.Printf("  avg L2 hit latency:  %.1f cycles\n", r.AvgL2HitLatency)
	fmt.Printf("  L2 accesses:         %d (%d hits, %d misses)\n",
		r.L2Accesses, r.L2Hits, r.L2Misses)
	fmt.Printf("  line migrations:     %d\n", r.Migrations)
	fmt.Printf("  network flit-hops:   %d\n", r.FlitHops)
}
