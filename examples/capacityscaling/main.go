// Capacityscaling explores the paper's Figure 16 question for a cache
// architect: as the shared L2 grows from 16 MB to 64 MB, how much does each
// topology's hit latency degrade? The 3D organization grows its mesh by
// the square root of the capacity per layer, so it scales better.
//
//	go run ./examples/capacityscaling [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	nim "repro"
)

func main() {
	bench := "art"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	opt := nim.DefaultOptions()

	fmt.Printf("benchmark: %s\n\n", bench)
	fmt.Printf("%6s %18s %18s\n", "L2", "CMP-DNUCA-2D", "CMP-DNUCA-3D")

	type point struct{ lat2, lat3 float64 }
	var pts []point
	for _, mb := range []int{16, 32, 64} {
		r2, err := nim.RunWithL2Size(nim.CMPDNUCA2D, bench, mb, opt)
		if err != nil {
			log.Fatal(err)
		}
		r3, err := nim.RunWithL2Size(nim.CMPDNUCA3D, bench, mb, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4dMB %15.1f cy %15.1f cy\n", mb, r2.AvgL2HitLatency, r3.AvgL2HitLatency)
		pts = append(pts, point{r2.AvgL2HitLatency, r3.AvgL2HitLatency})
	}

	grow2 := (pts[2].lat2 - pts[0].lat2) / 2
	grow3 := (pts[2].lat3 - pts[0].lat3) / 2
	fmt.Printf("\nlatency growth per doubling: 2D %+.1f cycles, 3D %+.1f cycles\n", grow2, grow3)
	fmt.Println("(the paper reports ~7 for 2D vs ~5 for 3D: 3D scales better)")
}
