// Replication demonstrates the management alternative the paper discusses
// in Section 2.1: instead of migrating lines toward their accessors
// (CMP-DNUCA-3D), keep the placement static and leave read-only replicas in
// each reader's local cluster (victim replication, after Zhang & Asanovic).
// The example compares three 3D organizations on a sharing-heavy workload.
//
//	go run ./examples/replication [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	nim "repro"
)

func main() {
	bench := "equake" // the most sharing-heavy profile
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	opt := nim.DefaultOptions()
	opt.MeasureCycles = 300_000 // replicas need reuse distance to pay off

	run := func(name string, cfg nim.Config) nim.Results {
		prof, ok := nim.BenchmarkByName(bench, cfg.NumCPUs)
		if !ok {
			log.Fatalf("unknown benchmark %q", bench)
		}
		sim, err := nim.NewSimulation(cfg, prof, opt.Seed)
		if err != nil {
			log.Fatal(err)
		}
		sim.Warm()
		sim.Start()
		sim.Run(opt.WarmCycles)
		sim.ResetStats()
		sim.Run(opt.MeasureCycles)
		r := sim.Results()
		fmt.Printf("%-22s %9.1f cy %8.3f %10d %12d %13d\n",
			name, r.AvgL2HitLatency, r.IPC, r.Migrations, r.Replications, r.ReplicaHits)
		return r
	}

	fmt.Printf("benchmark: %s\n\n", bench)
	fmt.Printf("%-22s %12s %8s %10s %12s %13s\n",
		"organization", "L2 hit lat", "IPC", "migrations", "replications", "replica hits")

	static := run("SNUCA-3D (static)", nim.DefaultConfig(nim.CMPSNUCA3D))

	vrCfg := nim.DefaultConfig(nim.CMPSNUCA3D)
	vrCfg.VictimReplication = true
	vr := run("SNUCA-3D + replication", vrCfg)

	dnuca := run("DNUCA-3D (migration)", nim.DefaultConfig(nim.CMPDNUCA3D))

	fmt.Printf("\nreplication vs static:   %+.1f cycles\n", vr.AvgL2HitLatency-static.AvgL2HitLatency)
	fmt.Printf("migration vs static:     %+.1f cycles\n", dnuca.AvgL2HitLatency-static.AvgL2HitLatency)
	fmt.Println("\nmigration moves each line once toward its dominant reader; replication")
	fmt.Println("copies shared lines everywhere they are read but pays invalidations on")
	fmt.Println("writes — which wins depends on the read-write mix of the shared data.")
}
