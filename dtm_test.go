// End-to-end tests of the dynamic thermal management loop: the
// determinism contract (an attached but disabled controller perturbs
// nothing), per-policy actuator engagement on a hot stacked machine, and
// run-to-run reproducibility of the management report.
package nim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	nim "repro"
)

// dtmRun builds, warms, and settles the vertically stacked DNUCA-3D
// machine (the hottest Table 3 placement) and measures a short window
// with the given DTM policy and trip point. An empty policy leaves DTM
// detached; "none" attaches a controller with every actuator disabled.
func dtmRun(t *testing.T, policy string, tripC float64, attachNone bool) nim.Results {
	t.Helper()
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	cfg.StackCPUs = true
	cfg.DTMPolicy = policy
	cfg.TripTempC = tripC
	bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	sim, err := nim.NewSimulation(cfg, bench, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.Warm()
	sim.Start()
	sim.Run(5_000)
	sim.ResetStats()
	switch {
	case policy != "" && policy != "none":
		if _, err := sim.AttachDTM(1_000); err != nil {
			t.Fatal(err)
		}
	case attachNone:
		if _, err := sim.AttachDTM(1_000); err != nil {
			t.Fatal(err)
		}
	default:
		sim.AttachThermal(1_000)
	}
	sim.Run(30_000)
	return sim.Results()
}

// TestDTMDoesNotPerturbWhenDisabled is the determinism contract: a run
// with a DTM controller attached but no policy bits enabled is
// bit-identical to a thermal-only run, which is itself bit-identical to
// an unobserved run (TestThermalDoesNotPerturb). The reports themselves
// are the only allowed difference.
func TestDTMDoesNotPerturbWhenDisabled(t *testing.T) {
	thermalOnly := dtmRun(t, "", 0, false)
	disabled := dtmRun(t, "none", 0, true)
	if disabled.DTM == nil {
		t.Fatal("AttachDTM with policy \"none\" produced no DTM report")
	}
	if got := disabled.DTM.Policy; got != "none" {
		t.Fatalf("disabled controller reports policy %q, want \"none\"", got)
	}
	if disabled.DTM.MigrationVetoes+disabled.DTM.BankWakeups+
		disabled.DTM.ThrottleStalls+disabled.DTM.PillarDiversions != 0 {
		t.Fatalf("disabled controller actuated: %+v", disabled.DTM)
	}
	disabled.DTM = nil
	a, _ := json.Marshal(thermalOnly)
	b, _ := json.Marshal(disabled)
	if !bytes.Equal(a, b) {
		t.Fatalf("disabled DTM changed results:\nthermal-only %s\ndisabled     %s", a, b)
	}
}

// TestDTMPolicyEngagement drives each actuator on the stacked machine
// with the trip point lowered to 70 C, so the CPU columns trip within the
// short window, and checks that exactly the enabled actuator engaged.
func TestDTMPolicyEngagement(t *testing.T) {
	const trip = 70.0
	cases := []struct {
		policy string
		count  func(*nim.DTMReport) uint64
	}{
		{"veto", func(d *nim.DTMReport) uint64 { return d.MigrationVetoes }},
		{"drowsy", func(d *nim.DTMReport) uint64 { return d.BankWakeups }},
		{"duty", func(d *nim.DTMReport) uint64 { return d.ThrottleStalls }},
		{"reroute", func(d *nim.DTMReport) uint64 { return d.PillarDiversions }},
	}
	for _, c := range cases {
		t.Run(c.policy, func(t *testing.T) {
			r := dtmRun(t, c.policy, trip, false)
			d := r.DTM
			if d == nil {
				t.Fatal("no DTM report")
			}
			if d.TripEngagements == 0 {
				t.Fatalf("nothing tripped at %g C (peak %.2f C): the workload is not hot enough for this test", trip, d.PeakC)
			}
			if got := c.count(d); got == 0 {
				t.Errorf("policy %s never engaged: %+v", c.policy, d)
			}
			// Exactly the enabled actuator may engage.
			for _, other := range cases {
				if other.policy != c.policy && other.count(d) != 0 {
					t.Errorf("policy %s engaged actuator %s (%d times)", c.policy, other.policy, other.count(d))
				}
			}
			if c.policy == "drowsy" && d.DrowsyLeakSavedPJ <= 0 {
				t.Errorf("drowsy saved no leakage energy: %+v", d)
			}
		})
	}
}

// TestDTMDutyCycleCutsPeak checks the headline effect: duty-cycling a
// tripped core sheds its 8 W budget, so the managed stacked run peaks
// measurably below the unmanaged one.
func TestDTMDutyCycleCutsPeak(t *testing.T) {
	off := dtmRun(t, "", 0, false)
	duty := dtmRun(t, "duty", 0, false)
	if off.Thermal == nil || duty.Thermal == nil {
		t.Fatal("missing thermal reports")
	}
	if duty.Thermal.PeakC >= off.Thermal.PeakC {
		t.Errorf("duty-cycling did not cut the peak: managed %.2f C vs unmanaged %.2f C",
			duty.Thermal.PeakC, off.Thermal.PeakC)
	}
}

// TestDTMDeterministic checks the management loop's reproducibility: two
// identical managed runs produce identical results and reports.
func TestDTMDeterministic(t *testing.T) {
	a, _ := json.Marshal(dtmRun(t, "all", 70, false))
	b, _ := json.Marshal(dtmRun(t, "all", 70, false))
	if !bytes.Equal(a, b) {
		t.Fatalf("managed runs diverged:\nfirst  %s\nsecond %s", a, b)
	}
}
