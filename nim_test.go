package nim_test

import (
	"testing"

	nim "repro"
)

func TestSchemesList(t *testing.T) {
	s := nim.Schemes()
	if len(s) != 4 {
		t.Fatalf("got %d schemes", len(s))
	}
	if s[0] != nim.CMPDNUCA || s[3] != nim.CMPDNUCA3D {
		t.Error("scheme order does not match the paper")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := nim.Benchmarks(8)
	if len(bs) != 9 {
		t.Fatalf("got %d benchmarks, want 9", len(bs))
	}
	if _, ok := nim.BenchmarkByName("mgrid", 8); !ok {
		t.Error("mgrid missing")
	}
	if _, ok := nim.BenchmarkByName("bogus", 8); ok {
		t.Error("found nonexistent benchmark")
	}
}

func TestSimulationLifecycle(t *testing.T) {
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	bench, _ := nim.BenchmarkByName("art", cfg.NumCPUs)
	sim, err := nim.NewSimulation(cfg, bench, 42)
	if err != nil {
		t.Fatal(err)
	}
	sim.Warm()
	sim.Start()
	sim.Run(20_000)
	sim.ResetStats()
	sim.Run(40_000)
	r := sim.Results()
	if r.Scheme != "CMP-DNUCA-3D" || r.Benchmark != "art" {
		t.Errorf("labels: %s/%s", r.Scheme, r.Benchmark)
	}
	if r.Cycles != 40_000 {
		t.Errorf("window = %d cycles", r.Cycles)
	}
	if r.IPC <= 0 || r.L2Hits == 0 {
		t.Errorf("no progress: %+v", r)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRunSchemeRejectsUnknownBenchmark(t *testing.T) {
	if _, err := nim.RunScheme(nim.CMPDNUCA3D, "nope", nim.DefaultOptions()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPaperHeadlineShape(t *testing.T) {
	// The paper's three headline claims, verified end-to-end through the
	// public API on the most L2-intensive benchmark.
	if testing.Short() {
		t.Skip("multi-scheme simulation in -short mode")
	}
	opt := nim.Options{WarmCycles: 30_000, MeasureCycles: 120_000, Seed: 1}
	res, err := nim.RunAllSchemes("mgrid", opt)
	if err != nil {
		t.Fatal(err)
	}
	d2 := res[nim.CMPDNUCA2D]
	s3 := res[nim.CMPSNUCA3D]
	d3 := res[nim.CMPDNUCA3D]

	// 1. 3D without migration beats 2D with migration (the paper's most
	//    striking result).
	if s3.AvgL2HitLatency >= d2.AvgL2HitLatency {
		t.Errorf("SNUCA-3D (%.1f) not below DNUCA-2D (%.1f)",
			s3.AvgL2HitLatency, d2.AvgL2HitLatency)
	}
	// 2. Migration helps further in 3D.
	if d3.AvgL2HitLatency >= s3.AvgL2HitLatency {
		t.Errorf("DNUCA-3D (%.1f) not below SNUCA-3D (%.1f)",
			d3.AvgL2HitLatency, s3.AvgL2HitLatency)
	}
	// 3. 3D migrates far less than 2D, cutting movement power.
	if d3.Migrations*2 >= d2.Migrations {
		t.Errorf("3D migrations (%d) not well below 2D (%d)",
			d3.Migrations, d2.Migrations)
	}
	// 4. IPC ordering follows latency.
	if d3.IPC <= d2.IPC {
		t.Errorf("DNUCA-3D IPC (%.3f) not above DNUCA-2D (%.3f)", d3.IPC, d2.IPC)
	}
}

func TestFigure17PillarTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	opt := nim.Options{WarmCycles: 30_000, MeasureCycles: 100_000, Seed: 1}
	r8, err := nim.RunWithPillars("swim", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nim.RunWithPillars("swim", 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer pillars -> more contention -> higher latency (Figure 17).
	if r2.AvgL2HitLatency <= r8.AvgL2HitLatency {
		t.Errorf("2 pillars (%.1f) not above 8 pillars (%.1f)",
			r2.AvgL2HitLatency, r8.AvgL2HitLatency)
	}
}

func TestFigure18LayerTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	opt := nim.Options{WarmCycles: 30_000, MeasureCycles: 100_000, Seed: 1}
	r2, err := nim.RunWithLayers("mgrid", 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := nim.RunWithLayers("mgrid", 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	// More layers -> shorter distances -> lower latency (Figure 18).
	if r4.AvgL2HitLatency >= r2.AvgL2HitLatency {
		t.Errorf("4 layers (%.1f) not below 2 layers (%.1f)",
			r4.AvgL2HitLatency, r2.AvgL2HitLatency)
	}
}

func TestReplicationAblationAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	opt := nim.Options{WarmCycles: 30_000, MeasureCycles: 150_000, Seed: 1}
	plain, vr, err := nim.ReplicationAblation("equake", opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Replications != 0 {
		t.Error("plain scheme replicated")
	}
	if vr.Replications == 0 {
		t.Error("VR scheme never replicated")
	}
	if vr.AvgL2HitLatency > plain.AvgL2HitLatency+1 {
		t.Errorf("VR (%.1f) regressed vs plain (%.1f)", vr.AvgL2HitLatency, plain.AvgL2HitLatency)
	}
}

func TestThermalTable3API(t *testing.T) {
	rows, err := nim.ThermalTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Profile.PeakC < r.Profile.AvgC || r.Profile.AvgC < r.Profile.MinC {
			t.Errorf("%s: inconsistent profile %+v", r.Name, r.Profile)
		}
	}
}

func TestStackedVsOffsetAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	opt := nim.Options{WarmCycles: 20_000, MeasureCycles: 80_000, Seed: 1}
	offset, stacked, err := nim.StackedVsOffset("mgrid", opt)
	if err != nil {
		t.Fatal(err)
	}
	// Stacking CPUs congests shared pillar columns: latency must not improve.
	if stacked.AvgL2HitLatency < offset.AvgL2HitLatency {
		t.Errorf("stacked (%.1f) unexpectedly beat offset (%.1f)",
			stacked.AvgL2HitLatency, offset.AvgL2HitLatency)
	}
}

func TestClusterSkipAblationAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	opt := nim.Options{WarmCycles: 20_000, MeasureCycles: 60_000, Seed: 1}
	withSkip, withoutSkip, err := nim.ClusterSkipAblation("swim", opt)
	if err != nil {
		t.Fatal(err)
	}
	if withSkip.L2Hits == 0 || withoutSkip.L2Hits == 0 {
		t.Error("ablation runs made no progress")
	}
}

func TestMigrationThresholdSweepAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	opt := nim.Options{WarmCycles: 20_000, MeasureCycles: 60_000, Seed: 1}
	rs, err := nim.MigrationThresholdSweep("art", []int{1, 4}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	// A lower threshold can only migrate at least as often.
	if rs[0].Migrations < rs[1].Migrations {
		t.Errorf("threshold 1 migrated %d, threshold 4 migrated %d",
			rs[0].Migrations, rs[1].Migrations)
	}
}
