// Package nim is the public API of the Network-in-Memory simulator: a
// reproduction of "Design and Management of 3D Chip Multiprocessors Using
// Network-in-Memory" (Li et al., ISCA 2006).
//
// The library simulates a chip multiprocessor whose large shared L2 cache
// is distributed over a 3D stack of device layers: each layer carries a
// wormhole-switched mesh network-on-chip connecting cache banks, and
// dynamic-TDMA bus "pillars" provide single-hop vertical communication.
// Four L2 organizations are modeled, matching the paper's evaluation:
//
//	CMPDNUCA    — 2D baseline (Beckmann & Wood), edge CPUs, perfect search
//	CMPDNUCA2D  — the paper's 2D scheme: mid-cluster CPUs, two-step search
//	CMPSNUCA3D  — 3D, static placement, no migration
//	CMPDNUCA3D  — 3D with dynamic cache-line migration
//
// Quick start:
//
//	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
//	bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
//	sim, _ := nim.NewSimulation(cfg, bench, 1)
//	sim.Warm()
//	sim.Start()
//	sim.Run(50_000)  // settle
//	sim.ResetStats()
//	sim.Run(200_000) // measure
//	fmt.Println(sim.Results().AvgL2HitLatency)
//
// The deeper layers are available under internal/ (noc, dtdma, fabric,
// cache, placement, thermal, power, trace, core); this package re-exports
// everything needed to reproduce the paper's tables and figures.
package nim

import (
	"io"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/digest"
	"repro/internal/dtm"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// Scheme selects one of the four evaluated L2 organizations.
type Scheme = config.Scheme

// The four schemes of Section 5.2.
const (
	CMPDNUCA   = config.CMPDNUCA
	CMPDNUCA2D = config.CMPDNUCA2D
	CMPSNUCA3D = config.CMPSNUCA3D
	CMPDNUCA3D = config.CMPDNUCA3D
)

// Schemes lists all four schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{CMPDNUCA, CMPDNUCA2D, CMPSNUCA3D, CMPDNUCA3D}
}

// Config carries every simulation parameter (Table 4 defaults).
type Config = config.Config

// DefaultConfig returns the paper's Table 4 configuration for a scheme.
func DefaultConfig(s Scheme) Config { return config.Default(s) }

// Benchmark is a SPEC OMP workload profile (Table 5).
type Benchmark = trace.Profile

// Benchmarks returns the nine SPEC OMP profiles for a CPU count.
func Benchmarks(ncpu int) []Benchmark { return trace.Profiles(ncpu) }

// BenchmarkByName finds one benchmark profile by name.
func BenchmarkByName(name string, ncpu int) (Benchmark, bool) {
	return trace.ProfileByName(name, ncpu)
}

// Results is the measurement summary of a simulation window.
type Results = core.Results

// LineAddr is a cache-line address (the byte address divided by 64).
type LineAddr = cache.LineAddr

// Stream supplies one core's memory references; implement it to drive the
// simulator from a custom workload.
type Stream = trace.Stream

// FileStream replays a parsed trace file (see ParseTrace).
type FileStream = trace.FileStream

// ParseTrace reads a text reference trace: one "R|W|F <hexaddr> [gap]" per
// line; see trace.ParseTrace for the full format.
func ParseTrace(r io.Reader) (*FileStream, error) { return trace.ParseTrace(r) }

// ThermalProfile is a peak/average/minimum temperature triple.
type ThermalProfile = thermal.Profile

// SweepJob describes one simulation in a batch sweep: a full Config
// (scheme plus any per-job overrides such as L2 size, layer count, or
// pillar count), a benchmark name, the warm/measure windows, and a seed.
// Build common jobs with NewSweepJob and customize Config afterwards.
type SweepJob = runner.Job

// SweepResult pairs a SweepJob with its outcome: the job's input-slice
// Index, its Results on success, or a per-job Err on failure.
type SweepResult = runner.Result

// NewSweepJob builds the common sweep job: one scheme configuration
// running one benchmark under opt's windows and seed.
func NewSweepJob(cfg Config, benchName string, opt Options) SweepJob {
	return jobFor(cfg, benchName, opt)
}

// RunSweep executes independent simulation jobs on a bounded worker pool
// and returns one SweepResult per job in input order. parallel bounds the
// number of concurrent simulations (<= 0 selects runtime.GOMAXPROCS(0);
// 1 runs strictly sequentially). A failed job is captured in its
// SweepResult.Err and never aborts the sweep; SweepError summarizes.
// progress, when non-nil, is called serially after each job finishes, in
// completion order. Every simulation is self-contained and deterministic
// in its seed, so a parallel sweep returns byte-identical Results to a
// sequential one.
func RunSweep(jobs []SweepJob, parallel int, progress func(done, total int, r SweepResult)) []SweepResult {
	p := runner.Pool{Workers: parallel, Progress: progress}
	return p.Run(jobs)
}

// SweepError returns the first failed job's error in input order, or nil
// when every job in the sweep succeeded.
func SweepError(results []SweepResult) error { return runner.FirstError(results) }

// Simulation is one configured machine running one benchmark.
type Simulation struct {
	sys  *core.System
	seed uint64
}

// NewSimulation builds a deterministic simulation running one benchmark on
// every core.
func NewSimulation(cfg Config, bench Benchmark, seed uint64) (*Simulation, error) {
	sys, err := core.NewSystem(cfg, bench, seed)
	if err != nil {
		return nil, err
	}
	return &Simulation{sys: sys, seed: seed}, nil
}

// NewMixedSimulation builds a multiprogrammed machine: core i runs
// benches[i]. Programs get disjoint address spaces; cores given the same
// benchmark share its code and shared-data regions.
func NewMixedSimulation(cfg Config, benches []Benchmark, seed uint64) (*Simulation, error) {
	sys, err := core.NewSystemMixed(cfg, benches, seed)
	if err != nil {
		return nil, err
	}
	return &Simulation{sys: sys, seed: seed}, nil
}

// NewTraceSimulation builds a machine whose cores replay external reference
// streams. Use WarmAddresses (e.g. with FileStream.Footprint) to pre-fill
// the L2 before measuring.
func NewTraceSimulation(cfg Config, streams []Stream, label string, seed uint64) (*Simulation, error) {
	sys, err := core.NewSystemStreams(cfg, streams, label)
	if err != nil {
		return nil, err
	}
	return &Simulation{sys: sys, seed: seed}, nil
}

// WarmAddresses installs the given lines at their home clusters — warm-up
// for trace-driven simulations.
func (s *Simulation) WarmAddresses(addrs []LineAddr) { s.sys.WarmAddresses(addrs) }

// Warm installs the benchmark's post-warm-up steady state into the caches
// (the paper's 500M-cycle warm-up, compressed; see internal/core.Warm).
func (s *Simulation) Warm() { s.sys.Warm(s.seed) }

// SetShards requests spatial domain decomposition of the network phase
// across n shards — one goroutine per contiguous block of device layers,
// joined only by the dTDMA pillar buses — and returns the shard count
// actually in force. A sharded run is bit-identical to a serial run
// (same Results, same trace/sample/thermal output), for every scheme and
// attachment, so sharding is purely a wall-clock knob for a single
// simulation's latency. n is clamped to the layer count; single-layer
// configs, the VerticalNoC ablation, and an attached tracer (which wants
// the global cycle order observable) fall back to the serial path
// automatically. Call Close when done with a sharded simulation to
// release the worker goroutines.
func (s *Simulation) SetShards(n int) int { return s.sys.SetShards(n) }

// Shards returns the shard count currently in force (1 when serial).
func (s *Simulation) Shards() int { return s.sys.Shards() }

// Close releases the shard worker goroutines, if any. Safe on a
// never-sharded simulation; idempotent.
func (s *Simulation) Close() { s.sys.Close() }

// Start begins execution on every core.
func (s *Simulation) Start() { s.sys.Start() }

// Run advances the machine by n cycles.
func (s *Simulation) Run(n uint64) { s.sys.Run(n) }

// ResetStats discards measurements so far, keeping architectural state.
func (s *Simulation) ResetStats() { s.sys.ResetStats() }

// Results reads out the current measurement window.
func (s *Simulation) Results() Results { return s.sys.Results() }

// CheckInvariants verifies internal consistency (the L2 single-copy
// invariant); it is primarily for tests and debugging.
func (s *Simulation) CheckInvariants() error { return s.sys.CheckSingleCopy() }

// WriteHeatmap renders per-layer ASCII router-utilization maps to w.
func (s *Simulation) WriteHeatmap(w io.Writer) { s.sys.WriteHeatmap(w) }

// WriteBusReport summarizes each pillar bus's traffic and utilization.
func (s *Simulation) WriteBusReport(w io.Writer) { s.sys.BusReport(w) }

// --- Observability (internal/obs) --------------------------------------

// TraceEvent is one cycle-stamped structured event: packet lifecycle,
// dTDMA arbitration, cache-line migration, or MSI coherence activity.
type TraceEvent = obs.Event

// TraceSink receives trace events; implement it to stream events to a
// custom destination, or use NewTraceRing for the standard bounded buffer.
type TraceSink = obs.Sink

// TraceRing is a bounded in-memory sink keeping the most recent events.
type TraceRing = obs.RingSink

// NewTraceRing returns a ring sink holding up to capacity events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRingSink(capacity) }

// WriteChromeTrace exports trace events as Chrome trace-event JSON, which
// chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// TraceMeta is export-level metadata embedded in a written Chrome trace
// (currently the capture buffer's drop count, marking partial traces).
type TraceMeta = obs.TraceMeta

// WriteChromeTraceMeta is WriteChromeTrace with trace metadata embedded in
// the output's otherData section.
func WriteChromeTraceMeta(w io.Writer, events []TraceEvent, meta TraceMeta) error {
	return obs.WriteChromeTraceMeta(w, events, meta)
}

// SpanRecorder accumulates per-transaction latency spans; see AttachSpans.
type SpanRecorder = obs.SpanRecorder

// LatencyBreakdown is the aggregate per-component L2 latency decomposition
// of a measurement window, split by hits and misses. It appears in
// Results.Breakdown when a span recorder is attached and prints with
// WriteTable.
type LatencyBreakdown = obs.BreakdownReport

// ComponentStat summarizes one latency component over a transaction class.
type ComponentStat = obs.ComponentStat

// MetricsSampler takes periodic interval-metrics snapshots; read the
// accumulated table with Series().
type MetricsSampler = obs.Sampler

// MetricsSeries is a sampled metrics table with CSV/JSON export.
type MetricsSeries = obs.TimeSeries

// AttachTracer attaches a trace sink to every instrumented layer of the
// machine: packet inject/hop/VC-stall/eject, dTDMA slot-wheel resizing and
// bus grants, migration steps, cache SRAM accesses, and MSI coherence
// transitions all flow into the sink as cycle-stamped TraceEvents. A nil
// sink detaches tracing and restores the zero-overhead path (an unattached
// simulation pays one nil check per would-be event). Tracing composes with
// an attached thermal pipeline: each event tees to both.
func (s *Simulation) AttachTracer(sink TraceSink) {
	s.sys.AttachTracer(sink)
}

// ThermalTracker is the activity-driven power/thermal pipeline; see
// AttachThermal.
type ThermalTracker = obs.ThermalTracker

// ThermalReport is the run-level transient-thermal summary appearing in
// Results.Thermal when a thermal tracker is attached: peak temperature and
// where/when it occurred, time above threshold, per-layer profile, the
// inter-layer gradient, and the Table-1 energy breakdown by component.
type ThermalReport = obs.ThermalReport

// AttachThermal attaches the activity-driven power and transient thermal
// pipeline: probe events are charged with Table 1 energies into a per-cell
// window, and every interval cycles the window's power map drives one
// transient RC step of the 3D thermal grid (whose steady-state limit is
// the Table 3 solver). Attach at the start of the window to track —
// typically right after ResetStats — and before AttachSampler if the
// sampler should carry the thermal columns. Results gains the run-level
// ThermalReport.
func (s *Simulation) AttachThermal(interval uint64) *ThermalTracker {
	return s.sys.AttachThermal(interval)
}

// WriteCounterTrace exports a sampled metrics series as Perfetto counter
// tracks ("ph":"C"), so power, temperature, and rate metrics can be
// scrubbed against an event trace in the same UI.
func WriteCounterTrace(w io.Writer, ts *MetricsSeries) error {
	return obs.WriteCounterTrace(w, ts)
}

// WriteThermalMap renders per-layer ASCII temperature maps of the attached
// thermal tracker's grid, with CPU cells marked. It errors when
// AttachThermal was never called.
func (s *Simulation) WriteThermalMap(w io.Writer) error {
	return s.sys.WriteThermalMap(w)
}

// DTMController is the runtime dynamic-thermal-management policy engine;
// see AttachDTM.
type DTMController = dtm.Controller

// DTMPolicy is a composable bitmask of DTM actuators; parse flag values
// with ParseDTMPolicy.
type DTMPolicy = dtm.Policy

// The DTM actuators (compose with |, or use DTMAll).
const (
	DTMMigrationVeto = dtm.PolicyMigrationVeto
	DTMDrowsy        = dtm.PolicyDrowsy
	DTMDutyCycle     = dtm.PolicyDutyCycle
	DTMReroute       = dtm.PolicyReroute
	DTMAll           = dtm.PolicyAll
)

// ParseDTMPolicy parses a policy specification: "" or "none", "all", or
// a comma-separated subset of veto, drowsy, duty, reroute.
func ParseDTMPolicy(s string) (DTMPolicy, error) { return dtm.ParsePolicy(s) }

// DTMReport is the run-level dynamic-thermal-management summary appearing
// in Results.DTM when a DTM controller is attached: trip engagements,
// per-actuator counts (migration vetoes, drowsy-bank wakeups, duty-cycle
// stalls, pillar diversions), their direct latency cost, and how far the
// managed run still overshot the trip point.
type DTMReport = dtm.Report

// AttachDTM closes the thermal loop: it builds a DTM controller from the
// Config's DTMPolicy/TripTempC/DutyCycle fields, attaches the thermal
// pipeline at the given step interval if none is attached yet, and wires
// the policy actuators into the machine — cache-line migration steps
// toward hot cells are vetoed, banks on hot cells turn drowsy (leakage
// cut, wakeup latency), hot cores duty-cycle their issue slots, and
// cross-layer traffic is biased away from hot pillar columns. Attach in
// place of AttachThermal at the start of the window to manage; Results
// gains both the Thermal and the DTM reports. It errors on an
// unparseable DTMPolicy or DutyCycle. Policy decisions are functions of
// thermal-step-boundary grid state, so managed runs stay deterministic;
// a run with no policy named is bit-identical to an unmanaged run.
func (s *Simulation) AttachDTM(interval uint64) (*DTMController, error) {
	return s.sys.AttachDTM(interval)
}

// AttachSpans attaches a transaction span recorder: every L2 transaction
// issued from now on carries a component ledger tiling its whole lifetime
// — search rounds, per-hop network queueing vs link traversal, dTDMA
// pillar arbitration vs transfer, tag and bank service, DRAM — and
// Results gains the aggregate Breakdown. Attach before the measurement
// window (ResetStats resets the recorder's aggregates along with the other
// statistics). Give the recorder a trace sink (SpanRecorder.SetSink) to
// stream each attributed interval as an EvSpan TraceEvent; WriteChromeTrace
// renders those as per-CPU Perfetto span tracks. Recording is pooled and
// keeps idle-cycle skipping engaged; an unattached simulation pays nothing.
func (s *Simulation) AttachSpans() *SpanRecorder {
	return s.sys.AttachSpans()
}

// AttachSampler registers an interval metrics sampler ticking every
// interval cycles: counter deltas (hits, misses, migration rate, ...), L2
// hit-latency mean and P95 over the interval, mesh router utilization, and
// per-pillar bus occupancy. Attach it at the start of the window you want
// sampled (typically right after ResetStats); see core.System.AttachSampler
// for the column reference.
func (s *Simulation) AttachSampler(interval uint64) *MetricsSampler {
	return s.sys.AttachSampler(interval)
}

// --- Host-side profiling (internal/prof) --------------------------------

// ProfileRecorder is the host-side phase profiler ("flight recorder");
// see AttachProfile. Read it out with Report (full readout, including
// the table renderer behind `nimsim -profile`) or stream the rolling
// throughput windows as a Perfetto host timeline with WriteTimeline.
type ProfileRecorder = prof.Recorder

// ProfileReport is the flight-recorder readout appearing in
// Results.Profile when the profiler is attached: per-phase wall-clock
// share/mean/P95, shard utilization and barrier-wait fraction, the
// rolling cycles/sec series, allocation deltas, and host provenance
// (GOOS/GOARCH, CPU count, Go version).
type ProfileReport = prof.Report

// AttachProfile attaches the host-side phase profiler: every subsequent
// Run is wall-clock-attributed across the simulation loop's phases (CPU
// events, protocol events, network serial/sharded, thermal, sampler,
// engine bookkeeping), with per-shard busy vs barrier-wait telemetry
// when SetShards is in force. Results gains the Profile report.
//
// Profiling is host-side only and provably non-perturbing: an attached
// run's Results (Profile field aside) are bit-identical to a detached
// run's, for every scheme, serial or sharded. Attach before Warm to
// attribute the whole run; idempotent.
func (s *Simulation) AttachProfile() *ProfileRecorder {
	return s.sys.AttachProfile()
}

// --- State digests (internal/digest) ------------------------------------

// DigestRecorder is the incremental state-digest engine; see AttachDigest.
// Read the final digest with Digest(), the full snapshot stream with
// Records().
type DigestRecorder = digest.Recorder

// DigestReport is the digest summary appearing in Results.Digests when a
// recorder is attached: the snapshot interval, the final run-attesting
// 64-bit digest, and the per-subsystem chain values. Its in-memory
// Stream field (not serialized) carries the full snapshot sequence.
type DigestReport = digest.Report

// DigestRecord is one digest snapshot: a cycle plus cumulative per-lane
// and overall digests.
type DigestRecord = digest.Record

// AttachDigest registers a periodic state-digest recorder: every
// interval cycles it folds every stateful subsystem — CPUs and L1s, L2
// tags and the MSI directory, router queues and in-flight packets,
// dTDMA slot state, the event engine, the thermal grid and DTM masks,
// the trace RNGs — into per-subsystem hash chains, chained into one
// run-attesting digest. Two runs whose digests agree were in identical
// simulated state at every snapshot; when they disagree, the
// per-subsystem chains name where state first differed (see Diverge).
//
// Attach right after ResetStats so the stream covers exactly the
// measurement window, and before AttachSampler if the sampler should
// carry the digest columns. Results gains the Digests report. Digesting
// is a pure observation — Results (Digests field aside) are
// bit-identical to an unattached run, serial or sharded — and the
// record path is allocation-free in steady state. Idempotent.
func (s *Simulation) AttachDigest(interval uint64) *DigestRecorder {
	return s.sys.AttachDigest(interval)
}

// DivergeReport locates where two configurations' digest streams first
// disagree; see Diverge.
type DivergeReport = runner.DivergeReport

// Diverge runs two sweep jobs side by side with digest recorders
// attached, binary-searches their snapshot streams for the first
// divergence, and refines it to the exact first divergent cycle and the
// offending subsystem by rerunning just the divergent window with
// per-cycle digesting. b's windows and seed are forced to a's so the
// streams align; everything else may differ. interval is the coarse
// snapshot period (0 selects 1000 cycles).
func Diverge(a, b SweepJob, interval uint64) (*DivergeReport, error) {
	return runner.Diverge(a, b, interval)
}

// --- Serving (internal/serve) -------------------------------------------

// Server is the simulation-as-a-service daemon: an HTTP/JSON job API over
// a bounded worker pool, with live SSE metrics streams, Prometheus
// /metrics, /healthz, and a result cache keyed by the canonical config
// hash (identical submissions are O(1) cache hits; identical in-flight
// submissions coalesce onto one run). See internal/serve for the endpoint
// reference, `nimsim -serve` / cmd/nimsimd for the CLI entry points.
type Server = serve.Server

// ServerOptions configures a Server; the zero value serves on :8080.
type ServerOptions = serve.Options

// ServerJobRequest is the POST /jobs submission body.
type ServerJobRequest = serve.JobRequest

// NewServer builds a daemon and starts its worker pool; serve it with
// Server.ListenAndServe (graceful drain on context cancel) or mount
// Server.Handler yourself.
func NewServer(opts ServerOptions) *Server { return serve.New(opts) }

// CanonicalConfigHash returns the stable content hash identifying a
// machine configuration — the result-cache key: the simulator is
// deterministic, so (config, workload, seed) fully determines Results.
func CanonicalConfigHash(c Config) string { return config.CanonicalHash(c) }
