package nim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	nim "repro"
)

// digestRun executes one short run with the full observability stack the
// digest contract must coexist with — DTM (which subsumes the thermal
// tracker) and the metrics sampler — optionally sharded and optionally
// with the digest recorder attached. 3D schemes use the stacked
// four-layer machine so the serial and sharded variants describe the
// same hardware and their digest streams are comparable.
func digestRun(t testing.TB, scheme nim.Scheme, shards int, attach bool) nim.Results {
	cfg := nim.DefaultConfig(scheme)
	if cfg.Layers > 1 {
		cfg.Layers = 4
		cfg.StackCPUs = true
	}
	cfg.DTMPolicy = "all"
	bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	sim, err := nim.NewSimulation(cfg, bench, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Warm()
	if shards > 1 {
		sim.SetShards(shards)
	}
	sim.Start()
	sim.Run(5_000)
	sim.ResetStats()
	if _, err := sim.AttachDTM(500); err != nil {
		t.Fatal(err)
	}
	// Digest before the sampler, mirroring the runner: the sampler's
	// digest columns read the freshly folded chains.
	if attach {
		sim.AttachDigest(1_000)
	}
	sim.AttachSampler(1_000)
	sim.Run(20_000)
	return sim.Results()
}

// TestDigestShardInvariance is the digest layer's reason to exist: a
// sharded run's digest stream — every snapshot, every lane — is
// byte-identical to the serial run's, for every scheme, with DTM,
// thermal, and the sampler all attached. Any divergence the sharded
// network path ever introduces shows up here as the exact cycle and
// subsystem that first differed.
func TestDigestShardInvariance(t *testing.T) {
	for _, scheme := range nim.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			serial := digestRun(t, scheme, 1, true)
			if serial.Digests == nil || serial.Digests.Records == 0 {
				t.Fatal("serial run produced no digest stream")
			}
			for _, shards := range []int{2, 4} {
				sharded := digestRun(t, scheme, shards, true)
				if sharded.Digests == nil {
					t.Fatalf("shards=%d run produced no digest stream", shards)
				}
				if sharded.Digests.Digest != serial.Digests.Digest {
					t.Errorf("shards=%d final digest %s != serial %s",
						shards, sharded.Digests.Digest, serial.Digests.Digest)
				}
				a, b := serial.Digests.Stream, sharded.Digests.Stream
				if len(a) != len(b) {
					t.Fatalf("shards=%d stream has %d records, serial %d", shards, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("shards=%d stream diverges at record %d (cycle %d):\nserial  %+v\nsharded %+v",
							shards, i, a[i].Cycle, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestDigestDoesNotPerturb is the observer contract: attaching the
// digest recorder changes no architectural result. Results are
// bit-identical with the Digests report stripped — the same bar the
// profiler meets (TestProfileDoesNotPerturb).
func TestDigestDoesNotPerturb(t *testing.T) {
	check := func(t *testing.T, scheme nim.Scheme, shards int) {
		plain := digestRun(t, scheme, shards, false)
		observed := digestRun(t, scheme, shards, true)
		if observed.Digests == nil {
			t.Fatal("attached run returned no Digests")
		}
		observed.Digests = nil
		pj, _ := json.Marshal(plain)
		oj, _ := json.Marshal(observed)
		if !bytes.Equal(pj, oj) {
			t.Fatalf("digest attachment changed results:\nplain    %s\nobserved %s", pj, oj)
		}
	}
	for _, scheme := range nim.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) { check(t, scheme, 1) })
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			check(t, nim.CMPDNUCA3D, shards)
		})
	}
}

// TestDigestRecordPathAllocs pins the record path at zero allocations
// once the stream is reserved: folding every subsystem of a live
// full-stack machine (DTM, thermal, sampler attached) heap-allocates
// nothing per snapshot.
func TestDigestRecordPathAllocs(t *testing.T) {
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	cfg.Layers = 4
	cfg.StackCPUs = true
	cfg.DTMPolicy = "all"
	bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	sim, err := nim.NewSimulation(cfg, bench, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Warm()
	sim.Start()
	sim.Run(2_000)
	sim.ResetStats()
	if _, err := sim.AttachDTM(500); err != nil {
		t.Fatal(err)
	}
	rec := sim.AttachDigest(1)
	sim.Run(2_000) // populate in-flight state for the walker to fold
	const rounds = 200
	rec.Reserve(len(rec.Records()) + rounds + 10)
	cycle := uint64(1 << 32)
	allocs := testing.AllocsPerRun(rounds, func() {
		cycle++
		rec.Tick(cycle)
	})
	if allocs > 0 {
		t.Errorf("record path allocates %.1f times per snapshot, want 0", allocs)
	}
}
