// End-to-end tests of the observability surface: AttachTracer and
// AttachSampler on a real simulation, the Chrome trace export, and the
// WriteHeatmap / WriteBusReport text reports.
package nim_test

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	nim "repro"
)

// observedSim builds, warms, and settles the default 3D machine so the
// observability tests all measure the same steady state.
func observedSim(t testing.TB) *nim.Simulation {
	t.Helper()
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	bench, ok := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
	if !ok {
		t.Fatal("mgrid missing")
	}
	sim, err := nim.NewSimulation(cfg, bench, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim.Warm()
	sim.Start()
	sim.Run(10_000)
	sim.ResetStats()
	return sim
}

func TestAttachTracerEndToEnd(t *testing.T) {
	sim := observedSim(t)
	ring := nim.NewTraceRing(500_000)
	sim.AttachTracer(ring)
	sim.Run(30_000)

	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events traced from a live simulation")
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; raise the test capacity", ring.Dropped())
	}
	cats := map[string]bool{}
	for _, e := range events {
		cats[e.Kind.Category().String()] = true
	}
	for _, want := range []string{"packet", "dtdma", "migration", "coherence"} {
		if !cats[want] {
			t.Errorf("category %q absent from a 30k-cycle mgrid window", want)
		}
	}

	// The export must round-trip through encoding/json and keep every event.
	var buf bytes.Buffer
	if err := nim.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	instants := 0
	for _, te := range parsed.TraceEvents {
		if te.Phase == "i" {
			instants++
		}
	}
	if instants != len(events) {
		t.Fatalf("export has %d instant events, ring had %d", instants, len(events))
	}
}

func TestAttachTracerDetach(t *testing.T) {
	sim := observedSim(t)
	ring := nim.NewTraceRing(100_000)
	sim.AttachTracer(ring)
	sim.Run(2_000)
	n := ring.Len()
	if n == 0 {
		t.Fatal("no events before detach")
	}
	sim.AttachTracer(nil)
	sim.Run(2_000)
	if ring.Len() != n {
		t.Fatalf("ring grew from %d to %d events after detach", n, ring.Len())
	}
}

func TestAttachSamplerEndToEnd(t *testing.T) {
	sim := observedSim(t)
	sampler := sim.AttachSampler(1_000)
	sim.Run(30_000)
	r := sim.Results()

	ts := sampler.Series()
	if len(ts.Header) == 0 || ts.Header[0] != "cycle" {
		t.Fatalf("header = %v, want cycle first", ts.Header)
	}
	for _, want := range []string{"l2_accesses", "migrations", "hit_lat_mean", "hit_lat_p95", "router_util", "bus0_occ"} {
		if !slicesContains(ts.Header, want) {
			t.Errorf("header %v missing column %q", ts.Header, want)
		}
	}
	// 30k measured cycles at a 1k interval: ~29 rows (the first tick primes).
	if len(ts.Rows) < 25 {
		t.Fatalf("%d rows sampled, want ~29", len(ts.Rows))
	}
	var prev float64 = -1
	for i, row := range ts.Rows {
		if len(row) != len(ts.Header) {
			t.Fatalf("row %d has %d fields, header %d", i, len(row), len(ts.Header))
		}
		if row[0] <= prev {
			t.Fatalf("cycles not strictly increasing at row %d: %v after %v", i, row[0], prev)
		}
		prev = row[0]
	}

	// Fractions must be fractions, and the counter deltas must add back up
	// to (at most) the cumulative counters the window reported.
	util := columnIndex(ts.Header, "router_util")
	occ := columnIndex(ts.Header, "bus0_occ")
	acc := columnIndex(ts.Header, "l2_accesses")
	var accSum float64
	for _, row := range ts.Rows {
		if row[util] < 0 || row[util] > 1 {
			t.Fatalf("router_util = %v outside [0,1]", row[util])
		}
		if row[occ] < 0 || row[occ] > 1 {
			t.Fatalf("bus0_occ = %v outside [0,1]", row[occ])
		}
		accSum += row[acc]
	}
	if accSum == 0 {
		t.Fatal("sampled l2_accesses deltas are all zero over a live window")
	}
	if accSum > float64(r.L2Accesses) {
		t.Fatalf("sampled deltas sum to %v, more than the window's %d accesses", accSum, r.L2Accesses)
	}

	// CSV export of the live series must be loadable and cycle-ordered.
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(ts.Rows)+1 {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(ts.Rows))
	}
	last := -1.0
	for _, line := range lines[1:] {
		cyc, err := strconv.ParseFloat(line[:strings.Index(line, ",")], 64)
		if err != nil {
			t.Fatalf("bad CSV cycle field in %q: %v", line, err)
		}
		if cyc <= last {
			t.Fatalf("CSV cycles not increasing: %v after %v", cyc, last)
		}
		last = cyc
	}
}

func TestWriteHeatmapContent(t *testing.T) {
	sim := observedSim(t)
	sim.Run(20_000)
	var buf bytes.Buffer
	sim.WriteHeatmap(&buf)
	out := buf.String()

	if !strings.Contains(out, "router utilization (max ") {
		t.Fatalf("heatmap missing title:\n%s", out)
	}
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	for l := 0; l < cfg.Layers; l++ {
		if !strings.Contains(out, "layer "+strconv.Itoa(l)+":") {
			t.Errorf("heatmap missing layer %d header", l)
		}
	}
	// Every grid row must have the same width, and the maps must mark the
	// CPUs (C) and pillar columns (P).
	var gridWidth, cpus, pillars int
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "layer ") || strings.HasPrefix(line, "router ") {
			continue
		}
		if gridWidth == 0 {
			gridWidth = len(line)
		} else if len(line) != gridWidth {
			t.Fatalf("ragged heatmap row %q (want width %d)", line, gridWidth)
		}
		cpus += strings.Count(line, "C")
		pillars += strings.Count(line, "P")
	}
	if cpus != cfg.NumCPUs {
		t.Errorf("heatmap marks %d CPUs, config has %d", cpus, cfg.NumCPUs)
	}
	if pillars == 0 {
		t.Error("heatmap marks no pillar-only nodes")
	}
}

func TestWriteBusReportContent(t *testing.T) {
	sim := observedSim(t)
	sim.Run(20_000)
	var buf bytes.Buffer
	sim.WriteBusReport(&buf)
	out := buf.String()

	if !strings.Contains(out, "pillar") || !strings.Contains(out, "utilization") {
		t.Fatalf("bus report missing header:\n%s", out)
	}
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	busLines := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "bus ") {
			continue
		}
		busLines++
		// The line ends in the utilization percentage; it must parse and be
		// a sane fraction of the run.
		fields := strings.Fields(line)
		pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[len(fields)-1], "%"), 64)
		if err != nil {
			t.Fatalf("bad utilization field in %q: %v", line, err)
		}
		if pct < 0 || pct > 100 {
			t.Fatalf("utilization %v%% outside [0,100] in %q", pct, line)
		}
	}
	if busLines != cfg.NumPillars {
		t.Errorf("bus report has %d bus rows, config has %d pillars", busLines, cfg.NumPillars)
	}
}

func TestAttachThermalEndToEnd(t *testing.T) {
	sim := observedSim(t)
	tracker := sim.AttachThermal(1_000)
	sampler := sim.AttachSampler(1_000)
	sim.Run(30_000)
	r := sim.Results()

	if r.Thermal == nil {
		t.Fatal("Results.Thermal nil with a tracker attached")
	}
	th := r.Thermal
	if th.Steps < 25 {
		t.Fatalf("tracker integrated %d windows over 30k cycles at interval 1k, want ~29", th.Steps)
	}
	// The grid warm-starts at the static steady state (~47 C peak with
	// background power only); activity can only heat it from there, and no
	// plausible window melts the chip.
	if th.PeakC < 45 || th.PeakC > 250 {
		t.Fatalf("peak %v C implausible", th.PeakC)
	}
	if th.FinalPeakC > th.PeakC {
		t.Fatalf("final peak %v exceeds running peak %v", th.FinalPeakC, th.PeakC)
	}
	if th.Energy.TotalPJ <= 0 || th.AvgPowerW <= 0 {
		t.Fatal("no energy charged over a live mgrid window")
	}
	if th.Energy.NetworkPJ <= 0 || th.Energy.BanksPJ <= 0 || th.Energy.TagsPJ <= 0 || th.Energy.CPUPJ <= 0 {
		t.Fatalf("energy breakdown has empty components: %+v", th.Energy)
	}
	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	if len(th.Layers) != cfg.Layers {
		t.Fatalf("report covers %d layers, chip has %d", len(th.Layers), cfg.Layers)
	}
	if th.PeakLayer < 0 || th.PeakLayer >= cfg.Layers {
		t.Fatalf("peak layer %d out of range", th.PeakLayer)
	}

	// The sampler, attached after the tracker, must carry the thermal
	// columns with live values.
	ts := sampler.Series()
	for _, want := range []string{"power_w", "p_cpu_w", "p_net_w", "t_peak_l0", "t_mean_l1", "t_hot_c", "flit_hops", "bus_flits"} {
		if !slicesContains(ts.Header, want) {
			t.Errorf("sampler header %v missing thermal column %q", ts.Header, want)
		}
	}
	pw := columnIndex(ts.Header, "power_w")
	tp := columnIndex(ts.Header, "t_peak_l0")
	var anyPower bool
	for _, row := range ts.Rows {
		if row[pw] > 0 {
			anyPower = true
		}
		if row[tp] < 40 || row[tp] > 250 {
			t.Fatalf("sampled t_peak_l0 = %v C implausible", row[tp])
		}
	}
	if !anyPower {
		t.Fatal("sampled power_w never positive over a live window")
	}

	// The temperature map renders every layer and marks the CPUs.
	var buf bytes.Buffer
	if err := sim.WriteThermalMap(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for l := 0; l < cfg.Layers; l++ {
		if !strings.Contains(out, "layer "+strconv.Itoa(l)) {
			t.Errorf("thermal map missing layer %d", l)
		}
	}
	if strings.Count(out, "C") < cfg.NumCPUs {
		t.Errorf("thermal map marks %d CPU cells, want >= %d", strings.Count(out, "C"), cfg.NumCPUs)
	}
	_ = tracker
}

// TestThermalMapRequiresTracker pins the error path: rendering without an
// attached pipeline must fail rather than print an empty map.
func TestThermalMapRequiresTracker(t *testing.T) {
	sim := observedSim(t)
	if err := sim.WriteThermalMap(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteThermalMap succeeded with no thermal pipeline attached")
	}
}

// TestThermalDoesNotPerturb is the telemetry contract: attaching the
// power/thermal pipeline observes the machine without changing it, so every
// architectural result is bit-identical to an unobserved run.
func TestThermalDoesNotPerturb(t *testing.T) {
	run := func(attach bool) nim.Results {
		cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
		bench, _ := nim.BenchmarkByName("mgrid", cfg.NumCPUs)
		sim, err := nim.NewSimulation(cfg, bench, 3)
		if err != nil {
			t.Fatal(err)
		}
		sim.Warm()
		sim.Start()
		sim.Run(5_000)
		sim.ResetStats()
		if attach {
			sim.AttachThermal(1_000)
		}
		sim.Run(20_000)
		return sim.Results()
	}
	plain, observed := run(false), run(true)
	observed.Thermal = nil // the report itself is the only allowed difference
	pj, _ := json.Marshal(plain)
	oj, _ := json.Marshal(observed)
	if !bytes.Equal(pj, oj) {
		t.Fatalf("thermal attachment changed results:\nplain    %s\nobserved %s", pj, oj)
	}
}

func slicesContains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func columnIndex(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	return -1
}
