#!/usr/bin/env bash
# Black-box smoke test of the serving daemon: build nimsimd, start it on
# a local port, wait for /healthz, submit a tiny job with ?wait=1 and
# assert it completes, scrape /metrics for the completion counter, then
# resubmit the identical body and assert the result cache answered
# (X-Cache: hit). Exercises the full binary + listener path that the
# in-process httptest suite cannot.
#
# Usage: scripts/smoke.sh [port]   (default 18080)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
BODY='{"scheme":"dnuca3d","benchmark":"mgrid","warm_cycles":1000,"measure_cycles":5000,"sample_interval":500,"digest_interval":500}'

echo "smoke: building nimsimd"
go build -o /tmp/nimsimd-smoke ./cmd/nimsimd

/tmp/nimsimd-smoke -addr "$ADDR" -workers 1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

echo "smoke: waiting for /healthz on $ADDR"
for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" -eq 50 ]; then echo "smoke: daemon never became healthy" >&2; exit 1; fi
  sleep 0.1
done

echo "smoke: submitting tiny job (?wait=1)"
FIRST=$(curl -fsS -X POST "http://$ADDR/jobs?wait=1" -d "$BODY")
echo "$FIRST" | grep -q '"state": *"done"' || {
  echo "smoke: job did not reach done: $FIRST" >&2; exit 1; }
echo "$FIRST" | grep -q '"results": *{' || {
  echo "smoke: done job carried no results: $FIRST" >&2; exit 1; }
echo "$FIRST" | grep -Eq '"digest": *"[0-9a-f]{16}"' || {
  echo "smoke: digested job carried no 16-hex state digest: $FIRST" >&2; exit 1; }

echo "smoke: scraping /metrics"
METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^nimsim_jobs_completed_total 1$' || {
  echo "smoke: expected nimsim_jobs_completed_total 1" >&2
  echo "$METRICS" | grep '^nimsim_' >&2; exit 1; }

echo "smoke: resubmitting identical body, expecting cache hit"
HEADERS=$(curl -fsS -D - -o /tmp/nimsimd-smoke-second.json -X POST "http://$ADDR/jobs" -d "$BODY")
echo "$HEADERS" | grep -qi '^x-cache: hit' || {
  echo "smoke: second submit was not a cache hit:" >&2
  echo "$HEADERS" >&2; exit 1; }

kill "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
trap - EXIT
echo "smoke: ok"
