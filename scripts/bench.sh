#!/usr/bin/env bash
# bench.sh — run the simulator's perf-gate benchmarks and snapshot the
# numbers as BENCH_<n>.json in the repo root (n auto-increments, so each
# snapshot is preserved; commit the file as the evidence for a perf PR).
#
# Captured benchmarks:
#   BenchmarkSimulatorThroughput/* — whole-system cycles/sec: "serial" is
#                                    the historical default machine (the
#                                    headline and the regression gate's
#                                    anchor); "stacked" the 4-layer
#                                    stacked-CPU machine run serially;
#                                    "shards-2"/"shards-4" the same machine
#                                    with the network phase fanned out over
#                                    layer-shard goroutines
#   BenchmarkEventQueue/*          — engine event queue: legacy heap vs wheel
#   BenchmarkDTMOverhead/*         — thermal-management loop: detached vs
#                                    disabled controller vs all actuators
#   BenchmarkServeOverhead/*       — serving tax: direct runner.Run vs a
#                                    daemon POST ?wait=1 round-trip
#
# Usage: scripts/bench.sh                          (2s per benchmark)
#        BENCHTIME=5s scripts/bench.sh
#        scripts/bench.sh --compare BENCH_1.json   (regression gate)
#        scripts/bench.sh --compare                (gate vs latest BENCH_<n>.json)
#
# --compare additionally checks the new snapshot's SimulatorThroughput
# ns/op against the reference snapshot and exits non-zero on a >10%
# regression — the gate that observability and feature PRs must pass
# with their instrumentation disabled.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=""
if [ "${1:-}" = "--compare" ]; then
	if [ -n "${2:-}" ]; then
		compare="$2"
	else
		# No reference given: default to the latest committed snapshot
		# (highest n), so "bench.sh --compare" gates against HEAD's numbers.
		m=1
		while [ -e "BENCH_${m}.json" ]; do
			compare="BENCH_${m}.json"
			m=$((m + 1))
		done
		if [ -z "$compare" ]; then
			echo "bench.sh: no BENCH_<n>.json snapshot to compare against" >&2
			exit 2
		fi
		echo "bench.sh: comparing against latest snapshot $compare"
	fi
	if [ ! -e "$compare" ]; then
		echo "bench.sh: reference snapshot $compare not found" >&2
		exit 2
	fi
fi

pattern='BenchmarkSimulatorThroughput$|BenchmarkEventQueue|BenchmarkDTMOverhead|BenchmarkServeOverhead'
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in . ./internal/sim ./internal/serve; do
	go test -run '^$' -bench "$pattern" -benchmem \
		-benchtime "${BENCHTIME:-2s}" "$pkg"
done | tee "$raw"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done

# go test appends "-<GOMAXPROCS>" to benchmark names unless it is 1;
# strip exactly that suffix, not any trailing "-<digits>" — sub-benchmark
# names like shards-4 must survive (on a 1-CPU host there is no suffix
# at all, and a blind strip would merge shards-2 and shards-4).
procs="${GOMAXPROCS:-$(nproc)}"

# Host provenance: wall-clock numbers are only comparable between runs on
# the same machine shape, so every snapshot records where it came from
# and --compare refuses to gate silently across different hosts.
goos=$(go env GOOS)
goarch=$(go env GOARCH)
gover=$(go version | awk '{print $3}')
ncpu=$(nproc 2>/dev/null || echo 1)

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$procs" \
	-v goos="$goos" -v goarch="$goarch" -v gover="$gover" -v ncpu="$ncpu" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n", date
	printf "  \"host\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"go_version\": \"%s\", \"num_cpu\": %d, \"gomaxprocs\": %d},\n", \
		goos, goarch, gover, ncpu, procs
	printf "  \"benchmarks\": {\n"
	sep = ""
}
/^Benchmark/ {
	name = $1
	sub("-" procs "$", "", name)
	printf "%s    \"%s\": {\"iterations\": %s", sep, name, $2
	# Remaining fields are (value, unit) pairs: ns/op, custom metrics
	# from ReportMetric, then -benchmem B/op and allocs/op.
	for (i = 3; i + 1 <= NF; i += 2)
		printf ", \"%s\": %s", $(i + 1), $i
	printf "}"
	sep = ",\n"
}
END { printf "\n  }\n}\n" }
' "$raw" >"BENCH_${n}.json"

echo "wrote BENCH_${n}.json"

# The snapshots are this script's own output, one benchmark per line, so
# field extraction by exact key is reliable.
nsop() {
	awk -F'[:,]' -v key="\"$2\"" '$0 ~ key {
		for (i = 1; i < NF; i++)
			if ($i ~ /"ns\/op"/) {
				gsub(/[ }]/, "", $(i + 1)); print $(i + 1); exit
			}
	}' "$1"
}

# hostfield FILE KEY prints the value of "KEY" inside the snapshot's
# one-line "host" object (empty for pre-provenance snapshots).
hostfield() {
	awk -v key="\"$2\"" '
	/"host"/ {
		n = split($0, parts, key ": ")
		if (n < 2) exit
		v = parts[2]
		sub(/[,}].*/, "", v)
		gsub(/"/, "", v)
		print v
		exit
	}' "$1"
}

# Serial-vs-sharded throughput on the stacked 4-layer machine, from this
# run's own numbers (informational; GOMAXPROCS bounds what is reachable).
# On a single-CPU host the "speedup" label would be a lie — the shard
# goroutines time-slice one core and the ratio measures barrier overhead
# (nimsim -profile shows where it goes) — so the line says that instead.
stacked=$(nsop "BENCH_${n}.json" "BenchmarkSimulatorThroughput/stacked")
sharded=$(nsop "BENCH_${n}.json" "BenchmarkSimulatorThroughput/shards-4")
if [ -n "$stacked" ] && [ -n "$sharded" ]; then
	if [ "$ncpu" -le 1 ]; then
		awk -v s="$stacked" -v p="$sharded" 'BEGIN {
			printf "shard throughput: stacked %g ns/op -> shards-4 %g ns/op = %.2fx\n", s, p, s / p
			print "  note: 1-CPU host — sharded goroutines time-slice a single core, so this"
			print "  ratio is barrier/coordination overhead, NOT a parallel speedup"
		}'
	else
		awk -v s="$stacked" -v p="$sharded" -v ncpu="$ncpu" 'BEGIN {
			printf "shard speedup: stacked %g ns/op -> shards-4 %g ns/op = %.2fx (on %s CPUs)\n",
				s, p, s / p, ncpu
		}'
	fi
fi

if [ -n "$compare" ]; then
	# Wall-clock comparisons across different host shapes are noise:
	# refuse to pretend otherwise. The gate still runs (the numbers are
	# printed either way), but the warning is loud and unmissable.
	mismatch=""
	for key in goos goarch go_version num_cpu gomaxprocs; do
		refv=$(hostfield "$compare" "$key")
		newv=$(hostfield "BENCH_${n}.json" "$key")
		if [ "$refv" != "$newv" ]; then
			mismatch="${mismatch}  ${key}: reference '${refv:-<absent>}' vs this host '${newv}'
"
		fi
	done
	if [ -n "$mismatch" ]; then
		{
			echo "=================================================================="
			echo "bench.sh: WARNING — host shape differs from reference snapshot"
			echo "  ($compare); ns/op deltas below are NOT comparable:"
			printf '%s' "$mismatch"
			echo "=================================================================="
		} >&2
	fi

	# Gate on the serial entry; snapshots before the sub-benchmark split
	# stored it under the bare parent name.
	ref=$(nsop "$compare" "BenchmarkSimulatorThroughput/serial")
	if [ -z "$ref" ]; then
		ref=$(nsop "$compare" "BenchmarkSimulatorThroughput")
	fi
	new=$(nsop "BENCH_${n}.json" "BenchmarkSimulatorThroughput/serial")
	if [ -z "$ref" ] || [ -z "$new" ]; then
		echo "bench.sh: SimulatorThroughput ns/op missing from snapshot" >&2
		exit 2
	fi
	awk -v new="$new" -v ref="$ref" -v refname="$compare" 'BEGIN {
		pct = (new - ref) / ref * 100
		printf "throughput gate: %g ns/op vs %g ns/op in %s (%+.1f%%)\n",
			new, ref, refname, pct
		if (new > ref * 1.10) {
			print "bench.sh: FAIL — throughput regressed more than 10%"
			exit 1
		}
		print "bench.sh: OK — within the 10% regression budget"
	}'
fi
