#!/usr/bin/env bash
# bench.sh — run the simulator's perf-gate benchmarks and snapshot the
# numbers as BENCH_<n>.json in the repo root (n auto-increments, so each
# snapshot is preserved; commit the file as the evidence for a perf PR).
#
# Captured benchmarks:
#   BenchmarkSimulatorThroughput  — whole-system cycles/sec (the headline)
#   BenchmarkEventQueue/*         — engine event queue: legacy heap vs wheel
#
# Usage: scripts/bench.sh            (2s per benchmark)
#        BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='BenchmarkSimulatorThroughput$|BenchmarkEventQueue'
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in . ./internal/sim; do
	go test -run '^$' -bench "$pattern" -benchmem \
		-benchtime "${BENCHTIME:-2s}" "$pkg"
done | tee "$raw"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": {\n", date
	sep = ""
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	printf "%s    \"%s\": {\"iterations\": %s", sep, name, $2
	# Remaining fields are (value, unit) pairs: ns/op, custom metrics
	# from ReportMetric, then -benchmem B/op and allocs/op.
	for (i = 3; i + 1 <= NF; i += 2)
		printf ", \"%s\": %s", $(i + 1), $i
	printf "}"
	sep = ",\n"
}
END { printf "\n  }\n}\n" }
' "$raw" >"BENCH_${n}.json"

echo "wrote BENCH_${n}.json"
