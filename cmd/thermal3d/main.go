// Command thermal3d runs the 3D thermal model: either the paper's Table 3
// configurations or a custom chip, and optionally renders the per-layer
// temperature map as ASCII heat shades.
//
// Usage:
//
//	thermal3d                       # Table 3 reproduction
//	thermal3d -layers 2 -stack      # custom configuration
//	thermal3d -layers 4 -map        # with per-layer heat maps
package main

import (
	"flag"
	"fmt"
	"os"

	nim "repro"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/thermal"
)

func main() {
	var (
		layers  = flag.Int("layers", 0, "custom run: number of layers (0 = print Table 3)")
		pillars = flag.Int("pillars", 8, "custom run: number of pillars")
		k       = flag.Int("k", 1, "custom run: Algorithm 1 offset distance")
		stack   = flag.Bool("stack", false, "custom run: stack CPUs vertically")
		showMap = flag.Bool("map", false, "custom run: print per-layer heat maps")
	)
	flag.Parse()

	if *layers == 0 {
		printTable3()
		return
	}

	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	if *layers == 1 {
		cfg = nim.DefaultConfig(nim.CMPDNUCA2D)
	} else {
		cfg.Layers = *layers
	}
	cfg.NumPillars = *pillars
	cfg.OffsetK = *k
	cfg.StackCPUs = *stack
	top, err := config.NewTopology(cfg)
	if err != nil {
		fatal(err)
	}
	prm := thermal.DefaultParams()
	grid := thermal.NewGrid(top.Dim, prm)
	for _, c := range top.CPUs {
		grid.AddPower(c, prm.CPUPowerW)
	}
	iters := grid.Solve(20000, 1e-7)
	p := grid.Profile()
	fmt.Printf("chip %dx%dx%d, %d CPUs, %.1f W total (%d solver iterations)\n",
		top.Dim.Width, top.Dim.Height, top.Dim.Layers, len(top.CPUs), grid.TotalPower(), iters)
	fmt.Printf("peak %.2f C   avg %.2f C   min %.2f C\n", p.PeakC, p.AvgC, p.MinC)

	if *showMap {
		printMaps(grid, top)
	}
}

func printTable3() {
	rows, err := nim.ThermalTable3()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-24s %18s %18s %18s\n", "Configuration", "Peak C (paper)", "Avg C (paper)", "Min C (paper)")
	for _, r := range rows {
		fmt.Printf("%-24s %8.2f (%7.2f) %8.2f (%7.2f) %8.2f (%7.2f)\n",
			r.Name, r.Profile.PeakC, r.PaperPeakC, r.Profile.AvgC, r.PaperAvgC, r.Profile.MinC, r.PaperMinC)
	}
}

// shades maps normalized temperature to ASCII density.
var shades = []byte(" .:-=+*#%@")

func printMaps(grid *thermal.Grid, top *config.Topology) {
	p := grid.Profile()
	span := p.PeakC - p.MinC
	if span <= 0 {
		span = 1
	}
	cpuAt := map[geom.Coord]bool{}
	for _, c := range top.CPUs {
		cpuAt[c] = true
	}
	for l := 0; l < top.Dim.Layers; l++ {
		fmt.Printf("\nlayer %d (C = CPU):\n", l)
		for y := 0; y < top.Dim.Height; y++ {
			for x := 0; x < top.Dim.Width; x++ {
				c := geom.Coord{X: x, Y: y, Layer: l}
				if cpuAt[c] {
					fmt.Print("C")
					continue
				}
				t := grid.Temp(c)
				idx := int((t - p.MinC) / span * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				fmt.Print(string(shades[idx]))
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermal3d:", err)
	os.Exit(1)
}
