// Command thermal3d runs the 3D thermal model: either the paper's Table 3
// configurations or a custom chip, and optionally renders the per-layer
// temperature map as ASCII heat shades.
//
// Usage:
//
//	thermal3d                       # Table 3 reproduction
//	thermal3d -map                  # Table 3 with per-layer heat maps
//	thermal3d -layers 2 -stack      # custom configuration
//	thermal3d -layers 4 -map        # custom run with heat maps
package main

import (
	"flag"
	"fmt"
	"os"

	nim "repro"
	"repro/internal/config"
	"repro/internal/thermal"
)

func main() {
	var (
		layers  = flag.Int("layers", 0, "custom run: number of layers (0 = print Table 3)")
		pillars = flag.Int("pillars", 8, "custom run: number of pillars")
		k       = flag.Int("k", 1, "custom run: Algorithm 1 offset distance")
		stack   = flag.Bool("stack", false, "custom run: stack CPUs vertically")
		showMap = flag.Bool("map", false, "print per-layer heat maps")
	)
	flag.Parse()

	if *layers == 0 {
		printTable3(*showMap)
		return
	}

	cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
	if *layers == 1 {
		cfg = nim.DefaultConfig(nim.CMPDNUCA2D)
	} else {
		cfg.Layers = *layers
	}
	cfg.NumPillars = *pillars
	cfg.OffsetK = *k
	cfg.StackCPUs = *stack
	top, err := config.NewTopology(cfg)
	if err != nil {
		fatal(err)
	}
	grid, iters, converged := thermal.SimulateGrid(top.Dim, top.CPUs, thermal.DefaultParams())
	warnIfDiverged("custom configuration", iters, converged)
	p := grid.Profile()
	fmt.Printf("chip %dx%dx%d, %d CPUs, %.1f W total (%d solver iterations)\n",
		top.Dim.Width, top.Dim.Height, top.Dim.Layers, len(top.CPUs), grid.TotalPower(), iters)
	fmt.Printf("peak %.2f C   avg %.2f C   min %.2f C\n", p.PeakC, p.AvgC, p.MinC)

	if *showMap {
		if err := thermal.WriteHeatMap(os.Stdout, grid, top.CPUs); err != nil {
			fatal(err)
		}
	}
}

// printTable3 reproduces the paper's Table 3 by solving each configuration
// directly (rather than through nim.ThermalTable3), so the grids stay
// available for the optional heat-map rendering.
func printTable3(showMap bool) {
	rows, cfgs := thermal.Table3Configs()
	prm := thermal.DefaultParams()
	fmt.Printf("%-24s %18s %18s %18s %8s\n", "Configuration", "Peak C (paper)", "Avg C (paper)", "Min C (paper)", "Iters")
	grids := make([]*thermal.Grid, len(cfgs))
	tops := make([]*config.Topology, len(cfgs))
	for i, cfg := range cfgs {
		top, err := config.NewTopology(cfg)
		if err != nil {
			fatal(err)
		}
		g, iters, converged := thermal.SimulateGrid(top.Dim, top.CPUs, prm)
		warnIfDiverged(rows[i].Name, iters, converged)
		p := g.Profile()
		fmt.Printf("%-24s %8.2f (%7.2f) %8.2f (%7.2f) %8.2f (%7.2f) %8d\n",
			rows[i].Name, p.PeakC, rows[i].PaperPeakC, p.AvgC, rows[i].PaperAvgC, p.MinC, rows[i].PaperMinC, iters)
		grids[i], tops[i] = g, top
	}
	if showMap {
		for i := range grids {
			fmt.Printf("\n== %s ==\n", rows[i].Name)
			if err := thermal.WriteHeatMap(os.Stdout, grids[i], tops[i].CPUs); err != nil {
				fatal(err)
			}
		}
	}
}

// warnIfDiverged reports a solver that hit its iteration cap before
// reaching tolerance; the printed temperatures are then approximate.
func warnIfDiverged(name string, iters int, converged bool) {
	if !converged {
		fmt.Fprintf(os.Stderr, "thermal3d: warning: %s: solver stopped after %d iterations without converging\n", name, iters)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermal3d:", err)
	os.Exit(1)
}
