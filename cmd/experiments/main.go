// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment prints the simulated values next
// to the paper's published numbers where the paper gives them, so the
// reproduction quality is visible at a glance.
//
// Usage:
//
//	experiments -all                 # everything (several minutes)
//	experiments -table 3             # one table (1..5)
//	experiments -figure 13           # one figure (13..18)
//	experiments -bench mgrid,swim    # restrict figure benchmarks
//	experiments -measure 400000      # larger statistics window
//	experiments -all -parallel 8     # fan independent runs over 8 workers
//
// Every simulation is deterministic in its seed and self-contained, so
// -parallel only changes wall-clock time: the printed output is
// byte-identical for any worker count (-parallel 1 runs strictly
// sequentially, the historical behavior).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	nim "repro"
	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/trace"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "repeat Figure 13/15 runs across N seeds and print mean +/- stddev")
		scaling  = flag.Bool("scaling", false, "run the CPU-count scaling study (4/8/16 cores)")
		csvDir   = flag.String("csv", "", "also write each figure's data as CSV into this directory")
		ablate   = flag.Bool("ablations", false, "run the design-choice ablations")
		brkdown  = flag.Bool("breakdown", false, "run the L2 latency decomposition across the four schemes")
		thermRun = flag.Bool("thermal", false, "run the transient thermal study across schemes and CPU placements")
		profRun  = flag.Bool("profile", false, "run the host-side phase-dominance study (wall-clock, so host-dependent; excluded from -all)")
		dtmRun   = flag.Bool("dtm", false, "run the dynamic-thermal-management policy matrix on the hot configurations")
		table    = flag.Int("table", 0, "reproduce one table (1..5)")
		figure   = flag.Int("figure", 0, "reproduce one figure (13..18)")
		all      = flag.Bool("all", false, "reproduce every table and figure")
		benches  = flag.String("bench", "", "comma-separated benchmark subset for figures")
		warm     = flag.Uint64("warm", 50_000, "settle cycles before measurement")
		measure  = flag.Uint64("measure", 250_000, "measurement window in cycles")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = strictly sequential; output is identical either way)")
	)
	flag.Parse()

	opt := nim.Options{WarmCycles: *warm, MeasureCycles: *measure, Seed: *seed, Parallel: *parallel}
	names := benchNames(*benches)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		csvOut = *csvDir
	}

	ran := false
	do := func(n int, sel *int, f func()) {
		if *all || *sel == n {
			f()
			ran = true
		}
	}
	do(1, table, table1)
	do(2, table, table2)
	do(3, table, table3)
	do(4, table, table4)
	do(5, table, table5)
	do(13, figure, func() { figures131415(names, opt) })
	do(16, figure, func() { figure16(names, opt) })
	do(17, figure, func() { figure17(names, opt) })
	do(18, figure, func() { figure18(names, opt) })
	// Figures 13, 14 and 15 come from the same runs.
	if !*all && (*figure == 14 || *figure == 15) {
		figures131415(names, opt)
		ran = true
	}
	if *ablate || *all {
		ablations(opt)
		ran = true
	}
	if *brkdown || *all {
		breakdowns(names, opt)
		ran = true
	}
	if *thermRun || *all {
		thermalStudy(opt)
		ran = true
	}
	if *dtmRun || *all {
		dtmStudy(opt)
		ran = true
	}
	if *seeds > 1 {
		confidence(names, opt, *seeds)
		ran = true
	}
	if *scaling {
		cpuScaling(opt)
		ran = true
	}
	// Deliberately not part of -all: the numbers are wall-clock on this
	// host, so including them would make -all's output machine-dependent.
	if *profRun {
		profileStudy(opt)
		ran = true
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func benchNames(list string) []string {
	if list == "" {
		var names []string
		for _, p := range nim.Benchmarks(8) {
			names = append(names, p.Name)
		}
		return names
	}
	return strings.Split(list, ",")
}

// sweep fans a slice of independent simulation jobs over opt.Parallel
// workers and returns their Results in input order, exiting on the first
// failed job. Because job order is preserved and every simulation is
// seed-deterministic, the caller's printed output does not depend on the
// worker count.
func sweep(jobs []nim.SweepJob, opt nim.Options) []nim.Results {
	rs := nim.RunSweep(jobs, opt.Parallel, nil)
	if err := nim.SweepError(rs); err != nil {
		fatal(err)
	}
	out := make([]nim.Results, len(rs))
	for i, r := range rs {
		out[i] = r.Results
	}
	return out
}

// csvOut, when non-empty, receives one CSV file per figure.
var csvOut string

// writeCSV writes rows (first row = header) to name.csv under csvOut.
func writeCSV(name string, rows [][]string) {
	if csvOut == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvOut, name+".csv"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fatal(err)
	}
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func u(v uint64) string   { return strconv.FormatUint(v, 10) }

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table1() {
	header("Table 1: Area and power overhead of dTDMA bus (90 nm)")
	fmt.Printf("%-34s %12s %14s\n", "Component", "Power", "Area")
	for _, c := range power.Table1() {
		fmt.Printf("%-34s %9.5f mW %11.8f mm2\n", c.Name, c.PowerMW, c.AreaMM2)
	}
}

func table2() {
	header("Table 2: Inter-wafer wiring area vs via pitch")
	fmt.Printf("Bus: %d bits data + %d control wires (4 layers)\n",
		power.BusDataBits, power.PillarWires(4)-power.BusDataBits)
	fmt.Printf("%-12s %16s %22s\n", "Via pitch", "Pillar area", "Overhead vs router")
	for _, pitch := range power.Table2Pitches {
		fmt.Printf("%9.1f um %12.0f um2 %21.3f%%\n",
			pitch, power.PillarAreaUM2(pitch), 100*power.PillarAreaOverheadVsRouter(pitch))
	}
}

func table3() {
	header("Table 3: Temperature profile of CPU placement configurations")
	rows, err := nim.ThermalTable3()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-24s %18s %18s %18s\n", "Configuration", "Peak C (paper)", "Avg C (paper)", "Min C (paper)")
	csvRows := [][]string{{"configuration", "peak_c", "paper_peak_c", "avg_c", "paper_avg_c", "min_c", "paper_min_c"}}
	for _, r := range rows {
		fmt.Printf("%-24s %8.2f (%7.2f) %8.2f (%7.2f) %8.2f (%7.2f)\n",
			r.Name, r.Profile.PeakC, r.PaperPeakC, r.Profile.AvgC, r.PaperAvgC, r.Profile.MinC, r.PaperMinC)
		csvRows = append(csvRows, []string{r.Name,
			f1(r.Profile.PeakC), f1(r.PaperPeakC),
			f1(r.Profile.AvgC), f1(r.PaperAvgC),
			f1(r.Profile.MinC), f1(r.PaperMinC)})
	}
	writeCSV("table3_thermal", csvRows)
}

func table4() {
	header("Table 4: Default system configuration")
	c := nim.DefaultConfig(nim.CMPDNUCA3D)
	top, err := config.NewTopology(c)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Processors:      %d, issue width 1, in-order\n", c.NumCPUs)
	fmt.Printf("L1 (split I/D):  %d KB, %d-way, 64 B lines, %d-cycle, write-through\n",
		c.L1Sets*c.L1Ways*64/1024, c.L1Ways, c.L1HitCycles)
	fmt.Printf("L2 (unified):    %d MB (%dx%d KB), %d-way, %d B lines, %d-cycle bank access\n",
		c.L2.TotalBytes()>>20, c.L2.TotalBanks(), c.L2.BankBytes()>>10,
		c.L2.Ways, c.L2.LineBytes, c.L2BankCycles)
	fmt.Printf("Tag array:       per cluster, %d-cycle access\n", c.TagCycles)
	fmt.Printf("Memory:          %d-cycle latency\n", c.MemoryCycles)
	fmt.Printf("Layers: %d  Pillars: %d  Mesh: %dx%d per layer\n",
		c.Layers, c.NumPillars, top.Dim.Width, top.Dim.Height)
	fmt.Printf("Routing: dimension-order, wormhole, 128-bit flits, 1-cycle routers\n")
}

func table5() {
	header("Table 5: Benchmarks")
	fmt.Printf("%-10s %22s %22s %14s\n", "Benchmark", "Fastforward (Mcyc)", "L2 transactions", "L1 miss rate")
	for _, p := range trace.Profiles(8) {
		fmt.Printf("%-10s %22d %22.0f %13.2f%%\n",
			p.Name, p.FastForwardMCycles, p.L2TransactionsM*1e6, 100*p.L1MissRate)
	}
}

func figures131415(names []string, opt nim.Options) {
	header("Figures 13/14/15: L2 hit latency, migrations, IPC under the four schemes")
	// One job per benchmark x scheme; the sweep runner fans them out and
	// hands results back in input order, so the tables print identically
	// at any -parallel width.
	schemes := nim.Schemes()
	var jobs []nim.SweepJob
	for _, b := range names {
		for _, s := range schemes {
			jobs = append(jobs, nim.NewSweepJob(nim.DefaultConfig(s), b, opt))
		}
	}
	res := sweep(jobs, opt)
	var rows []schemeRow
	for i, b := range names {
		m := make(map[nim.Scheme]nim.Results, len(schemes))
		for j, s := range schemes {
			m[s] = res[i*len(schemes)+j]
		}
		rows = append(rows, schemeRow{b, m})
	}

	fmt.Println("\nFigure 13: average L2 hit latency (cycles)")
	printSchemeTable(rows, func(r nim.Results) string { return fmt.Sprintf("%8.1f", r.AvgL2HitLatency) })
	csvRows := [][]string{{"benchmark", "cmp-dnuca", "cmp-dnuca-2d", "cmp-snuca-3d", "cmp-dnuca-3d"}}
	csvIPC := [][]string{{"benchmark", "cmp-dnuca", "cmp-dnuca-2d", "cmp-snuca-3d", "cmp-dnuca-3d"}}
	csvMig := [][]string{{"benchmark", "cmp-dnuca", "cmp-dnuca-2d", "cmp-dnuca-3d"}}
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.bench,
			f1(r.results[nim.CMPDNUCA].AvgL2HitLatency), f1(r.results[nim.CMPDNUCA2D].AvgL2HitLatency),
			f1(r.results[nim.CMPSNUCA3D].AvgL2HitLatency), f1(r.results[nim.CMPDNUCA3D].AvgL2HitLatency)})
		csvIPC = append(csvIPC, []string{r.bench,
			f1(r.results[nim.CMPDNUCA].IPC), f1(r.results[nim.CMPDNUCA2D].IPC),
			f1(r.results[nim.CMPSNUCA3D].IPC), f1(r.results[nim.CMPDNUCA3D].IPC)})
		csvMig = append(csvMig, []string{r.bench,
			u(r.results[nim.CMPDNUCA].Migrations), u(r.results[nim.CMPDNUCA2D].Migrations),
			u(r.results[nim.CMPDNUCA3D].Migrations)})
	}
	writeCSV("figure13_l2_hit_latency", csvRows)
	writeCSV("figure14_migrations", csvMig)
	writeCSV("figure15_ipc", csvIPC)

	fmt.Println("\nFigure 14: block migrations, normalized to CMP-DNUCA-2D")
	printSchemeTableSel(rows, []nim.Scheme{nim.CMPDNUCA, nim.CMPDNUCA3D}, func(res map[nim.Scheme]nim.Results, s nim.Scheme) string {
		base := float64(res[nim.CMPDNUCA2D].Migrations)
		if base == 0 {
			return fmt.Sprintf("%8s", "n/a")
		}
		return fmt.Sprintf("%8.2f", float64(res[s].Migrations)/base)
	})

	fmt.Println("\nFigure 15: IPC")
	printSchemeTable(rows, func(r nim.Results) string { return fmt.Sprintf("%8.3f", r.IPC) })

	// The abstract's headline numbers for this run.
	var d2, s3, d3 float64
	var n int
	for _, r := range rows {
		d2 += r.results[nim.CMPDNUCA2D].AvgL2HitLatency
		s3 += r.results[nim.CMPSNUCA3D].AvgL2HitLatency
		d3 += r.results[nim.CMPDNUCA3D].AvgL2HitLatency
		n++
	}
	fmt.Printf("\nAverages over %d benchmarks: DNUCA-2D %.1f, SNUCA-3D %.1f (-%.1f), DNUCA-3D %.1f (-%.1f more)\n",
		n, d2/float64(n), s3/float64(n), (d2-s3)/float64(n), d3/float64(n), (s3-d3)/float64(n))
	fmt.Printf("(paper: SNUCA-3D ~10 cycles below DNUCA-2D; DNUCA-3D ~7 below SNUCA-3D)\n")
}

type schemeRow struct {
	bench   string
	results map[nim.Scheme]nim.Results
}

func printSchemeTable(rows []schemeRow, cell func(nim.Results) string) {
	fmt.Printf("%-10s", "")
	for _, s := range nim.Schemes() {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.bench)
		for _, s := range nim.Schemes() {
			fmt.Printf(" %14s", cell(r.results[s]))
		}
		fmt.Println()
	}
}

func printSchemeTableSel(rows []schemeRow, schemes []nim.Scheme, cell func(map[nim.Scheme]nim.Results, nim.Scheme) string) {
	fmt.Printf("%-10s", "")
	for _, s := range schemes {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s", r.bench)
		for _, s := range schemes {
			fmt.Printf(" %14s", cell(r.results, s))
		}
		fmt.Println()
	}
}

// figure16Benches are the paper's four representative benchmarks: art and
// galgel (low L1 miss rates), mgrid and swim (high).
var figure16Benches = []string{"art", "galgel", "mgrid", "swim"}

func figure16(names []string, opt nim.Options) {
	header("Figure 16: L2 hit latency vs cache size (16/32/64 MB)")
	use := intersect(names, figure16Benches)
	sizes := []int{16, 32, 64}
	var jobs []nim.SweepJob
	for _, b := range use {
		for _, mb := range sizes {
			for _, s := range []nim.Scheme{nim.CMPDNUCA2D, nim.CMPDNUCA3D} {
				cfg, err := nim.DefaultConfig(s).WithL2Size(mb)
				if err != nil {
					fatal(err)
				}
				jobs = append(jobs, nim.NewSweepJob(cfg, b, opt))
			}
		}
	}
	res := sweep(jobs, opt)
	fmt.Printf("%-10s %6s %14s %14s\n", "Benchmark", "Size", "CMP-DNUCA-2D", "CMP-DNUCA-3D")
	csvRows := [][]string{{"benchmark", "mb", "cmp-dnuca-2d", "cmp-dnuca-3d"}}
	for i, b := range use {
		for j, mb := range sizes {
			r2 := res[(i*len(sizes)+j)*2]
			r3 := res[(i*len(sizes)+j)*2+1]
			fmt.Printf("%-10s %4dMB %14.1f %14.1f\n", b, mb, r2.AvgL2HitLatency, r3.AvgL2HitLatency)
			csvRows = append(csvRows, []string{b, strconv.Itoa(mb), f1(r2.AvgL2HitLatency), f1(r3.AvgL2HitLatency)})
		}
	}
	writeCSV("figure16_cache_size", csvRows)
	fmt.Println("(paper: latency grows ~7 cycles per doubling in 2D vs ~5 in 3D)")
}

func figure17(names []string, opt nim.Options) {
	header("Figure 17: impact of the number of pillars (CMP-DNUCA-3D)")
	use := intersect(names, figure16Benches)
	pillars := []int{8, 4, 2}
	var jobs []nim.SweepJob
	for _, b := range use {
		for _, p := range pillars {
			cfg := nim.DefaultConfig(nim.CMPDNUCA3D)
			cfg.NumPillars = p
			jobs = append(jobs, nim.NewSweepJob(cfg, b, opt))
		}
	}
	res := sweep(jobs, opt)
	fmt.Printf("%-10s %10s %10s %10s\n", "Benchmark", "8 pillars", "4 pillars", "2 pillars")
	csvRows := [][]string{{"benchmark", "pillars8", "pillars4", "pillars2"}}
	for i, b := range use {
		fmt.Printf("%-10s", b)
		row := []string{b}
		for j := range pillars {
			r := res[i*len(pillars)+j]
			fmt.Printf(" %9.1f", r.AvgL2HitLatency)
			row = append(row, f1(r.AvgL2HitLatency))
		}
		fmt.Println()
		csvRows = append(csvRows, row)
	}
	writeCSV("figure17_pillars", csvRows)
	fmt.Println("(paper: moving from 8 to 2 pillars adds 1..7 cycles)")
}

func figure18(names []string, opt nim.Options) {
	header("Figure 18: impact of the number of layers (CMP-SNUCA-3D)")
	use := intersect(names, figure16Benches)
	layers := []int{2, 4}
	var jobs []nim.SweepJob
	for _, b := range use {
		for _, l := range layers {
			cfg := nim.DefaultConfig(nim.CMPSNUCA3D)
			cfg.Layers = l
			jobs = append(jobs, nim.NewSweepJob(cfg, b, opt))
		}
	}
	res := sweep(jobs, opt)
	fmt.Printf("%-10s %10s %10s\n", "Benchmark", "2 layers", "4 layers")
	csvRows := [][]string{{"benchmark", "layers2", "layers4"}}
	for i, b := range use {
		fmt.Printf("%-10s", b)
		row := []string{b}
		for j := range layers {
			r := res[i*len(layers)+j]
			fmt.Printf(" %9.1f", r.AvgL2HitLatency)
			row = append(row, f1(r.AvgL2HitLatency))
		}
		fmt.Println()
		csvRows = append(csvRows, row)
	}
	writeCSV("figure18_layers", csvRows)
	fmt.Println("(paper: 4 layers reduce L2 latency by 3..8 cycles over 2)")
}

// confidence repeats the scheme comparison across seeds and reports the
// spread, quantifying how much of each figure is signal versus run noise.
func confidence(names []string, opt nim.Options, seeds int) {
	header(fmt.Sprintf("Confidence: Figure 13 across %d seeds (mean +/- stddev)", seeds))
	fmt.Printf("%-10s", "")
	for _, s := range nim.Schemes() {
		fmt.Printf(" %18s", s)
	}
	fmt.Println()
	for _, b := range names {
		fmt.Printf("%-10s", b)
		for _, s := range nim.Schemes() {
			rep, err := nim.RunSchemeRepeated(s, b, opt, seeds)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %11.1f+-%-5.2f", rep.Latency.Mean, rep.Latency.StdDev)
		}
		fmt.Println()
	}
}

// cpuScaling sweeps the core count with one pillar per core — the scaling
// direction the paper's conclusion points toward.
func cpuScaling(opt nim.Options) {
	header("Scaling: CPU count (one pillar per core, CMP-DNUCA-3D vs CMP-SNUCA-3D)")
	fmt.Printf("%-8s %14s %14s\n", "cores", "CMP-SNUCA-3D", "CMP-DNUCA-3D")
	counts := []int{4, 8, 16}
	sn, err := nim.CPUCountSweep(nim.CMPSNUCA3D, "swim", counts, opt)
	if err != nil {
		fatal(err)
	}
	dn, err := nim.CPUCountSweep(nim.CMPDNUCA3D, "swim", counts, opt)
	if err != nil {
		fatal(err)
	}
	for i, n := range counts {
		fmt.Printf("%-8d %11.1f cy %11.1f cy\n", n, sn[i].AvgL2HitLatency, dn[i].AvgL2HitLatency)
	}
}

// ablations runs the design-choice studies beyond the paper's figures.
func ablations(opt nim.Options) {
	header("Ablations: the design choices behind the architecture")

	bus, router, err := nim.VerticalAblation("mgrid", 4, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("vertical interconnect (4 layers, SNUCA):  dTDMA bus %.1f cy,  7-port routers %.1f cy\n",
		bus.AvgL2HitLatency, router.AvgL2HitLatency)

	one, four, err := nim.RouterPipelineAblation("swim", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("router pipeline (DNUCA-3D):               single-stage %.1f cy,  four-stage %.1f cy\n",
		one.AvgL2HitLatency, four.AvgL2HitLatency)

	twoStep, bcast, err := nim.SearchPolicyAblation("art", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("search policy (DNUCA-3D):                 two-step %.1f cy / %d probes,  broadcast %.1f cy / %d probes\n",
		twoStep.AvgL2HitLatency, twoStep.ProbesSent, bcast.AvgL2HitLatency, bcast.ProbesSent)

	plain, vr, err := nim.ReplicationAblation("equake", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("victim replication (SNUCA-3D):            plain %.1f cy,  replicated %.1f cy (%d replicas, %d hits)\n",
		plain.AvgL2HitLatency, vr.AvgL2HitLatency, vr.Replications, vr.ReplicaHits)

	ths := []int{1, 2, 4, 8}
	rs, err := nim.MigrationThresholdSweep("swim", ths, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("migration threshold (DNUCA-3D, swim):    ")
	for i, th := range ths {
		fmt.Printf("  t=%d: %.1f cy/%d mig", th, rs[i].AvgL2HitLatency, rs[i].Migrations)
	}
	fmt.Println()

	offs, stack, err := nim.StackedVsOffset("mgrid", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("CPU stacking (DNUCA-3D, network only):    offset %.1f cy,  stacked %.1f cy\n",
		offs.AvgL2HitLatency, stack.AvgL2HitLatency)

	idealTag, singleTag, err := nim.TagPortAblation("mgrid", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tag-array ports (SNUCA-3D):               unlimited %.1f cy,  single-ported %.1f cy\n",
		idealTag.AvgL2HitLatency, singleTag.AvgL2HitLatency)

	skipOn, skipOff, err := nim.ClusterSkipAblation("swim", opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("CPU-cluster skip in migration:            on %.1f cy,  off %.1f cy\n",
		skipOn.AvgL2HitLatency, skipOff.AvgL2HitLatency)
}

// breakdowns decomposes each scheme's average L2 latency into the span
// components (search rounds, network queue vs link, pillar-bus wait vs
// transfer, tag, bank, DRAM), making visible which component each scheme
// shrinks — the mechanism behind Figure 13 and the Section 6 discussion.
func breakdowns(names []string, opt nim.Options) {
	bench := names[0]
	for _, n := range names {
		if n == "mgrid" {
			bench = n
			break
		}
	}
	header(fmt.Sprintf("Latency decomposition: where each scheme spends L2 cycles (%s)", bench))
	schemes := nim.Schemes()
	var jobs []nim.SweepJob
	for _, s := range schemes {
		j := nim.NewSweepJob(nim.DefaultConfig(s), bench, opt)
		j.RecordSpans = true
		jobs = append(jobs, j)
	}
	res := sweep(jobs, opt)

	class := func(title, csvName string, pick func(b *nim.LatencyBreakdown) ([]nim.ComponentStat, float64)) {
		fmt.Printf("\n%s (mean cycles, share of total)\n", title)
		fmt.Printf("%-14s", "component")
		for _, s := range schemes {
			fmt.Printf(" %14s", s)
		}
		fmt.Println()
		comps, _ := pick(res[0].Breakdown)
		csvRows := [][]string{{"component", "cmp-dnuca", "cmp-dnuca-2d", "cmp-snuca-3d", "cmp-dnuca-3d"}}
		for c := range comps {
			if comps[c].Name == "l1" {
				continue // pre-issue, identical everywhere, not in the total
			}
			any := false
			for _, r := range res {
				cs, _ := pick(r.Breakdown)
				any = any || cs[c].Mean != 0
			}
			if !any {
				continue
			}
			fmt.Printf("%-14s", comps[c].Name)
			row := []string{comps[c].Name}
			for _, r := range res {
				cs, _ := pick(r.Breakdown)
				fmt.Printf(" %9.1f %3.0f%%", cs[c].Mean, 100*cs[c].Share)
				row = append(row, f1(cs[c].Mean))
			}
			fmt.Println()
			csvRows = append(csvRows, row)
		}
		fmt.Printf("%-14s", "total")
		totals := []string{"total"}
		for _, r := range res {
			_, total := pick(r.Breakdown)
			fmt.Printf(" %9.1f     ", total)
			totals = append(totals, f1(total))
		}
		fmt.Println()
		writeCSV(csvName, append(csvRows, totals))
	}
	class("L2 hits", "breakdown_hits", func(b *nim.LatencyBreakdown) ([]nim.ComponentStat, float64) {
		return b.Hits.Components, b.Hits.MeanTotal
	})
	class("L2 misses", "breakdown_misses", func(b *nim.LatencyBreakdown) ([]nim.ComponentStat, float64) {
		return b.Misses.Components, b.Misses.MeanTotal
	})
	fmt.Println("(component sums equal the measured end-to-end means; the 3D schemes' savings\n concentrate in the request/reply link components, per the paper's Section 6)")
}

// thermalStudy runs the transient thermal pipeline across the four schemes
// plus a vertically-stacked DNUCA-3D variant, all on mgrid (the highest-
// traffic benchmark), and tabulates how the placements diverge dynamically:
// the stacked variant piles CPU heat into vertical columns and runs away
// from the offset placement even though both dissipate the same energy —
// the transient counterpart of Table 3's steady-state gap.
func thermalStudy(opt nim.Options) {
	header("Thermal: transient peak temperature under activity-driven power (mgrid)")
	type variant struct {
		name string
		cfg  nim.Config
	}
	stacked := nim.DefaultConfig(nim.CMPDNUCA3D)
	stacked.StackCPUs = true
	variants := []variant{
		{"cmp-dnuca", nim.DefaultConfig(nim.CMPDNUCA)},
		{"cmp-dnuca-2d", nim.DefaultConfig(nim.CMPDNUCA2D)},
		{"cmp-snuca-3d", nim.DefaultConfig(nim.CMPSNUCA3D)},
		{"cmp-dnuca-3d", nim.DefaultConfig(nim.CMPDNUCA3D)},
		{"dnuca-3d-stacked", stacked},
	}
	jobs := make([]nim.SweepJob, len(variants))
	for i, v := range variants {
		j := nim.NewSweepJob(v.cfg, "mgrid", opt)
		j.ThermalInterval = 1000
		jobs[i] = j
	}
	res := sweep(jobs, opt)

	fmt.Printf("%-18s %8s %10s %9s %9s %8s %8s\n",
		"", "peak C", "@cycle", "final C", "grad C", ">85C %", "dyn W")
	csvRows := [][]string{{"variant", "peak_c", "peak_cycle", "final_peak_c", "final_mean_c", "gradient_c", "pct_above_85c", "avg_dyn_power_w"}}
	for i, v := range variants {
		t := res[i].Thermal
		if t == nil {
			fmt.Printf("%-18s %8s\n", v.name, "n/a")
			continue
		}
		pctAbove := 0.0
		if t.Cycles > 0 {
			pctAbove = 100 * float64(t.CyclesAboveThreshold) / float64(t.Cycles)
		}
		fmt.Printf("%-18s %8.2f %10d %9.2f %9.2f %8.1f %8.2f\n",
			v.name, t.PeakC, t.PeakCycle, t.FinalPeakC, t.GradientC, pctAbove, t.AvgPowerW)
		csvRows = append(csvRows, []string{v.name, f1(t.PeakC), u(t.PeakCycle),
			f1(t.FinalPeakC), f1(t.FinalMeanC), f1(t.GradientC), f1(pctAbove), f1(t.AvgPowerW)})
	}
	writeCSV("thermal_transient", csvRows)
	fmt.Println("(same workload, same charged energy: the stacked placement's peak runs away\n from the offset placement's — Table 3's steady-state gap, reproduced dynamically)")
}

// dtmStudy runs the DTM policy matrix on the two configurations the
// transient study shows running hottest — CMP-DNUCA-3D and its vertically
// stacked variant, both on mgrid — and tabulates what each actuator buys
// and costs: peak temperature (and its delta against the unmanaged run),
// time above 85 C, and the performance price in average L2 hit latency and
// IPC, next to the per-actuator engagement counts. Duty-cycling is the
// policy that moves peak temperature (it sheds the cores' 8 W budgets, the
// dominant heat source); veto, drowsy, and reroute act on the ~0.06 W/cell
// background and the traffic pattern, so their thermal effect is small —
// they are documented as latency/energy levers, not peak-temperature ones.
func dtmStudy(opt nim.Options) {
	header("DTM: policy matrix on the hot configurations (mgrid, trip 85 C)")
	type variant struct {
		name string
		cfg  nim.Config
	}
	stacked := nim.DefaultConfig(nim.CMPDNUCA3D)
	stacked.StackCPUs = true
	variants := []variant{
		{"cmp-dnuca-3d", nim.DefaultConfig(nim.CMPDNUCA3D)},
		{"dnuca-3d-stacked", stacked},
	}
	policies := []string{"off", "veto", "drowsy", "duty", "reroute", "all"}

	var jobs []nim.SweepJob
	for _, v := range variants {
		for _, pol := range policies {
			cfg := v.cfg
			if pol != "off" {
				cfg.DTMPolicy = pol
			}
			j := nim.NewSweepJob(cfg, "mgrid", opt)
			j.ThermalInterval = 1000
			jobs = append(jobs, j)
		}
	}
	res := sweep(jobs, opt)

	fmt.Printf("%-18s %-8s %8s %8s %8s %9s %7s %8s %8s %8s %8s\n",
		"", "policy", "peak C", "dPeak", ">85C %", "hit lat", "IPC", "vetoes", "wakeups", "stalls", "diverts")
	csvRows := [][]string{{"variant", "policy", "peak_c", "delta_peak_c", "pct_above_85c",
		"avg_hit_lat", "ipc", "migration_vetoes", "bank_wakeups", "throttle_stalls", "pillar_diversions"}}
	for vi, v := range variants {
		basePeak := 0.0
		for pi, pol := range policies {
			r := res[vi*len(policies)+pi]
			t := r.Thermal
			if t == nil {
				fmt.Printf("%-18s %-8s %8s\n", v.name, pol, "n/a")
				continue
			}
			if pol == "off" {
				basePeak = t.PeakC
			}
			pctAbove := 0.0
			if t.Cycles > 0 {
				pctAbove = 100 * float64(t.CyclesAboveThreshold) / float64(t.Cycles)
			}
			var vetoes, wakeups, stalls, diverts uint64
			if d := r.DTM; d != nil {
				vetoes, wakeups, stalls, diverts = d.MigrationVetoes, d.BankWakeups, d.ThrottleStalls, d.PillarDiversions
			}
			name := ""
			if pi == 0 {
				name = v.name
			}
			fmt.Printf("%-18s %-8s %8.2f %8.2f %8.1f %9.1f %7.3f %8d %8d %8d %8d\n",
				name, pol, t.PeakC, t.PeakC-basePeak, pctAbove,
				r.AvgL2HitLatency, r.IPC, vetoes, wakeups, stalls, diverts)
			csvRows = append(csvRows, []string{v.name, pol, f1(t.PeakC), f1(t.PeakC - basePeak),
				f1(pctAbove), f1(r.AvgL2HitLatency), f1(r.IPC), u(vetoes), u(wakeups), u(stalls), u(diverts)})
		}
	}
	writeCSV("dtm_matrix", csvRows)
	fmt.Println("(duty-cycling sheds the cores' 8 W budgets and is the policy that cuts the\n peak; veto/drowsy/reroute buy latency headroom and leakage, not degrees)")
}

// profileStudy answers the question PR 8's benchmarks left open: is the
// network phase (the part sharding parallelizes) actually where the host's
// wall-clock goes, and how much of a sharded round is barrier wait? It runs
// mgrid on CMP-DNUCA-3D — offset and CPU-stacked placements, serial and
// sharded — with the host profiler attached and tabulates per-phase shares
// of loop time plus the shard barrier-wait fraction. The numbers are
// wall-clock on this host; the simulated Results stay bit-identical across
// all four rows (the profiler observes the simulator, not the chip).
func profileStudy(opt nim.Options) {
	header("Host profile: phase dominance and shard barrier wait (mgrid, CMP-DNUCA-3D)")
	// The stacked four-layer machine is the config the -shards flag is
	// aimed at (and the one PR 8's benchmarks measured).
	stacked := nim.DefaultConfig(nim.CMPDNUCA3D)
	stacked.Layers = 4
	stacked.StackCPUs = true
	modes := []struct {
		name   string
		cfg    nim.Config
		shards int
	}{
		{"offset serial", nim.DefaultConfig(nim.CMPDNUCA3D), 1},
		{"stacked serial", stacked, 1},
		{"stacked shards-2", stacked, 2},
		{"stacked shards-4", stacked, 4},
	}
	fmt.Printf("%-18s %7s %8s %6s %7s %6s %7s %6s %9s\n",
		"", "shards", "Mcyc/s", "cpu%", "proto%", "net%", "engine%", "rest%", "barrier%")
	csvRows := [][]string{{"mode", "shards", "mcycles_per_sec", "cpu_share", "protocol_share",
		"net_share", "engine_share", "rest_share", "barrier_wait_frac"}}
	for _, m := range modes {
		bench, ok := nim.BenchmarkByName("mgrid", m.cfg.NumCPUs)
		if !ok {
			fatal(fmt.Errorf("benchmark mgrid not found"))
		}
		s, err := nim.NewSimulation(m.cfg, bench, opt.Seed)
		if err != nil {
			fatal(err)
		}
		s.Warm()
		got := s.SetShards(m.shards)
		if got != m.shards {
			fatal(fmt.Errorf("%s: wanted %d shards, got %d", m.name, m.shards, got))
		}
		rec := s.AttachProfile()
		_ = rec
		s.Start()
		s.Run(opt.WarmCycles)
		s.ResetStats()
		s.Run(opt.MeasureCycles)
		r := s.Results()
		s.Close()
		if r.Profile == nil {
			fatal(fmt.Errorf("%s: no profile attached", m.name))
		}
		share := func(names ...string) float64 {
			var sum float64
			for _, ph := range r.Profile.Phases {
				for _, n := range names {
					if ph.Phase == n {
						sum += ph.Share
					}
				}
			}
			return sum
		}
		cpu := share("cpu")
		proto := share("protocol")
		net := share("net-serial", "net-sharded")
		engine := share("engine")
		rest := share("thermal", "sampler", "other")
		barrier := 0.0
		if r.Profile.Shards != nil {
			barrier = r.Profile.Shards.BarrierWaitFrac
		}
		fmt.Printf("%-18s %7d %8.2f %5.1f%% %6.1f%% %5.1f%% %6.1f%% %5.1f%% %8.1f%%\n",
			m.name, got, r.Profile.CyclesPerSec/1e6,
			100*cpu, 100*proto, 100*net, 100*engine, 100*rest, 100*barrier)
		csvRows = append(csvRows, []string{m.name, strconv.Itoa(got),
			f1(r.Profile.CyclesPerSec / 1e6), f1(cpu), f1(proto), f1(net), f1(engine), f1(rest), f1(barrier)})
	}
	writeCSV("profile_phases", csvRows)
	fmt.Println("(shares are fractions of Engine.Run wall time and sum to ~100%; barrier% is\n the fraction of sharded-round worker time spent waiting at the cycle barrier)")
}

func intersect(names, allowed []string) []string {
	set := map[string]bool{}
	for _, a := range allowed {
		set[a] = true
	}
	var out []string
	for _, n := range names {
		if set[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return allowed
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
