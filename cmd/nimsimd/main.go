// Command nimsimd is the simulation-as-a-service daemon: the thin wrapper
// over the same serving core as `nimsim -serve`. It accepts config
// submissions over HTTP/JSON, executes them on a bounded worker pool, and
// exposes live SSE metrics streams, Prometheus metrics, and health:
//
//	nimsimd -addr :8080
//	curl -X POST localhost:8080/jobs -d '{"scheme":"dnuca3d","benchmark":"mgrid"}'
//	curl localhost:8080/jobs/<id>
//	curl -N localhost:8080/jobs/<id>/stream
//	curl localhost:8080/metrics
//
// Repeated submissions of the same configuration are answered from the
// result cache (the simulator is deterministic, so results never go
// stale), and identical in-flight submissions coalesce onto one run.
// SIGINT/SIGTERM drains gracefully: in-flight jobs run to completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued-job bound before 503 backpressure (0 = 64)")
		interval = flag.Uint64("interval", 1_000, "default metrics sampling period in cycles")
		pprof    = flag.Bool("pprof", false, "also serve /debug/pprof/ on the same listener")
		drain    = flag.Duration("drain", 10*time.Second, "shutdown grace for open connections")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		Addr:                  *addr,
		Workers:               *workers,
		QueueDepth:            *queue,
		DefaultSampleInterval: *interval,
		EnablePprof:           *pprof,
		DrainTimeout:          *drain,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "nimsimd: serving on %s (POST /jobs, /metrics, /healthz)\n", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "nimsimd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "nimsimd: drained, bye")
}
