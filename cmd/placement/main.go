// Command placement visualizes CPU placement for any configuration: the
// pillar grid, the CPUs per layer (Algorithm 1, optimal offsetting, edge
// placement, or stacking), and the placement's quality metrics.
//
// Usage:
//
//	placement                      # default: 2 layers, 8 pillars, optimal
//	placement -layers 4            # four layers
//	placement -pillars 2 -k 1      # shared pillars via Algorithm 1
//	placement -stack               # the thermally-bad stacked baseline
//	placement -edge                # the CMP-DNUCA edge baseline
package main

import (
	"flag"
	"fmt"
	"os"

	nim "repro"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/placement"
)

func main() {
	var (
		layers  = flag.Int("layers", 2, "number of layers")
		pillars = flag.Int("pillars", 8, "number of pillars")
		cpus    = flag.Int("cpus", 8, "number of CPUs")
		k       = flag.Int("k", 1, "Algorithm 1 offset distance")
		stack   = flag.Bool("stack", false, "stack CPUs vertically")
		edge    = flag.Bool("edge", false, "edge placement (CMP-DNUCA baseline)")
	)
	flag.Parse()

	scheme := nim.CMPDNUCA3D
	if *edge {
		scheme = nim.CMPDNUCA
	} else if *layers == 1 {
		scheme = nim.CMPDNUCA2D
	}
	cfg := nim.DefaultConfig(scheme)
	if scheme.Is3D() {
		cfg.Layers = *layers
	}
	cfg.NumPillars = *pillars
	cfg.NumCPUs = *cpus
	cfg.OffsetK = *k
	cfg.StackCPUs = *stack

	top, err := config.NewTopology(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%v: %dx%d mesh x %d layers, %d clusters (%dx%d tiles), %d pillars, %d CPUs\n",
		cfg.Scheme, top.Dim.Width, top.Dim.Height, top.Dim.Layers,
		top.NumClusters(), top.TileW, top.TileH, len(top.Pillars), len(top.CPUs))

	pillarAt := map[[2]int]bool{}
	for _, p := range top.Pillars {
		pillarAt[[2]int{p.X, p.Y}] = true
	}
	cpuAt := map[geom.Coord]int{}
	for i, c := range top.CPUs {
		cpuAt[c] = i
	}

	for l := 0; l < top.Dim.Layers; l++ {
		fmt.Printf("\nlayer %d (P pillar, 0-9a-f CPU, + both, . bank):\n", l)
		for y := 0; y < top.Dim.Height; y++ {
			for x := 0; x < top.Dim.Width; x++ {
				id, hasCPU := cpuAt[geom.Coord{X: x, Y: y, Layer: l}]
				hasPillar := pillarAt[[2]int{x, y}]
				switch {
				case hasCPU && hasPillar:
					fmt.Print("+")
					_ = id
				case hasCPU:
					fmt.Printf("%x", id)
				case hasPillar:
					fmt.Print("P")
				default:
					fmt.Print(".")
				}
			}
			fmt.Println()
		}
	}

	fmt.Printf("\nquality:\n")
	fmt.Printf("  max CPUs stacked per column: %d\n", placement.MaxStackedPerColumn(top.CPUs))
	maxHops, sumHops := 0, 0
	for _, c := range top.CPUs {
		p := top.PillarOf(c)
		d := c.ManhattanXY(geom.Coord{X: p.X, Y: p.Y, Layer: c.Layer})
		sumHops += d
		if d > maxHops {
			maxHops = d
		}
	}
	fmt.Printf("  CPU-to-pillar hops: avg %.1f, max %d\n",
		float64(sumHops)/float64(len(top.CPUs)), maxHops)
	if err := placement.Validate(top.CPUs, top.Dim); err != nil {
		fatal(err)
	}
	fmt.Println("  placement valid: yes")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "placement:", err)
	os.Exit(1)
}
