// Command nimsim runs a single Network-in-Memory simulation and prints the
// full measurement report: latency, IPC, migration, coherence, network
// traffic, and dynamic energy.
//
// Usage:
//
//	nimsim -scheme dnuca3d -bench mgrid
//	nimsim -scheme snuca3d -bench swim -layers 4 -measure 500000
//	nimsim -scheme dnuca3d -bench art -pillars 2
//	nimsim -scheme dnuca3d -bench mgrid -trace trace.json -metrics m.csv
//	nimsim -scheme dnuca3d -bench mgrid -breakdown -spans spans.json
//	nimsim -serve :8080    # simulation-as-a-service daemon (see cmd/nimsimd)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	nim "repro"
	"repro/internal/power"
	"repro/internal/serve"
)

func main() {
	var (
		mix      = flag.String("mix", "", "multiprogrammed mix: comma-separated benchmarks, one per core (cycled)")
		traceIn  = flag.String("replay", "", "replay trace files instead of synthetic workloads: comma-separated, one per core (cycled)")
		asJSON   = flag.Bool("json", false, "emit the results as JSON instead of text")
		heatmap  = flag.Bool("heatmap", false, "print per-layer router utilization maps")
		busrep   = flag.Bool("buses", false, "print per-pillar bus utilization")
		scheme   = flag.String("scheme", "dnuca3d", "scheme: dnuca, dnuca2d, snuca3d, dnuca3d")
		bench    = flag.String("bench", "mgrid", "SPEC OMP benchmark name")
		layers   = flag.Int("layers", 0, "override layer count (3D schemes)")
		pillars  = flag.Int("pillars", 0, "override pillar count")
		l2mb     = flag.Int("l2", 0, "override L2 size in MB (16, 32, 64)")
		stack    = flag.Bool("stack", false, "force vertical CPU stacking")
		warm     = flag.Uint64("warm", 50_000, "settle cycles before measurement")
		measure  = flag.Uint64("measure", 250_000, "measurement window in cycles")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		traceOut = flag.String("trace", "", "write the measurement window's event trace as Chrome trace-event JSON (open in Perfetto)")
		traceBuf = flag.Int("tracebuf", 1_000_000, "event-trace ring capacity (oldest events drop beyond it)")
		spansOut = flag.String("spans", "", "write per-transaction latency spans as Chrome trace-event JSON (per-CPU Perfetto tracks)")
		brkdown  = flag.Bool("breakdown", false, "print the per-component L2 latency decomposition")
		metrics  = flag.String("metrics", "", "write interval metrics time series to this file (.trace.json for Perfetto counter tracks, .json for JSON, CSV otherwise)")
		interval = flag.Uint64("interval", 1_000, "metrics sampling period in cycles")
		thermal  = flag.Bool("thermal", false, "attach the activity-driven power/thermal pipeline and print the transient report")
		tmap     = flag.Bool("tmap", false, "print per-layer ASCII temperature maps (implies -thermal)")
		tinter   = flag.Uint64("tinterval", 1_000, "thermal step period in cycles")
		dtmPol   = flag.String("dtm", "", "dynamic thermal management policy: none, all, or a comma list of veto, drowsy, duty, reroute (implies -thermal)")
		trip     = flag.Float64("trip", 0, "DTM trip temperature in C (0 = the 85 C default)")
		duty     = flag.String("duty", "", "DTM duty-cycle pattern N/M: a hot core issues on N of every M slots (default 1/4)")
		shards   = flag.Int("shards", 1, "run the network phase sharded across this many layer goroutines (results are bit-identical to -shards 1; a -trace run falls back to serial)")
		profile  = flag.Bool("profile", false, "attach the host-side phase profiler and print the wall-clock attribution table (non-perturbing: results are bit-identical)")
		profOut  = flag.String("proftrace", "", "write the profiler's host timeline as Chrome trace-event JSON (throughput + phase-share tracks; implies -profile)")
		digestIv = flag.Uint64("digest", 0, "fold a state digest every N cycles and print the per-subsystem chain digests (non-perturbing: results are bit-identical)")
		diverge  = flag.String("diverge", "", "run a variant of this configuration side by side (comma-separated k=v overrides: scheme, bench, seed, shards, layers, pillars, l2, stack, dtm, trip, duty) and bisect the digest streams to the first divergent cycle and subsystem")
		version  = flag.Bool("version", false, "print build and host provenance, then exit")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		srvAddr  = flag.String("serve", "", "run as the telemetry daemon on this address instead of a one-shot simulation (POST /jobs, SSE streams, /metrics, /healthz)")
	)
	flag.Parse()

	if *version {
		// The same provenance nimsim_build_info and the BENCH_*.json host
		// stamps carry, for humans pinning a measurement to a binary.
		fmt.Printf("nimsim %s\n", serve.BuildVersion())
		fmt.Printf("  go        %s\n", runtime.Version())
		fmt.Printf("  platform  %s/%s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Printf("  cpus      %d (GOMAXPROCS %d)\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
		return
	}
	if *srvAddr != "" {
		runDaemon(*srvAddr, *pprof, *interval)
		return
	}
	if *pprof != "" {
		// A dedicated mux: the profiler never registers on
		// http.DefaultServeMux, so no other handler in the process can
		// silently inherit it.
		go func() {
			if err := http.ListenAndServe(*pprof, serve.PprofMux()); err != nil {
				fmt.Fprintf(os.Stderr, "nimsim: pprof: %v\n", err)
			}
		}()
	}

	opts := machineOpts{
		scheme: *scheme, bench: *bench, seed: *seed, shards: *shards,
		layers: *layers, pillars: *pillars, l2mb: *l2mb, stack: *stack,
		dtm: *dtmPol, trip: *trip, duty: *duty,
	}
	cfg, err := opts.config()
	if err != nil {
		fatalf("%v", err)
	}

	if *diverge != "" {
		runDiverge(opts, cfg, *diverge, *warm, *measure, *tinter,
			*thermal || *tmap, *digestIv, *asJSON)
		return
	}

	sim, err := buildSimulation(cfg, *bench, *mix, *traceIn, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	defer sim.Close()
	if *shards > 1 {
		// Purely a wall-clock knob: results are bit-identical to serial.
		// An attached tracer (below) forces the serial path automatically.
		sim.SetShards(*shards)
	}
	// The span recorder attaches before the settle window so transactions
	// in flight across the stats reset carry ledgers; ResetStats resets its
	// aggregates, making the breakdown cover exactly the measured means.
	var spans *nim.SpanRecorder
	if *spansOut != "" || *brkdown {
		spans = sim.AttachSpans()
	}
	// The host profiler attaches before the settle window so its loop-time
	// attribution covers every cycle the process simulates from here on.
	// It observes the simulator, not the simulated chip, so it perturbs
	// nothing — results stay bit-identical.
	var profRec *nim.ProfileRecorder
	if *profile || *profOut != "" {
		profRec = sim.AttachProfile()
	}
	sim.Start()
	sim.Run(*warm)
	sim.ResetStats()
	// Event observability attaches after the settle window, so the trace
	// and the metrics series cover exactly the measured cycles.
	var ring *nim.TraceRing
	if *traceOut != "" {
		ring = nim.NewTraceRing(*traceBuf)
		sim.AttachTracer(ring)
	}
	var spanRing *nim.TraceRing
	if *spansOut != "" {
		spanRing = nim.NewTraceRing(*traceBuf)
		spans.SetSink(spanRing)
	}
	// Thermal before the sampler, so each sampler row reads the freshly
	// stepped temperatures and the window power just flushed.
	var tracker *nim.ThermalTracker
	var dtmCtl *nim.DTMController
	if cfg.DTMActive() {
		// AttachDTM subsumes the thermal attach: the controller rides the
		// same tracker tick, adjusting the power window and reading the
		// freshly stepped grid.
		if dtmCtl, err = sim.AttachDTM(*tinter); err != nil {
			fatalf("%v", err)
		}
	} else if *thermal || *tmap || *dtmPol != "" {
		tracker = sim.AttachThermal(*tinter)
	}
	// The digest recorder attaches before the sampler so the sampler's
	// digest columns read each interval's freshly folded chains. Like the
	// profiler it observes without perturbing: results stay bit-identical.
	var digestRec *nim.DigestRecorder
	if *digestIv > 0 {
		digestRec = sim.AttachDigest(*digestIv)
	}
	var sampler *nim.MetricsSampler
	if *metrics != "" {
		sampler = sim.AttachSampler(*interval)
	}
	sim.Run(*measure)
	r := sim.Results()

	if ring != nil {
		if err := writeTrace(*traceOut, ring); err != nil {
			fatalf("%v", err)
		}
	}
	if spanRing != nil {
		if err := writeTrace(*spansOut, spanRing); err != nil {
			fatalf("%v", err)
		}
	}
	if sampler != nil {
		ts := sampler.Series()
		if ring != nil {
			// Parity with the Chrome-trace export: mark the series when the
			// companion event trace is partial.
			ts.DroppedEvents = ring.Dropped()
		}
		if err := writeMetrics(*metrics, ts); err != nil {
			fatalf("%v", err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatalf("%v", err)
		}
		if err := sim.CheckInvariants(); err != nil {
			fatalf("invariant violation: %v", err)
		}
		return
	}

	fmt.Printf("scheme      %s\n", r.Scheme)
	fmt.Printf("benchmark   %s\n", r.Benchmark)
	fmt.Printf("cycles      %d (after %d settle cycles)\n", r.Cycles, *warm)
	fmt.Printf("\nperformance\n")
	fmt.Printf("  instructions   %12d\n", r.Instructions)
	fmt.Printf("  IPC            %12.3f (per core)\n", r.IPC)
	fmt.Printf("\nL2 cache\n")
	fmt.Printf("  accesses       %12d\n", r.L2Accesses)
	fmt.Printf("  hits           %12d\n", r.L2Hits)
	fmt.Printf("  misses         %12d\n", r.L2Misses)
	fmt.Printf("  avg hit lat    %12.1f cycles\n", r.AvgL2HitLatency)
	if r.AvgPrivateHitLatency > 0 {
		fmt.Printf("  private hits   %12.1f cycles\n", r.AvgPrivateHitLatency)
	}
	if r.AvgSharedHitLatency > 0 {
		fmt.Printf("  shared hits    %12.1f cycles\n", r.AvgSharedHitLatency)
	}
	if r.AvgCodeHitLatency > 0 {
		fmt.Printf("  code hits      %12.1f cycles\n", r.AvgCodeHitLatency)
	}
	fmt.Printf("  hit lat P50    %12d cycles\n", r.P50L2HitLatency)
	fmt.Printf("  hit lat P95    %12d cycles\n", r.P95L2HitLatency)
	fmt.Printf("  hit lat P99    %12d cycles\n", r.P99L2HitLatency)
	if r.L2Misses > 0 {
		fmt.Printf("  avg miss lat   %12.1f cycles\n", r.AvgL2MissLatency)
	}
	fmt.Printf("\nmanagement\n")
	fmt.Printf("  migrations     %12d\n", r.Migrations)
	fmt.Printf("  probes sent    %12d\n", r.ProbesSent)
	fmt.Printf("  step-2 search  %12d\n", r.Step2Searches)
	fmt.Printf("  invalidations  %12d\n", r.Invalidations)
	fmt.Printf("  back-invals    %12d\n", r.BackInvals)
	fmt.Printf("  evictions      %12d\n", r.Evictions)
	fmt.Printf("  memory reads   %12d\n", r.MemReads)
	fmt.Printf("  memory writes  %12d\n", r.MemWrites)
	fmt.Printf("\nnetwork\n")
	fmt.Printf("  flit-hops      %12d\n", r.FlitHops)
	fmt.Printf("  bus flits      %12d\n", r.BusFlits)

	e := power.Estimate(r.FlitHops, r.BusFlits, r.L2Hits, r.MemReads+r.Migrations, r.ProbesSent, r.Migrations)
	fmt.Printf("\ndynamic energy (window)\n")
	fmt.Printf("  network        %12.1f nJ\n", e.NetworkPJ/1000)
	fmt.Printf("  pillar buses   %12.1f nJ\n", e.BusPJ/1000)
	fmt.Printf("  banks          %12.1f nJ\n", e.BanksPJ/1000)
	fmt.Printf("  tags           %12.1f nJ\n", e.TagsPJ/1000)
	fmt.Printf("  migration      %12.1f nJ\n", e.MigrationPJ/1000)
	fmt.Printf("  total          %12.1f nJ\n", e.TotalPJ()/1000)

	if (tracker != nil || dtmCtl != nil) && r.Thermal != nil {
		t := r.Thermal
		fmt.Printf("\ntransient thermal (%d steps of %d cycles)\n", t.Steps, t.IntervalCycles)
		fmt.Printf("  peak           %12.2f C at (%d,%d,L%d), cycle %d\n",
			t.PeakC, t.PeakX, t.PeakY, t.PeakLayer, t.PeakCycle)
		fmt.Printf("  final          %12.2f C peak, %.2f C mean\n", t.FinalPeakC, t.FinalMeanC)
		fmt.Printf("  layer gradient %12.2f C\n", t.GradientC)
		fmt.Printf("  above %.0f C    %12d cycles\n", t.ThresholdC, t.CyclesAboveThreshold)
		for _, l := range t.Layers {
			fmt.Printf("  layer %d        %12.2f C peak, %.2f C mean\n", l.Layer, l.PeakC, l.MeanC)
		}
		fmt.Printf("  dynamic power  %12.3f W avg (%.1f nJ charged: net %.1f, bus %.1f, tags %.1f, banks %.1f, mig %.1f, cpu %.1f)\n",
			t.AvgPowerW, t.Energy.TotalPJ/1000, t.Energy.NetworkPJ/1000, t.Energy.BusPJ/1000,
			t.Energy.TagsPJ/1000, t.Energy.BanksPJ/1000, t.Energy.MigrationPJ/1000, t.Energy.CPUPJ/1000)
	}
	if dtmCtl != nil && r.DTM != nil {
		d := r.DTM
		fmt.Printf("\ndynamic thermal management (policy %s, trip %.1f C, release %.1f C)\n",
			d.Policy, d.TripC, d.ReleaseC)
		fmt.Printf("  trips          %12d engagements (first at cycle %d)\n", d.TripEngagements, d.FirstTripCycle)
		fmt.Printf("  hot cells      %12d now, %d cell-steps total\n", d.HotCells, d.HotCellSteps)
		fmt.Printf("  peak           %12.2f C (%+.2f C vs trip)\n", d.PeakC, d.PeakOverTripC)
		fmt.Printf("  migr vetoes    %12d\n", d.MigrationVetoes)
		fmt.Printf("  bank wakeups   %12d (%d cycles added, %.1f nJ leakage saved)\n",
			d.BankWakeups, d.BankWakeupCycles, d.DrowsyLeakSavedPJ/1000)
		fmt.Printf("  duty stalls    %12d (pattern %d/%d)\n", d.ThrottleStalls, d.DutyOn, d.DutyPeriod)
		fmt.Printf("  pillar divert  %12d\n", d.PillarDiversions)
	}
	if *tmap && (tracker != nil || dtmCtl != nil) {
		fmt.Println()
		if err := sim.WriteThermalMap(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}

	if *brkdown && r.Breakdown != nil {
		fmt.Printf("\nL2 latency decomposition\n")
		if err := r.Breakdown.WriteTable(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}

	if profRec != nil && r.Profile != nil {
		fmt.Println()
		r.Profile.WriteTable(os.Stdout)
	}

	if digestRec != nil && r.Digests != nil {
		d := r.Digests
		fmt.Printf("\nstate digest (every %d cycles, %d records)\n", d.Interval, d.Records)
		fmt.Printf("  run            %s\n", d.Digest)
		for _, l := range d.Lanes {
			fmt.Printf("  %-12s   %s\n", l.Lane, l.Digest)
		}
	}

	if *heatmap {
		fmt.Println()
		sim.WriteHeatmap(os.Stdout)
	}
	if *busrep {
		fmt.Println()
		sim.WriteBusReport(os.Stdout)
	}

	if *profOut != "" && profRec != nil {
		if err := writeHostTimeline(*profOut, profRec); err != nil {
			fatalf("%v", err)
		}
	}

	if err := sim.CheckInvariants(); err != nil {
		fatalf("invariant violation: %v", err)
	}
}

// machineOpts is everything the flags contribute to one machine + run
// description, factored so -diverge can rebuild a variant from k=v
// overrides through the exact code path the base configuration took.
type machineOpts struct {
	scheme  string
	bench   string
	seed    uint64
	shards  int
	layers  int
	pillars int
	l2mb    int
	stack   bool
	dtm     string
	trip    float64
	duty    string
}

// config builds the machine description these options name.
func (o machineOpts) config() (nim.Config, error) {
	s, ok := serve.ParseScheme(o.scheme)
	if !ok {
		return nim.Config{}, fmt.Errorf("unknown scheme %q (want dnuca, dnuca2d, snuca3d, dnuca3d)", o.scheme)
	}
	cfg := nim.DefaultConfig(s)
	if o.layers > 0 {
		cfg.Layers = o.layers
	}
	if o.pillars > 0 {
		cfg.NumPillars = o.pillars
	}
	if o.l2mb > 0 {
		var err error
		if cfg, err = cfg.WithL2Size(o.l2mb); err != nil {
			return nim.Config{}, err
		}
	}
	cfg.StackCPUs = o.stack
	cfg.DTMPolicy = o.dtm
	cfg.TripTempC = o.trip
	cfg.DutyCycle = o.duty
	return cfg, nil
}

// set applies one -diverge override, named after the flag it shadows.
func (o *machineOpts) set(key, val string) error {
	var err error
	switch key {
	case "scheme":
		o.scheme = val
	case "bench":
		o.bench = val
	case "seed":
		o.seed, err = strconv.ParseUint(val, 10, 64)
	case "shards":
		o.shards, err = strconv.Atoi(val)
	case "layers":
		o.layers, err = strconv.Atoi(val)
	case "pillars":
		o.pillars, err = strconv.Atoi(val)
	case "l2":
		o.l2mb, err = strconv.Atoi(val)
	case "stack":
		o.stack, err = strconv.ParseBool(val)
	case "dtm":
		o.dtm = val
	case "trip":
		o.trip, err = strconv.ParseFloat(val, 64)
	case "duty":
		o.duty = val
	default:
		return fmt.Errorf("unknown override %q (want scheme, bench, seed, shards, layers, pillars, l2, stack, dtm, trip, duty)", key)
	}
	if err != nil {
		return fmt.Errorf("override %s=%q: %v", key, val, err)
	}
	return nil
}

// runDiverge is `nimsim -diverge`: the flag-described base run and a
// variant built from the override list run side by side, their digest
// streams bisected to the first divergent cycle and subsystem.
func runDiverge(base machineOpts, baseCfg nim.Config, spec string,
	warm, measure, tinter uint64, wantThermal bool, interval uint64, asJSON bool) {
	variant := base
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			fatalf("-diverge: override %q is not key=value", kv)
		}
		if err := variant.set(key, val); err != nil {
			fatalf("-diverge: %v", err)
		}
	}
	varCfg, err := variant.config()
	if err != nil {
		fatalf("-diverge: %v", err)
	}
	job := func(o machineOpts, cfg nim.Config) nim.SweepJob {
		j := nim.SweepJob{
			Config:        cfg,
			Benchmark:     o.bench,
			WarmCycles:    warm,
			MeasureCycles: measure,
			Seed:          o.seed,
			Shards:        o.shards,
		}
		if wantThermal || cfg.DTMActive() {
			j.ThermalInterval = tinter
		}
		return j
	}
	rep, err := nim.Diverge(job(base, baseCfg), job(variant, varCfg), interval)
	if err != nil {
		fatalf("-diverge: %v", err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("diverge     base vs %s\n", spec)
	fmt.Printf("  digest A       %s\n", rep.DigestA)
	fmt.Printf("  digest B       %s\n", rep.DigestB)
	fmt.Printf("  compared       %d snapshots every %d cycles\n", rep.Records, rep.Interval)
	if rep.Equal {
		fmt.Printf("  verdict        equal — every compared snapshot agrees\n")
		return
	}
	precision := "exact"
	if !rep.Refined {
		precision = fmt.Sprintf("within the %d cycles ending there", rep.Interval)
	}
	fmt.Printf("  verdict        DIVERGED\n")
	fmt.Printf("  first at       cycle %d (%s)\n", rep.Cycle, precision)
	fmt.Printf("  subsystem      %s\n", rep.Lane)
	if rep.Refined && rep.CoarseCycle != rep.Cycle {
		fmt.Printf("  coarse hit     cycle %d, refined by per-cycle rerun\n", rep.CoarseCycle)
	}
}

// writeHostTimeline dumps the profiler's rolling run-window series as a
// Perfetto host timeline (host microseconds on the x axis, unlike the
// -trace export's simulated cycles).
func writeHostTimeline(path string, rec *nim.ProfileRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runDaemon runs the simulation-as-a-service mode (`nimsim -serve`).
// When -pprof names the same address as -serve, both share one listener
// deliberately: the profiler mounts on the daemon's own mux. A different
// -pprof address gets its own listener with a dedicated pprof-only mux.
func runDaemon(addr, pprofAddr string, sampleInterval uint64) {
	if pprofAddr != "" && pprofAddr != addr {
		go func() {
			if err := http.ListenAndServe(pprofAddr, serve.PprofMux()); err != nil {
				fmt.Fprintf(os.Stderr, "nimsim: pprof: %v\n", err)
			}
		}()
	}
	srv := serve.New(serve.Options{
		Addr:                  addr,
		DefaultSampleInterval: sampleInterval,
		EnablePprof:           pprofAddr == addr && pprofAddr != "",
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "nimsim: serving on %s (POST /jobs, /metrics, /healthz)\n", addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fatalf("%v", err)
	}
}

// buildSimulation constructs (and warms) the requested machine: a single
// benchmark on every core, a multiprogrammed mix, or replayed trace files.
func buildSimulation(cfg nim.Config, bench, mix, traceIn string, seed uint64) (*nim.Simulation, error) {
	switch {
	case traceIn != "":
		files := strings.Split(traceIn, ",")
		streams := make([]nim.Stream, cfg.NumCPUs)
		var footprint []nim.LineAddr
		for i := range streams {
			f, err := os.Open(files[i%len(files)])
			if err != nil {
				return nil, err
			}
			fs, err := nim.ParseTrace(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			streams[i] = fs
			footprint = append(footprint, fs.Footprint()...)
		}
		sim, err := nim.NewTraceSimulation(cfg, streams, "trace:"+traceIn, seed)
		if err != nil {
			return nil, err
		}
		sim.WarmAddresses(footprint)
		return sim, nil
	case mix != "":
		names := strings.Split(mix, ",")
		benches := make([]nim.Benchmark, cfg.NumCPUs)
		for i := range benches {
			p, ok := nim.BenchmarkByName(names[i%len(names)], cfg.NumCPUs)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", names[i%len(names)])
			}
			benches[i] = p
		}
		sim, err := nim.NewMixedSimulation(cfg, benches, seed)
		if err != nil {
			return nil, err
		}
		sim.Warm()
		return sim, nil
	default:
		prof, ok := nim.BenchmarkByName(bench, cfg.NumCPUs)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		sim, err := nim.NewSimulation(cfg, prof, seed)
		if err != nil {
			return nil, err
		}
		sim.Warm()
		return sim, nil
	}
}

// writeTrace dumps the ring's events as Chrome trace-event JSON. A
// non-zero drop count means the ring wrapped and the trace is partial: it
// is embedded in the trace's metadata for Perfetto and warned about on
// stderr.
func writeTrace(path string, ring *nim.TraceRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := nim.TraceMeta{DroppedEvents: ring.Dropped()}
	if err := nim.WriteChromeTraceMeta(f, ring.Events(), meta); err != nil {
		f.Close()
		return err
	}
	if meta.DroppedEvents > 0 {
		fmt.Fprintf(os.Stderr, "nimsim: %s: ring dropped %d oldest events; the trace is partial (raise -tracebuf for full coverage)\n",
			path, meta.DroppedEvents)
	}
	return f.Close()
}

// writeMetrics dumps the sampled time series: Perfetto counter tracks when
// the filename ends in .trace.json, plain JSON when it ends in .json, CSV
// otherwise.
func writeMetrics(path string, ts *nim.MetricsSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := ts.WriteCSV
	switch {
	case strings.HasSuffix(path, ".trace.json"):
		werr = func(w io.Writer) error { return nim.WriteCounterTrace(w, ts) }
	case strings.HasSuffix(path, ".json"):
		werr = ts.WriteJSON
	}
	if err := werr(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nimsim: "+format+"\n", args...)
	os.Exit(1)
}
